"""Ablation benches for the design choices DESIGN.md calls out.

* centroid estimator (mean vs median vs trimmed mean) under contamination;
* poisoning-fraction sweep (5-30 %);
* equalized vs uniform vs pure defence strategies against the optimal attack;
* idealised (genuine-percentile radius) vs operational (contaminated-set
  quantile) filtering;
* attack-surrogate choice (victim-matched vs mismatched ridge).

Round-based ablations run through an explicit cache-free
:class:`~repro.engine.EvaluationEngine` (the same style as
bench_engine.py), declaring their rounds as
:class:`~repro.engine.RoundSpec` batches — so they exercise the
spec/registry path the experiments use and honour
``REPRO_BENCH_BACKEND`` for backend selection.  Absolute accuracy
thresholds are calibrated to the paper's Spambase setting and apply
only there (the synthetic smoke context exercises the code paths, but
its geometry makes the boundary attack far more damaging and its
contamination barely moves *any* centroid estimator).
"""

import os

import numpy as np

from repro.attacks.optimal_boundary import OptimalBoundaryAttack
from repro.core.mixed_strategy import MixedDefense
from repro.core.payoff_estimation import estimate_payoff_curves
from repro.data.geometry import compute_centroid
from repro.engine import AttackSpec, DefenseSpec, EvaluationEngine, RoundSpec
from repro.attacks.base import poison_dataset
from repro.experiments.payoff_sweep import evaluate_mixed_defense
from repro.experiments.reporting import ascii_table
from repro.experiments.runner import evaluate_configuration
from repro.ml.ridge import RidgeClassifier
from repro.utils.rng import derive_seed


def _is_paper_setting(ctx) -> bool:
    """Absolute thresholds apply only on the Spambase setting (the
    synthetic smoke context exercises the paths, not the calibration)."""
    return ctx.dataset_name.startswith("spambase")


def _fresh_engine() -> EvaluationEngine:
    """A cache-free engine for honestly timed ablation rounds
    (``REPRO_BENCH_BACKEND`` selects the backend, default serial)."""
    return EvaluationEngine(os.environ.get("REPRO_BENCH_BACKEND", "serial"),
                            cache=False)


def test_ablation_centroid_estimators(benchmark, spambase_ctx):
    """The paper's robustness argument: a robust centroid barely moves
    under 20 % contamination; the mean moves with the attack."""
    ctx = spambase_ctx
    attack = ctx.boundary_attack(0.0)

    def run():
        X_mix, y_mix, _ = poison_dataset(ctx.X_train, ctx.y_train, attack,
                                         fraction=0.2, seed=derive_seed(ctx.seed, "abl"))
        rows = []
        for method in ("mean", "median", "trimmed_mean"):
            clean_c = compute_centroid(ctx.X_train, method=method).location
            dirty_c = compute_centroid(X_mix, method=method).location
            shift = float(np.linalg.norm(dirty_c - clean_c))
            scale = float(np.median(ctx.radius_map.distances))
            rows.append((method, shift, shift / scale))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(ascii_table(
        ["centroid", "shift under 20% poisoning", "shift / median radius"],
        [(m, f"{s:.3f}", f"{rel:.3f}") for m, s, rel in rows],
        title="Centroid robustness ablation",
    ))
    shifts = {m: rel for m, _, rel in rows}
    assert shifts["median"] < 0.5  # robust centroid barely moves
    if _is_paper_setting(ctx):
        # On Spambase's heavy-tailed geometry the mean visibly follows
        # the attack while the median holds.  The synthetic smoke
        # context's attack sits at the centroid percentile, so *no*
        # estimator moves materially and the comparison is noise.
        assert shifts["median"] < shifts["mean"]


def test_ablation_poison_fraction_sweep(benchmark, spambase_ctx):
    """Damage grows with the contamination budget at a fixed filter."""
    ctx = spambase_ctx
    fractions = [0.05, 0.10, 0.20, 0.30]
    engine = _fresh_engine()

    def run():
        specs = [
            RoundSpec(filter_percentile=0.05,
                      attack=AttackSpec("boundary", 0.05),
                      poison_fraction=frac,
                      seed=derive_seed(ctx.seed, "frac", frac))
            for frac in fractions
        ]
        outcomes = engine.evaluate_batch(ctx, specs)
        return list(zip(fractions, [o.accuracy for o in outcomes]))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(ascii_table(["poison fraction", "accuracy under optimal attack"],
                      [(f"{f:.0%}", f"{a:.4f}") for f, a in rows],
                      title="Contamination budget ablation"))
    accs = [a for _, a in rows]
    assert accs[-1] < accs[0]  # more poison, more damage


def test_ablation_strategy_families(benchmark, spambase_ctx, figure1_sweep):
    """Equalized vs uniform probabilities on the same support, and the
    best pure strategy, all evaluated against the optimal attack."""
    ctx = spambase_ctx
    sweep = figure1_sweep
    engine = _fresh_engine()
    curves = estimate_payoff_curves(
        sweep.percentiles, sweep.acc_clean, sweep.acc_attacked, sweep.n_poison
    )
    support = np.array([0.03, 0.10, 0.20])
    equalized = MixedDefense.equalized(
        support[support <= curves.p_max] if np.any(support <= curves.p_max)
        else support[:2], curves
    ) if np.all(curves.E_vec(support) > 0) else None

    def run():
        rows = []
        if equalized is not None:
            acc_eq, _, _ = evaluate_mixed_defense(ctx, equalized,
                                                  poison_fraction=0.2,
                                                  engine=engine)
            rows.append(("equalized (Sec. 4.2)", acc_eq))
        uniform = MixedDefense(percentiles=support,
                               probabilities=np.full(3, 1 / 3))
        acc_un, _, _ = evaluate_mixed_defense(ctx, uniform, poison_fraction=0.2,
                                              engine=engine)
        rows.append(("uniform probabilities", acc_un))
        best_p, best_acc = sweep.best_pure
        rows.append((f"best pure (filter {best_p:.0%})", best_acc))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(ascii_table(["defence strategy", "accuracy under optimal attack"],
                      [(name, f"{a:.4f}") for name, a in rows],
                      title="Strategy-family ablation"))
    accs = dict(rows)
    assert all(0.0 < a <= 1.0 for a in accs.values())
    if _is_paper_setting(ctx):
        # Spambase calibration: every strategy keeps the model usable.
        assert all(0.5 < a for a in accs.values())


def test_ablation_idealised_vs_operational_filter(benchmark, spambase_ctx):
    """The harness filters at the genuine-percentile radius (the paper's
    idealisation); a real defender quantiles the contaminated set.  The
    two must agree closely when the centroid is robust.

    Both filters run as engine rounds sharing one seed (same poison
    set), the idealised one as the kernel-served radius spec, the
    operational one as the registered ``percentile_filter`` family."""
    ctx = spambase_ctx
    engine = _fresh_engine()
    seed = derive_seed(ctx.seed, "op")

    def run():
        operational, idealised = engine.evaluate_batch(ctx, [
            RoundSpec(defense=DefenseSpec("percentile_filter", 0.15),
                      attack=AttackSpec("boundary", 0.15),
                      poison_fraction=0.2, seed=seed),
            RoundSpec(filter_percentile=0.15,
                      attack=AttackSpec("boundary", 0.15),
                      poison_fraction=0.2, seed=seed),
        ])
        return operational.report, idealised
    report_op, idealised = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(ascii_table(
        ["filter", "poison recall", "genuine loss"],
        [
            ("operational (quantile on mixed set)",
             f"{report_op.poison_recall:.3f}", f"{report_op.genuine_loss:.3f}"),
            ("idealised (genuine-percentile radius)",
             f"{idealised.report.poison_recall:.3f}",
             f"{idealised.report.genuine_loss:.3f}"),
        ],
        title="Idealised vs operational filtering at 15%",
    ))
    # the operational filter cuts deeper (it removes 15% of the *mixed*
    # set), so it catches at least as much poison as the idealised one
    assert report_op.poison_recall >= idealised.report.poison_recall - 0.05


def test_ablation_attack_surrogate_choice(benchmark, spambase_ctx):
    """Victim-matched surrogate vs mismatched ridge surrogate: the
    matched attack transfers far better (full-knowledge threat model).

    The matched attack is the engine's ``boundary`` kind; the
    mismatched surrogate is deliberately *not* a registered family, so
    it runs whole-object through ``evaluate_configuration`` — the
    uniform escape hatch for unregistered strategies."""
    ctx = spambase_ctx
    engine = _fresh_engine()

    def run():
        matched = engine.evaluate(ctx, RoundSpec(
            attack=AttackSpec("boundary", 0.0), poison_fraction=0.2,
            seed=derive_seed(ctx.seed, "surr", "victim-matched SVM"),
        )).accuracy
        mismatched = evaluate_configuration(
            ctx, attack=OptimalBoundaryAttack(
                0.0, surrogate=RidgeClassifier(reg=1e-2),
                centroid_method=ctx.centroid_method),
            poison_fraction=0.2,
            seed=derive_seed(ctx.seed, "surr", "mismatched ridge"),
        ).accuracy
        return [("victim-matched SVM", matched),
                ("mismatched ridge", mismatched)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(ascii_table(["attack surrogate", "victim accuracy (lower = stronger attack)"],
                      [(n, f"{a:.4f}") for n, a in rows],
                      title="Attack-surrogate ablation"))
    accs = dict(rows)
    assert accs["victim-matched SVM"] <= accs["mismatched ridge"] + 0.02
