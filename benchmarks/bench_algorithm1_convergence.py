"""Algorithm 1 convergence diagnostics.

Not a paper table per se, but the paper's algorithm is the central
artefact: this bench times a full Algorithm-1 run on the estimated
curves and asserts the convergence behaviour its proof sketch promises
(monotone loss descent, equalization at the fixed point, low attacker
exploitability).
"""

import numpy as np

from repro.core.algorithm1 import compute_optimal_defense
from repro.core.equilibrium import attacker_best_response_value, defense_exploitability
from repro.core.game import PoisoningGame
from repro.core.mixed_strategy import equalization_residual
from repro.core.payoff_estimation import estimate_payoff_curves
from repro.experiments.reporting import ascii_series


def test_algorithm1_convergence_paper_curves(benchmark):
    """Convergence on the paper-calibrated curves, where the loss
    surface has genuine curvature (both E and Γ active)."""
    from repro.core.paper_curves import PAPER_N_POISON, paper_figure1_curves

    curves = paper_figure1_curves()
    result = benchmark.pedantic(
        lambda: compute_optimal_defense(curves, n_radii=3,
                                        n_poison=PAPER_N_POISON,
                                        epsilon=1e-12, max_iter=2000,
                                        initial_step=0.05),
        rounds=1, iterations=1,
    )
    print()
    trace = np.asarray(result.loss_trace)
    print(ascii_series(np.arange(len(trace)), trace,
                       x_label="iteration", y_label="defender loss"))
    print(f"converged: {result.converged} after {result.n_iterations} iterations")

    assert np.all(np.diff(trace) <= 1e-12)
    assert result.converged
    assert result.n_iterations > 3  # non-trivial descent
    assert equalization_residual(result.defense, curves) < 1e-8


def test_algorithm1_convergence(benchmark, figure1_sweep):
    sweep = figure1_sweep
    curves = estimate_payoff_curves(
        sweep.percentiles, sweep.acc_clean, sweep.acc_attacked, sweep.n_poison
    )

    result = benchmark.pedantic(
        lambda: compute_optimal_defense(curves, n_radii=3,
                                        n_poison=sweep.n_poison,
                                        epsilon=1e-10, max_iter=400),
        rounds=1, iterations=1,
    )

    print()
    trace = np.asarray(result.loss_trace)
    print(ascii_series(np.arange(len(trace)), trace,
                       x_label="iteration", y_label="defender loss"))
    print(f"converged: {result.converged} after {result.n_iterations} iterations")
    print(f"final loss: {result.expected_loss:.6f}")

    game = PoisoningGame(curves=curves, n_poison=sweep.n_poison)
    br_value, br_p = attacker_best_response_value(game, result.defense)
    exploit = defense_exploitability(game, result.defense)
    print(f"attacker best response: placement {br_p:.3f}, value {br_value:.5f}")
    print(f"exploitability: {exploit:.6f}")

    # monotone descent
    assert np.all(np.diff(trace) <= 1e-12)
    assert result.converged
    # the fixed point satisfies the Section-4.2 equalization condition
    assert equalization_residual(result.defense, curves) < 1e-8
    # the attacker gains little by deviating off the support
    assert exploit <= 0.3 * abs(result.expected_loss) + 1e-9
