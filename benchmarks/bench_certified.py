"""Certified trade-off curve — Figure 1 from first principles.

The certified-defences machinery (related work [5] in the paper) upper
bounds the damage any attacker confined inside the filter can force,
*without simulating attacks*.  Sweeping the certificate across filter
strengths regenerates the qualitative Figure-1 trade-off analytically:
the certified attack contribution falls as the filter strengthens
(``E`` decreasing), so the defender faces the same
interior-optimum structure the empirical sweep measures.
"""

import numpy as np

from repro.defenses.certified import certify_radius_defense
from repro.experiments.reporting import ascii_table


def test_certified_tradeoff_curve(benchmark, spambase_ctx):
    ctx = spambase_ctx
    # certify on a subsample for speed: the bound's shape is what matters
    rng = np.random.default_rng(0)
    idx = rng.permutation(ctx.n_train)[:800]
    X, y = ctx.X_train[idx], ctx.y_train[idx]
    percentiles = [0.0, 0.05, 0.15, 0.30, 0.50]

    def run():
        return {
            p: certify_radius_defense(X, y, filter_percentile=p, eps=0.2,
                                      n_iter=120)
            for p in percentiles
        }

    certs = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(ascii_table(
        ["filter percentile", "certified loss", "clean loss",
         "certified attack contribution"],
        [
            (f"{p:.0%}", f"{c.certified_loss:.4f}", f"{c.clean_loss:.4f}",
             f"{c.attack_contribution:.4f}")
            for p, c in certs.items()
        ],
        title="Certified radius-defence bound vs filter strength (eps = 20%)",
    ))

    contributions = [certs[p].attack_contribution for p in percentiles]
    # filtering reduces the certified attack contribution somewhere on
    # the grid (the certificate's counterpart of E(p) falling from its
    # unfiltered value)
    assert min(contributions[1:]) <= contributions[0] + 1e-6
    if ctx.dataset_name.startswith("spambase"):
        # On Spambase the contribution falls monotonically with filter
        # strength.  The synthetic smoke geometry breaks this at very
        # strong filters: halving the data inflates the *clean* loss
        # against which the contribution is measured.
        assert contributions[-1] <= contributions[0] + 1e-6
    # every bound sits above the clean loss
    for c in certs.values():
        assert c.certified_loss >= c.clean_loss - 1e-9
