"""Evaluation-engine benchmarks: cache wins and backend overhead.

Quantifies the two headline properties of :mod:`repro.engine`:

1. **Equal-seed reruns are nearly free.**  ``run_table1_experiment``
   re-executed against a warm engine touches no victim training at
   all — only Algorithm 1 and cache lookups — and must come in at
   least 5x faster than the cold run, with bit-identical results.
   (On multi-core machines the cold run itself can instead be
   accelerated with ``EvaluationEngine("process")``; the cache win is
   the one that holds even on a single core.)

2. **Batching through the engine costs nothing measurable.**  The
   cache-off serial engine is compared against the historical
   hand-rolled loop over ``evaluate_configuration``.
"""

import time

import numpy as np
import pytest

from repro.engine import AttackSpec, EvaluationEngine, RoundSpec
from repro.experiments.payoff_sweep import (run_pure_strategy_sweep,
                                            run_table1_experiment)
from repro.experiments.runner import evaluate_configuration, make_synthetic_context
from repro.utils.rng import derive_seed


@pytest.fixture(scope="module")
def engine_ctx():
    """A mid-size synthetic context: big enough that training dominates."""
    return make_synthetic_context(seed=0, n_samples=500, n_features=6)


def test_table1_cached_rerun(benchmark, engine_ctx):
    engine = EvaluationEngine("serial")
    sweep = run_pure_strategy_sweep(engine_ctx, poison_fraction=0.2,
                                    n_repeats=1, engine=engine)

    start = time.perf_counter()
    cold = run_table1_experiment(engine_ctx, sweep, n_radii_values=(2, 3),
                                 poison_fraction=0.2, n_repeats=2, engine=engine)
    cold_seconds = time.perf_counter() - start

    warm = benchmark.pedantic(
        lambda: run_table1_experiment(engine_ctx, sweep, n_radii_values=(2, 3),
                                      poison_fraction=0.2, n_repeats=2,
                                      engine=engine),
        rounds=3, iterations=1,
    )
    warm_seconds = benchmark.stats.stats.mean

    print()
    print(f"cold run:    {cold_seconds:.3f}s ({engine.rounds_computed} rounds trained)")
    print(f"cached rerun: {warm_seconds:.3f}s "
          f"(speedup {cold_seconds / warm_seconds:.1f}x, "
          f"{engine.cache.stats.hits} cache hits)")

    for c, w in zip(cold, warm):
        assert c.accuracy == w.accuracy
        assert c.percentiles == w.percentiles
        assert c.probabilities == w.probabilities
    assert cold_seconds / warm_seconds >= 5.0


def test_engine_batching_overhead(benchmark, engine_ctx):
    percentiles = np.array([0.0, 0.05, 0.15, 0.30])
    specs = [
        RoundSpec(filter_percentile=float(p),
                  attack=AttackSpec("boundary", float(p)),
                  poison_fraction=0.2,
                  seed=derive_seed(engine_ctx.seed, "bench-overhead", i))
        for i, p in enumerate(percentiles)
    ]
    engine = EvaluationEngine("serial", cache=False)

    start = time.perf_counter()
    direct = [
        evaluate_configuration(
            engine_ctx, filter_percentile=spec.filter_percentile,
            attack=engine_ctx.boundary_attack(spec.attack.percentile),
            poison_fraction=spec.poison_fraction, seed=spec.seed,
        )
        for spec in specs
    ]
    direct_seconds = time.perf_counter() - start

    batched = benchmark.pedantic(lambda: engine.evaluate_batch(engine_ctx, specs),
                                 rounds=3, iterations=1)
    assert batched == direct

    print()
    print(f"direct loop:    {direct_seconds:.3f}s")
    print(f"engine batch:   {benchmark.stats.stats.mean:.3f}s (cache off)")
