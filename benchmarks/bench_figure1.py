"""Figure 1 — pure-strategy defence under optimal attack.

Regenerates the paper's Figure 1: test accuracy versus the fraction of
training data removed by the filter, with and without the optimal
boundary attack (20 % contamination, hinge-loss SVM, Spambase 70/30).

Shape criteria (paper):
* the attacked curve starts far below the clean curve at weak filters
  (paper ~50 % vs ~88 %), recovers as the filter strengthens, peaks at
  an interior filter strength (paper: between 10 % and 30 %), and
  declines again at strong filters;
* the clean curve is comparatively flat, mildly decreasing at strong
  filters (the collateral cost Γ);
* the defender "loses incentive to increase filter strength at some
  point between 10 % and 30 %" while the attacker always profits —
  the visual signature of no pure NE.
"""

import os

import numpy as np

from benchmarks.conftest import SWEEP_PERCENTILES
from repro.engine import EvaluationEngine
from repro.experiments.payoff_sweep import run_pure_strategy_sweep
from repro.experiments.reporting import format_engine_stats, format_pure_sweep


def test_figure1_pure_strategy_sweep(benchmark, spambase_ctx):
    # Explicit cache-free engine (the bench_engine.py style):
    # REPRO_BENCH_BACKEND picks the backend, and the engine-stats block
    # below records how the sweep's rounds were actually produced.
    engine = EvaluationEngine(
        os.environ.get("REPRO_BENCH_BACKEND", "serial"), cache=False)
    result = benchmark.pedantic(
        lambda: run_pure_strategy_sweep(
            spambase_ctx, percentiles=SWEEP_PERCENTILES,
            poison_fraction=0.2, n_repeats=1, engine=engine,
        ),
        rounds=1, iterations=1,
    )
    print()
    print(format_pure_sweep(result))
    print()
    print(format_engine_stats(engine))

    clean = np.asarray(result.acc_clean)
    attacked = np.asarray(result.acc_attacked)
    # -- shape assertions ------------------------------------------------
    # attack devastates the unfiltered model
    assert attacked[0] < clean[0] - 0.05
    # filtering recovers accuracy substantially
    assert attacked.max() > attacked[0] + 0.03
    # the best pure filter is interior (not the weakest, not the strongest)
    best_idx = int(np.argmax(attacked))
    assert 0 < best_idx < len(SWEEP_PERCENTILES) - 1
    # at strong filters the attacked curve declines from its peak
    assert attacked[-1] < attacked.max() - 0.01
