"""Round-kernel hot-path benchmark: the uncached round, stage by stage.

Where :mod:`bench_engine` quantifies what the cache saves on *repeated*
rounds, this file quantifies what the round kernel saves on the *first*
evaluation of every round — the cost that dominates fresh sweeps, new
seeds and CI:

* **per stage** — attack / filter / victim-fit timings for the kernel
  path against a faithful reconstruction of the pre-kernel path
  (per-round surrogate refit, clean-geometry recomputation, the seed
  Pegasos trainer with its always-on per-epoch objective, the
  contaminated-set filter centroid);
* **end to end** — an uncached pure-strategy sweep (serial backend)
  against the verbatim pre-PR round loop, plus the same sweep on the
  process backend asserted **bit-identical** to serial.

Speedup floors (asserted; measured values land in the JSON):

* the attack stage drops a whole surrogate fit plus the clean-data
  geometry -> ``>= 5x`` (measured: 30-170x);
* an uncached attacked round -> ``>= 2x`` (measured: ~2.7-3.5x);
* the victim fit (fast Pegasos path, objective trace off) ->
  ``>= 1.1x`` (measured: ~1.4-1.8x);
* the full mixed sweep -> ``>= 1.7x`` (measured: ~2.1-2.5x).  The mixed
  sweep is capped below the attacked-round ratio by its clean rounds,
  which are almost pure victim training: the trainer must reproduce
  the seed trainer bit for bit, so its speedup is bounded by
  interpreter overhead alone and the clean-round ratio cannot reach
  the attacked-round ratio.

Results are written as machine-readable JSON to ``BENCH_hotpath.json``
(override with ``REPRO_BENCH_JSON``) so the perf trajectory is tracked
across PRs; CI uploads the file as an artifact.
"""

import copy
import json
import os
import time
from contextlib import contextmanager

import numpy as np

from repro.attacks.base import poison_dataset
from repro.attacks.optimal_boundary import OptimalBoundaryAttack
from repro.defenses.base import defense_report
from repro.defenses.radius_filter import RadiusFilter
from repro.engine import AttackSpec, EvaluationEngine, RoundSpec
from repro.experiments.runner import EvaluationOutcome
from repro.ml.base import signed_labels
from repro.ml.linear_svm import LinearSVM
from repro.ml.metrics import hinge_loss
from repro.utils.rng import as_generator, derive_seed
from repro.utils.validation import check_X_y, check_fraction

# Conservative floors: measured ratios run well above these (see the
# module docstring), but CI shares noisy hardware and a required job
# must not flap; BENCH_hotpath.json records the actual values.
ATTACK_STAGE_FLOOR = 5.0
FIT_FLOOR = 1.1
ATTACKED_ROUND_FLOOR = 2.0
# Raised from 1.6 after PR 6: the batched-fit dispatch lifts the
# measured sweep ratio to ~2.2x, but the legacy leg only runs once per
# bench so the floor keeps generous noise headroom.
SWEEP_FLOOR = 1.7
# PR 6 batched-fit floors.  At the engine's grid scale fits are
# dispatch-bound and B-way lockstep training wins big (measured:
# 4.0-4.5x at B=32); at paper scale one training matrix is L2-resident
# and the stacked step is memory-bound — the gathered (B, batch, d)
# block is written once and re-read by the score and gradient kernels,
# all at memcpy speed — so the honest ceiling is far lower (measured:
# 1.7-2.1x with the shared-prefix gather).
FIT_MANY_FLOOR = 3.0
FIT_MANY_PAPER_FLOOR = 1.25
# Whole uncached repeat sweep, batched fits vs the same engine with
# REPRO_BATCH_FITS=0 (i.e. vs pre-PR-6 execution, stage for stage).
# Asserted at the grid scale study repeats actually run at (measured:
# ~2.3x); the paper-scale sweep inherits the memory-bound fit ceiling
# (measured: ~1.3-1.4x) and carries its own conservative floor.
SWEEP_BATCH_FLOOR = 1.5
SWEEP_BATCH_PAPER_FLOOR = 1.2
# RONI stacked-ridge fast path: the per-candidate gram matmul is
# irreducible under bit-identity, so the ratio is scale-dependent —
# asserted at grid scale (measured: ~6-18x), recorded at paper scale
# (~1x, compute-bound).
RONI_FAST_FLOOR = 3.0
# PR 8 cache-aware cluster scheduling: a warm-fleet re-sweep from a
# *cold client* answers every round from the shards' disk tiers —
# zero recompute (asserted exactly via shard telemetry), so the warm
# pass is bounded by round trips and JSON reads, not training
# (measured: ~5-15x at grid scale; floor keeps CI headroom).
CLUSTER_LOCALITY_FLOOR = 3.0
# PR 9 telemetry: the armed (metrics-only) path on the batched-fit
# sweep must stay within 3% of the disabled path.  The instruments are
# a handful of span context managers and counter increments per round
# against ~ms-scale stages (measured overhead: well under 1%); the
# interleaved min-of-N timing keeps shared-CI noise out of the ratio.
TELEMETRY_OVERHEAD_CEILING = 1.03
SWEEP_PERCENTILES = np.array([0.0, 0.02, 0.05, 0.10, 0.20, 0.30, 0.50])


# -- the pre-PR reference, reconstructed verbatim ---------------------------


def legacy_svm_fit(self, X, y):
    """The seed Pegasos trainer, kept verbatim: per-epoch RNG draws,
    fancy indexing per mini-batch, fresh arrays per step, two
    ``np.any`` calls, and the full-data objective every epoch.
    Patched over ``LinearSVM.fit`` to time the pre-PR baseline
    honestly."""
    X, y = check_X_y(X, y)
    y_signed = signed_labels(y).astype(float)
    n, d = X.shape
    rng = as_generator(self.seed)

    w = np.zeros(d)
    b = 0.0
    w_sum = np.zeros(d)
    b_sum = 0.0
    n_averaged = 0
    self.objective_trace_ = []

    t = 0
    prev_obj = np.inf
    averaging_starts = max(1, self.epochs // 2)
    for epoch in range(self.epochs):
        order = rng.permutation(n)
        for start in range(0, n, self.batch_size):
            t += 1
            batch = order[start : start + self.batch_size]
            Xb, yb = X[batch], y_signed[batch]
            margins = yb * (Xb @ w + b)
            active = margins < 1.0
            eta = 1.0 / (self.reg * t)
            grad_w = self.reg * w
            if np.any(active):
                grad_w = grad_w - (yb[active, None] * Xb[active]).sum(axis=0) / len(batch)
            w = w - eta * grad_w
            if self.fit_intercept and np.any(active):
                b = b + eta * yb[active].sum() / len(batch)
            norm = np.linalg.norm(w)
            radius = 1.0 / np.sqrt(self.reg)
            if norm > radius:
                w = w * (radius / norm)
            if self.average and epoch >= averaging_starts:
                w_sum += w
                b_sum += b
                n_averaged += 1

        obj = 0.5 * self.reg * float(w @ w) + hinge_loss(y_signed, X @ w + b)
        self.objective_trace_.append(obj)
        if self.tol is not None and abs(prev_obj - obj) < self.tol:
            break
        prev_obj = obj

    if self.average and n_averaged > 0:
        self.coef_ = w_sum / n_averaged
        self.intercept_ = float(b_sum / n_averaged)
    else:
        self.coef_ = w
        self.intercept_ = float(b)
    return self


@contextmanager
def legacy_trainer():
    original = LinearSVM.fit
    LinearSVM.fit = legacy_svm_fit
    try:
        yield
    finally:
        LinearSVM.fit = original


def legacy_attack(ctx, percentile):
    """The pre-PR attack: no precomputed geometry, surrogate refit per
    ``generate()`` call."""
    return OptimalBoundaryAttack(
        target_percentile=float(percentile),
        surrogate=ctx.attack_surrogate(),
        centroid_method=ctx.centroid_method,
    )


def legacy_round(ctx, *, filter_percentile=None, attack=None,
                 poison_fraction=0.2, seed=None):
    """The pre-PR ``evaluate_configuration``, verbatim: fresh attack
    geometry and surrogate fit per round, filter centroid re-estimated
    from the (possibly contaminated) training set.  Combine with
    :func:`legacy_trainer` for the full pre-PR cost."""
    round_seed = ctx.seed if seed is None else seed
    rng = as_generator(derive_seed(round_seed, "round"))
    X_tr, y_tr = ctx.X_train, ctx.y_train

    is_poison = np.zeros(X_tr.shape[0], dtype=bool)
    n_poison = 0
    if attack is not None:
        check_fraction(poison_fraction, name="poison_fraction", inclusive_high=False)
        X_tr, y_tr, is_poison = poison_dataset(
            ctx.X_train, ctx.y_train, attack, fraction=poison_fraction, seed=rng
        )
        n_poison = int(is_poison.sum())

    report = None
    filter_radius = None
    n_removed = 0
    if filter_percentile is not None and filter_percentile > 0.0:
        filter_radius = ctx.radius_map.radius(filter_percentile)
        defense = RadiusFilter(filter_radius, centroid_method=ctx.centroid_method)
        keep = defense.mask(X_tr, y_tr)
        report = defense_report(keep, is_poison)
        n_removed = int((~keep).sum())
        X_tr, y_tr = X_tr[keep], y_tr[keep]

    model = ctx.model_factory(derive_seed(round_seed, "model"))
    model.fit(X_tr, y_tr)
    accuracy = model.score(ctx.X_test, ctx.y_test)
    return EvaluationOutcome(
        accuracy=float(accuracy), n_poison=n_poison, n_removed=n_removed,
        filter_percentile=filter_percentile, filter_radius=filter_radius,
        report=report,
    )


def legacy_sweep(ctx, percentiles, poison_fraction=0.2):
    """The pre-PR pure-strategy sweep: legacy trainer, legacy rounds,
    per-round surrogate refits — the pre-kernel code path, stage for
    stage."""
    outcomes = []
    with legacy_trainer():
        for i, p in enumerate(percentiles):
            seed = derive_seed(ctx.seed, "sweep", i, 0)
            outcomes.append(legacy_round(
                ctx, filter_percentile=float(p), attack=None,
                poison_fraction=poison_fraction, seed=seed))
            outcomes.append(legacy_round(
                ctx, filter_percentile=float(p), attack=legacy_attack(ctx, p),
                poison_fraction=poison_fraction, seed=seed))
    return outcomes


def sweep_specs(ctx, percentiles, poison_fraction=0.2, n_repeats=1):
    specs = []
    for i, p in enumerate(percentiles):
        for r in range(n_repeats):
            seed = derive_seed(ctx.seed, "sweep", i, r)
            specs.append(RoundSpec(filter_percentile=float(p), attack=None,
                                   poison_fraction=poison_fraction, seed=seed))
            specs.append(RoundSpec(filter_percentile=float(p),
                                   attack=AttackSpec("boundary", float(p)),
                                   poison_fraction=poison_fraction, seed=seed))
    return specs


def fresh(ctx):
    """A copy of ``ctx`` with the kernel/fingerprint caches dropped, so
    every timed run pays (and amortises) its own one-time costs."""
    c = copy.copy(ctx)
    c.__dict__.pop("_kernel", None)
    c.__dict__.pop("_fingerprint", None)
    return c


def best_of(fn, repeats=3):
    best = np.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def write_results(payload):
    path = os.environ.get("REPRO_BENCH_JSON", "BENCH_hotpath.json")
    merged = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                merged = json.load(fh)
        except (OSError, json.JSONDecodeError):
            merged = {}
    merged.update(payload)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(merged, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def test_stage_timings(spambase_ctx):
    """Attack / filter / fit / round, kernel path vs pre-PR path."""
    ctx = fresh(spambase_ctx)
    n_poison = max(1, ctx.n_train // 16)
    seed = 123
    victim = ctx.model_factory(derive_seed(seed, "model"))

    # attack stage: poison placement on the clean data
    kernel_attack = ctx.boundary_attack(0.1)
    kernel_attack.generate(ctx.X_train, ctx.y_train, n_poison, seed=seed)  # warm
    attack_s, _ = best_of(
        lambda: kernel_attack.generate(ctx.X_train, ctx.y_train, n_poison, seed=seed))
    with legacy_trainer():
        legacy_attack_s, _ = best_of(
            lambda: legacy_attack(ctx, 0.1).generate(
                ctx.X_train, ctx.y_train, n_poison, seed=seed))

    # filter stage: keep-mask over a poisoned mixture
    X_mix, y_mix, is_poison, sources = poison_dataset(
        ctx.X_train, ctx.y_train, kernel_attack, fraction=0.2, seed=seed,
        return_sources=True)
    kernel = ctx.kernel()
    radius = kernel.filter_radius(0.1)
    filter_s, _ = best_of(
        lambda: kernel.keep_mask(X_mix, y_mix, is_poison, sources, radius))
    legacy_filter_s, _ = best_of(
        lambda: RadiusFilter(radius, centroid_method=ctx.centroid_method)
        .mask(X_mix, y_mix))

    # victim fit stage
    fit_s, _ = best_of(lambda: victim.fit(X_mix, y_mix))
    with legacy_trainer():
        legacy_fit_s, _ = best_of(lambda: victim.fit(X_mix, y_mix))

    # one whole uncached attacked round
    spec = RoundSpec(filter_percentile=0.1, attack=AttackSpec("boundary", 0.1),
                     poison_fraction=0.2, seed=seed)
    engine = EvaluationEngine("serial", cache=False)
    round_s, round_out = best_of(lambda: engine.evaluate(ctx, spec))
    with legacy_trainer():
        legacy_round_s, _ = best_of(lambda: legacy_round(
            ctx, filter_percentile=0.1, attack=legacy_attack(ctx, 0.1),
            poison_fraction=0.2, seed=seed))

    stages = {
        "attack_seconds": attack_s,
        "filter_seconds": filter_s,
        "fit_seconds": fit_s,
        "round_total_seconds": round_s,
        "legacy_attack_seconds": legacy_attack_s,
        "legacy_filter_seconds": legacy_filter_s,
        "legacy_fit_seconds": legacy_fit_s,
        "legacy_round_total_seconds": legacy_round_s,
    }
    path = write_results({
        "context": {
            "dataset": ctx.dataset_name,
            "n_train": ctx.n_train,
            "n_features": int(ctx.X_train.shape[1]),
        },
        "stages": stages,
    })

    print()
    for name in ("attack", "filter", "fit", "round_total"):
        new = stages[f"{name}_seconds"]
        old = stages[f"legacy_{name}_seconds"]
        print(f"{name:>12}: {old * 1e3:8.2f} ms -> {new * 1e3:8.2f} ms "
              f"({old / new:5.1f}x)")
    print(f"stage timings written to {path}")

    assert round_out.n_poison > 0  # the timed round really attacked
    assert legacy_attack_s / attack_s >= ATTACK_STAGE_FLOOR
    assert legacy_fit_s / fit_s >= FIT_FLOOR
    assert legacy_round_s / round_s >= ATTACKED_ROUND_FLOOR


def test_defense_stage_timings(spambase_ctx):
    """Every registered defence kind's mask on the paper-scale mixture.

    No floors — the families span three orders of magnitude by design
    (a quantile filter vs RONI's retrain loop); the value of this
    section is the recorded trajectory in ``BENCH_hotpath.json``, which
    makes a regression in any one family visible across PRs.
    """
    from repro.engine import (DefenseSpec, materialize_defense,
                              registered_defense_kinds)
    from repro.utils.rng import derive_seed as _derive

    ctx = fresh(spambase_ctx)
    attack = ctx.boundary_attack(0.1)
    X_mix, y_mix, _, _ = poison_dataset(
        ctx.X_train, ctx.y_train, attack, fraction=0.2, seed=123,
        return_sources=True)

    spec_overrides = {
        # Keep the families comparable on one strength axis where one
        # exists; parameterise the rest at their defaults.
        "radius": DefenseSpec("radius", 0.1, params={"centroid": "clean"}),
        "percentile_filter": DefenseSpec("percentile_filter", 0.1),
        "slab_filter": DefenseSpec("slab_filter", 0.1),
        "loss_filter": DefenseSpec("loss_filter", 0.1),
        "pca_detector": DefenseSpec("pca_detector", 0.1),
        "certified": DefenseSpec("certified", 0.1),
        "mixed_defense": DefenseSpec(
            "mixed_defense", params={"percentiles": (0.05, 0.2),
                                     "probabilities": (0.5, 0.5)}),
    }

    timings = {}
    print()
    for kind in registered_defense_kinds():
        dspec = spec_overrides.get(kind, DefenseSpec(kind))
        defense = materialize_defense(ctx, dspec,
                                      seed=_derive(123, "defense"))
        # RONI retrains per candidate batch; one repeat is plenty.
        repeats = 1 if kind in ("roni", "certified") else 3
        seconds, keep = best_of(lambda: defense.mask(X_mix, y_mix),
                                repeats=repeats)
        timings[kind] = seconds
        n_removed = int((~np.asarray(keep, dtype=bool)).sum())
        print(f"{kind:>18}: {seconds * 1e3:9.2f} ms  (removed {n_removed})")
        assert keep.shape == (X_mix.shape[0],)

    path = write_results({"defense_stages": timings})
    print(f"defense stage timings written to {path}")


def test_fit_many_speedup(spambase_ctx):
    """B-way batched victim training vs B sequential fits (PR 6).

    Grid scale (the study grids' repeat axis, where fits are pure
    dispatch) carries the asserted ``>= 3x`` floor; the paper-scale
    shared-dataset case — the engine's multi-seed repeat — is
    memory-bound and is asserted against its own honest floor.
    Both paths must agree bit for bit before any timing counts.
    """
    from repro.data.synthetic import make_gaussian_blobs

    def bench_case(models_factory, datasets, repeats):
        seq_s, seq_models = best_of(
            lambda: [m.fit(X, y) for m, (X, y) in
                     zip(models_factory(), datasets)], repeats=repeats)
        many_s, many_models = best_of(
            lambda: LinearSVM.fit_many(models_factory(), datasets),
            repeats=repeats)
        for got, want in zip(many_models, seq_models):
            assert got.coef_.tobytes() == want.coef_.tobytes()
            assert got.intercept_ == want.intercept_
        return seq_s, many_s

    # Grid scale: B=32 distinct problems, the shape of a study's
    # repeat/seed axis after materialisation.
    b_grid = 32
    grid_datasets = [make_gaussian_blobs(n_samples=260, n_features=4,
                                         separation=1.5, seed=11 + i)
                     for i in range(b_grid)]
    grid_models = lambda: [LinearSVM(reg=1e-4, epochs=20, batch_size=64,
                                     seed=100 + i) for i in range(b_grid)]
    grid_seq_s, grid_many_s = bench_case(grid_models, grid_datasets, repeats=3)

    # Paper scale: B=8 rounds on one shared training matrix (the
    # multi-seed repeat case execute_rounds actually groups).
    ctx = fresh(spambase_ctx)
    b_paper = 8
    paper_datasets = [(ctx.X_train, ctx.y_train)] * b_paper
    paper_models = lambda: [ctx.model_factory(derive_seed(s, "model"))
                            for s in range(b_paper)]
    paper_seq_s, paper_many_s = bench_case(paper_models, paper_datasets,
                                           repeats=2)

    grid_speedup = grid_seq_s / grid_many_s
    paper_speedup = paper_seq_s / paper_many_s
    path = write_results({
        "fit_many": {
            "grid_b": b_grid,
            "grid_sequential_seconds": grid_seq_s,
            "grid_batched_seconds": grid_many_s,
            "grid_speedup": grid_speedup,
            "paper_b": b_paper,
            "paper_sequential_seconds": paper_seq_s,
            "paper_batched_seconds": paper_many_s,
            "paper_speedup": paper_speedup,
        },
    })

    print()
    print(f"fit_many grid  (B={b_grid}): {grid_seq_s * 1e3:8.1f} ms -> "
          f"{grid_many_s * 1e3:8.1f} ms ({grid_speedup:.1f}x)")
    print(f"fit_many paper (B={b_paper}): {paper_seq_s * 1e3:8.1f} ms -> "
          f"{paper_many_s * 1e3:8.1f} ms ({paper_speedup:.1f}x)")
    print(f"fit_many timings written to {path}")

    assert grid_speedup >= FIT_MANY_FLOOR
    assert paper_speedup >= FIT_MANY_PAPER_FLOOR


def test_batched_sweep_vs_unbatched(spambase_ctx):
    """The whole uncached repeat sweep, batched fits on vs off.

    ``REPRO_BATCH_FITS=0`` runs the identical engine minus the
    fit_many dispatch — i.e. pre-PR-6 execution, stage for stage — so
    this ratio isolates what round batching buys end to end.  Measured
    at both the grid scale study repeats run at (dispatch-bound fits,
    the asserted ``>= 1.5x``) and paper scale (memory-bound fits, its
    own conservative floor).  Outcomes must be equal on both before
    the timings count.
    """
    from repro.experiments.runner import make_synthetic_context

    def ab_sweep(ctx, repeats):
        """Interleaved off/on timings (min of ``repeats`` each)."""
        specs = sweep_specs(ctx, SWEEP_PERCENTILES, n_repeats=8)

        def run():
            return EvaluationEngine("serial", cache=False).evaluate_batch(
                fresh(ctx), specs)

        assert os.environ.get("REPRO_BATCH_FITS") is None
        timings = {"off": np.inf, "on": np.inf}
        outcomes = {}
        for _ in range(repeats):
            for key in ("off", "on"):
                if key == "off":
                    os.environ["REPRO_BATCH_FITS"] = "0"
                try:
                    start = time.perf_counter()
                    outcomes[key] = run()
                    timings[key] = min(timings[key],
                                       time.perf_counter() - start)
                finally:
                    os.environ.pop("REPRO_BATCH_FITS", None)
        return (len(specs), timings["off"], timings["on"],
                outcomes["on"] == outcomes["off"])

    grid_ctx = make_synthetic_context(seed=0, n_samples=260, n_features=4)
    grid_n, grid_off_s, grid_on_s, grid_equal = ab_sweep(grid_ctx, repeats=3)
    paper_n, paper_off_s, paper_on_s, paper_equal = ab_sweep(
        spambase_ctx, repeats=2)

    grid_speedup = grid_off_s / grid_on_s
    paper_speedup = paper_off_s / paper_on_s
    path = write_results({
        "sweep_batched_fits": {
            "grid_n_rounds": grid_n,
            "grid_unbatched_seconds": grid_off_s,
            "grid_batched_seconds": grid_on_s,
            "grid_speedup": grid_speedup,
            "paper_n_rounds": paper_n,
            "paper_unbatched_seconds": paper_off_s,
            "paper_batched_seconds": paper_on_s,
            "paper_speedup": paper_speedup,
            "outcomes_equal": grid_equal and paper_equal,
        },
    })

    print()
    print(f"grid repeat sweep:  {grid_off_s:.3f}s -> {grid_on_s:.3f}s "
          f"(speedup {grid_speedup:.2f}x)")
    print(f"paper repeat sweep: {paper_off_s:.3f}s -> {paper_on_s:.3f}s "
          f"(speedup {paper_speedup:.2f}x)")
    print(f"batched sweep timings written to {path}")

    assert grid_equal and paper_equal  # bit-identical with fits batched
    assert grid_speedup >= SWEEP_BATCH_FLOOR
    assert paper_speedup >= SWEEP_BATCH_PAPER_FLOOR


def test_fast_path_defense_timings(spambase_ctx):
    """PR 6 defence fast paths: RONI's stacked-ridge scorer and the
    kNN sanitiser's persistent distance block, both against their
    sequential/expression forms at paper scale.

    RONI's ratio is scale-dependent (the per-candidate gram matmul is
    irreducible under bit-identity, so it dominates at paper scale
    while grid-scale rounds drop almost all their dispatch overhead):
    the grid-scale ratio carries the asserted floor, the paper-scale
    ratio is recorded floor-free.  kNN's win is peak memory, asserted
    directly.
    """
    import tracemalloc

    from repro.defenses.knn_sanitizer import KNNSanitizer
    from repro.defenses.radius_filter import _ensure_class_survival
    from repro.defenses.roni import RONIDefense
    from repro.experiments.runner import make_synthetic_context

    def roni_ab(ctx, seq_repeats):
        attack = ctx.boundary_attack(0.1)
        X, y, is_poison, sources = poison_dataset(
            ctx.X_train, ctx.y_train, attack, fraction=0.2, seed=123,
            return_sources=True)
        roni = RONIDefense(seed=3)
        kernel = ctx.kernel()
        seq_s, seq_keep = best_of(lambda: roni.mask(X, y),
                                  repeats=seq_repeats)
        fast_s, fast_keep = best_of(
            lambda: roni.kernel_mask(kernel, X, y, is_poison, sources),
            repeats=3)
        assert np.array_equal(seq_keep, fast_keep)
        return seq_s, fast_s

    grid_ctx = make_synthetic_context(seed=0, n_samples=260, n_features=4)
    roni_grid_seq_s, roni_grid_fast_s = roni_ab(fresh(grid_ctx),
                                                seq_repeats=3)
    ctx = fresh(spambase_ctx)
    roni_seq_s, roni_fast_s = roni_ab(ctx, seq_repeats=1)

    attack = ctx.boundary_attack(0.1)
    X_mix, y_mix, _, _ = poison_dataset(
        ctx.X_train, ctx.y_train, attack, fraction=0.2, seed=123,
        return_sources=True)

    # kNN: persistent-block distances vs the old expression form.
    sanitizer = KNNSanitizer(k=10, chunk_size=512)

    def knn_expression_form():
        X, y = check_X_y(X_mix, y_mix)
        y_signed = signed_labels(y)
        n = X.shape[0]
        k = min(10, n - 1)
        sq_norms = np.einsum("ij,ij->i", X, X)
        keep = np.ones(n, dtype=bool)
        for start in range(0, n, 512):
            stop = min(start + 512, n)
            d2 = (sq_norms[start:stop, None]
                  - 2.0 * (X[start:stop] @ X.T)
                  + sq_norms[None, :])
            d2[np.arange(stop - start), np.arange(start, stop)] = np.inf
            idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
            agree = (y_signed[idx] == y_signed[start:stop, None]).mean(axis=1)
            keep[start:stop] = agree >= 0.5
        return _ensure_class_survival(keep, y)

    def peak_bytes(fn):
        tracemalloc.start()
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak, result

    knn_old_s, old_keep = best_of(knn_expression_form, repeats=3)
    knn_new_s, new_keep = best_of(lambda: sanitizer.mask(X_mix, y_mix),
                                  repeats=3)
    assert np.array_equal(old_keep, new_keep)
    knn_old_peak, _ = peak_bytes(knn_expression_form)
    knn_new_peak, _ = peak_bytes(lambda: sanitizer.mask(X_mix, y_mix))

    path = write_results({
        "fast_paths": {
            "roni_grid_sequential_seconds": roni_grid_seq_s,
            "roni_grid_fast_seconds": roni_grid_fast_s,
            "roni_grid_speedup": roni_grid_seq_s / roni_grid_fast_s,
            "roni_paper_sequential_seconds": roni_seq_s,
            "roni_paper_fast_seconds": roni_fast_s,
            "roni_paper_speedup": roni_seq_s / roni_fast_s,
            "knn_expression_seconds": knn_old_s,
            "knn_block_seconds": knn_new_s,
            "knn_expression_peak_bytes": int(knn_old_peak),
            "knn_block_peak_bytes": int(knn_new_peak),
        },
    })

    print()
    print(f"roni mask (grid):  {roni_grid_seq_s * 1e3:8.1f} ms -> "
          f"{roni_grid_fast_s * 1e3:8.1f} ms "
          f"({roni_grid_seq_s / roni_grid_fast_s:.1f}x)")
    print(f"roni mask (paper): {roni_seq_s * 1e3:8.1f} ms -> "
          f"{roni_fast_s * 1e3:8.1f} ms ({roni_seq_s / roni_fast_s:.1f}x)")
    print(f"knn mask:  {knn_old_s * 1e3:8.1f} ms -> {knn_new_s * 1e3:8.1f} ms"
          f"  peak {knn_old_peak / 1e6:.1f} MB -> {knn_new_peak / 1e6:.1f} MB")
    print(f"fast-path timings written to {path}")

    assert roni_grid_seq_s / roni_grid_fast_s >= RONI_FAST_FLOOR
    # The persistent block replaces the chunk-sized temporaries the
    # expression form allocated per iteration; a solid slice of the
    # transient peak must be gone (measured: ~25%).  The synthetic
    # smoke context barely overflows one 512-row chunk, so there is no
    # per-iteration churn to reclaim there — the floor only means
    # something at paper scale.
    if ctx.dataset_name.startswith("spambase"):
        assert knn_new_peak <= 0.85 * knn_old_peak


def test_uncached_sweep_speedup_and_parity(spambase_ctx):
    """An uncached pure-strategy sweep against the verbatim pre-PR
    loop (serial), with process-backend outcomes bit-identical to
    serial."""
    percentiles = SWEEP_PERCENTILES

    baseline_s, _ = best_of(
        lambda: legacy_sweep(fresh(spambase_ctx), percentiles), repeats=1)

    specs = sweep_specs(spambase_ctx, percentiles)
    serial_s, serial_outcomes = best_of(
        lambda: EvaluationEngine("serial", cache=False).evaluate_batch(
            fresh(spambase_ctx), specs),
        repeats=2)

    process_s, process_outcomes = best_of(
        lambda: EvaluationEngine("process", cache=False).evaluate_batch(
            fresh(spambase_ctx), specs),
        repeats=1)

    speedup = baseline_s / serial_s
    path = write_results({
        "sweep": {
            "n_rounds": 2 * int(percentiles.size),
            "baseline_seconds": baseline_s,
            "kernel_serial_seconds": serial_s,
            "kernel_process_seconds": process_s,
            "speedup_serial": speedup,
            "serial_equals_process": serial_outcomes == process_outcomes,
        },
    })

    print()
    print(f"pre-PR sweep (serial):  {baseline_s:.3f}s")
    print(f"kernel sweep (serial):  {serial_s:.3f}s  (speedup {speedup:.1f}x)")
    print(f"kernel sweep (process): {process_s:.3f}s")
    print(f"sweep timings written to {path}")

    assert serial_outcomes == process_outcomes  # bit-identical across backends
    assert speedup >= SWEEP_FLOOR


def test_cluster_locality(spambase_ctx):
    """Cold vs warm-fleet cluster sweep, both from a cold client.

    The fleet (two autospawned localhost shards sharing one cache-tier
    directory) is spawned *before* either timed leg, so neither pays
    process startup.  The cold leg computes every round; the warm leg
    is a brand-new client (fresh backend, engine cache off) against the
    now-warm fleet — cache-aware placement routes every round to a
    holder and the shards answer from disk, which the telemetry must
    confirm as literally zero recomputes.
    """
    import shutil
    import tempfile

    from repro.cluster.backend import ClusterBackend, close_local_pools, \
        shared_local_pool
    from repro.experiments.runner import make_synthetic_context

    grid_ctx = make_synthetic_context(seed=0, n_samples=260, n_features=4)
    specs = sweep_specs(grid_ctx, SWEEP_PERCENTILES, n_repeats=4)

    tier = tempfile.mkdtemp(prefix="repro-bench-shard-cache-")
    saved = os.environ.get("REPRO_SHARD_CACHE_DIR")
    os.environ["REPRO_SHARD_CACHE_DIR"] = tier
    close_local_pools()  # force a fresh spawn that inherits the tier
    try:
        shared_local_pool(grid_ctx, 2)  # spawn outside the timed legs

        def cluster_pass():
            backend = ClusterBackend(2)
            engine = EvaluationEngine(backend, cache=False)
            outcomes = engine.evaluate_batch(grid_ctx, specs)
            return outcomes, engine.batch_log[-1]["cluster"]

        cold_s, (cold_outcomes, cold_stats) = best_of(cluster_pass,
                                                      repeats=1)
        warm_s, (warm_outcomes, warm_stats) = best_of(cluster_pass,
                                                      repeats=3)
        serial_outcomes = EvaluationEngine(
            "serial", cache=False).evaluate_batch(fresh(grid_ctx), specs)
    finally:
        close_local_pools()
        if saved is None:
            os.environ.pop("REPRO_SHARD_CACHE_DIR", None)
        else:
            os.environ["REPRO_SHARD_CACHE_DIR"] = saved
        shutil.rmtree(tier, ignore_errors=True)

    speedup = cold_s / warm_s
    path = write_results({
        "cluster_locality": {
            "n_rounds": len(specs),
            "cold_fleet_seconds": cold_s,
            "warm_fleet_seconds": warm_s,
            "speedup": speedup,
            "cold_shard_cache_hits": cold_stats["shard_cache_hits"],
            "warm_shard_cache_hits": warm_stats["shard_cache_hits"],
            "warm_placed_rounds": warm_stats["placed_rounds"],
            "warm_placement_hits": warm_stats["placement_hits"],
            "warm_placed_steals": warm_stats["placed_steals"],
        },
    })

    print()
    print(f"cold-fleet cluster sweep: {cold_s:.3f}s "
          f"({cold_stats['shard_cache_hits']} cache hits)")
    print(f"warm-fleet cluster sweep: {warm_s:.3f}s "
          f"({warm_stats['shard_cache_hits']} cache hits, "
          f"speedup {speedup:.1f}x)")
    print(f"cluster locality timings written to {path}")

    assert cold_outcomes == serial_outcomes
    assert warm_outcomes == serial_outcomes
    assert cold_stats["shard_cache_hits"] == 0
    # Zero recompute on the warm fleet: every unique round answered
    # from a shard's disk tier.
    assert warm_stats["shard_cache_hits"] == len(specs)
    assert warm_stats["placed_rounds"] == len(specs)
    assert speedup >= CLUSTER_LOCALITY_FLOOR


def test_telemetry_overhead_on_batched_fit_sweep():
    """PR 9 guard: armed telemetry costs < 3% on the batched-fit sweep.

    Runs the uncached grid-scale repeat sweep (the batched-fit floor's
    workload) with telemetry disabled and armed metrics-only,
    interleaved min-of-N on each leg.  Spans/counters fire on every
    round — attack, defense, fit, payoff, batch plus the cache
    counters — so this measures the full instrumented hot path, not a
    single call site.  Outcomes must match exactly before the ratio
    counts.
    """
    from repro import telemetry
    from repro.experiments.runner import make_synthetic_context

    ctx = make_synthetic_context(seed=0, n_samples=260, n_features=4)
    specs = sweep_specs(ctx, SWEEP_PERCENTILES, n_repeats=8)

    def run():
        return EvaluationEngine("serial", cache=False).evaluate_batch(
            fresh(ctx), specs)

    timings = {"off": np.inf, "on": np.inf}
    outcomes = {}
    telemetry.reset()
    try:
        for _ in range(5):
            for key in ("off", "on"):
                if key == "on":
                    telemetry.configure(metrics_only=True)
                else:
                    telemetry.configure()
                start = time.perf_counter()
                outcomes[key] = run()
                timings[key] = min(timings[key],
                                   time.perf_counter() - start)
        armed_rounds = telemetry.snapshot()["counters"].get(
            "engine.rounds_total", 0)
    finally:
        telemetry.configure()  # disarm and scrub the exported env
        telemetry.reset()

    overhead = timings["on"] / timings["off"]
    path = write_results({
        "telemetry_overhead": {
            "n_rounds": len(specs),
            "disabled_seconds": timings["off"],
            "enabled_seconds": timings["on"],
            "overhead_ratio": overhead,
        },
    })

    print()
    print(f"telemetry off: {timings['off'] * 1e3:8.1f} ms   "
          f"on: {timings['on'] * 1e3:8.1f} ms   "
          f"(overhead {(overhead - 1) * 100:+.2f}%)")
    print(f"telemetry overhead timings written to {path}")

    assert outcomes["on"] == outcomes["off"]  # armed path stays exact
    assert armed_rounds >= len(specs)  # the instruments really fired
    assert overhead <= TELEMETRY_OVERHEAD_CEILING
