"""Section-5 claim — accuracy plateaus after n = 3; computation grows with n.

"We experimented filters with n <= 5, the accuracy of the resulting
model stays roughly the same after n = 3. ... the computation time
increases significantly when computing high value of n."

This bench runs Algorithm 1 for n = 2..5 on the estimated curves and
reports the modelled defender loss and wall time per support size.
"""

import time

import numpy as np

from repro.core.algorithm1 import compute_optimal_defense
from repro.core.paper_curves import PAPER_N_POISON, paper_figure1_curves
from repro.core.payoff_estimation import estimate_payoff_curves
from repro.experiments.reporting import ascii_table


def _sweep_support_sizes(curves, n_poison, **kwargs):
    rows = []
    for n in (2, 3, 4, 5):
        start = time.perf_counter()
        try:
            result = compute_optimal_defense(curves, n, n_poison, **kwargs)
        except ValueError:
            # Measured curves can leave a feasible interval too narrow
            # for n separated support points (tiny smoke contexts where
            # the attack stops paying beyond a small percentile); the
            # sweep simply ends at the largest feasible n.
            break
        elapsed = time.perf_counter() - start
        rows.append((n, result.expected_loss, elapsed,
                     result.n_iterations, result.defense))
    return rows


def _print_rows(rows, title):
    print()
    print(ascii_table(
        ["n", "modelled loss", "wall time (s)", "iterations", "support"],
        [
            (n, f"{loss:.5f}", f"{t:.3f}", it,
             "  ".join(f"{p:.1%}" for p in defense.percentiles))
            for n, loss, t, it, defense in rows
        ],
        title=title,
    ))


def test_support_size_sweep_measured_curves(benchmark, figure1_sweep):
    sweep = figure1_sweep
    curves = estimate_payoff_curves(
        sweep.percentiles, sweep.acc_clean, sweep.acc_attacked, sweep.n_poison
    )
    rows = benchmark.pedantic(
        lambda: _sweep_support_sizes(curves, sweep.n_poison),
        rounds=1, iterations=1,
    )
    _print_rows(rows, "Algorithm 1 support-size sweep — measured curves")

    losses = [loss for _, loss, _, _, _ in rows]
    assert len(losses) >= 2
    # more radii never hurt the modelled loss
    for smaller_n, larger_n in zip(losses, losses[1:]):
        assert larger_n <= smaller_n + 1e-9
    if len(losses) == 4:
        # plateau: the n=3 -> n=5 improvement is much smaller than n=2 -> n=3
        gain_23 = losses[0] - losses[1]
        gain_35 = losses[1] - losses[3]
        assert gain_35 <= gain_23 + 1e-9


def test_support_size_sweep_paper_curves(benchmark):
    """The Section-5 claims on the paper-calibrated curves, where both
    trade-off terms are active: the loss strictly improves up to n = 3
    and plateaus after (the paper's "stays roughly the same after
    n = 3"), while the per-call computation grows with n."""
    curves = paper_figure1_curves()
    rows = benchmark.pedantic(
        lambda: _sweep_support_sizes(curves, PAPER_N_POISON,
                                     epsilon=1e-12, max_iter=2000,
                                     initial_step=0.05),
        rounds=1, iterations=1,
    )
    _print_rows(rows, "Algorithm 1 support-size sweep — paper-calibrated curves")

    losses = [loss for _, loss, _, _, _ in rows]
    gain_23 = losses[0] - losses[1]
    gain_35 = losses[1] - losses[3]
    assert gain_23 > 0          # n=3 strictly better than n=2
    assert gain_35 <= gain_23   # and the improvement plateaus after n=3
