"""Finite-support convergence to the unrestricted equilibrium.

The paper: "Computing an exact NE strategy may be time consuming and
infeasible due to the unbounded number of radius that the defender can
include in his mixed strategy.  However, computing the NE strategy
which uses a fixed number of radius is possible and is usually
sufficient in practice" — and "the defender's strategy becomes a
closer approximation to NE as the value of n increases."

This bench makes that statement quantitative: the double-oracle solver
computes the (grid-exact) unrestricted equilibrium value of the
continuous game on the paper-calibrated curves, and Algorithm 1's
restricted n-radii losses are shown to decrease toward it as n grows.
"""

import numpy as np

from repro.core.algorithm1 import compute_optimal_defense
from repro.core.game import PoisoningGame
from repro.core.oracle_solver import solve_poisoning_game_double_oracle
from repro.core.paper_curves import PAPER_N_POISON, paper_figure1_curves
from repro.experiments.reporting import ascii_table


def test_algorithm1_approaches_unrestricted_equilibrium(benchmark):
    curves = paper_figure1_curves()
    game = PoisoningGame(curves=curves, n_poison=PAPER_N_POISON)

    oracle = benchmark.pedantic(
        lambda: solve_poisoning_game_double_oracle(game, n_grid=201,
                                                   tol=1e-7, max_iter=400),
        rounds=1, iterations=1,
    )

    losses = {}
    for n in (2, 3, 4, 5):
        losses[n] = compute_optimal_defense(
            curves, n, PAPER_N_POISON, epsilon=1e-12, max_iter=2000,
            initial_step=0.05,
        ).expected_loss

    print()
    rows = [(f"Algorithm 1, n={n}", f"{losses[n]:.5f}",
             f"{losses[n] - oracle.value:+.5f}") for n in (2, 3, 4, 5)]
    rows.append(("double oracle (unrestricted)", f"{oracle.value:.5f}", "—"))
    print(ascii_table(
        ["solver", "defender loss", "gap to unrestricted NE"],
        rows,
        title="Finite-support convergence to the continuous equilibrium",
    ))
    print(f"double oracle: converged={oracle.converged} in "
          f"{oracle.iterations} iterations; defender support size "
          f"{oracle.defense.n_support}; attacker support size "
          f"{len(oracle.attacker_support)}")

    assert oracle.converged
    # the restricted losses upper-bound the unrestricted value...
    gaps = np.array([losses[n] - oracle.value for n in (2, 3, 4, 5)])
    assert np.all(gaps > -1e-6)
    # ...and shrink monotonically toward it as n grows
    assert np.all(np.diff(gaps) <= 1e-9)
    # the continuous equilibrium itself mixes over many radii
    assert oracle.defense.n_support >= 4
