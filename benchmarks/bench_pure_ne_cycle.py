"""Proposition 1 — constructive non-existence of a pure-strategy NE.

The paper proves the best-response functions never intersect (except in
the degenerate ``Ta == Td`` case).  This bench demonstrates the result
constructively on the curves estimated from the Spambase sweep:
alternating best responses *cycle* — the attacker sits on the filter,
the defender steps past it, forever — and the fixed-point search comes
back empty.
"""

from repro.core.best_response import (
    find_pure_equilibrium,
    proposition1_certificate,
    ta_percentile,
)
from repro.core.game import PoisoningGame
from repro.core.payoff_estimation import estimate_payoff_curves
from repro.experiments.reporting import ascii_table


def test_no_pure_equilibrium_on_measured_game(benchmark, figure1_sweep):
    sweep = figure1_sweep
    curves = estimate_payoff_curves(
        sweep.percentiles, sweep.acc_clean, sweep.acc_attacked, sweep.n_poison
    )
    game = PoisoningGame(curves=curves, n_poison=sweep.n_poison)

    search = benchmark.pedantic(
        lambda: find_pure_equilibrium(game, n_grid=201, max_steps=400),
        rounds=1, iterations=1,
    )
    cert = proposition1_certificate(game)

    print()
    print(ascii_table(
        ["quantity", "value"],
        [
            ("pure NE found", search.exists),
            ("best-response profiles visited", len(search.trace.profiles)),
            ("cycle detected", search.trace.cycle is not None),
            ("cycle length", search.trace.cycle_length),
            ("Ta (percentile)", f"{cert['ta']:.3f}"),
            ("Td at Ta-attack (percentile)", f"{cert['td_at_ta_attack']:.3f}"),
            ("degenerate Ta == Td", cert["degenerate_ta_equals_td"]),
        ],
        title="Proposition 1 on the measured game",
    ))

    # Paper: no pure NE in the generic (non-degenerate) case.
    assert not search.exists
    assert ta_percentile(game) > 0.0
