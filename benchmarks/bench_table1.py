"""Table 1 — mixed-strategy defence under optimal attack.

Regenerates the paper's Table 1 twice over:

1. **The paper's protocol** — estimate ``E(p)``/``Γ(p)`` from the
   Figure-1 sweep, run Algorithm 1 for n = 2 and n = 3 support radii,
   report the radii, probabilities and the empirically evaluated
   accuracy of the resulting mixed defence under the optimal
   (indifferent) attack.
2. **The measured-game cross-check** — tabulate the full empirical
   accuracy matrix over the filter/attack grid and solve it exactly
   with the zero-sum LP.  The LP value is the best *any* mixed defence
   can guarantee on the measured game; its strict advantage over the
   best pure row certifies the paper's headline (mixed > pure, no
   saddle point) without trusting the E/Γ model.

Shape criteria (paper: n=2 radii ≈ {5.8 %, 15.7 %} with ≈51/49
probabilities, accuracy 85.6 %; n=3 accuracy 86.1 %; every mixed
accuracy strictly above every pure accuracy):
* Algorithm 1 returns a non-degenerate mixture with 2-3 support radii
  inside the model-valid filter range;
* the measured game has no saddle point and the LP's mixed defence
  guarantees (weakly) more accuracy than the best pure filter.
"""

import numpy as np
import pytest

from repro.experiments.empirical_game import solve_empirical_game
from repro.experiments.payoff_sweep import run_table1_experiment
from repro.experiments.reporting import ascii_table, format_table1


def _is_paper_setting(ctx) -> bool:
    """The absolute accuracy thresholds below are calibrated to the
    paper's Spambase experiment; the synthetic smoke context (see
    conftest) exercises the same code paths but its boundary attack is
    far more damaging, so only the structural assertions apply there."""
    return ctx.dataset_name.startswith("spambase")


def test_table1_algorithm1_protocol(benchmark, spambase_ctx, figure1_sweep):
    results = benchmark.pedantic(
        lambda: run_table1_experiment(
            spambase_ctx, figure1_sweep, n_radii_values=(2, 3),
            poison_fraction=0.2, n_repeats=2,
        ),
        rounds=1, iterations=1,
    )
    print()
    print(format_table1(results))

    for res in results:
        probs = np.asarray(res.probabilities)
        assert len(probs) == res.n_radii
        assert probs.sum() == pytest.approx(1.0)
        # support lies inside the model-valid range
        assert 0.0 < res.percentiles[0] < res.percentiles[-1] <= 0.5
        # the defence keeps the model usable under the optimal attack
        if _is_paper_setting(spambase_ctx):
            assert res.accuracy > 0.7
    # Note: when the *measured* E(p) is flat across the support (our
    # surrogate's damage decays mostly in the first percentile — see
    # EXPERIMENTS.md), the equalizing distribution legitimately
    # concentrates on the outermost radius.  The strong non-degeneracy
    # assertions therefore live in bench_table1_paper_curves.py, where
    # the curves carry the paper's own E decay.


def test_table1_empirical_game_cross_check(benchmark, spambase_ctx):
    grid = np.array([0.0, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30])
    result = benchmark.pedantic(
        lambda: solve_empirical_game(
            spambase_ctx, percentiles=grid, poison_fraction=0.2, n_repeats=2,
        ),
        rounds=1, iterations=1,
    )
    print()
    rows = [
        (f"{p:.1%}", f"{q:.1%}")
        for p, q in zip(result.percentiles, result.defender_mix)
    ]
    print(ascii_table(["filter percentile", "probability"], rows,
                      title="Measured-game equilibrium defence"))
    print(f"game value (accuracy):      {result.game_value_accuracy:.4f}")
    print(f"best pure defence:          {result.best_pure_percentile:.1%} "
          f"-> {result.best_pure_accuracy:.4f}")
    print(f"mixed advantage:            {result.mixed_advantage:+.4f}")
    print(f"pure saddle point exists:   {result.has_saddle_point}")

    # Paper's headline on the measured game: the mixed defence
    # guarantees at least as much accuracy as any pure filter...
    assert result.mixed_advantage >= -1e-9
    # ...and the equilibrium defence keeps the model usable.
    if _is_paper_setting(spambase_ctx):
        assert result.game_value_accuracy > 0.75
