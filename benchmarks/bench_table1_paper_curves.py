"""Table 1 on the paper-calibrated curves — the algorithm-level check.

The surrogate dataset's measured E/Γ differ quantitatively from the
authors' (EXPERIMENTS.md), so this bench validates Algorithm 1 against
the paper's **published outputs** directly: reconstruct the E/Γ curves
the paper's Figure 1 and Table 1 imply
(:mod:`repro.core.paper_curves`), run Algorithm 1, and compare its
support radii / probabilities / accuracies with the published Table 1.

Published Table 1:
    n=2: radii {5.8 %, 15.7 %}, probabilities {51.2 %, 48.8 %}, acc 85.6 %
    n=3: radii {5.8 %, 9.4 %, 16.3 %}, probabilities ≈ uniform, acc 86.1 %
and "the accuracy of the ML model using mixed defense strategy is
strictly higher than the accuracy of all pure defense strategies".
"""

import numpy as np

from repro.core.algorithm1 import compute_optimal_defense
from repro.core.paper_curves import (
    PAPER_N_POISON,
    PAPER_TABLE1_N2,
    PAPER_TABLE1_N3,
    paper_figure1_curves,
)
from repro.experiments.reporting import ascii_table

CLEAN_BASELINE = 0.885  # the paper's unfiltered clean accuracy (Figure 1)


def test_table1_on_paper_calibrated_curves(benchmark):
    curves = paper_figure1_curves()

    def run():
        return {
            n: compute_optimal_defense(curves, n, PAPER_N_POISON,
                                       epsilon=1e-12, max_iter=2000,
                                       initial_step=0.05)
            for n in (2, 3)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    ps = curves.grid(501)
    pure_losses = PAPER_N_POISON * curves.E_vec(ps) + curves.gamma_vec(ps)
    best_pure_loss = float(pure_losses.min())
    best_pure_acc = CLEAN_BASELINE - best_pure_loss

    print()
    rows = []
    for n, published in ((2, PAPER_TABLE1_N2), (3, PAPER_TABLE1_N3)):
        res = results[n]
        acc = CLEAN_BASELINE - res.expected_loss
        rows.append((
            f"n={n} (ours)",
            "  ".join(f"{p:.1%}" for p in res.defense.percentiles),
            "  ".join(f"{q:.1%}" for q in res.defense.probabilities),
            f"{acc:.1%}",
        ))
        rows.append((
            f"n={n} (paper)",
            "  ".join(f"{p:.1%}" for p in published["percentiles"]),
            "  ".join(f"{q:.1%}" for q in published["probabilities"]),
            f"{published['accuracy']:.1%}",
        ))
    rows.append(("best pure (ours)", "-", "-", f"{best_pure_acc:.1%}"))
    print(ascii_table(["strategy", "radii", "probabilities", "accuracy"], rows,
                      title="Table 1 — Algorithm 1 on paper-calibrated curves"))

    # -- shape assertions against the published table ---------------------
    res2, res3 = results[2], results[3]
    # support radii land in the paper's band (a few percent of the axis)
    for ours, ref in zip(res2.defense.percentiles,
                         PAPER_TABLE1_N2["percentiles"]):
        assert abs(ours - ref) < 0.05
    for ours, ref in zip(res3.defense.percentiles,
                         PAPER_TABLE1_N3["percentiles"]):
        assert abs(ours - ref) < 0.05
    # n=2 probabilities near 50/50 (paper: 51.2/48.8)
    assert abs(res2.defense.probabilities[0] - 0.512) < 0.08
    # n=3 probabilities near uniform (paper: 1/3 each)
    assert np.all(np.abs(res3.defense.probabilities - 1 / 3) < 0.09)
    # mixed strictly beats every pure strategy; n=3 at least as good as n=2
    assert res2.expected_loss < best_pure_loss
    assert res3.expected_loss <= res2.expected_loss + 1e-9
    # accuracies in the paper's ballpark (within ~2 accuracy points)
    assert abs((CLEAN_BASELINE - res2.expected_loss)
               - PAPER_TABLE1_N2["accuracy"]) < 0.025
    assert abs((CLEAN_BASELINE - res3.expected_loss)
               - PAPER_TABLE1_N3["accuracy"]) < 0.025
