"""Shared benchmark fixtures.

Each benchmark regenerates one of the paper's tables or figures and
prints the rows/series the paper reports (captured with ``-s``).  The
timed portion is the interesting computation (sweep, Algorithm 1, LP);
dataset construction is shared via session fixtures.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import numpy as np
import pytest

from repro.experiments.payoff_sweep import run_pure_strategy_sweep
from repro.experiments.runner import make_spambase_context

# The percentile grid every experiment shares (the paper's Figure-1 axis).
SWEEP_PERCENTILES = np.array([0.0, 0.01, 0.02, 0.03, 0.05, 0.075, 0.10,
                              0.15, 0.20, 0.25, 0.30, 0.40, 0.50])


@pytest.fixture(scope="session")
def spambase_ctx():
    """The paper's setting: full-size Spambase, 70/30 split, SVM victim."""
    return make_spambase_context(seed=0)


@pytest.fixture(scope="session")
def figure1_sweep(spambase_ctx):
    """The Figure-1 measurement, shared by the table/ablation benches."""
    return run_pure_strategy_sweep(
        spambase_ctx, percentiles=SWEEP_PERCENTILES,
        poison_fraction=0.2, n_repeats=2,
    )
