"""Shared benchmark fixtures.

Each benchmark regenerates one of the paper's tables or figures and
prints the rows/series the paper reports (captured with ``-s``).  The
timed portion is the interesting computation (sweep, Algorithm 1, LP);
dataset construction is shared via session fixtures.

Run with::

    pytest benchmarks/ --benchmark-only -s

Set ``REPRO_BENCH_CONTEXT=synthetic`` to swap the Spambase context for
the small Gaussian-blobs setting — the CI smoke run uses this to
exercise every benchmark's code path in seconds instead of minutes.
"""

import os

import numpy as np
import pytest

from repro.engine import EvaluationEngine, set_default_engine
from repro.experiments.payoff_sweep import run_pure_strategy_sweep
from repro.experiments.runner import make_spambase_context, make_synthetic_context


@pytest.fixture(scope="session", autouse=True)
def _honest_timings():
    """Benchmarks must never time cache hits by accident.

    The process-wide default engine caches results, so a session
    fixture's sweep would silently pre-warm every benchmark that
    re-runs the same rounds.  Swap in a cache-free default for the
    whole benchmark session; benches that *study* caching (e.g.
    bench_engine.py) construct their own engines explicitly.
    """
    set_default_engine(EvaluationEngine("serial", cache=False))
    yield
    set_default_engine(None)

# The percentile grid every experiment shares (the paper's Figure-1 axis).
SWEEP_PERCENTILES = np.array([0.0, 0.01, 0.02, 0.03, 0.05, 0.075, 0.10,
                              0.15, 0.20, 0.25, 0.30, 0.40, 0.50])


@pytest.fixture(scope="session")
def spambase_ctx():
    """The paper's setting: full-size Spambase, 70/30 split, SVM victim.

    With ``REPRO_BENCH_CONTEXT=synthetic`` a small synthetic context is
    substituted (same interface, same drivers) for smoke runs.
    """
    if os.environ.get("REPRO_BENCH_CONTEXT", "").strip().lower() == "synthetic":
        return make_synthetic_context(seed=0, n_samples=600, n_features=8)
    return make_spambase_context(seed=0)


@pytest.fixture(scope="session")
def figure1_sweep(spambase_ctx):
    """The Figure-1 measurement, shared by the table/ablation benches."""
    return run_pure_strategy_sweep(
        spambase_ctx, percentiles=SWEEP_PERCENTILES,
        poison_fraction=0.2, n_repeats=2,
    )
