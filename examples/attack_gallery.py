"""Attack gallery: how much damage does each poisoning attack do?

Compares every attack in :mod:`repro.attacks` against the undefended
and the filter-defended SVM on the Spambase surrogate, reporting
accuracy and the filter's detection quality.  This is the motivating
scenario of the paper's introduction: optimal placement beats naive
contamination, and the filter's strength decides which attacks survive.

Run:  python examples/attack_gallery.py
"""

from repro.attacks import (
    BilevelGradientAttack,
    FurthestPointAttack,
    LabelFlipAttack,
    OptimalBoundaryAttack,
    RandomNoiseAttack,
)
from repro.experiments import evaluate_configuration, make_spambase_context
from repro.experiments.reporting import ascii_table


def main() -> None:
    ctx = make_spambase_context(seed=0, n_samples=2600)
    clean = evaluate_configuration(ctx).accuracy
    print(f"clean accuracy (no attack, no filter): {clean:.4f}\n")

    attacks = [
        ("optimal boundary @ 0%", ctx.boundary_attack(0.0)),
        ("optimal boundary @ 10%", ctx.boundary_attack(0.10)),
        ("bilevel gradient @ 10%", BilevelGradientAttack(
            0.10, n_outer=6, surrogate=ctx.attack_surrogate())),
        ("label flip (random)", LabelFlipAttack("random")),
        ("label flip (far)", LabelFlipAttack("far_from_own_class")),
        ("random noise @ 0%", RandomNoiseAttack(0.0)),
        ("furthest point", FurthestPointAttack(0.1)),
    ]

    rows = []
    for name, attack in attacks:
        undefended = evaluate_configuration(
            ctx, attack=attack, poison_fraction=0.2, seed=1
        )
        defended = evaluate_configuration(
            ctx, filter_percentile=0.10, attack=attack,
            poison_fraction=0.2, seed=1,
        )
        report = defended.report
        rows.append((
            name,
            f"{undefended.accuracy:.4f}",
            f"{defended.accuracy:.4f}",
            f"{report.poison_recall:.0%}" if report else "-",
            f"{report.genuine_loss:.0%}" if report else "-",
        ))

    print(ascii_table(
        ["attack", "acc (no filter)", "acc (10% filter)",
         "poison caught", "genuine lost"],
        rows,
        title="Attack gallery — 20% contamination, Spambase surrogate",
    ))
    print("\nReading: the optimal boundary attack at 0% devastates the")
    print("undefended model but is fully caught by the 10% filter; placed")
    print("at 10% it slips just inside the same filter — the chase that")
    print("motivates the mixed-strategy defence.")


if __name__ == "__main__":
    main()
