"""Using the library on your own dataset and learner.

The game analysis is not Spambase-specific: any binary dataset plus any
estimator with the ``fit``/``decision_function`` API plugs into the same
pipeline.  This example builds a heavy-tailed synthetic task, swaps the
victim for logistic regression, and runs the Figure-1 study against the
custom context — ``run_study(spec, context=...)`` is the escape hatch
for settings a declarative ContextSpec cannot name.

Run:  python examples/custom_dataset_game.py
"""

import numpy as np

from repro import run_study, studies
from repro.core.algorithm1 import compute_optimal_defense
from repro.core.equilibrium import cross_check_with_lp
from repro.core.game import PoisoningGame
from repro.core.payoff_estimation import estimate_payoff_curves
from repro.data.synthetic import make_imbalanced_mixture
from repro.experiments.runner import _build_context
from repro.ml.logistic import LogisticRegression


def main() -> None:
    # 1. Your data: any (X, y) with binary labels.
    X, y = make_imbalanced_mixture(
        n_samples=1500, positive_fraction=0.35, n_features=12,
        separation=3.0, heavy_tail=True, seed=7,
    )

    # 2. Your learner: anything implementing the estimator API.
    def victim_factory(seed: int) -> LogisticRegression:
        return LogisticRegression(reg=1e-3, lr=0.3, max_iter=200)

    ctx = _build_context(
        X, y, seed=7, test_size=0.3, model_factory=victim_factory,
        centroid_method="median", dataset_name="custom-mixture",
        is_real=False, scaler="standard",
    )
    print(f"dataset: {ctx.dataset_name}, train={ctx.n_train}")

    # 3. The experiment is still declarative — only the context is
    #    custom.  (context=None in the spec: the study fingerprints
    #    against the live context's content hash.)
    spec = studies.figure1(
        context=None,
        percentiles=(0.0, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4),
        poison_fraction=0.15,
    )
    result = run_study(spec, context=ctx)
    sweep = result.payload_object()
    for p, c, a in zip(sweep.percentiles, sweep.acc_clean, sweep.acc_attacked):
        print(f"  filter {p:5.0%}: clean {c:.3f}  attacked {a:.3f}")

    # 4. Estimate curves and compute the mixed defence.
    curves = estimate_payoff_curves(
        sweep.percentiles, sweep.acc_clean, sweep.acc_attacked, sweep.n_poison
    )
    opt = compute_optimal_defense(curves, n_radii=2, n_poison=sweep.n_poison)
    print("\nmixed defence:")
    for p, q in zip(opt.defense.percentiles, opt.defense.probabilities):
        print(f"  filter {p:6.2%} with probability {q:.1%}")

    # 5. Cross-check against the exact discretised game value.
    game = PoisoningGame(curves=curves, n_poison=sweep.n_poison)
    check = cross_check_with_lp(game, opt.expected_loss, n_grid=61)
    print(f"\nAlgorithm 1 loss: {check.algorithm1_loss:.5f}")
    print(f"exact LP value:   {check.lp_value:.5f}")
    print(f"gap:              {check.value_gap:+.5f}")
    print(f"LP defence support (percentiles): "
          f"{np.round(check.lp_defense_support, 3)}")


if __name__ == "__main__":
    main()
