"""Comparing sanitisation defences under the optimal attack.

Benchmarks every defence in :mod:`repro.defenses` — the paper's radius
filter plus the related-work baselines (k-NN sanitisation, RONI, PCA
detection, loss trimming) — against the optimal boundary attack at two
placement depths.  Illustrates the paper's Section-1 observation: a
distance filter's fixed strength is either too optimistic (deep attack
slips inside) or too pessimistic (collateral damage), and different
defence families fail differently.

Run:  python examples/defense_comparison.py
"""

import numpy as np

from repro.attacks.base import poison_dataset
from repro.defenses import (
    KNNSanitizer,
    LossFilter,
    PCADetector,
    PercentileFilter,
    RONIDefense,
)
from repro.defenses.base import defense_report
from repro.experiments import make_spambase_context
from repro.experiments.reporting import ascii_table
from repro.utils.rng import derive_seed


def main() -> None:
    ctx = make_spambase_context(seed=0, n_samples=2600)

    defenses = [
        ("radius filter 5%", PercentileFilter(0.05)),
        ("radius filter 15%", PercentileFilter(0.15)),
        ("kNN sanitizer (k=10)", KNNSanitizer(k=10)),
        ("PCA detector (q=5)", PCADetector(n_components=5, remove_fraction=0.15)),
        ("loss trimming 15%", LossFilter(0.15)),
        ("RONI", RONIDefense(seed=0, batch_size=50)),
    ]

    for attack_p in (0.0, 0.10):
        attack = ctx.boundary_attack(attack_p)
        X_mix, y_mix, is_poison = poison_dataset(
            ctx.X_train, ctx.y_train, attack, fraction=0.2,
            seed=derive_seed(0, "cmp", attack_p),
        )
        rows = []
        for name, defense in defenses:
            keep = defense.mask(X_mix, y_mix)
            report = defense_report(keep, is_poison)
            model = ctx.model_factory(derive_seed(0, "m", name, attack_p))
            model.fit(X_mix[keep], y_mix[keep])
            acc = model.score(ctx.X_test, ctx.y_test)
            rows.append((
                name, f"{acc:.4f}",
                f"{report.poison_recall:.0%}",
                f"{report.genuine_loss:.0%}",
                f"{report.precision:.0%}",
            ))
        # undefended reference
        model = ctx.model_factory(derive_seed(0, "m", "none", attack_p))
        model.fit(X_mix, y_mix)
        rows.insert(0, ("(no defence)", f"{model.score(ctx.X_test, ctx.y_test):.4f}",
                        "0%", "0%", "-"))
        print(ascii_table(
            ["defence", "accuracy", "poison caught", "genuine lost", "precision"],
            rows,
            title=f"Optimal attack placed at percentile {attack_p:.0%} "
                  f"(20% contamination)",
        ))
        print()


if __name__ == "__main__":
    main()
