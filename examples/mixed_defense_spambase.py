"""Mixed vs pure defence on Spambase — the paper's Table-1 story.

Runs the complete Table-1 protocol (sweep -> curves -> Algorithm 1 ->
empirical evaluation) and the measured-game LP cross-check side by
side, then verifies the equilibrium properties (attacker indifference,
no pure saddle point).

NOTE — this example deliberately uses the *legacy driver functions*
(``run_pure_strategy_sweep``, ``run_table1_experiment``,
``solve_empirical_game``).  They are deprecation shims now: each call
emits a ``DeprecationWarning`` and delegates to the study layer, with
bit-identical results.  New code should build a
:class:`repro.StudySpec` instead — see ``examples/quickstart.py`` —
e.g. ``run_study(studies.table1(...))`` replaces the sweep+table pair
here in one call.  This file is kept as-is to show that pre-study code
keeps working unchanged.

Run:  python examples/mixed_defense_spambase.py
"""

import numpy as np

from repro.core.best_response import find_pure_equilibrium
from repro.core.equilibrium import attacker_best_response_value
from repro.core.game import PoisoningGame
from repro.core.payoff_estimation import estimate_payoff_curves
from repro.experiments import (
    make_spambase_context,
    run_pure_strategy_sweep,
    run_table1_experiment,
    solve_empirical_game,
)
from repro.experiments.reporting import ascii_table, format_table1


def main() -> None:
    ctx = make_spambase_context(seed=0)
    print(f"dataset: {ctx.dataset_name}, train={ctx.n_train}")

    print("\n[1/4] Figure-1 sweep (pure strategies)...")
    sweep = run_pure_strategy_sweep(ctx, poison_fraction=0.2)
    best_p, best_acc = sweep.best_pure
    print(f"      best pure filter: {best_p:.0%} -> accuracy {best_acc:.4f}")

    print("\n[2/4] Proposition 1 on the estimated game...")
    curves = estimate_payoff_curves(
        sweep.percentiles, sweep.acc_clean, sweep.acc_attacked, sweep.n_poison
    )
    game = PoisoningGame(curves=curves, n_poison=sweep.n_poison)
    search = find_pure_equilibrium(game, n_grid=101)
    print(f"      pure NE exists: {search.exists} "
          f"(best-response cycle length: {search.trace.cycle_length})")

    print("\n[3/4] Algorithm 1 (paper's protocol)...")
    results = run_table1_experiment(ctx, sweep, n_radii_values=(2, 3),
                                    poison_fraction=0.2)
    print(format_table1(results))
    defense = None
    for res in results:
        if res.n_radii == 3:
            from repro.core.mixed_strategy import MixedDefense
            defense = MixedDefense(percentiles=np.array(res.percentiles),
                                   probabilities=np.array(res.probabilities))
    if defense is not None:
        br_value, br_p = attacker_best_response_value(game, defense)
        print(f"attacker best response vs n=3 defence: placement {br_p:.2%}, "
              f"modelled damage {br_value:.4f}")

    print("\n[4/4] Measured-game LP cross-check...")
    empirical = solve_empirical_game(
        ctx, percentiles=np.array([0.0, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30]),
        poison_fraction=0.2,
    )
    rows = [(f"{p:.0%}", f"{q:.1%}")
            for p, q in zip(empirical.percentiles, empirical.defender_mix)
            if q > 0.001]
    print(ascii_table(["filter", "probability"], rows,
                      title="Measured-game equilibrium defence"))
    print(f"game value:        {empirical.game_value_accuracy:.4f}")
    print(f"best pure:         {empirical.best_pure_accuracy:.4f} "
          f"(filter {empirical.best_pure_percentile:.0%})")
    print(f"mixed advantage:   {empirical.mixed_advantage:+.4f}")
    print(f"saddle point:      {empirical.has_saddle_point}")
    print("\nConclusion: no pure equilibrium exists; randomising the filter")
    print("strength weakly dominates every fixed filter on the measured game.")


if __name__ == "__main__":
    main()
