"""Quickstart: the paper's full pipeline through the study API.

Everything is one declarative, serialisable :class:`repro.StudySpec`
submitted to :func:`repro.run_study`: build the Figure-1 study, dry-run
it (``describe_study``), execute it, archive the result, estimate the
payoff curves from its payload and run Algorithm 1.

Run:  python examples/quickstart.py
"""

from repro import (
    compute_optimal_defense,
    describe_study,
    estimate_payoff_curves,
    run_study,
    studies,
)
from repro.study import format_study_description, study_to_json


def main() -> None:
    # 1. The experimental setting and the experiment, as data.
    #    (n_samples subsampled for a fast demo; drop it for full scale.)
    spec = studies.figure1(
        context={"name": "spambase", "seed": 0, "n_samples": 2600},
        poison_fraction=0.2,
    )
    print("the study document the engine will run:")
    print(study_to_json(spec)[:400] + " ...\n")

    # 2. Dry run: the expanded grid and exact round counts, no execution.
    print(format_study_description(describe_study(spec)))
    print()

    # 3. Execute.  One call, any backend; the result is a uniform,
    #    provenance-stamped artifact addressable by spec.fingerprint().
    result = run_study(spec)
    print(result.render())

    # 4. The payload is the familiar PureSweepResult: estimate the
    #    game's payoff curves E(p) and Γ(p) exactly as the paper does.
    sweep = result.payload_object()
    curves = estimate_payoff_curves(
        sweep.percentiles, sweep.acc_clean, sweep.acc_attacked, sweep.n_poison
    )
    print(f"\nmodel-valid filter range: [0, {curves.p_max:.1%}]")

    # 5. Algorithm 1 — approximate the defender's mixed-strategy NE.
    opt = compute_optimal_defense(curves, n_radii=3, n_poison=sweep.n_poison)
    print("\nmixed defence (Algorithm 1):")
    for p, q in zip(opt.defense.percentiles, opt.defense.probabilities):
        print(f"  filter {p:6.2%} of data with probability {q:.1%}")

    # 6. Archive: the JSON re-renders this exact report anywhere
    #    (`python -m repro report figure1_result.json`) and warms a
    #    fresh engine cache so a re-run computes zero rounds.
    result.to_json("figure1_result.json")
    print("\nresult archived to figure1_result.json "
          f"(study fingerprint {result.study_fingerprint[:16]}…)")


if __name__ == "__main__":
    main()
