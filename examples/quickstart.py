"""Quickstart: the paper's full pipeline in ~40 lines.

Loads the Spambase setting (surrogate if the real file is absent),
measures the pure-strategy trade-off (Figure 1), estimates the payoff
curves, runs Algorithm 1, and prints the resulting mixed defence.

Run:  python examples/quickstart.py
"""

from repro import (
    compute_optimal_defense,
    estimate_payoff_curves,
    make_spambase_context,
    run_pure_strategy_sweep,
)
from repro.experiments import format_pure_sweep


def main() -> None:
    # 1. The experimental setting: Spambase, 70/30 split, hinge-loss SVM.
    #    (n_samples subsampled for a fast demo; drop it for full scale.)
    ctx = make_spambase_context(seed=0, n_samples=2600)
    print(f"dataset: {ctx.dataset_name} (real file: {ctx.is_real_data})")
    print(f"train/test: {ctx.n_train}/{len(ctx.y_test)}")

    # 2. Figure 1 — sweep pure filter strengths, with and without the
    #    optimal boundary attack at 20 % contamination.
    sweep = run_pure_strategy_sweep(ctx, poison_fraction=0.2)
    print()
    print(format_pure_sweep(sweep))

    # 3. Estimate the game's payoff curves E(p) and Γ(p) from the sweep
    #    (exactly how the paper feeds Algorithm 1).
    curves = estimate_payoff_curves(
        sweep.percentiles, sweep.acc_clean, sweep.acc_attacked, sweep.n_poison
    )
    print(f"\nmodel-valid filter range: [0, {curves.p_max:.1%}]")

    # 4. Algorithm 1 — approximate the defender's mixed-strategy NE.
    result = compute_optimal_defense(curves, n_radii=3, n_poison=sweep.n_poison)
    defense = result.defense
    print("\nmixed defence (Algorithm 1):")
    for p, q in zip(defense.percentiles, defense.probabilities):
        print(f"  filter {p:6.2%} of data with probability {q:.1%}")
    print(f"modelled defender loss: {result.expected_loss:.5f} "
          f"({result.n_iterations} iterations, converged={result.converged})")

    # 5. The defence is executable: draw a filter strength per training run.
    filt = defense.as_filter(seed=0)
    X_clean, y_clean = filt.sanitize(ctx.X_train, ctx.y_train)
    print(f"\nexample draw: filtered at {filt.last_draw_:.2%} -> "
          f"kept {len(X_clean)}/{ctx.n_train} training points")


if __name__ == "__main__":
    main()
