"""repro — reproduction of "Mixed Strategy Game Model Against Data
Poisoning Attacks" (Ou & Samavi, DSN 2019; arXiv:1906.02872).

Top-level convenience re-exports cover the main workflow — declare the
experiment as a study, run it, read its payload:

>>> from repro import (run_study, studies, estimate_payoff_curves,
...                    compute_optimal_defense)
>>> spec = studies.figure1(context={"name": "spambase", "seed": 0,
...                                 "n_samples": 1500})
>>> result = run_study(spec)                        # doctest: +SKIP
>>> sweep = result.payload_object()                 # doctest: +SKIP
>>> curves = estimate_payoff_curves(sweep.percentiles, sweep.acc_clean,
...                                 sweep.acc_attacked, sweep.n_poison)
...                                                 # doctest: +SKIP
>>> compute_optimal_defense(curves, n_radii=3,
...                         n_poison=sweep.n_poison)  # doctest: +SKIP

Subpackages
-----------
``repro.core``
    The paper's contribution: game model, best responses, mixed NE,
    Algorithm 1, payoff-curve estimation, equilibrium checks.
``repro.gametheory``
    Generic zero-sum solvers (LP, fictitious play, regret matching,
    support enumeration) used for independent cross-checks.
``repro.ml``
    From-scratch ML substrate (hinge-loss SVM et al.).
``repro.data``
    Spambase (real or surrogate), synthetic tasks, data geometry.
``repro.attacks`` / ``repro.defenses``
    Poisoning attacks and sanitisation defences.
``repro.engine``
    Batched evaluation engine: pluggable serial/process/cluster
    backends, a streaming batch API and a content-keyed result cache
    shared by all experiments.
``repro.cluster``
    The sharded evaluation service behind the ``cluster`` backend:
    shard servers, socket protocol, failover scheduler.
``repro.experiments``
    Seeded harnesses behind every figure and table.
``repro.study``
    The declarative study API: every experiment as one frozen,
    serialisable :class:`~repro.study.StudySpec` submitted to
    :func:`~repro.study.run_study` — the supported public surface
    (the per-experiment driver functions are deprecation shims).
"""

from repro.core import (
    PayoffCurves,
    PoisoningGame,
    MixedDefense,
    compute_optimal_defense,
    estimate_payoff_curves,
    find_pure_equilibrium,
)
from repro.engine import (
    AttackSpec,
    DefenseSpec,
    VictimSpec,
    EvaluationEngine,
    RoundSpec,
    set_default_engine,
)
from repro.experiments import (
    make_spambase_context,
    make_synthetic_context,
    run_pure_strategy_sweep,
    run_table1_experiment,
    evaluate_configuration,
    solve_cross_family_game,
)
from repro.study import (
    ContextSpec,
    ScenarioGrid,
    StudySpec,
    StudyResult,
    describe_study,
    run_study,
    studies,
    study_from_json,
    study_result_from_json,
)

__version__ = "1.0.0"

__all__ = [
    "PayoffCurves",
    "PoisoningGame",
    "MixedDefense",
    "compute_optimal_defense",
    "estimate_payoff_curves",
    "find_pure_equilibrium",
    "AttackSpec",
    "DefenseSpec",
    "VictimSpec",
    "EvaluationEngine",
    "RoundSpec",
    "set_default_engine",
    "make_spambase_context",
    "make_synthetic_context",
    "run_pure_strategy_sweep",
    "run_table1_experiment",
    "evaluate_configuration",
    "solve_cross_family_game",
    "ContextSpec",
    "ScenarioGrid",
    "StudySpec",
    "StudyResult",
    "describe_study",
    "run_study",
    "studies",
    "study_from_json",
    "study_result_from_json",
    "__version__",
]
