"""``python -m repro`` — the command-line entry point.

An alias of :mod:`repro.experiments.cli`; see that module (or
``python -m repro --help``) for the command reference.
"""

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
