"""``python -m repro`` — the command-line entry point.

An alias of :mod:`repro.experiments.cli`; see that module (or
``python -m repro --help``) for the command reference.
"""

import signal
import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    # Die quietly on a closed pipe (`repro archive ls | head`) instead
    # of tracebacking mid-listing.
    if hasattr(signal, "SIGPIPE"):
        signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    sys.exit(main())
