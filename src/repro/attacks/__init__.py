"""Data-poisoning attacks.

The paper's threat model: the attacker controls a fraction of the
training set and places poisoning points *optimally within a chosen
radius* of the genuine-data centroid.  :class:`OptimalBoundaryAttack`
implements that optimal placement; the other attacks are the standard
baselines (label flipping, random noise, furthest-point duplication)
plus a gradient-refinement attack approximating the bilevel
formulation of Muñoz-González et al. (2017).

All attacks share the :class:`PoisoningAttack` interface: they *add*
points — ``generate`` returns only the malicious set, and
:func:`poison_dataset` splices it into a training set.
"""

from repro.attacks.base import PoisoningAttack, poison_dataset, attack_budget
from repro.attacks.optimal_boundary import OptimalBoundaryAttack
from repro.attacks.label_flip import LabelFlipAttack
from repro.attacks.random_noise import RandomNoiseAttack
from repro.attacks.furthest_point import FurthestPointAttack
from repro.attacks.mixed_attack import AttackerMixedStrategy, RadiusAllocation
from repro.attacks.bilevel import BilevelGradientAttack
from repro.attacks.targeted import TargetedClassAttack

__all__ = [
    "PoisoningAttack",
    "poison_dataset",
    "attack_budget",
    "OptimalBoundaryAttack",
    "LabelFlipAttack",
    "RandomNoiseAttack",
    "FurthestPointAttack",
    "AttackerMixedStrategy",
    "RadiusAllocation",
    "BilevelGradientAttack",
    "TargetedClassAttack",
]
