"""Attack interface and shared helpers."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.ml.base import signed_labels
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_positive_int, check_X_y

__all__ = ["PoisoningAttack", "poison_dataset", "attack_budget"]


class PoisoningAttack(ABC):
    """Abstract poisoning attack.

    Subclasses implement :meth:`generate`, producing ``n_poison``
    malicious points given (read-only) knowledge of the clean training
    set.  The threat model grants the attacker full knowledge of the
    training distribution (the paper cites transferability results to
    justify this even when the literal training set is private).
    """

    @abstractmethod
    def generate(
        self,
        X: np.ndarray,
        y: np.ndarray,
        n_poison: int,
        *,
        seed: int | np.random.Generator | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(X_poison, y_poison)`` with exactly ``n_poison`` rows."""

    def name(self) -> str:
        """Human-readable attack name for reports."""
        return type(self).__name__


def attack_budget(n_train: int, fraction: float) -> int:
    """Number of poisoning points for a contamination ``fraction``.

    The paper assumes "the attacker can manipulate 20 % of the training
    data", meaning poison makes up ``fraction`` of the *final* training
    set: ``n_poison = fraction * (n_train + n_poison)``, i.e.
    ``n_poison = n_train * fraction / (1 - fraction)``.
    """
    check_positive_int(n_train, name="n_train")
    fraction = check_fraction(fraction, name="fraction", inclusive_high=False)
    return int(round(n_train * fraction / (1.0 - fraction)))


def poison_dataset(
    X: np.ndarray,
    y: np.ndarray,
    attack: PoisoningAttack,
    *,
    fraction: float = 0.2,
    seed: int | np.random.Generator | None = None,
    shuffle: bool = True,
    return_sources: bool = False,
) -> tuple[np.ndarray, ...]:
    """Inject an attack into ``(X, y)``.

    Returns ``(X_mix, y_mix, is_poison)`` where ``is_poison`` is a
    boolean mask over rows of the mixed set — ground truth that the
    defender never sees but evaluation code uses for diagnostics.

    With ``return_sources=True`` a fourth array is appended:
    ``sources[i]`` is the index of row ``i`` in the pre-shuffle stacked
    ``[X; X_poison]`` array, so ``sources[i] < len(X)`` identifies a
    genuine row *and* names which clean row it is.  The round kernel
    uses this to reuse per-row quantities precomputed on the clean
    data (see :mod:`repro.experiments.kernel`).
    """
    X, y = check_X_y(X, y)
    # Work in signed labels throughout: attacks emit {-1, +1} while
    # datasets commonly use {0, 1}; mixing the two would corrupt y.
    y = signed_labels(y)
    rng = as_generator(seed)
    n_poison = attack_budget(X.shape[0], fraction)
    if n_poison == 0:
        is_poison = np.zeros(X.shape[0], dtype=bool)
        if return_sources:
            return X, y, is_poison, np.arange(X.shape[0])
        return X, y, is_poison
    X_p, y_p = attack.generate(X, y, n_poison, seed=rng)
    X_p = np.asarray(X_p, dtype=float)
    y_p = signed_labels(np.asarray(y_p, dtype=int))
    if X_p.shape != (n_poison, X.shape[1]) or y_p.shape != (n_poison,):
        raise ValueError(
            f"{attack.name()} returned shapes {X_p.shape}/{y_p.shape}, "
            f"expected ({n_poison}, {X.shape[1]})/({n_poison},)"
        )
    X_mix = np.vstack([X, X_p])
    y_mix = np.concatenate([y, y_p])
    is_poison = np.concatenate(
        [np.zeros(X.shape[0], dtype=bool), np.ones(n_poison, dtype=bool)]
    )
    sources = np.arange(X_mix.shape[0])
    if shuffle:
        perm = rng.permutation(X_mix.shape[0])
        X_mix, y_mix, is_poison, sources = \
            X_mix[perm], y_mix[perm], is_poison[perm], perm
    if return_sources:
        return X_mix, y_mix, is_poison, sources
    return X_mix, y_mix, is_poison
