"""Gradient-refinement poisoning approximating the bilevel attack.

Muñoz-González et al. (2017) pose poisoning as the bilevel problem

    max_{Dc}  O_A(D_val, w*)   s.t.   w* = argmin_w L(D_T ∪ Dc, w)

This module implements a practical first-order approximation for the
hinge-loss linear learner: starting from a boundary-placement
initialisation, poisoning points are moved by projected gradient
*ascent* on the attacker objective, using the fact that for a linear
model trained to (approximate) stationarity the gradient of the
validation loss w.r.t. a poisoning point factors through the implicit
dependence of ``w`` on that point.  For hinge loss the per-point
contribution to the subgradient of the training objective is
``-y_c x_c`` when the point is margin-violating, so pushing ``x_c``
along ``-y_c * g_w`` (with ``g_w`` the gradient of the validation loss
w.r.t. the weights) increases the attacker objective — the standard
back-gradient shortcut for linear models.

The iterate is projected back onto the radius ball after every step,
preserving the paper's radius-budget semantics.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import PoisoningAttack
from repro.attacks.optimal_boundary import OptimalBoundaryAttack
from repro.data.geometry import compute_centroid, distances_to_centroid, radius_for_percentile
from repro.ml.base import clone_estimator, signed_labels
from repro.ml.ridge import RidgeClassifier
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_positive_int, check_X_y

__all__ = ["BilevelGradientAttack"]


class BilevelGradientAttack(PoisoningAttack):
    """Projected gradient-ascent poisoning within a radius budget.

    Parameters
    ----------
    target_percentile:
        Radius budget on the percentile axis (projection ball).
    n_outer:
        Outer iterations: retrain, compute attack gradient, step, project.
    step_size:
        Gradient-ascent step, in units of the placement radius.
    surrogate:
        Learner retrained at every outer iteration (defaults to the
        fast closed-form :class:`RidgeClassifier`).
    val_fraction:
        Fraction of the clean data held out as the attacker's D_val.
    centroid_method:
        Centroid estimator for the projection ball.
    """

    def __init__(
        self,
        target_percentile: float = 0.0,
        *,
        n_outer: int = 10,
        step_size: float = 0.1,
        surrogate=None,
        val_fraction: float = 0.25,
        centroid_method: str = "median",
    ):
        self.target_percentile = check_fraction(target_percentile,
                                                name="target_percentile")
        self.n_outer = check_positive_int(n_outer, name="n_outer")
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.step_size = float(step_size)
        self.surrogate = surrogate if surrogate is not None else RidgeClassifier(reg=1e-2)
        self.val_fraction = check_fraction(val_fraction, name="val_fraction",
                                           inclusive_low=False, inclusive_high=False)
        self.centroid_method = centroid_method

    def generate(self, X, y, n_poison, *, seed=None):
        X, y = check_X_y(X, y)
        # Signed labels throughout: the retraining step mixes genuine
        # and poison labels, which must share one convention.
        y = signed_labels(y)
        rng = as_generator(seed)
        centroid = compute_centroid(X, method=self.centroid_method)
        distances = distances_to_centroid(X, centroid)
        radius = (1.0 - 1e-3) * radius_for_percentile(distances, self.target_percentile)

        # Attacker's private train/val split of the clean data.
        n = X.shape[0]
        n_val = max(1, int(round(self.val_fraction * n)))
        perm = rng.permutation(n)
        val_idx, train_idx = perm[:n_val], perm[n_val:]
        X_tr, y_tr = X[train_idx], y[train_idx]
        X_val = X[val_idx]
        y_val_signed = signed_labels(y[val_idx]).astype(float)

        # Warm start from the paper's boundary placement.
        init = OptimalBoundaryAttack(
            target_percentile=self.target_percentile,
            surrogate=clone_estimator(self.surrogate),
            centroid_method=self.centroid_method,
        )
        X_c, y_c = init.generate(X, y, n_poison, seed=rng)
        y_c_signed = signed_labels(y_c).astype(float)

        for _ in range(self.n_outer):
            model = clone_estimator(self.surrogate).fit(
                np.vstack([X_tr, X_c]), np.concatenate([y_tr, y_c])
            )
            w = np.asarray(model.coef_, dtype=float)
            scores = X_val @ w + model.intercept_
            # Attacker objective: mean hinge loss on D_val; its gradient
            # w.r.t. w.
            violating = (y_val_signed * scores) < 1.0
            if not np.any(violating):
                break
            g_w = -(y_val_signed[violating, None] * X_val[violating]).mean(axis=0)
            # Influence-function step: perturbing a margin-violating
            # poisoning point by δ shifts the trained weights by
            # roughly H⁻¹ · y_c · δ (H ≻ 0), so moving x_c along
            # +y_c * g_w increases the validation loss g_w measures.
            step = self.step_size * radius
            X_c = X_c + step * (y_c_signed[:, None] * g_w[None, :]) / max(
                np.linalg.norm(g_w), 1e-12
            )
            # Project back onto the radius ball around the centroid.
            offsets = X_c - centroid.location
            norms = np.linalg.norm(offsets, axis=1)
            outside = norms > radius
            if np.any(outside):
                offsets[outside] *= (radius / norms[outside])[:, None]
                X_c = centroid.location + offsets
        return X_c, y_c.astype(int)
