"""Furthest-point duplication attack.

Duplicates the genuine points farthest from the centroid with flipped
labels.  Unlike :class:`OptimalBoundaryAttack` this attack stays *on
the data manifold* (every poisoning point is a real email's feature
vector), which makes it a stress test for detectors that key on
unrealistic feature combinations rather than distance alone.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import PoisoningAttack
from repro.data.geometry import compute_centroid, distances_to_centroid
from repro.ml.base import signed_labels
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_X_y

__all__ = ["FurthestPointAttack"]


class FurthestPointAttack(PoisoningAttack):
    """Flip labels of copies of the most outlying genuine points.

    Parameters
    ----------
    max_percentile:
        Only points farther than this removal-percentile radius are
        candidates, mirroring the radius budget of the optimal attack
        (``0.0`` means only the single farthest shell, so the default
        ``0.1`` allows the outer 10 %).
    centroid_method:
        Centroid estimator.
    """

    def __init__(self, max_percentile: float = 0.1, *, centroid_method: str = "median"):
        self.max_percentile = check_fraction(max_percentile, name="max_percentile")
        self.centroid_method = centroid_method

    def generate(self, X, y, n_poison, *, seed=None):
        X, y = check_X_y(X, y)
        rng = as_generator(seed)
        centroid = compute_centroid(X, method=self.centroid_method)
        distances = distances_to_centroid(X, centroid)
        order = np.argsort(-distances)  # farthest first
        n_candidates = max(1, int(np.ceil(self.max_percentile * X.shape[0])))
        candidates = order[:n_candidates]
        idx = rng.choice(candidates, size=n_poison, replace=n_poison > n_candidates)
        X_poison = X[idx].copy()
        y_poison = -signed_labels(y)[idx]
        return X_poison, y_poison
