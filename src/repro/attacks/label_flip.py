"""Label-flipping attack baseline.

Copies genuine points and flips their labels.  The ``strategy``
parameter selects which points to copy: random points, or the points
farthest from the opposite class (the classic "adversarial label flip"
heuristic, harder for loss-based defences to spot).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import PoisoningAttack
from repro.ml.base import signed_labels
from repro.utils.rng import as_generator
from repro.utils.validation import check_X_y

__all__ = ["LabelFlipAttack"]

_STRATEGIES = ("random", "far_from_own_class", "near_boundary")


class LabelFlipAttack(PoisoningAttack):
    """Inject copies of genuine points with inverted labels.

    Parameters
    ----------
    strategy:
        ``"random"`` — uniform random victims.
        ``"far_from_own_class"`` — victims farthest from their own class
        mean (flipping them plants confident wrong labels deep in the
        other class's territory).
        ``"near_boundary"`` — victims closest to the class-means midplane
        (subtle flips that are hard to detect).
    """

    def __init__(self, strategy: str = "random"):
        if strategy not in _STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; choose from {_STRATEGIES}")
        self.strategy = strategy

    def generate(self, X, y, n_poison, *, seed=None):
        X, y = check_X_y(X, y)
        rng = as_generator(seed)
        y_signed = signed_labels(y)
        n = X.shape[0]

        if self.strategy == "random":
            idx = rng.choice(n, size=n_poison, replace=n_poison > n)
        else:
            mean_pos = X[y_signed == 1].mean(axis=0)
            mean_neg = X[y_signed == -1].mean(axis=0)
            own_mean = np.where((y_signed == 1)[:, None], mean_pos, mean_neg)
            dist_own = np.linalg.norm(X - own_mean, axis=1)
            if self.strategy == "far_from_own_class":
                order = np.argsort(-dist_own)
            else:  # near_boundary
                other_mean = np.where((y_signed == 1)[:, None], mean_neg, mean_pos)
                dist_other = np.linalg.norm(X - other_mean, axis=1)
                order = np.argsort(np.abs(dist_own - dist_other))
            reps = int(np.ceil(n_poison / n))
            idx = np.tile(order, reps)[:n_poison]

        X_poison = X[idx].copy()
        y_poison = -y_signed[idx]
        return X_poison, y_poison
