"""Attacker strategies over radii: pure allocations and mixed strategies.

The attacker's pure strategy in the game is an *allocation*
``S_a = {(p_1, n_1), ..., (p_m, n_m)}`` — how many of the ``N``
poisoning points to place at each percentile radius.  A *mixed* attack
strategy is a distribution over allocations; at the defender's
equilibrium every allocation supported on the defence's radii earns
the same payoff, so the attacker may pick any of them (Section 4.2 of
the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.base import PoisoningAttack
from repro.attacks.optimal_boundary import OptimalBoundaryAttack
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability_vector, check_X_y

__all__ = ["RadiusAllocation", "MixedAllocationAttack", "AttackerMixedStrategy"]


@dataclass(frozen=True)
class RadiusAllocation:
    """A pure attacker strategy: counts of points at each percentile.

    ``percentiles[i]`` receives ``counts[i]`` poisoning points; the
    total is the attack budget ``N``.
    """

    percentiles: tuple
    counts: tuple

    def __post_init__(self):
        ps = tuple(float(p) for p in self.percentiles)
        cs = tuple(int(c) for c in self.counts)
        if len(ps) != len(cs) or not ps:
            raise ValueError("percentiles and counts must be equal-length and non-empty")
        if any(not 0.0 <= p <= 1.0 for p in ps):
            raise ValueError(f"percentiles must lie in [0, 1], got {ps}")
        if any(c < 0 for c in cs) or sum(cs) == 0:
            raise ValueError(f"counts must be non-negative with positive total, got {cs}")
        object.__setattr__(self, "percentiles", ps)
        object.__setattr__(self, "counts", cs)

    @property
    def total(self) -> int:
        return sum(self.counts)

    @staticmethod
    def all_at(percentile: float, n: int) -> "RadiusAllocation":
        """The paper's canonical optimal response: all ``n`` points at one radius."""
        return RadiusAllocation(percentiles=(percentile,), counts=(n,))

    @staticmethod
    def spread(percentiles, n: int, weights=None) -> "RadiusAllocation":
        """Split ``n`` points across ``percentiles`` (uniformly by default)."""
        ps = [float(p) for p in percentiles]
        if weights is None:
            weights = np.full(len(ps), 1.0 / len(ps))
        weights = check_probability_vector(weights)
        counts = np.floor(weights * n).astype(int)
        # Distribute the remainder to the largest fractional parts.
        remainder = n - counts.sum()
        fracs = weights * n - counts
        for i in np.argsort(-fracs)[:remainder]:
            counts[i] += 1
        keep = counts > 0
        return RadiusAllocation(
            percentiles=tuple(np.asarray(ps)[keep]), counts=tuple(counts[keep])
        )


class MixedAllocationAttack(PoisoningAttack):
    """Executes a :class:`RadiusAllocation` as a concrete attack.

    Delegates each radius group to an :class:`OptimalBoundaryAttack`
    targeting that percentile.
    """

    def __init__(self, allocation: RadiusAllocation, **attack_kwargs):
        if not isinstance(allocation, RadiusAllocation):
            raise TypeError("allocation must be a RadiusAllocation")
        self.allocation = allocation
        self.attack_kwargs = attack_kwargs

    def generate(self, X, y, n_poison, *, seed=None):
        X, y = check_X_y(X, y)
        rng = as_generator(seed)
        if n_poison != self.allocation.total:
            # Rescale the allocation to the requested budget.
            weights = np.asarray(self.allocation.counts, dtype=float)
            weights /= weights.sum()
            allocation = RadiusAllocation.spread(self.allocation.percentiles,
                                                 n_poison, weights)
        else:
            allocation = self.allocation
        parts_X, parts_y = [], []
        for p, count in zip(allocation.percentiles, allocation.counts):
            sub = OptimalBoundaryAttack(target_percentile=p, **self.attack_kwargs)
            Xp, yp = sub.generate(X, y, count, seed=rng)
            parts_X.append(Xp)
            parts_y.append(yp)
        return np.vstack(parts_X), np.concatenate(parts_y)


@dataclass
class AttackerMixedStrategy:
    """A distribution over pure allocations.

    At the mixed-defence equilibrium the attacker is indifferent over
    allocations supported on the defence's radii; this class lets
    experiments sample any of them and verify that indifference
    empirically.
    """

    allocations: list
    probabilities: np.ndarray

    def __post_init__(self):
        if not self.allocations or not all(
            isinstance(a, RadiusAllocation) for a in self.allocations
        ):
            raise ValueError("allocations must be a non-empty list of RadiusAllocation")
        self.probabilities = check_probability_vector(self.probabilities)
        if len(self.allocations) != len(self.probabilities):
            raise ValueError(
                f"{len(self.allocations)} allocations but "
                f"{len(self.probabilities)} probabilities"
            )

    def sample(self, seed: int | np.random.Generator | None = None) -> RadiusAllocation:
        """Draw one pure allocation."""
        rng = as_generator(seed)
        idx = rng.choice(len(self.allocations), p=self.probabilities)
        return self.allocations[idx]

    def as_attack(self, seed: int | np.random.Generator | None = None,
                  **attack_kwargs) -> MixedAllocationAttack:
        """Sample an allocation and wrap it as an executable attack."""
        return MixedAllocationAttack(self.sample(seed), **attack_kwargs)

    @staticmethod
    def indifferent_over(percentiles, n: int) -> "AttackerMixedStrategy":
        """Uniform mixture of the pure 'all points at one radius' allocations.

        This is the attacker side of the equilibrium described in
        Section 4.2: with the equalizing defence in play, each of these
        allocations has identical expected payoff.
        """
        allocations = [RadiusAllocation.all_at(float(p), n) for p in percentiles]
        probs = np.full(len(allocations), 1.0 / len(allocations))
        return AttackerMixedStrategy(allocations=allocations, probabilities=probs)


# Re-export for the package namespace (MixedAllocationAttack is public too).
__all__.append("MixedAllocationAttack")
