"""The paper's optimal radius-targeted poisoning attack.

"For each radius r_i, n_i poisoning points will be placed optimally
within r_i distance from the centroid of the original dataset.  Since
the poisoning points are placed optimally, we can expect their
locations to be near the boundary of the hypersphere with radius r_i."

Optimal placement against a margin classifier: a poisoning point with
label ``y`` does maximal damage when it sits as deep as allowed inside
the region the current model assigns to ``-y`` — it then has maximal
hinge loss and drags the decision boundary furthest.  Concretely, with
surrogate weights ``w`` trained on clean data, a point labelled ``y``
is placed at

    centroid + r * unit(-y * w + jitter)

i.e. at exact distance ``r`` from the centroid, in the direction that
opposes its own label, with a small random angular jitter so the ``n``
points do not coincide (coincident points are trivially detectable and
numerically degenerate).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import PoisoningAttack
from repro.data.geometry import Centroid, compute_centroid, distances_to_centroid, \
    radius_for_percentile
from repro.ml.base import clone_estimator, signed_labels
from repro.ml.ridge import RidgeClassifier
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_X_y

__all__ = ["OptimalBoundaryAttack", "surrogate_direction"]


def surrogate_direction(X, y, surrogate) -> np.ndarray | None:
    """The attack's unit direction: fitted surrogate, or fallbacks.

    Deterministic in ``(X, y, surrogate params)`` — this is the
    per-round computation that
    :class:`~repro.experiments.kernel.ContextKernel` hoists out of the
    hot path, so it must consume no RNG.  Returns ``None`` when both
    the surrogate weights and the class-mean difference are zero; the
    caller then falls back to a seeded random direction.
    """
    model = clone_estimator(surrogate).fit(X, y)
    w = np.asarray(model.coef_, dtype=float)
    norm = np.linalg.norm(w)
    if norm == 0.0:
        # Degenerate surrogate (e.g. constant labels after filtering);
        # fall back to the class-mean difference direction.
        y_signed = signed_labels(y)
        w = X[y_signed == 1].mean(axis=0) - X[y_signed == -1].mean(axis=0)
        norm = np.linalg.norm(w)
        if norm == 0.0:
            return None
    return w / norm


class OptimalBoundaryAttack(PoisoningAttack):
    """Place poisoning points optimally at a target radius.

    Parameters
    ----------
    target_percentile:
        The radius expressed on the paper's percentile axis: the
        fraction of *genuine* points farther than the placement radius.
        ``0.0`` places points at the very boundary of the data
        (maximum damage, maximum detectability); larger values move the
        points inward, hiding them below stronger filters.
    surrogate:
        Unfitted estimator the attacker trains on the clean data to
        obtain the damaging direction.  Defaults to a
        :class:`RidgeClassifier` (fast, deterministic); the direction
        only needs to be roughly right.
    centroid_method:
        How the attacker estimates the defender's centroid.
    label_balance:
        Fraction of poisoning points given the positive label
        (default 0.5: both classes attacked symmetrically).
    jitter:
        Angular jitter magnitude relative to the main direction.
    inset:
        Points are placed at ``(1 - inset) * r`` — strictly *within*
        the target radius, as the paper requires ("within r_i
        distance"), so a filter at exactly that radius keeps them.
    precomputed:
        Optional :class:`~repro.experiments.kernel.ContextKernel`
        (or any object with ``describes(X)``, ``centroid``,
        ``attack_radius(p)`` and ``direction``) carrying the clean
        data's centroid, percentile->radius lookup and fitted surrogate
        direction.  When it describes the ``X`` handed to
        :meth:`generate` (an identity check), the per-round surrogate
        refit and geometry recomputation are skipped — bit-identically.
        For any other ``X`` the attack computes everything from
        scratch as if ``precomputed`` were ``None``.
    """

    def __init__(
        self,
        target_percentile: float = 0.0,
        *,
        surrogate=None,
        centroid_method: str = "median",
        label_balance: float = 0.5,
        jitter: float = 0.25,
        inset: float = 1e-3,
        precomputed=None,
    ):
        self.target_percentile = check_fraction(target_percentile,
                                                name="target_percentile")
        self.surrogate = surrogate if surrogate is not None else RidgeClassifier(reg=1e-2)
        self.centroid_method = centroid_method
        self.label_balance = check_fraction(label_balance, name="label_balance")
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        self.jitter = float(jitter)
        self.inset = check_fraction(inset, name="inset", inclusive_high=False)
        self.precomputed = precomputed

    def generate(self, X, y, n_poison, *, seed=None):
        X, y = check_X_y(X, y)
        rng = as_generator(seed)
        pre = self.precomputed
        if pre is not None and pre.describes(X):
            centroid = pre.centroid
            radius = pre.attack_radius(self.target_percentile)
            w_unit = pre.direction
        else:
            centroid = compute_centroid(X, method=self.centroid_method)
            distances = distances_to_centroid(X, centroid)
            radius = radius_for_percentile(distances, self.target_percentile)
            w_unit = surrogate_direction(X, y, self.surrogate)
        if w_unit is None:
            # Fully degenerate clean data: seeded random direction.
            w = rng.normal(size=X.shape[1])
            w_unit = w / np.linalg.norm(w)

        n_pos = int(round(self.label_balance * n_poison))
        labels = np.concatenate([
            np.ones(n_pos, dtype=int),
            -np.ones(n_poison - n_pos, dtype=int),
        ])
        rng.shuffle(labels)

        directions = -labels[:, None] * w_unit[None, :]
        if self.jitter > 0:
            noise = rng.normal(size=(n_poison, X.shape[1]))
            noise -= (noise @ w_unit)[:, None] * w_unit[None, :]  # orthogonal jitter
            row_norms = np.linalg.norm(noise, axis=1, keepdims=True)
            row_norms[row_norms == 0] = 1.0
            directions = directions + self.jitter * noise / row_norms
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)

        placement_radius = (1.0 - self.inset) * radius
        X_poison = centroid.location[None, :] + placement_radius * directions
        return X_poison, labels

    def placement_radius(self, X, y=None) -> float:
        """The geometric radius this attack targets on dataset ``X``."""
        X = np.asarray(X, dtype=float)
        centroid = compute_centroid(X, method=self.centroid_method)
        distances = distances_to_centroid(X, centroid)
        return (1.0 - self.inset) * radius_for_percentile(distances, self.target_percentile)
