"""Random-noise poisoning baseline.

Uniformly random directions at a chosen radius with random labels — a
weak attack that calibrates how much of the optimal attack's damage
comes from *placement* rather than sheer contamination volume.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import PoisoningAttack
from repro.data.geometry import compute_centroid, distances_to_centroid, radius_for_percentile
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_X_y

__all__ = ["RandomNoiseAttack"]


class RandomNoiseAttack(PoisoningAttack):
    """Random points on (or within) a radius shell, random labels.

    Parameters
    ----------
    target_percentile:
        Same percentile axis as :class:`OptimalBoundaryAttack`.
    fill:
        If true, radii are sampled uniformly in ``[0, r]`` instead of
        on the shell at ``r``.
    centroid_method:
        Centroid estimator for the placement origin.
    """

    def __init__(self, target_percentile: float = 0.0, *, fill: bool = False,
                 centroid_method: str = "median"):
        self.target_percentile = check_fraction(target_percentile,
                                                name="target_percentile")
        self.fill = bool(fill)
        self.centroid_method = centroid_method

    def generate(self, X, y, n_poison, *, seed=None):
        X, y = check_X_y(X, y)
        rng = as_generator(seed)
        centroid = compute_centroid(X, method=self.centroid_method)
        distances = distances_to_centroid(X, centroid)
        radius = radius_for_percentile(distances, self.target_percentile)

        directions = rng.normal(size=(n_poison, X.shape[1]))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        if self.fill:
            radii = rng.uniform(0.0, radius, size=n_poison)
        else:
            radii = np.full(n_poison, radius * (1.0 - 1e-3))
        X_poison = centroid.location[None, :] + radii[:, None] * directions
        y_poison = rng.choice([-1, 1], size=n_poison)
        return X_poison, y_poison
