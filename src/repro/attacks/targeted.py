"""Targeted (integrity) poisoning: subvert one class's predictions.

The paper's threat model mentions attackers who "degrade the model's
performance **or subvert the model outcome**".  The availability
attacks in this package do the former; this one does the latter: it
pushes the decision boundary so that points of a chosen *victim class*
are misclassified, while overall accuracy on the other class is left as
intact as possible (stealthier against accuracy monitoring).

Mechanism: all poisoning points carry the victim label's *opposite*
and are placed (within the radius budget) on the victim side of the
surrogate boundary, dragging it across the victim class's territory.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import PoisoningAttack
from repro.data.geometry import compute_centroid, distances_to_centroid, \
    radius_for_percentile
from repro.ml.base import clone_estimator, signed_labels
from repro.ml.ridge import RidgeClassifier
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_X_y

__all__ = ["TargetedClassAttack"]


class TargetedClassAttack(PoisoningAttack):
    """Flip the model's behaviour on one class.

    Parameters
    ----------
    victim_label:
        The class whose predictions the attacker wants flipped
        (``+1`` or ``-1``; ``0`` is treated as ``-1``).
    target_percentile:
        Radius budget on the percentile axis (as in the other attacks).
    surrogate:
        Learner used to find the victim side of the boundary.
    centroid_method:
        Centroid estimator for the placement sphere.
    spread:
        Standard deviation of the placement cloud relative to the
        placement radius (a cloud, not a point mass, resists trivial
        duplicate-detection).
    """

    def __init__(self, victim_label: int = 1, *, target_percentile: float = 0.05,
                 surrogate=None, centroid_method: str = "median",
                 spread: float = 0.1):
        self.victim_label = 1 if victim_label > 0 else -1
        self.target_percentile = check_fraction(target_percentile,
                                                name="target_percentile")
        self.surrogate = surrogate if surrogate is not None else RidgeClassifier(reg=1e-2)
        self.centroid_method = centroid_method
        if spread < 0:
            raise ValueError(f"spread must be non-negative, got {spread}")
        self.spread = float(spread)

    def generate(self, X, y, n_poison, *, seed=None):
        X, y = check_X_y(X, y)
        rng = as_generator(seed)
        y_signed = signed_labels(y)
        centroid = compute_centroid(X, method=self.centroid_method)
        radius = (1.0 - 1e-3) * radius_for_percentile(
            distances_to_centroid(X, centroid), self.target_percentile
        )

        model = clone_estimator(self.surrogate).fit(X, y)
        w = np.asarray(model.coef_, dtype=float)
        norm = np.linalg.norm(w)
        if norm == 0.0:
            w = rng.normal(size=X.shape[1])
            norm = np.linalg.norm(w)
        w_unit = w / norm

        # The victim class's side of the boundary: +w for label +1.
        victim_direction = self.victim_label * w_unit
        # Poison labels are the opposite of the victim class, planted on
        # the victim's side: the learner is taught that victim territory
        # belongs to the other class.
        labels = np.full(n_poison, -self.victim_label, dtype=int)

        base = centroid.location + radius * victim_direction
        cloud = rng.normal(0.0, self.spread * radius, size=(n_poison, X.shape[1]))
        X_poison = base[None, :] + cloud
        # Project back inside the radius budget.
        offsets = X_poison - centroid.location
        norms = np.linalg.norm(offsets, axis=1)
        outside = norms > radius
        if np.any(outside):
            offsets[outside] *= (radius / norms[outside])[:, None]
            X_poison = centroid.location + offsets
        return X_poison, labels

    def victim_recall(self, model, X_test, y_test) -> float:
        """Recall of the victim class under ``model`` (the attack's target)."""
        X_test, y_test = check_X_y(X_test, y_test)
        y_signed = signed_labels(y_test)
        members = y_signed == self.victim_label
        if not members.any():
            raise ValueError(f"no test points with victim label {self.victim_label}")
        preds = model.predict(X_test[members])
        return float(np.mean(preds == self.victim_label))
