"""`repro.cluster` — the sharded, streaming evaluation service.

Splits the engine's round batches across shard servers (one per host,
each holding the experiment context in a per-host shared-memory
segment) and streams outcomes back as they land:

* :mod:`repro.cluster.protocol` — length-prefixed socket protocol and
  the content-fingerprint handshake;
* :mod:`repro.cluster.server` — the shard server
  (``python -m repro.cluster.server`` /
  ``repro-cluster serve`` in the experiments CLI);
* :mod:`repro.cluster.scheduler` — adaptive chunking, retry, failover;
* :mod:`repro.cluster.backend` — the ``"cluster"``
  :class:`~repro.engine.EvaluationBackend` (autospawns localhost
  shards when none are configured).

Importing :mod:`repro.engine` is enough to *use* the backend
(``EvaluationEngine("cluster")``): the engine registry lazily imports
this package on first request.
"""

from repro.cluster.backend import (
    ClusterBackend,
    ClusterDegradedWarning,
    LocalShardPool,
    close_local_pools,
    parse_shard_addresses,
    shared_local_pool,
)
from repro.cluster.scheduler import (
    ClusterError,
    ClusterScheduler,
    ShardClient,
    ShardError,
    ShardRejected,
)
from repro.cluster.server import ShardExecutor, ShardServer, serve

__all__ = [
    "ClusterBackend",
    "ClusterDegradedWarning",
    "LocalShardPool",
    "close_local_pools",
    "parse_shard_addresses",
    "shared_local_pool",
    "ClusterError",
    "ClusterScheduler",
    "ShardClient",
    "ShardError",
    "ShardRejected",
    "ShardExecutor",
    "ShardServer",
    "serve",
]
