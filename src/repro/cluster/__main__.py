"""``python -m repro.cluster`` — run a shard server.

Thin alias for :mod:`repro.cluster.server`'s CLI that avoids the
double-import runpy warning of ``-m repro.cluster.server`` (the
package ``__init__`` already imports the server module).
"""

import sys

from repro.cluster.server import main

if __name__ == "__main__":
    sys.exit(main())
