"""`ClusterBackend` — the engine backend that fans rounds out to shards.

Registered under ``"cluster"`` (``EvaluationEngine("cluster")``,
``REPRO_BACKEND=cluster``, ``--backend cluster``).  Config:

* ``shards=``/``REPRO_CLUSTER_SHARDS`` — comma- or space-separated
  ``host:port`` addresses of running shard servers (see
  :mod:`repro.cluster.server`).
* with **no shards configured**, the backend autospawns ``jobs``
  (default 2) local shard servers on the loopback interface, one
  process per shard, handing each the pickled context — so
  ``REPRO_BACKEND=cluster`` works out of the box on one machine and
  the CI localhost job needs no orchestration.  The pool is keyed by
  context fingerprint: a new context tears the old shards down and
  spawns matching ones.
* ``REPRO_CLUSTER_TIMEOUT`` (connect + handshake; chunk results are
  waited for on a blocking keepalive socket — see
  :class:`~repro.cluster.scheduler.ShardClient`) /
  ``REPRO_CLUSTER_MIN_CHUNK`` / ``REPRO_CLUSTER_MAX_CHUNK`` /
  ``REPRO_CLUSTER_TARGET_SECONDS`` — scheduler knobs.

Every ``run`` opens one connection per shard, performs the
content-fingerprint handshake (a shard holding a different context —
or a different cache schema — refuses, loudly), and streams chunks
through the :class:`~repro.cluster.scheduler.ClusterScheduler`.  The
determinism contract of :mod:`repro.engine.backends` does the rest:
outcomes are bit-identical to the serial backend whatever the
sharding, chunking or arrival order.
"""

from __future__ import annotations

import atexit
import os
import subprocess
import sys
import tempfile
import time

from repro.cluster.scheduler import (
    DEFAULT_MAX_CHUNK,
    DEFAULT_MIN_CHUNK,
    DEFAULT_TARGET_SECONDS,
    DEFAULT_TIMEOUT,
    ClusterError,
    ClusterScheduler,
    ShardClient,
    ShardError,
)
from repro.engine.backends import EvaluationBackend
from repro.engine.cache import cache_schema_version

__all__ = ["ClusterBackend", "LocalShardPool", "parse_shard_addresses",
           "shared_local_pool", "close_local_pools"]

_SPAWN_READY_TIMEOUT = 120.0  # cold interpreter + context load, generous


def parse_shard_addresses(text: str | None) -> list[tuple[str, int]]:
    """Parse ``"host:port,host:port"`` (commas or whitespace) to tuples."""
    if not text:
        return []
    addresses = []
    for token in text.replace(",", " ").split():
        host, sep, port = token.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"bad shard address {token!r}: expected host:port")
        try:
            addresses.append((host, int(port)))
        except ValueError:
            raise ValueError(
                f"bad shard address {token!r}: port {port!r} is not an "
                "integer") from None
    return addresses


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    return float(raw) if raw else default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    return int(raw) if raw else default


class LocalShardPool:
    """Autospawned localhost shard servers for one context.

    Writes the context to a temp file, launches
    ``python -m repro.cluster`` per shard on an OS-assigned
    port, and parses each READY line for the address.  ``close()``
    (also registered atexit) terminates the processes and removes the
    temp file.
    """

    def __init__(self, ctx, n_shards: int, *, jobs_per_shard: int = 1):
        from repro.experiments.runner import save_context

        self.fingerprint = ctx.fingerprint()
        self.processes: list[subprocess.Popen] = []
        self.addresses: list[tuple[str, int]] = []
        fd, self._context_file = tempfile.mkstemp(
            prefix="repro-cluster-ctx-", suffix=".pkl")
        os.close(fd)
        atexit.register(self.close)
        try:
            save_context(ctx, self._context_file)
            env = dict(os.environ)
            # Children must import the same repro package as the parent
            # regardless of how it got onto *our* path.
            import repro

            pkg_root = os.path.dirname(os.path.dirname(
                os.path.abspath(repro.__file__)))
            env["PYTHONPATH"] = pkg_root + os.pathsep + \
                env.get("PYTHONPATH", "")
            for _ in range(n_shards):
                proc = subprocess.Popen(
                    [sys.executable, "-m", "repro.cluster",
                     "--context-file", self._context_file,
                     "--host", "127.0.0.1", "--port", "0",
                     "--jobs", str(jobs_per_shard)],
                    stdout=subprocess.PIPE, env=env, text=True,
                )
                self.processes.append(proc)
            for proc in self.processes:
                self.addresses.append(self._await_ready(proc))
        except BaseException:
            self.close()
            raise

    def _await_ready(self, proc: subprocess.Popen) -> tuple[str, int]:
        import select

        deadline = time.monotonic() + _SPAWN_READY_TIMEOUT
        line = ""
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ClusterError(
                    "autospawned shard never became READY within "
                    f"{_SPAWN_READY_TIMEOUT:.0f}s (last line: {line!r})")
            # Wait on the pipe with a bounded select — a blocking
            # readline() would make this deadline unenforceable against
            # a shard that wedges before printing anything.
            readable, _, _ = select.select([proc.stdout], [], [],
                                           min(remaining, 0.5))
            if readable:
                line = proc.stdout.readline()
                if line.startswith("READY "):
                    fields = dict(part.split("=", 1)
                                  for part in line.split()[1:])
                    return (fields["host"], int(fields["port"]))
                if line:
                    continue  # stray output before READY
            # EOF or nothing yet: only now consult the exit status, so
            # a shard that printed READY and died later is not
            # misreported as "exited before READY".
            if proc.poll() is not None:
                raise ClusterError(
                    f"autospawned shard exited with code "
                    f"{proc.returncode} before READY")

    def close(self) -> None:
        for proc in self.processes:
            if proc.poll() is None:
                proc.terminate()
        for proc in self.processes:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
            if proc.stdout is not None:
                proc.stdout.close()
        self.processes = []
        try:
            os.unlink(self._context_file)
        except OSError:
            pass


# Autospawned pools are shared process-wide, keyed by context
# fingerprint, so N engines over the same context reuse one set of
# localhost shards instead of each leaking its own.  Small LRU: old
# contexts' pools are torn down as new ones arrive.
_LOCAL_POOLS: "dict[str, LocalShardPool]" = {}
_MAX_LOCAL_POOLS = 2


def shared_local_pool(ctx, n_shards: int) -> LocalShardPool:
    """The process-wide autospawned pool for ``ctx`` (created on miss)."""
    fingerprint = ctx.fingerprint()
    pool = _LOCAL_POOLS.get(fingerprint)
    if pool is not None:
        if len(pool.addresses) >= n_shards and \
                all(p.poll() is None for p in pool.processes):
            return pool
        pool.close()
        del _LOCAL_POOLS[fingerprint]
    pool = LocalShardPool(ctx, n_shards)
    _LOCAL_POOLS[fingerprint] = pool
    while len(_LOCAL_POOLS) > _MAX_LOCAL_POOLS:
        oldest = next(iter(_LOCAL_POOLS))
        _LOCAL_POOLS.pop(oldest).close()
    return pool


def close_local_pools() -> None:
    """Tear down every autospawned localhost pool now (atexit otherwise)."""
    while _LOCAL_POOLS:
        _, pool = _LOCAL_POOLS.popitem()
        pool.close()


class ClusterBackend(EvaluationBackend):
    """Shard round batches across remote (or autospawned) shard servers.

    Parameters
    ----------
    jobs:
        With configured shards: ignored.  Without: how many localhost
        shards to autospawn (default 2).
    shards:
        ``host:port`` pairs / strings, or ``None`` to read
        ``REPRO_CLUSTER_SHARDS`` (and autospawn when that is unset).
    """

    name = "cluster"

    def __init__(self, jobs: int | None = None, *, shards=None,
                 timeout: float | None = None,
                 min_chunk: int | None = None,
                 max_chunk: int | None = None,
                 target_seconds: float | None = None):
        if shards is None:
            shards = os.environ.get("REPRO_CLUSTER_SHARDS")
        if isinstance(shards, str):
            shards = parse_shard_addresses(shards)
        self.shards = [(str(h), int(p)) for h, p in (shards or [])]
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.timeout = timeout if timeout is not None else \
            _env_float("REPRO_CLUSTER_TIMEOUT", DEFAULT_TIMEOUT)
        self.min_chunk = min_chunk if min_chunk is not None else \
            _env_int("REPRO_CLUSTER_MIN_CHUNK", DEFAULT_MIN_CHUNK)
        self.max_chunk = max_chunk if max_chunk is not None else \
            _env_int("REPRO_CLUSTER_MAX_CHUNK", DEFAULT_MAX_CHUNK)
        self.target_seconds = target_seconds if target_seconds is not None \
            else _env_float("REPRO_CLUSTER_TARGET_SECONDS",
                            DEFAULT_TARGET_SECONDS)
        self._pool: LocalShardPool | None = None

    # -- shard management --------------------------------------------------

    def _addresses(self, ctx) -> list[tuple[str, int]]:
        if self.shards:
            return self.shards
        self._pool = shared_local_pool(ctx, self.jobs or 2)
        return self._pool.addresses

    def _connect(self, ctx) -> list[ShardClient]:
        fingerprint = ctx.fingerprint()
        schema = cache_schema_version()
        clients: list[ShardClient] = []
        failures: list[str] = []
        for address in self._addresses(ctx):
            try:
                client = ShardClient(address, timeout=self.timeout)
            except ShardError as exc:
                failures.append(str(exc))
                continue
            try:
                client.handshake(fingerprint, schema)
            except ShardError as exc:
                client.close()
                failures.append(str(exc))
                continue
            clients.append(client)
        if not clients:
            raise ClusterError(
                "no shard accepted the batch: " +
                ("; ".join(failures) if failures else "no shards configured"))
        return clients

    def close(self) -> None:
        """Tear down the autospawned localhost pools.

        The pools are shared process-wide (see :func:`shared_local_pool`),
        so this closes them for every engine in the process — call it
        when you are done with cluster evaluation, not between batches.
        """
        self._pool = None
        close_local_pools()

    # -- EvaluationBackend -------------------------------------------------

    def run(self, ctx, specs) -> list:
        specs = list(specs)
        results = [None] * len(specs)
        for index, outcome in self.run_iter(ctx, specs):
            results[index] = outcome
        return results

    def run_iter(self, ctx, specs):
        specs = list(specs)
        if not specs:
            return
        clients = self._connect(ctx)
        try:
            scheduler = ClusterScheduler(
                clients, min_chunk=self.min_chunk,
                max_chunk=self.max_chunk,
                target_seconds=self.target_seconds)
            yield from scheduler.run_iter(specs)
        finally:
            for client in clients:
                client.close()
