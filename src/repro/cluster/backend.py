"""`ClusterBackend` — the engine backend that fans rounds out to shards.

Registered under ``"cluster"`` (``EvaluationEngine("cluster")``,
``REPRO_BACKEND=cluster``, ``--backend cluster``).  Config:

* ``shards=``/``REPRO_CLUSTER_SHARDS`` — comma- or space-separated
  ``host:port`` addresses of running shard servers (see
  :mod:`repro.cluster.server`).
* with **no shards configured**, the backend autospawns ``jobs``
  (default 2) local shard servers on the loopback interface, one
  process per shard, handing each the pickled context — so
  ``REPRO_BACKEND=cluster`` works out of the box on one machine and
  the CI localhost job needs no orchestration.  The pool is keyed by
  context fingerprint: a new context tears the old shards down and
  spawns matching ones.
* ``REPRO_CLUSTER_TIMEOUT`` (connect + handshake; chunk results are
  waited for on a blocking keepalive socket — see
  :class:`~repro.cluster.scheduler.ShardClient`) /
  ``REPRO_CLUSTER_MIN_CHUNK`` / ``REPRO_CLUSTER_MAX_CHUNK`` /
  ``REPRO_CLUSTER_TARGET_SECONDS`` — scheduler knobs.  All env knobs
  are validated at parse time (an unparseable value raises naming the
  variable) and clamped into documented sane ranges.
* ``REPRO_CLUSTER_SECRET`` — shared handshake secret; when set, both
  ends prove possession via mutual HMAC digests and mismatches are
  refused by name (see :mod:`repro.cluster.protocol`).
* ``REPRO_CLUSTER_RETRIES`` / ``REPRO_CLUSTER_BACKOFF`` — the
  connect/handshake (and mid-sweep rejoin) retry budget: exponential
  backoff with deterministic jitter
  (:class:`~repro.resilience.RetryPolicy`).  Handshake *refusals*
  (auth, fingerprint, schema) are configuration and are never retried.
* ``REPRO_CLUSTER_FALLBACK`` (default on) — graceful degradation: if
  every shard is dead past its retry budget, the batch falls back to
  the in-process serial backend with a :class:`ClusterDegradedWarning`
  instead of failing the run.  Refusals never degrade — silently
  computing locally would mask a misconfigured fleet.
* ``REPRO_CLUSTER_PLACEMENT`` (default on) — cache-aware placement:
  before distributing a batch the backend sends each shard a
  ``cache-query`` with the batch's canonical round keys and routes
  held rounds to the shard that holds them (least-loaded among
  holders), so a warm fleet answers them from its disk tier without
  recompute.  Off, or against shards without a cache tier, everything
  flows through the plain work-stealing queue.
* ``REPRO_SHARD_CACHE_DIR`` / ``REPRO_SHARD_CACHE_MAX_ENTRIES`` —
  read by the *shard server* (and therefore inherited by autospawned
  localhost shards): directory of the shard-local
  :class:`~repro.engine.cache.ResultCache` disk tier that computed
  rounds stream into as they land, and the LRU cap of its in-memory
  tier.  Unset means no shard cache (see
  :mod:`repro.cluster.server`).

Every ``run`` opens one connection per shard, performs the
content-fingerprint handshake (a shard holding a different context —
or a different cache schema — refuses, loudly), and streams chunks
through the :class:`~repro.cluster.scheduler.ClusterScheduler`.  The
determinism contract of :mod:`repro.engine.backends` does the rest:
outcomes are bit-identical to the serial backend whatever the
sharding, chunking, arrival order — or fault/degradation path.
"""

from __future__ import annotations

import atexit
import os
import subprocess
import sys
import tempfile
import time
import warnings

from repro.cluster.scheduler import (
    DEFAULT_MAX_CHUNK,
    DEFAULT_MIN_CHUNK,
    DEFAULT_TARGET_SECONDS,
    DEFAULT_TIMEOUT,
    ClusterError,
    ClusterScheduler,
    ShardClient,
    ShardError,
    ShardRejected,
)
from repro.engine.backends import EvaluationBackend, SerialBackend
from repro.engine.cache import cache_schema_version, round_keys
from repro.resilience import RetryPolicy, env_bool, env_float, env_int

__all__ = ["ClusterBackend", "ClusterDegradedWarning", "LocalShardPool",
           "parse_shard_addresses", "shared_local_pool",
           "close_local_pools"]


class ClusterDegradedWarning(RuntimeWarning):
    """The cluster was unreachable; the batch ran on the serial backend."""

_SPAWN_READY_TIMEOUT = 120.0  # cold interpreter + context load, generous


def parse_shard_addresses(text: str | None) -> list[tuple[str, int]]:
    """Parse ``"host:port,host:port"`` (commas or whitespace) to tuples."""
    if not text:
        return []
    addresses = []
    for token in text.replace(",", " ").split():
        host, sep, port = token.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"bad shard address {token!r}: expected host:port")
        try:
            addresses.append((host, int(port)))
        except ValueError:
            raise ValueError(
                f"bad shard address {token!r}: port {port!r} is not an "
                "integer") from None
    return addresses


class LocalShardPool:
    """Autospawned localhost shard servers for one context.

    Writes the context to a temp file, launches
    ``python -m repro.cluster`` per shard on an OS-assigned
    port, and parses each READY line for the address.  ``close()``
    (also registered atexit) terminates the processes and removes the
    temp file.
    """

    def __init__(self, ctx, n_shards: int, *, jobs_per_shard: int = 1,
                 secret: str | None = None):
        from repro.experiments.runner import save_context

        self.fingerprint = ctx.fingerprint()
        self.processes: list[subprocess.Popen] = []
        self.addresses: list[tuple[str, int]] = []
        fd, self._context_file = tempfile.mkstemp(
            prefix="repro-cluster-ctx-", suffix=".pkl")
        os.close(fd)
        atexit.register(self.close)
        try:
            save_context(ctx, self._context_file)
            env = dict(os.environ)
            # Children must import the same repro package as the parent
            # regardless of how it got onto *our* path.
            import repro

            pkg_root = os.path.dirname(os.path.dirname(
                os.path.abspath(repro.__file__)))
            env["PYTHONPATH"] = pkg_root + os.pathsep + \
                env.get("PYTHONPATH", "")
            if secret:
                # A constructor-passed secret must reach autospawned
                # shards too, not only env-configured ones.
                env["REPRO_CLUSTER_SECRET"] = secret
            for _ in range(n_shards):
                proc = subprocess.Popen(
                    [sys.executable, "-m", "repro.cluster",
                     "--context-file", self._context_file,
                     "--host", "127.0.0.1", "--port", "0",
                     "--jobs", str(jobs_per_shard)],
                    stdout=subprocess.PIPE, env=env, text=True,
                )
                self.processes.append(proc)
            for proc in self.processes:
                self.addresses.append(self._await_ready(proc))
        except BaseException:
            self.close()
            raise

    def _await_ready(self, proc: subprocess.Popen) -> tuple[str, int]:
        import select

        deadline = time.monotonic() + _SPAWN_READY_TIMEOUT
        line = ""
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ClusterError(
                    "autospawned shard never became READY within "
                    f"{_SPAWN_READY_TIMEOUT:.0f}s (last line: {line!r})")
            # Wait on the pipe with a bounded select — a blocking
            # readline() would make this deadline unenforceable against
            # a shard that wedges before printing anything.
            readable, _, _ = select.select([proc.stdout], [], [],
                                           min(remaining, 0.5))
            if readable:
                line = proc.stdout.readline()
                if line.startswith("READY "):
                    fields = dict(part.split("=", 1)
                                  for part in line.split()[1:])
                    return (fields["host"], int(fields["port"]))
                if line:
                    continue  # stray output before READY
            # EOF or nothing yet: only now consult the exit status, so
            # a shard that printed READY and died later is not
            # misreported as "exited before READY".
            if proc.poll() is not None:
                raise ClusterError(
                    f"autospawned shard exited with code "
                    f"{proc.returncode} before READY")

    def close(self) -> None:
        for proc in self.processes:
            if proc.poll() is None:
                proc.terminate()
        for proc in self.processes:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
            if proc.stdout is not None:
                proc.stdout.close()
        self.processes = []
        try:
            os.unlink(self._context_file)
        except OSError:
            pass


# Autospawned pools are shared process-wide, keyed by context
# fingerprint, so N engines over the same context reuse one set of
# localhost shards instead of each leaking its own.  Small LRU: old
# contexts' pools are torn down as new ones arrive.
_LOCAL_POOLS: "dict[str, LocalShardPool]" = {}
_MAX_LOCAL_POOLS = 2


def shared_local_pool(ctx, n_shards: int,
                      secret: str | None = None) -> LocalShardPool:
    """The process-wide autospawned pool for ``ctx`` (created on miss)."""
    fingerprint = ctx.fingerprint()
    pool = _LOCAL_POOLS.get(fingerprint)
    if pool is not None:
        if len(pool.addresses) >= n_shards and \
                all(p.poll() is None for p in pool.processes):
            return pool
        pool.close()
        del _LOCAL_POOLS[fingerprint]
    pool = LocalShardPool(ctx, n_shards, secret=secret)
    _LOCAL_POOLS[fingerprint] = pool
    while len(_LOCAL_POOLS) > _MAX_LOCAL_POOLS:
        oldest = next(iter(_LOCAL_POOLS))
        _LOCAL_POOLS.pop(oldest).close()
    return pool


def close_local_pools() -> None:
    """Tear down every autospawned localhost pool now (atexit otherwise)."""
    while _LOCAL_POOLS:
        _, pool = _LOCAL_POOLS.popitem()
        pool.close()


class ClusterBackend(EvaluationBackend):
    """Shard round batches across remote (or autospawned) shard servers.

    Parameters
    ----------
    jobs:
        With configured shards: ignored.  Without: how many localhost
        shards to autospawn (default 2).
    shards:
        ``host:port`` pairs / strings, or ``None`` to read
        ``REPRO_CLUSTER_SHARDS`` (and autospawn when that is unset).
    secret, retries, backoff, fallback:
        Resilience knobs; ``None`` reads ``REPRO_CLUSTER_SECRET`` /
        ``_RETRIES`` / ``_BACKOFF`` / ``_FALLBACK`` (see module docs).
    placement:
        Cache-aware placement toggle; ``None`` reads
        ``REPRO_CLUSTER_PLACEMENT`` (default on — see module docs).
    """

    name = "cluster"

    def __init__(self, jobs: int | None = None, *, shards=None,
                 timeout: float | None = None,
                 min_chunk: int | None = None,
                 max_chunk: int | None = None,
                 target_seconds: float | None = None,
                 secret: str | None = None,
                 retries: int | None = None,
                 backoff: float | None = None,
                 fallback: bool | None = None,
                 placement: bool | None = None):
        if shards is None:
            shards = os.environ.get("REPRO_CLUSTER_SHARDS")
        if isinstance(shards, str):
            shards = parse_shard_addresses(shards)
        self.shards = [(str(h), int(p)) for h, p in (shards or [])]
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        # Clamp ranges are operational guard-rails (a week-long timeout
        # or a 0 min_chunk wedges the service, it doesn't mean anything).
        self.timeout = timeout if timeout is not None else \
            env_float("REPRO_CLUSTER_TIMEOUT", DEFAULT_TIMEOUT,
                      lo=0.01, hi=3600.0)
        self.min_chunk = min_chunk if min_chunk is not None else \
            env_int("REPRO_CLUSTER_MIN_CHUNK", DEFAULT_MIN_CHUNK,
                    lo=1, hi=4096)
        self.max_chunk = max_chunk if max_chunk is not None else \
            env_int("REPRO_CLUSTER_MAX_CHUNK", DEFAULT_MAX_CHUNK,
                    lo=1, hi=8192)
        self.max_chunk = max(self.max_chunk, self.min_chunk)
        self.target_seconds = target_seconds if target_seconds is not None \
            else env_float("REPRO_CLUSTER_TARGET_SECONDS",
                           DEFAULT_TARGET_SECONDS, lo=0.01, hi=600.0)
        if secret is None:
            secret = os.environ.get("REPRO_CLUSTER_SECRET")
        self.secret = secret or None
        if retries is None:
            retries = env_int("REPRO_CLUSTER_RETRIES", 3, lo=0, hi=100)
        if backoff is None:
            backoff = env_float("REPRO_CLUSTER_BACKOFF", 0.05,
                                lo=0.0, hi=60.0)
        self.retry_policy = RetryPolicy(retries=int(retries),
                                        backoff=float(backoff))
        self.fallback = env_bool("REPRO_CLUSTER_FALLBACK", True) \
            if fallback is None else bool(fallback)
        self.placement = env_bool("REPRO_CLUSTER_PLACEMENT", True) \
            if placement is None else bool(placement)
        self._pool: LocalShardPool | None = None
        self._last_scheduler: ClusterScheduler | None = None
        self._last_telemetry: dict | None = None

    # -- shard management --------------------------------------------------

    def _addresses(self, ctx) -> list[tuple[str, int]]:
        if self.shards:
            return self.shards
        self._pool = shared_local_pool(ctx, self.jobs or 2,
                                       secret=self.secret)
        return self._pool.addresses

    def _connect_one(self, address, fingerprint, schema) -> ShardClient:
        """One connect + handshake attempt; the client is closed on
        handshake failure (no half-open sockets leak out of here)."""
        client = ShardClient(address, timeout=self.timeout,
                             secret=self.secret)
        try:
            client.handshake(fingerprint, schema)
        except BaseException:
            client.close()
            raise
        return client

    def _connect_with_retry(self, address, fingerprint,
                            schema) -> ShardClient:
        """Connect + handshake, walking the retry budget on transport
        failures.  :class:`ShardRejected` propagates immediately — a
        refusal is configuration, and configuration does not fix itself
        on retry."""
        name = f"{address[0]}:{address[1]}"
        last: ShardError | None = None
        delays = iter(self.retry_policy.delays(f"connect:{name}"))
        while True:
            try:
                return self._connect_one(address, fingerprint, schema)
            except ShardRejected:
                raise
            except ShardError as exc:
                last = exc
            try:
                delay = next(delays)
            except StopIteration:
                raise last
            time.sleep(delay)

    def _connect(self, ctx) -> list[ShardClient]:
        fingerprint = ctx.fingerprint()
        schema = cache_schema_version()
        clients: list[ShardClient] = []
        failures: list[ShardError] = []
        for address in self._addresses(ctx):
            try:
                clients.append(self._connect_with_retry(
                    address, fingerprint, schema))
            except ShardError as exc:
                failures.append(exc)
        if not clients:
            error = ClusterError(
                "no shard accepted the batch: " +
                ("; ".join(str(f) for f in failures)
                 if failures else "no shards configured"))
            # Degradation must not mask a misconfigured fleet: flag the
            # all-refusals case so run_iter raises instead of silently
            # computing locally.
            error.rejected_only = bool(failures) and all(
                isinstance(f, ShardRejected) for f in failures)
            raise error
        return clients

    def close(self) -> None:
        """Tear down the autospawned localhost pools.

        The pools are shared process-wide (see :func:`shared_local_pool`),
        so this closes them for every engine in the process — call it
        when you are done with cluster evaluation, not between batches.
        """
        self._pool = None
        close_local_pools()

    # -- EvaluationBackend -------------------------------------------------

    def run(self, ctx, specs) -> list:
        specs = list(specs)
        results = [None] * len(specs)
        for index, outcome in self.run_iter(ctx, specs):
            results[index] = outcome
        return results

    def run_iter(self, ctx, specs):
        specs = list(specs)
        if not specs:
            return
        done: set[int] = set()
        try:
            clients = self._connect(ctx)
        except ClusterError as exc:
            yield from self._degrade_or_raise(ctx, specs, done, exc)
            return
        fingerprint = ctx.fingerprint()
        schema = cache_schema_version()
        scheduler = ClusterScheduler(
            clients, min_chunk=self.min_chunk,
            max_chunk=self.max_chunk,
            target_seconds=self.target_seconds,
            reconnect=lambda address: self._connect_one(
                address, fingerprint, schema),
            retry_policy=self.retry_policy,
            placement=self._build_placement(clients, fingerprint, specs))
        self._last_scheduler = scheduler
        try:
            stream = scheduler.run_iter(specs)
            while True:
                try:
                    index, outcome = next(stream)
                except StopIteration:
                    return
                except ClusterError as exc:
                    # Mid-sweep total loss: every shard died past its
                    # rejoin budget with work still outstanding.
                    yield from self._degrade_or_raise(ctx, specs, done,
                                                      exc)
                    return
                done.add(index)
                yield index, outcome
        finally:
            self._last_telemetry = scheduler.stats()
            for client in clients:
                client.close()

    def _build_placement(self, clients, fingerprint,
                         specs) -> dict | None:
        """Ask each shard which rounds it already holds; assign each
        held round to the least-loaded holder.  A shard whose query
        fails in transport is treated as holding nothing — if it is
        truly dead, the scheduler's failover discovers that on its own
        terms."""
        if not self.placement:
            return None
        keys = round_keys(fingerprint, specs)
        held_by: list[set] = []
        for client in clients:
            try:
                held, _ = client.query_cache(keys)
            except ShardError:
                held = set()
            held_by.append(held)
        if not any(held_by):
            return None
        placement: dict[str, list[int]] = {}
        loads = [0] * len(clients)
        for index, key in enumerate(keys):
            holders = [i for i, held in enumerate(held_by) if key in held]
            if not holders:
                continue
            best = min(holders, key=loads.__getitem__)
            loads[best] += 1
            placement.setdefault(clients[best].name, []).append(index)
        return placement

    def batch_telemetry(self) -> dict | None:
        """Scheduler stats of the most recent batch (returned once).

        The engine merges this into its ``batch_log`` entry; returning
        and clearing keeps one batch's placement counters from being
        attributed to the next."""
        telemetry, self._last_telemetry = self._last_telemetry, None
        return telemetry

    def _degrade_or_raise(self, ctx, specs, done, exc):
        """Finish ``specs`` minus ``done`` on the serial backend — or
        re-raise ``exc`` when degradation is off or the cluster merely
        *refused* us (see module docs)."""
        if not self.fallback or getattr(exc, "rejected_only", False):
            raise exc
        remaining = [i for i in range(len(specs)) if i not in done]
        warnings.warn(ClusterDegradedWarning(
            f"cluster unreachable ({exc}); degrading: running the "
            f"remaining {len(remaining)} of {len(specs)} rounds on the "
            f"serial backend"), stacklevel=3)
        serial = SerialBackend()
        for position, outcome in serial.run_iter(
                ctx, [specs[i] for i in remaining]):
            yield remaining[position], outcome
