"""Wire protocol of the cluster evaluation service.

One message = an 8-byte big-endian length prefix followed by a pickled
payload dict.  Length-prefixed framing keeps the stream self-describing
over plain TCP: a reader always knows exactly how many bytes the next
message occupies, so partial reads are retried and a connection that
dies mid-message is distinguishable (``ConnectionClosed``) from a
malformed one (``ProtocolError``).

Message shapes (all plain dicts with a ``"type"`` key):

* ``hello``   — client -> shard: ``{protocol, fingerprint, schema}``
  plus an optional ``auth`` digest (below).  The shard compares all
  three against its own values and answers ``welcome`` (with its
  host/pid/capacity) or ``reject`` with a reason.  A shard therefore
  *refuses* to evaluate rounds for a context it does not hold — the
  content-fingerprint handshake that makes a mixed-version or
  mixed-context fleet fail loudly instead of returning subtly wrong
  results.
* **auth** — when both ends hold the shared secret
  (``REPRO_CLUSTER_SECRET``), the hello carries
  ``auth = HMAC-SHA256(secret, "client:" + protocol:fingerprint:schema)``
  and the welcome answers with the ``"shard:"``-tagged digest over the
  same material, so authentication is *mutual* in the existing single
  round trip.  A shard with a secret rejects clients without a
  matching digest (and vice versa: a secret-holding client refuses a
  welcome whose digest is absent or wrong); a shard *without* a secret
  rejects clients that send one, so a half-configured fleet fails
  loudly instead of silently running open.  The digest binds the
  handshake fields, not the chunk stream — this authenticates *who may
  submit work*, it is not transport encryption (deploy on a trusted
  network or under a TLS tunnel for that).
* ``run``     — client -> shard: ``{chunk_id, specs}`` where ``specs``
  is a list of picklable :class:`~repro.engine.RoundSpec`.  Answered
  by ``result`` (``{chunk_id, outcomes}``, outcomes in spec order) or
  ``error`` (``{chunk_id, message}`` — the chunk failed but the shard
  survives).
* ``cache-query`` — client -> shard, post-handshake: ``{keys}``, a
  list of canonical round keys (see
  :func:`~repro.engine.cache.round_keys`).  Answered by
  ``cache-report`` (``{held, stats}``): the subset of the keys the
  shard's local result-cache tier already holds, plus the tier's
  operator stats.  Because the handshake already pinned the context
  fingerprint *and* the cache schema version, a held key names
  bit-identical content on both ends — that is what lets the scheduler
  route held rounds to the holding shard and serve them from its disk
  tier without recomputing.  A shard without a cache tier answers with
  an empty ``held`` list; an *old* shard answers ``error`` (unknown
  message type), which clients treat the same way — placement is a
  preference and degrades to the plain work-stealing queue.
* ``cache-info`` — a *pre-handshake* alternative to ``hello``: an
  operator tool (``repro-cache info --shard``) asking for a shard's
  cache-tier stats without knowing the context fingerprint the full
  handshake would require.  Carries ``{protocol, schema}`` plus the
  usual ``auth`` digest when a secret is configured (computed over the
  literal fingerprint string ``"cache-info"``, so a captured hello
  digest cannot be replayed as a stats probe).  Answered by
  ``cache-report`` (with the shard's fingerprint included in
  ``stats``) and the connection closes — the probe never reaches the
  chunk-execution state machine.
* ``telemetry-query`` — client -> shard, post-handshake: no payload.
  Answered by ``telemetry-report`` (``{metrics}``, the shard's live
  metrics-registry snapshot).  Old shards answer ``error`` (unknown
  message type) and clients skip them — the ``cache-query`` interop
  rule.  Shards also *piggyback* a metrics delta on every ``result``
  message (optional ``telemetry`` field), so routine runs need no
  extra round trips at all.
* ``telemetry-info`` — the *pre-handshake* sibling, mirroring
  ``cache-info``: ``repro-cluster stats`` asking for live metrics
  without knowing the context fingerprint, auth digest over the
  literal ``"telemetry-info"``.  Answered by ``telemetry-report`` and
  the connection closes; old shards answer ``reject``.
* ``ping``    — liveness probe, answered by ``pong``.
* ``shutdown``— ask the shard to exit its serve loop (used by the
  localhost autospawn pool and the tests; production deployments just
  signal the process).

The payload pickles only engine-owned types (round specs, evaluation
outcomes) whose modules both ends import; the handshake's ``schema``
field carries the cache schema version so two builds that disagree on
what a round *is* never exchange results.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import pickle
import socket
import struct

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ConnectionClosed",
    "enable_keepalive",
    "send_message",
    "recv_message",
    "compute_auth",
    "verify_auth",
    "hello",
    "welcome",
    "reject",
    "run_chunk",
    "chunk_result",
    "chunk_error",
    "cache_query",
    "cache_report",
    "cache_info",
    "CACHE_INFO_FINGERPRINT",
    "telemetry_query",
    "telemetry_report",
    "telemetry_info",
    "TELEMETRY_INFO_FINGERPRINT",
]

PROTOCOL_VERSION = 1

# 8-byte length prefix: big enough for any batch, fixed-size to parse.
_HEADER = struct.Struct(">Q")

# A message larger than this is a framing error, not a real payload
# (the largest legitimate message — a chunk of specs or outcomes — is
# a few hundred KB).  Guards against interpreting garbage as a length.
MAX_MESSAGE_BYTES = 1 << 30


class ProtocolError(RuntimeError):
    """The peer sent something that is not a protocol message."""


class ConnectionClosed(ConnectionError):
    """The peer closed the connection (possibly mid-message)."""


def enable_keepalive(sock: socket.socket) -> None:
    """Turn on OS TCP keepalive with aggressive-ish probe timing.

    Both ends of the protocol wait on blocking sockets (a round may
    legitimately outlast any fixed timer), so a peer that vanishes
    *silently* — host loss, network partition, no RST — must be reaped
    by the OS: probe an idle connection after 30s, every 10s, give up
    after 3 misses (≈1 minute to declare the peer dead).  The timing
    options are platform-specific; keepalive itself is the part that
    matters.
    """
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
    for option, value in (("TCP_KEEPIDLE", 30), ("TCP_KEEPINTVL", 10),
                          ("TCP_KEEPCNT", 3)):
        if hasattr(socket, option):
            try:
                sock.setsockopt(socket.IPPROTO_TCP,
                                getattr(socket, option), value)
            except OSError:  # pragma: no cover - exotic platforms
                pass


def send_message(sock: socket.socket, message: dict) -> None:
    """Frame and send one message dict."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosed(
                f"connection closed with {remaining} of {n} bytes unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> dict:
    """Receive one framed message dict (blocking)."""
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message of {length} bytes exceeds the "
                            f"{MAX_MESSAGE_BYTES}-byte frame limit")
    try:
        message = pickle.loads(_recv_exact(sock, length))
    except ConnectionClosed:
        raise
    except Exception as exc:
        raise ProtocolError(f"undecodable message payload: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(f"malformed message: {message!r}")
    return message


# -- shared-secret auth ------------------------------------------------------


def compute_auth(secret: str, role: str, fingerprint: str,
                 schema: int) -> str:
    """The HMAC digest one end presents in the handshake.

    ``role`` is ``"client"`` (hello) or ``"shard"`` (welcome): tagging
    the direction keeps a captured hello digest from being replayed
    back as a welcome.
    """
    material = f"{role}:{PROTOCOL_VERSION}:{fingerprint}:{int(schema)}"
    return _hmac.new(secret.encode("utf-8"), material.encode("utf-8"),
                     hashlib.sha256).hexdigest()


def verify_auth(secret: str, role: str, fingerprint: str, schema: int,
                auth) -> bool:
    """Constant-time check of a presented handshake digest."""
    if not isinstance(auth, str):
        return False
    expected = compute_auth(secret, role, fingerprint, schema)
    return _hmac.compare_digest(expected, auth)


# -- message constructors ----------------------------------------------------


def hello(fingerprint: str, schema: int, *, secret: str | None = None) -> dict:
    """The client side of the content-fingerprint handshake."""
    message = {"type": "hello", "protocol": PROTOCOL_VERSION,
               "fingerprint": str(fingerprint), "schema": int(schema)}
    if secret:
        message["auth"] = compute_auth(secret, "client",
                                       str(fingerprint), int(schema))
    return message


def welcome(fingerprint: str, *, host: str, pid: int, capacity: int,
            schema: int | None = None, secret: str | None = None) -> dict:
    """Shard accepts: it holds the same context (and schema)."""
    message = {"type": "welcome", "fingerprint": str(fingerprint),
               "host": str(host), "pid": int(pid), "capacity": int(capacity)}
    if secret:
        message["auth"] = compute_auth(secret, "shard", str(fingerprint),
                                       int(schema or 0))
    return message


def reject(reason: str) -> dict:
    """Shard refuses the handshake; ``reason`` is human-readable."""
    return {"type": "reject", "reason": str(reason)}


def run_chunk(chunk_id: int, specs: list) -> dict:
    """Push one chunk of round specs to a shard."""
    return {"type": "run", "chunk_id": int(chunk_id), "specs": list(specs)}


def chunk_result(chunk_id: int, outcomes: list, *,
                 cache_hits: int = 0, telemetry: dict | None = None) -> dict:
    """A completed chunk, outcomes aligned with the request's specs.

    ``cache_hits`` counts the outcomes served from the shard's local
    result-cache tier rather than recomputed — the per-chunk telemetry
    the scheduler aggregates into its placement stats.  ``telemetry``
    piggybacks the shard's metrics delta (see
    :meth:`repro.telemetry.metrics.MetricsRegistry.flush_delta`) so the
    client's registry covers shard-side stage timings with zero extra
    round trips.  Both fields are omitted when empty: old clients
    ignore them, old shards simply never send them.
    """
    message = {"type": "result", "chunk_id": int(chunk_id),
               "outcomes": list(outcomes)}
    if cache_hits:
        message["cache_hits"] = int(cache_hits)
    if telemetry:
        message["telemetry"] = dict(telemetry)
    return message


def chunk_error(chunk_id: int, message: str) -> dict:
    """A failed chunk (the shard survives; the client decides what next)."""
    return {"type": "error", "chunk_id": int(chunk_id),
            "message": str(message)}


# -- shard cache tier --------------------------------------------------------

# The literal "fingerprint" a pre-handshake cache-info probe signs its
# auth digest over: the prober does not know the shard's context, and a
# fixed tag keeps the digest domain-separated from real handshakes.
CACHE_INFO_FINGERPRINT = "cache-info"


def cache_query(keys) -> dict:
    """Ask a handshaken shard which of these round keys it holds."""
    return {"type": "cache-query", "keys": [str(k) for k in keys]}


def cache_report(held, stats: dict) -> dict:
    """The shard's answer: held-key subset plus cache-tier stats."""
    return {"type": "cache-report", "held": [str(k) for k in held],
            "stats": dict(stats)}


def cache_info(schema: int, *, secret: str | None = None) -> dict:
    """Pre-handshake cache-tier stats probe (``repro-cache --shard``)."""
    message = {"type": "cache-info", "protocol": PROTOCOL_VERSION,
               "schema": int(schema)}
    if secret:
        message["auth"] = compute_auth(secret, "client",
                                       CACHE_INFO_FINGERPRINT, int(schema))
    return message


# -- shard telemetry ---------------------------------------------------------

# Like CACHE_INFO_FINGERPRINT: the literal a pre-handshake telemetry
# probe signs over, domain-separating its digest from real handshakes
# and from cache-info probes.
TELEMETRY_INFO_FINGERPRINT = "telemetry-info"


def telemetry_query() -> dict:
    """Ask a handshaken shard for its live metrics snapshot.

    Answered by :func:`telemetry_report`.  An *old* shard answers
    ``error`` (unknown message type), which clients treat as "no
    telemetry support" — the same interop rule as ``cache-query``.
    """
    return {"type": "telemetry-query"}


def telemetry_report(metrics: dict) -> dict:
    """A shard's metrics snapshot (see ``MetricsRegistry.snapshot``)."""
    return {"type": "telemetry-report", "metrics": dict(metrics)}


def telemetry_info(schema: int, *, secret: str | None = None) -> dict:
    """Pre-handshake live-metrics probe (``repro-cluster stats``).

    The operator tool does not know the shard's context fingerprint, so
    — exactly like ``cache-info`` — the probe rides its own message
    type answered before the hello state machine, with the auth digest
    computed over :data:`TELEMETRY_INFO_FINGERPRINT`.  Old shards
    answer ``reject`` ("expected hello"), which the CLI reports as
    unsupported.
    """
    message = {"type": "telemetry-info", "protocol": PROTOCOL_VERSION,
               "schema": int(schema)}
    if secret:
        message["auth"] = compute_auth(secret, "client",
                                       TELEMETRY_INFO_FINGERPRINT,
                                       int(schema))
    return message
