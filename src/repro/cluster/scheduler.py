"""Chunk scheduling across shards: adaptive sizing, retry, failover.

The scheduler turns "a batch of round specs" into "a stream of
``(index, outcome)`` pairs" using whatever shards survive:

* **Adaptive chunking** — every shard starts with a small chunk and the
  scheduler rescales it after each round trip towards a target chunk
  duration, clamped to ``[min_chunk, max_chunk]`` and at most doubling
  per step.  Fast shards stream big chunks; slow or busy shards
  naturally receive less work (work stealing falls out of the shared
  queue).
* **Retry / failover** — a chunk travels as one request and lands as
  one reply, so a shard that dies mid-chunk leaves no partial state:
  the whole chunk is requeued for the surviving shards.  A dead
  shard's work is *never dropped*; if every shard dies with work
  outstanding the scheduler raises :class:`ClusterError` naming each
  shard's failure.
* **Rejoin** — given a ``reconnect`` callable, a worker whose shard
  dies does not retire immediately: after requeueing its chunk it
  walks a :class:`~repro.resilience.RetryPolicy` backoff schedule
  trying to re-establish connect + handshake at the *same address*, so
  a shard that is restarted mid-sweep re-enters the live pool and
  steals work again.  Only handshake *refusals*
  (:class:`ShardRejected`: auth, fingerprint or schema mismatch) end
  the worker at once — a refusal is configuration, and configuration
  does not fix itself on retry.
* **Exactly-once delivery** — outcomes are deduplicated by index
  before they are yielded.  (Duplicates can only arise from a retried
  chunk whose first reply was half-received; the determinism contract
  makes them bit-identical, so first-wins is safe.)
* **Cache-aware placement** — given a ``placement`` map (shard name ->
  spec indices that shard's local result cache already holds, built by
  the backend from a pre-batch ``cache-query``), held rounds travel as
  *dedicated* chunks to the holding shard, which answers them straight
  from its disk tier; every other round flows through the shared
  adaptive queue exactly as before.  Placement is a preference, never
  a correctness constraint: an idle or surviving shard steals from a
  slow or dead owner's placed backlog (it merely recomputes what the
  owner would have served from cache), a requeued placed chunk goes
  back to the *shared* queue, and the all-dead/rejoin semantics above
  are untouched.  :meth:`ClusterScheduler.stats` reports the
  placement/cache telemetry.

The scheduler is transport-dumb: it drives :class:`ShardClient`\\ s,
which own one socket each and speak :mod:`repro.cluster.protocol`.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from collections import deque

from repro import telemetry
from repro.cluster import protocol
from repro.resilience import RetryPolicy, faults

__all__ = ["ShardError", "ShardRejected", "ChunkExecutionError",
           "ClusterError", "ShardClient", "ClusterScheduler"]

# Defaults; ClusterBackend exposes env/constructor overrides.
DEFAULT_TIMEOUT = 120.0
DEFAULT_MIN_CHUNK = 1
DEFAULT_MAX_CHUNK = 64
DEFAULT_TARGET_SECONDS = 0.5


class ShardError(ConnectionError):
    """One shard failed (handshake refused, died, or spoke garbage)."""


class ShardRejected(ShardError):
    """A shard *refused* the handshake (auth, fingerprint or schema).

    A refusal is a configuration mismatch, not a transient failure:
    retry and rejoin must not touch it, and the graceful-degradation
    path must surface it instead of silently computing locally.
    """


class ChunkExecutionError(RuntimeError):
    """A chunk's *rounds* raised on a healthy shard.

    The shard survives and says so (an ``error`` reply); the failure is
    deterministic — the serial backend would raise it too — so the
    scheduler must neither retire the shard nor retry the chunk
    elsewhere: it aborts the batch with this error, mirroring what a
    local backend would do.
    """


class ClusterError(RuntimeError):
    """No shard can make progress; outstanding work would be dropped."""


class ShardClient:
    """One connection to one shard server.

    ``timeout`` bounds the connect and the handshake — interactions
    whose duration the client controls.  Chunk *results* are waited for
    on a blocking socket instead: a round can legitimately take longer
    than any fixed timer (a bilevel attack on the full context), and
    under TCP a timeout cannot distinguish "still computing" from
    "hung" anyway — whereas a *dead* shard surfaces promptly as a
    reset/EOF.  OS-level TCP keepalive is enabled so a peer that
    vanishes silently (host loss, network partition) is also reaped,
    in minutes rather than never.
    """

    def __init__(self, address: tuple[str, int], *,
                 timeout: float = DEFAULT_TIMEOUT,
                 secret: str | None = None):
        self.address = (str(address[0]), int(address[1]))
        self.name = f"{self.address[0]}:{self.address[1]}"
        self.secret = secret or None
        try:
            faults.fire("connect", key=self.name)
            self._sock = socket.create_connection(self.address,
                                                  timeout=timeout)
        except OSError as exc:
            raise ShardError(f"cannot connect to shard {self.name}: "
                             f"{exc}") from exc
        protocol.enable_keepalive(self._sock)
        self.info: dict = {}
        # Shard-reported cache hits of the most recent chunk reply.
        self.last_cache_hits = 0
        # Shard-piggybacked metrics delta of the most recent chunk
        # reply (None from old shards or when telemetry is disabled).
        self.last_telemetry: dict | None = None

    def handshake(self, fingerprint: str, schema: int) -> dict:
        """Run the content-fingerprint handshake; raise on refusal."""
        try:
            faults.fire("handshake", key=self.name)
            protocol.send_message(self._sock,
                                  protocol.hello(fingerprint, schema,
                                                 secret=self.secret))
            reply = protocol.recv_message(self._sock)
        except (protocol.ProtocolError, ConnectionError, OSError) as exc:
            raise ShardError(f"handshake with shard {self.name} failed: "
                             f"{exc}") from exc
        if reply.get("type") != "welcome":
            raise ShardRejected(
                f"shard {self.name} refused the handshake: "
                f"{reply.get('reason', reply)}")
        if self.secret and not protocol.verify_auth(
                self.secret, "shard", str(fingerprint), int(schema),
                reply.get("auth")):
            # Mutual auth: a welcome without the shard-side digest means
            # the peer does not hold our secret (or is not our shard).
            raise ShardRejected(
                f"shard {self.name} failed mutual auth: its welcome "
                f"carries no valid REPRO_CLUSTER_SECRET digest")
        self.info = reply
        # Handshake done: chunk execution time belongs to the shard,
        # not to a local timer (see the class docstring).
        self._sock.settimeout(None)
        return reply

    def run_chunk(self, chunk_id: int, specs: list) -> list:
        """Execute one chunk remotely; outcomes aligned with ``specs``."""
        try:
            faults.fire("chunk_send", key=f"{self.name}#{chunk_id}")
            protocol.send_message(self._sock,
                                  protocol.run_chunk(chunk_id, specs))
            reply = protocol.recv_message(self._sock)
        except (protocol.ProtocolError, ConnectionError, OSError) as exc:
            raise ShardError(f"shard {self.name} died mid-chunk: "
                             f"{exc}") from exc
        if reply.get("type") == "error":
            # The shard is alive and answered; the chunk's rounds are
            # what failed.  Not a transport error — see
            # ChunkExecutionError.
            raise ChunkExecutionError(
                f"shard {self.name} reported a round failure in chunk "
                f"{chunk_id}: {reply.get('message')}")
        if reply.get("type") != "result" or \
                reply.get("chunk_id") != chunk_id:
            raise ShardError(f"shard {self.name} answered out of "
                             f"protocol: {reply.get('type')!r}")
        outcomes = reply.get("outcomes", [])
        if len(outcomes) != len(specs):
            raise ShardError(
                f"shard {self.name} returned {len(outcomes)} outcomes "
                f"for a {len(specs)}-spec chunk")
        self.last_cache_hits = int(reply.get("cache_hits", 0))
        self.last_telemetry = reply.get("telemetry")
        return outcomes

    def query_telemetry(self) -> dict | None:
        """The shard's live metrics snapshot, or ``None``.

        Same interop rule as :meth:`query_cache`: an *old* shard
        answers ``error`` for the unknown ``telemetry-query`` type and
        stays alive, so any non-report reply means "no telemetry
        support"; only a transport failure raises :class:`ShardError`.
        """
        try:
            protocol.send_message(self._sock, protocol.telemetry_query())
            reply = protocol.recv_message(self._sock)
        except (protocol.ProtocolError, ConnectionError, OSError) as exc:
            raise ShardError(f"telemetry query to shard {self.name} "
                             f"failed: {exc}") from exc
        if reply.get("type") != "telemetry-report":
            return None
        return dict(reply.get("metrics", {}))

    def query_cache(self, keys) -> tuple[set, dict]:
        """Ask the shard which of these round keys its cache tier holds.

        Returns ``(held, stats)``.  An *old* shard answers ``error``
        for the unknown message type and stays alive — any non-report
        reply therefore means "no cache support" and comes back as
        ``(set(), {})``; only a transport failure raises
        :class:`ShardError`.
        """
        try:
            protocol.send_message(self._sock, protocol.cache_query(keys))
            reply = protocol.recv_message(self._sock)
        except (protocol.ProtocolError, ConnectionError, OSError) as exc:
            raise ShardError(f"cache query to shard {self.name} failed: "
                             f"{exc}") from exc
        if reply.get("type") != "cache-report":
            return set(), {}
        return set(reply.get("held", [])), dict(reply.get("stats", {}))

    def shutdown_server(self) -> None:
        """Ask the shard process to exit its serve loop (best effort)."""
        try:
            protocol.send_message(self._sock, {"type": "shutdown"})
            protocol.recv_message(self._sock)
        except (protocol.ProtocolError, ConnectionError, OSError):
            pass

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass


class _ShardWorker(threading.Thread):
    """Drives one shard: pull items, push chunks, adapt, requeue on death.

    A transport failure mid-batch does not retire the worker when the
    scheduler has a ``reconnect`` factory: the chunk is requeued (other
    shards steal it immediately) and the worker walks the retry
    policy's backoff schedule attempting to rejoin its shard at the
    same address — the path a restarted shard re-enters the pool by.
    """

    def __init__(self, scheduler: "ClusterScheduler", client: ShardClient):
        super().__init__(daemon=True, name=f"shard-{client.name}")
        self.scheduler = scheduler
        self.client = client
        self.address = getattr(client, "address", None)
        self.chunk_size = scheduler.min_chunk
        self.failure: ShardError | None = None
        self.chunks_done = 0
        self.rounds_done = 0
        self.rejoins = 0

    def run(self) -> None:
        sched = self.scheduler
        chunk: list = []
        try:
            while True:
                chunk, source = sched._take(self.chunk_size,
                                            self.client.name)
                if not chunk:
                    # Don't exit while another shard still holds work:
                    # if it dies, its chunk is requeued and this shard
                    # must be around to steal it.  Only an empty queue
                    # with nothing in flight means the batch is done.
                    if sched._finished():
                        break
                    time.sleep(0.02)
                    continue
                chunk_id = sched._next_chunk_id()
                start = time.perf_counter()
                try:
                    outcomes = self.client.run_chunk(
                        chunk_id, [spec for _, spec in chunk])
                except ShardError as exc:
                    sched._requeue(chunk)
                    chunk = []
                    if self._rejoin(exc):
                        continue
                    return
                elapsed = time.perf_counter() - start
                telemetry.histogram("cluster.chunk.seconds") \
                    .observe(elapsed)
                self.chunks_done += 1
                self.rounds_done += len(chunk)
                self._adapt(len(chunk), elapsed)
                sched._deliver(
                    chunk, outcomes, source=source,
                    cache_hits=getattr(self.client, "last_cache_hits", 0),
                    telemetry_delta=getattr(self.client,
                                            "last_telemetry", None))
                chunk = []
        except ChunkExecutionError as exc:
            # Deterministic round failure on a live shard: retrying it
            # elsewhere would fail identically (and mask the real
            # error) — abort the whole batch like a local backend.
            sched._requeue(chunk)
            sched._abort(exc)
        except Exception as exc:
            self.failure = exc if isinstance(exc, ShardError) else \
                ShardError(f"shard {self.client.name} worker crashed: "
                           f"{exc!r}")
            if chunk:
                sched._requeue(chunk)
        finally:
            # A rejoined client is this worker's own (it is not in
            # sched.clients, which the backend closes) — release it.
            if self.client not in sched.clients:
                self.client.close()
            sched._worker_done(self)

    def _rejoin(self, exc: ShardError) -> bool:
        """Try to reconnect to this worker's shard; ``True`` on success.

        On ``False`` the worker exits; ``self.failure`` then carries
        the last error (or ``None`` when the batch simply finished on
        other shards while we were backing off — nothing was lost).
        """
        sched = self.scheduler
        self.failure = exc
        if sched.reconnect is None or isinstance(exc, ShardRejected):
            return False
        self.client.close()
        for delay in sched.retry_policy.delays(f"rejoin:{self.name}"):
            if not self._sleep_unless_finished(delay):
                self.failure = None
                return False
            try:
                client = sched.reconnect(self.address)
            except ShardRejected as refused:
                # A restarted shard that now refuses us (new context,
                # changed secret) is configuration, not weather.
                self.failure = refused
                return False
            except ShardError as again:
                self.failure = again
                continue
            self.client = client
            self.chunk_size = sched.min_chunk  # re-learn its speed
            self.failure = None
            self.rejoins += 1
            sched._note_rejoin()
            return True
        return False

    def _sleep_unless_finished(self, seconds: float) -> bool:
        """Back off in small slices; ``False`` once the batch is done."""
        deadline = time.monotonic() + seconds
        while True:
            if self.scheduler._finished():
                return False
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return True
            time.sleep(min(remaining, 0.05))

    def _adapt(self, n: int, elapsed: float) -> None:
        """Rescale the chunk towards the target duration (≤ 2x per step)."""
        if elapsed <= 0.0:
            target = self.chunk_size * 2
        else:
            per_item = elapsed / n
            target = int(self.scheduler.target_seconds / max(per_item, 1e-9))
        target = min(target, self.chunk_size * 2)
        self.chunk_size = max(self.scheduler.min_chunk,
                              min(self.scheduler.max_chunk, target))


class ClusterScheduler:
    """Stream a batch over a set of live shard clients.

    Parameters
    ----------
    clients:
        Handshaken :class:`ShardClient`\\ s (at least one).
    min_chunk, max_chunk, target_seconds:
        Adaptive-chunking knobs: chunk sizes stay in
        ``[min_chunk, max_chunk]`` and chase ``target_seconds`` of work
        per round trip.
    reconnect:
        Optional ``address -> handshaken ShardClient`` factory.  When
        given, a worker whose shard dies walks ``retry_policy``'s
        backoff schedule calling it, so a restarted shard at the same
        address rejoins the pool mid-sweep (see the module docs).
    retry_policy:
        The :class:`~repro.resilience.RetryPolicy` governing rejoin
        attempts; defaults to ``RetryPolicy()``.
    placement:
        Optional ``shard name -> iterable of spec indices`` map of
        rounds whose results that shard's local cache tier already
        holds (from :meth:`ShardClient.query_cache`).  Placed rounds
        travel as dedicated chunks to their owner first; names that
        match no client are ignored (their rounds stay in the shared
        queue).  See the module docs: a preference, not a constraint.
    """

    def __init__(self, clients: list[ShardClient], *,
                 min_chunk: int = DEFAULT_MIN_CHUNK,
                 max_chunk: int = DEFAULT_MAX_CHUNK,
                 target_seconds: float = DEFAULT_TARGET_SECONDS,
                 reconnect=None,
                 retry_policy: RetryPolicy | None = None,
                 placement: dict | None = None):
        if not clients:
            raise ClusterError("no live shards to schedule on")
        if min_chunk < 1 or max_chunk < min_chunk:
            raise ValueError(
                f"need 1 <= min_chunk <= max_chunk, got "
                f"{min_chunk}/{max_chunk}")
        self.clients = list(clients)
        self.min_chunk = int(min_chunk)
        self.max_chunk = int(max_chunk)
        self.target_seconds = float(target_seconds)
        self.reconnect = reconnect
        self.retry_policy = retry_policy or RetryPolicy()
        names = {client.name for client in self.clients}
        self._owner_of: dict[int, str] = {}
        for owner, indices in (placement or {}).items():
            if owner in names:
                for index in indices:
                    self._owner_of.setdefault(int(index), owner)
        self._placed: dict[str, deque] = {}
        self._pending: deque = deque()
        self._lock = threading.Lock()
        self._results: queue.Queue = queue.Queue()
        self._chunk_counter = 0
        self._live_workers = 0
        self._in_flight = 0
        self._abort_exc: BaseException | None = None
        self.failures: list[ShardError] = []
        self.rejoins = 0
        self.rounds_done = 0
        self.placed_rounds = 0
        self.placement_hits = 0
        self.placed_steals = 0
        self.shard_cache_hits = 0
        self.requeues = 0

    def _note_rejoin(self) -> None:
        telemetry.counter("cluster.rejoins").inc()
        with self._lock:
            self.rejoins += 1

    # -- worker-side hooks (thread-safe) -----------------------------------

    @staticmethod
    def _drain(source: deque, n: int) -> list:
        return [source.popleft() for _ in range(min(n, len(source)))]

    def _take(self, n: int, owner: str | None = None) -> tuple[list, str]:
        """Hand ``owner`` up to ``n`` items plus where they came from.

        Own placed backlog first (a *dedicated* chunk — never mixed
        with queue items, so the whole chunk answers from the owner's
        cache tier), then the shared queue, and only when both are
        empty a steal from the largest other placed backlog (keeping a
        slow or dead owner from stalling the batch).
        """
        with self._lock:
            if self._abort_exc is not None:
                return [], "queue"
            own = self._placed.get(owner or "")
            if own:
                chunk = self._drain(own, n)
                self._in_flight += len(chunk)
                return chunk, "own"
            if self._pending:
                chunk = self._drain(self._pending, n)
                self._in_flight += len(chunk)
                return chunk, "queue"
            victim = max((backlog for backlog in self._placed.values()
                          if backlog), key=len, default=None)
            if victim is not None:
                chunk = self._drain(victim, n)
                self._in_flight += len(chunk)
                self.placed_steals += 1
                telemetry.counter("cluster.chunks_stolen").inc()
                return chunk, "stolen"
            return [], "queue"

    def _requeue(self, chunk: list) -> None:
        if chunk:
            telemetry.counter("cluster.chunks_requeued").inc()
        with self._lock:
            if chunk:
                self.requeues += 1
            # Requeue at the front: retried work should not gratuitously
            # fall behind fresh work in arrival order.  Placed chunks
            # requeue to the *shared* queue too — their owner just
            # demonstrated it is slow or dead, so any survivor should
            # pick them up immediately.
            self._pending.extendleft(reversed(chunk))
            self._in_flight -= len(chunk)

    def _abort(self, exc: BaseException) -> None:
        """Stop scheduling: record ``exc``, drop pending work, wake all."""
        with self._lock:
            if self._abort_exc is None:
                self._abort_exc = exc
            self._pending.clear()
            self._placed.clear()
        self._results.put(None)  # wake the consumer

    def _finished(self) -> bool:
        with self._lock:
            return self._abort_exc is not None or \
                (not self._pending and self._in_flight == 0 and
                 not any(self._placed.values()))

    def _next_chunk_id(self) -> int:
        with self._lock:
            self._chunk_counter += 1
            return self._chunk_counter

    def _deliver(self, chunk: list, outcomes: list, *,
                 source: str = "queue", cache_hits: int = 0,
                 telemetry_delta: dict | None = None) -> None:
        telemetry.merge(telemetry_delta)
        for (index, _), outcome in zip(chunk, outcomes):
            self._results.put((index, outcome))
        with self._lock:
            self._in_flight -= len(chunk)
            self.rounds_done += len(chunk)
            if source == "own":
                self.placement_hits += len(chunk)
                telemetry.counter("cluster.placement_hits") \
                    .inc(len(chunk))
            self.shard_cache_hits += int(cache_hits)
            if cache_hits:
                telemetry.counter("cluster.shard_cache_hits") \
                    .inc(int(cache_hits))

    def _worker_done(self, worker: _ShardWorker) -> None:
        with self._lock:
            self._live_workers -= 1
            if worker.failure is not None:
                self.failures.append(worker.failure)
        self._results.put(None)  # wake the consumer to re-check liveness

    # -- consumer side -----------------------------------------------------

    def stats(self) -> dict:
        """Telemetry of this batch: placement and shard-cache counters.

        ``placement_hits`` counts rounds a shard answered from its
        *own* placed backlog, ``placed_steals`` counts chunks another
        shard stole from a slow/dead owner's backlog, and
        ``shard_cache_hits`` sums the per-chunk cache-hit counts the
        shards reported (which can exceed ``placement_hits`` — a shard
        also serves cached rounds that arrive via the shared queue).
        """
        with self._lock:
            return {
                "chunks": self._chunk_counter,
                "rounds": self.rounds_done,
                "placed_rounds": self.placed_rounds,
                "placement_hits": self.placement_hits,
                "placed_steals": self.placed_steals,
                "shard_cache_hits": self.shard_cache_hits,
                "requeues": self.requeues,
                "rejoins": self.rejoins,
            }

    def run_iter(self, specs: list):
        """Yield ``(index, outcome)`` pairs as shards complete them.

        Every index in ``range(len(specs))`` is yielded exactly once;
        raises :class:`ClusterError` if all shards die first.
        """
        specs = list(specs)
        if not specs:
            return
        with self._lock:
            for index, spec in enumerate(specs):
                owner = self._owner_of.get(index)
                if owner is None:
                    self._pending.append((index, spec))
                else:
                    self._placed.setdefault(owner,
                                            deque()).append((index, spec))
                    self.placed_rounds += 1
            self._live_workers = len(self.clients)
        workers = [_ShardWorker(self, client) for client in self.clients]
        for worker in workers:
            worker.start()

        done = set()
        try:
            while len(done) < len(specs):
                item = self._results.get()
                with self._lock:
                    abort = self._abort_exc
                if abort is not None:
                    # A healthy shard reported a deterministic round
                    # failure — surface it like a local backend would.
                    raise abort
                if item is None:
                    # A worker exited.  Sentinels are queue-ordered
                    # only against their *own* worker's deliveries: a
                    # fast survivor can finish and exit while an
                    # earlier-died worker's sentinel is still ahead of
                    # the survivor's results in the queue.  Once the
                    # live count reads zero, though, every worker has
                    # already enqueued everything it ever will — so
                    # drain and yield what is there, and only then is
                    # anything still missing genuinely lost work.
                    with self._lock:
                        alive = self._live_workers
                    if alive > 0:
                        continue
                    while len(done) < len(specs):
                        try:
                            tail = self._results.get_nowait()
                        except queue.Empty:
                            break
                        if tail is None:
                            continue
                        index, outcome = tail
                        if index in done:
                            continue
                        done.add(index)
                        yield index, outcome
                    if len(done) < len(specs):
                        raise ClusterError(
                            f"all shards failed with "
                            f"{len(specs) - len(done)} rounds "
                            "outstanding: " + "; ".join(
                                str(f) for f in self.failures))
                    continue
                index, outcome = item
                if index in done:
                    continue  # retried chunk double-delivered: first wins
                done.add(index)
                yield index, outcome
        finally:
            # Covers normal completion, errors, *and* an abandoned
            # stream (generator closed early): stop handing out work so
            # workers exit after their current chunk instead of
            # executing the rest of the batch nobody will read.
            if len(done) < len(specs):
                self._abort(ClusterError("stream abandoned"))
            for worker in workers:
                worker.join(timeout=5.0)
