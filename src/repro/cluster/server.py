"""The shard server: one host's slice of the evaluation service.

A :class:`ShardServer` owns exactly one
:class:`~repro.experiments.runner.ExperimentContext`.  At startup it

1. prewarms every registered attack/defence/victim family on the
   context (:func:`~repro.engine.spec.prewarm_all`), so per-context
   work like the boundary attack's surrogate fit happens once, before
   any client connects;
2. with ``jobs > 1``, publishes the context's data arrays into a
   **per-host shared-memory segment** and keeps a persistent process
   pool mapped onto it — the generalisation of the process backend's
   zero-copy transport from "once per batch" to "once per server
   lifetime";
3. listens on a TCP socket and answers the protocol of
   :mod:`repro.cluster.protocol`: a content-fingerprint handshake,
   then round chunks, executed through the engine's own
   :func:`~repro.engine.backends.execute_round` — so a shard's
   outcomes are bit-identical to the serial backend's by construction;
4. with ``--cache-dir`` (or ``REPRO_SHARD_CACHE_DIR``), keeps a
   **shard-local** :class:`~repro.engine.cache.ResultCache` disk tier
   under the same content keys and schema gate as the client cache:
   every computed outcome streams to disk *as it lands* (not when the
   chunk completes), so a shard killed mid-chunk replays its partial
   chunk from disk on rejoin instead of recomputing, and a warm fleet
   serves repeat rounds to *any* client — including a cold one —
   without recomputation.  The handshake already refuses clients on a
   different cache schema version, so a key held by the shard names
   bit-identical content for every admitted client.

Run one with the CLI (``python -m repro.experiments.cli repro-cluster
serve ...``) or directly::

    python -m repro.cluster --context-file ctx.pkl --port 7781

On startup the server prints a single ``READY host=... port=...
fingerprint=...`` line to stdout — the localhost autospawn pool (and
any orchestrator) parses it to learn the bound port.

``--chaos-exit-after N`` is the failure-injection hook: the server
executes rounds one at a time and calls ``os._exit`` after the N-th,
mid-chunk, without replying — exactly the crash profile the
scheduler's requeue logic must survive.  It exists for the tests and
for operators who want to drill failover.
"""

from __future__ import annotations

import argparse
import os
import pickle
import socket
import sys
import threading
from concurrent.futures import ProcessPoolExecutor

from repro import telemetry
from repro.cluster import protocol
from repro.engine.backends import (
    _FIT_WINDOW,
    _pack_context,
    _release_shm,
    _worker_init,
    _worker_run_specs_telemetry,
    execute_rounds,
)
from repro.engine.cache import ResultCache, cache_schema_version, round_keys
from repro.engine.spec import prewarm_all
from repro.resilience import env_int, faults

__all__ = ["ShardExecutor", "ShardServer", "serve", "main"]

# Exit code of a chaos-triggered mid-chunk crash (distinguishable from
# ordinary failures in tests and process tables).
CHAOS_EXIT_CODE = 17


class ShardExecutor:
    """Executes round chunks for one context, serially or on a pool.

    With ``jobs <= 1`` rounds run in-process.  Otherwise the context is
    packed once into shared memory and a persistent
    ``ProcessPoolExecutor`` maps it read-only in every worker — chunk
    execution then ships only the tiny specs.  ``close()`` releases the
    pool and the segment.
    """

    def __init__(self, ctx, jobs: int | None = None):
        self.ctx = ctx
        self.jobs = int(jobs) if jobs else 1
        self._pool = None
        self._shm = None
        if self.jobs > 1:
            meta, shm = _pack_context(ctx)
            self._shm = shm
            try:
                blob = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs, initializer=_worker_init,
                    initargs=(blob,),
                )
                # Spawn every worker NOW, before any client connects.
                # ProcessPoolExecutor forks workers lazily at submit
                # time; a worker forked mid-connection inherits the
                # accepted socket fd, and if the server then dies the
                # orphaned worker keeps that fd open — turning the
                # client's instant connection-reset (fast failover)
                # into a full protocol timeout.
                for future in [self._pool.submit(os.getpid)
                               for _ in range(self.jobs)]:
                    future.result()
            except Exception:
                _release_shm(self._shm)
                self._shm = None
                raise

    def run(self, specs: list) -> list:
        """Outcomes for ``specs``, in order (the round semantics of
        :func:`~repro.engine.backends.execute_round`, batch-dispatched
        through :func:`~repro.engine.backends.execute_rounds`)."""
        return [outcome for _, outcome in self.run_iter(specs)]

    def run_iter(self, specs: list):
        """Yield ``(offset, outcome)`` pairs, in order, as they land.

        The incremental face of :meth:`run` for the shard cache tier's
        streaming-to-disk contract: serial execution surfaces one fit
        window at a time, pool execution one pool chunk at a time —
        either way an outcome is yielded (and can hit disk) long before
        the whole chunk completes, so a crash mid-chunk leaves the
        already-landed prefix replayable.
        """
        if self._pool is None:
            for base in range(0, len(specs), _FIT_WINDOW):
                window = specs[base:base + _FIT_WINDOW]
                for offset, outcome in enumerate(
                        execute_rounds(self.ctx, window)):
                    yield base + offset, outcome
            return
        chunksize = max(1, len(specs) // (self.jobs * 4))
        chunks = [specs[i:i + chunksize]
                  for i in range(0, len(specs), chunksize)]
        position = 0
        for chunk_outcomes, delta in self._pool.map(
                _worker_run_specs_telemetry, chunks):
            # Fold each pool worker's stage metrics into the shard's
            # own registry, so the shard's piggybacked deltas (and its
            # telemetry-report answers) cover the whole pool.
            telemetry.merge(delta)
            for outcome in chunk_outcomes:
                yield position, outcome
                position += 1

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        _release_shm(self._shm)
        self._shm = None


class ShardServer:
    """Serve round chunks for one context over TCP.

    Parameters
    ----------
    ctx:
        The experiment context this shard holds (every client must
        present a matching fingerprint).
    host, port:
        Bind address; port ``0`` asks the OS for a free port (read the
        chosen one from :attr:`port` or the READY line).
    jobs:
        Worker processes for chunk execution (1 = in-process serial).
    chaos_exit_after:
        Failure injection: hard-exit mid-chunk after this many rounds.
        A ``shard:crash_after_rounds`` rule in the armed fault plan
        (``REPRO_FAULTS``) arms the same hook; when both are set the
        smaller threshold wins.
    secret:
        Shared secret for mutual HMAC handshake auth; defaults to
        ``REPRO_CLUSTER_SECRET``.  When set, clients without a valid
        digest are refused by name — and a secretless shard refuses
        clients that *do* present one, so a half-configured fleet
        fails loudly.
    cache_dir:
        Directory for the shard-local result-cache disk tier; defaults
        to ``REPRO_SHARD_CACHE_DIR``.  ``None``/unset runs cache-less
        (every chunk recomputes, ``cache-query`` answers empty).  The
        tier uses the same content keys and schema gate as the client
        cache, so one directory may be shared by several shards (and
        by a client cache) — entries are keyed by context fingerprint
        and written atomically.
    cache_max_entries:
        LRU cap for the cache's in-memory tier; defaults to
        ``REPRO_SHARD_CACHE_MAX_ENTRIES`` (0/unset = unbounded).
        Eviction never touches the disk tier.
    """

    def __init__(self, ctx, *, host: str = "127.0.0.1", port: int = 0,
                 jobs: int | None = None, chaos_exit_after: int | None = None,
                 secret: str | None = None, cache_dir: str | None = None,
                 cache_max_entries: int | None = None):
        self.ctx = ctx
        self.fingerprint = ctx.fingerprint()
        self.schema = cache_schema_version()
        if secret is None:
            secret = os.environ.get("REPRO_CLUSTER_SECRET")
        self.secret = secret or None
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_SHARD_CACHE_DIR") or None
        if cache_max_entries is None:
            cache_max_entries = env_int("REPRO_SHARD_CACHE_MAX_ENTRIES", 0,
                                        lo=0, hi=1_000_000_000) or None
        self.cache = ResultCache(disk_dir=cache_dir,
                                 max_entries=cache_max_entries) \
            if cache_dir else None
        armed = faults.crash_threshold("shard")
        if armed is not None:
            chaos_exit_after = armed if chaos_exit_after is None \
                else min(chaos_exit_after, armed)
        self.chaos_exit_after = chaos_exit_after
        self._rounds_executed = 0
        self._chaos_lock = threading.Lock()
        prewarm_all(ctx)
        self.executor = ShardExecutor(ctx, jobs)
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, int(port)))
        self._sock.listen(16)
        self.host, self.port = self._sock.getsockname()[:2]
        self._shutdown = threading.Event()

    # -- serving -----------------------------------------------------------

    def announce(self, stream=None) -> None:
        """Print the machine-parsable READY line (see module docs)."""
        stream = stream if stream is not None else sys.stdout
        print(f"READY host={self.host} port={self.port} "
              f"fingerprint={self.fingerprint} pid={os.getpid()}",
              file=stream, flush=True)

    def serve_forever(self) -> None:
        """Accept connections until a ``shutdown`` message arrives."""
        self._sock.settimeout(0.5)  # poll the shutdown flag
        try:
            while not self._shutdown.is_set():
                try:
                    conn, _ = self._sock.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break  # listener closed from another thread
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn,), daemon=True
                )
                thread.start()
        finally:
            self.close()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            with conn:
                # Same rationale as the client side: this thread waits
                # on a blocking recv, so a client host that vanishes
                # silently must be reaped by OS keepalive or it would
                # pin the thread and fd for the shard's lifetime.
                protocol.enable_keepalive(conn)
                if not self._handshake(conn):
                    return
                try:
                    peer = "%s:%s" % conn.getpeername()[:2]
                except OSError:
                    peer = "?"
                with telemetry.trace_span("shard.connection", peer=peer):
                    while not self._shutdown.is_set():
                        try:
                            message = protocol.recv_message(conn)
                        except protocol.ConnectionClosed:
                            return
                        if not self._dispatch(conn, message):
                            return
        except (protocol.ProtocolError, ConnectionError, OSError):
            return  # a broken client never takes the shard down

    def _handshake(self, conn: socket.socket) -> bool:
        message = protocol.recv_message(conn)
        if message.get("type") == "cache-info":
            # Pre-handshake stats probe: answer and close (the prober
            # does not know — and does not learn — this shard's
            # context beyond what the stats expose post-auth).
            self._answer_cache_info(conn, message)
            return False
        if message.get("type") == "telemetry-info":
            # Same pre-handshake pattern for live metrics
            # (repro-cluster stats); old shards hit the reject below.
            self._answer_telemetry_info(conn, message)
            return False
        if message.get("type") != "hello":
            protocol.send_message(conn, protocol.reject(
                f"expected hello, got {message.get('type')!r}"))
            return False
        reason = None
        auth = message.get("auth")
        if self.secret:
            # Auth first: an unauthenticated client learns nothing
            # about this shard's context from the refusal.
            if auth is None:
                reason = ("auth required: shard holds a "
                          "REPRO_CLUSTER_SECRET but the hello carries "
                          "no auth digest")
            elif not protocol.verify_auth(
                    self.secret, "client",
                    str(message.get("fingerprint")),
                    int(message.get("schema") or 0), auth):
                reason = ("auth failed: the hello's digest does not "
                          "match this shard's REPRO_CLUSTER_SECRET")
        elif auth is not None:
            reason = ("auth mismatch: client presented an auth digest "
                      "but this shard holds no REPRO_CLUSTER_SECRET")
        if reason is None and \
                message.get("protocol") != protocol.PROTOCOL_VERSION:
            reason = (f"protocol version mismatch: shard speaks "
                      f"v{protocol.PROTOCOL_VERSION}, client "
                      f"v{message.get('protocol')}")
        elif message.get("schema") != self.schema:
            reason = (f"cache schema mismatch: shard at v{self.schema}, "
                      f"client at v{message.get('schema')} — the two builds "
                      f"disagree on round identity")
        elif message.get("fingerprint") != self.fingerprint:
            reason = (f"context fingerprint mismatch: shard holds "
                      f"{self.fingerprint[:12]}…, client asked for "
                      f"{str(message.get('fingerprint'))[:12]}…")
        if reason is not None:
            protocol.send_message(conn, protocol.reject(reason))
            return False
        protocol.send_message(conn, protocol.welcome(
            self.fingerprint, host=self.host, pid=os.getpid(),
            capacity=self.executor.jobs, schema=self.schema,
            secret=self.secret))
        return True

    def _answer_cache_info(self, conn: socket.socket, message: dict) -> None:
        """Answer a pre-handshake ``cache-info`` probe (auth-gated)."""
        auth = message.get("auth")
        reason = None
        if self.secret:
            if not protocol.verify_auth(
                    self.secret, "client", protocol.CACHE_INFO_FINGERPRINT,
                    int(message.get("schema") or 0), auth):
                reason = ("auth failed: the cache-info probe carries no "
                          "digest matching this shard's "
                          "REPRO_CLUSTER_SECRET")
        elif auth is not None:
            reason = ("auth mismatch: probe presented an auth digest but "
                      "this shard holds no REPRO_CLUSTER_SECRET")
        if reason is None and \
                message.get("protocol") != protocol.PROTOCOL_VERSION:
            reason = (f"protocol version mismatch: shard speaks "
                      f"v{protocol.PROTOCOL_VERSION}, probe "
                      f"v{message.get('protocol')}")
        if reason is not None:
            protocol.send_message(conn, protocol.reject(reason))
            return
        protocol.send_message(
            conn, protocol.cache_report([], self.cache_stats()))

    def _answer_telemetry_info(self, conn: socket.socket,
                               message: dict) -> None:
        """Answer a pre-handshake ``telemetry-info`` probe (auth-gated)."""
        auth = message.get("auth")
        reason = None
        if self.secret:
            if not protocol.verify_auth(
                    self.secret, "client",
                    protocol.TELEMETRY_INFO_FINGERPRINT,
                    int(message.get("schema") or 0), auth):
                reason = ("auth failed: the telemetry-info probe carries "
                          "no digest matching this shard's "
                          "REPRO_CLUSTER_SECRET")
        elif auth is not None:
            reason = ("auth mismatch: probe presented an auth digest but "
                      "this shard holds no REPRO_CLUSTER_SECRET")
        if reason is None and \
                message.get("protocol") != protocol.PROTOCOL_VERSION:
            reason = (f"protocol version mismatch: shard speaks "
                      f"v{protocol.PROTOCOL_VERSION}, probe "
                      f"v{message.get('protocol')}")
        if reason is not None:
            protocol.send_message(conn, protocol.reject(reason))
            return
        protocol.send_message(
            conn, protocol.telemetry_report(self.telemetry_stats()))

    def telemetry_stats(self) -> dict:
        """Live metrics for ``telemetry-report`` replies."""
        stats = {
            "enabled": telemetry.enabled(),
            "fingerprint": self.fingerprint,
            "pid": os.getpid(),
            "rounds_executed": self._rounds_executed,
        }
        stats.update(telemetry.snapshot())
        return stats

    def cache_stats(self) -> dict:
        """Cache-tier telemetry for ``cache-report`` replies."""
        stats = {
            "enabled": self.cache is not None,
            "fingerprint": self.fingerprint,
            "schema_version": self.schema,
        }
        if self.cache is not None:
            info = self.cache.describe()
            stats.update(
                cache_dir=info["disk_dir"],
                entry_count=info["entry_count"],
                total_bytes=info["total_bytes"],
                memory_entries=info["memory_entries"],
                hits=self.cache.stats.hits,
                stores=self.cache.stats.stores,
            )
        return stats

    def _dispatch(self, conn: socket.socket, message: dict) -> bool:
        kind = message["type"]
        if kind == "ping":
            protocol.send_message(conn, {"type": "pong"})
            return True
        if kind == "shutdown":
            protocol.send_message(conn, {"type": "bye"})
            self._shutdown.set()
            return False
        if kind == "cache-query":
            keys = message.get("keys", [])
            held = self.cache.held_keys(keys) if self.cache is not None \
                else []
            protocol.send_message(
                conn, protocol.cache_report(held, self.cache_stats()))
            return True
        if kind == "telemetry-query":
            protocol.send_message(
                conn, protocol.telemetry_report(self.telemetry_stats()))
            return True
        if kind == "run":
            chunk_id = int(message.get("chunk_id", -1))
            specs = message.get("specs", [])
            try:
                with telemetry.trace_span("shard.chunk", chunk=chunk_id,
                                          rounds=len(specs)):
                    outcomes, cache_hits = self._run_chunk(specs)
            except Exception as exc:  # the shard survives a bad chunk
                protocol.send_message(
                    conn, protocol.chunk_error(chunk_id, repr(exc)))
                return True
            telemetry.counter("shard.chunks_total").inc()
            telemetry.counter("shard.rounds_total").inc(len(specs))
            if faults.fire("chunk_reply", key=f"chunk {chunk_id}"):
                # Injected drop: the work is done but the reply never
                # leaves — close the connection so the client sees the
                # same EOF a shard crash-after-compute produces.
                return False
            protocol.send_message(
                conn, protocol.chunk_result(
                    chunk_id, outcomes, cache_hits=cache_hits,
                    telemetry=telemetry.flush_delta()))
            return True
        protocol.send_message(conn, protocol.chunk_error(
            -1, f"unknown message type {kind!r}"))
        return True

    def _run_chunk(self, specs: list) -> tuple[list, int]:
        """Outcomes for ``specs`` plus how many came from the cache tier.

        With a cache: held rounds are served without touching the
        executor (they do not count as *executed* — the chaos
        crash-after-N threshold counts real work only, which is what
        makes replay-from-disk after a crash observable), and every
        computed outcome is stored the moment it lands, not when the
        chunk completes — the streaming-to-disk contract.
        """
        if self.cache is None:
            return self._collect(specs, lambda i, outcome: None), 0
        keys = round_keys(self.fingerprint, specs)
        outcomes: list = [None] * len(specs)
        to_run: list[int] = []
        for i, key in enumerate(keys):
            cached = self.cache.get(key)
            if cached is not None:
                outcomes[i] = cached
            else:
                to_run.append(i)
        cache_hits = len(specs) - len(to_run)
        if to_run:
            def land(offset, outcome):
                index = to_run[offset]
                self.cache.put(keys[index], outcome)
                outcomes[index] = outcome

            self._collect([specs[i] for i in to_run], land)
        return outcomes, cache_hits

    def _collect(self, specs: list, land) -> list:
        """Execute ``specs``, calling ``land(offset, outcome)`` per round
        as it lands; honours the chaos crash hook.  Returns outcomes in
        order (for the cache-less path)."""
        if self.chaos_exit_after is None:
            collected = [None] * len(specs)
            for offset, outcome in self.executor.run_iter(specs):
                self._rounds_executed += 1
                collected[offset] = outcome
                land(offset, outcome)
            return collected
        # Chaos mode: execute one round at a time so the crash lands
        # mid-chunk, after real work, with the reply never sent —
        # but with everything *already landed* on the disk tier.
        collected = []
        for offset, spec in enumerate(specs):
            with self._chaos_lock:
                if self._rounds_executed >= self.chaos_exit_after:
                    os._exit(CHAOS_EXIT_CODE)
                self._rounds_executed += 1
            outcome = self.executor.run([spec])[0]
            collected.append(outcome)
            land(offset, outcome)
        return collected

    def close(self) -> None:
        self._shutdown.set()
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass
        self.executor.close()


def serve(ctx, *, host: str = "127.0.0.1", port: int = 0,
          jobs: int | None = None, chaos_exit_after: int | None = None,
          secret: str | None = None, cache_dir: str | None = None,
          cache_max_entries: int | None = None,
          announce: bool = True) -> None:
    """Construct a :class:`ShardServer` for ``ctx`` and serve forever.

    Installs a SIGTERM handler so an orchestrator's ordinary terminate
    shuts the shard down *gracefully* — the worker pool exits and the
    shared-memory segment is unlinked, instead of leaking both (the
    chaos hook's ``os._exit`` deliberately bypasses this: it simulates
    the host crash where no cleanup can run).
    """
    import signal

    server = ShardServer(ctx, host=host, port=port, jobs=jobs,
                         chaos_exit_after=chaos_exit_after, secret=secret,
                         cache_dir=cache_dir,
                         cache_max_entries=cache_max_entries)

    def _terminate(signum, frame):
        raise SystemExit(0)  # unwinds into serve_forever's cleanup

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        if announce:
            server.announce()
        server.serve_forever()
    finally:
        server.close()
        signal.signal(signal.SIGTERM, previous)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="Serve evaluation rounds for one experiment context.",
    )
    parser.add_argument("--context-file", type=str, default=None,
                        help="pickled ExperimentContext to serve (see "
                             "repro.experiments.runner.save_context)")
    parser.add_argument("--context", type=str, default=None,
                        choices=("synthetic", "spambase"),
                        help="construct the context by name instead")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--n-samples", type=int, default=None)
    parser.add_argument("--host", type=str, default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 (default) binds a free port; the READY "
                             "line reports the choice")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes per shard (default 1: "
                             "in-process execution)")
    parser.add_argument("--chaos-exit-after", type=int, default=None,
                        help="failure injection: hard-exit mid-chunk "
                             "after N rounds (tests/failover drills)")
    parser.add_argument("--faults", type=str, default=None,
                        help="arm a fault plan (see repro.resilience), "
                             "e.g. 'chunk_reply:drop_first=1;seed=7'; "
                             "overrides REPRO_FAULTS")
    parser.add_argument("--secret", type=str, default=None,
                        help="shared handshake secret (defaults to "
                             "REPRO_CLUSTER_SECRET)")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="shard-local result-cache disk tier: "
                             "computed rounds stream here as they land "
                             "and repeat rounds are served without "
                             "recompute (defaults to "
                             "REPRO_SHARD_CACHE_DIR; unset = no cache)")
    parser.add_argument("--cache-max-entries", type=int, default=None,
                        help="LRU cap for the shard cache's in-memory "
                             "tier (defaults to "
                             "REPRO_SHARD_CACHE_MAX_ENTRIES; "
                             "0/unset = unbounded)")
    return parser


def context_from_args(args):
    from repro.experiments.runner import load_context, make_context

    if args.context_file:
        return load_context(args.context_file)
    if args.context:
        kwargs = {"seed": args.seed}
        if args.n_samples is not None:
            kwargs["n_samples"] = args.n_samples
        return make_context(args.context, **kwargs)
    raise SystemExit("pass --context-file or --context")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.faults is not None:
        try:
            faults.install(args.faults)
        except ValueError as exc:
            raise SystemExit(f"--faults: {exc}") from None
    serve(context_from_args(args), host=args.host, port=args.port,
          jobs=args.jobs, chaos_exit_after=args.chaos_exit_after,
          secret=args.secret, cache_dir=args.cache_dir,
          cache_max_entries=args.cache_max_entries)
    return 0


if __name__ == "__main__":
    sys.exit(main())
