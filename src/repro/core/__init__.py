"""The paper's primary contribution: the poisoning attack/defence game.

Modules
-------
* :mod:`repro.core.game` — the zero-sum game model (Section 3):
  strategy spaces, payoff function ``U(S_a, θ_d)`` and the payoff-curve
  containers ``E(p)`` / ``Γ(p)``.
* :mod:`repro.core.best_response` — both players' best-response
  functions and the constructive Proposition-1 machinery showing no
  pure Nash equilibrium exists.
* :mod:`repro.core.mixed_strategy` — the mixed-strategy defence and the
  Section-4.2 equalization conditions characterising its equilibrium.
* :mod:`repro.core.algorithm1` — Algorithm 1: gradient-descent
  approximation of the defender's equilibrium strategy.
* :mod:`repro.core.payoff_estimation` — fitting monotone ``E``/``Γ``
  curves from pure-strategy sweep measurements (how the paper obtains
  the algorithm's inputs from Figure 1).
* :mod:`repro.core.equilibrium` — equilibrium quality metrics and an
  exact LP cross-check on a discretised version of the game.
"""

from repro.core.game import PayoffCurves, PoisoningGame
from repro.core.best_response import (
    attacker_best_response,
    defender_best_response,
    ta_percentile,
    td_percentile,
    find_pure_equilibrium,
    proposition1_certificate,
    PureEquilibriumSearch,
)
from repro.core.mixed_strategy import (
    MixedDefense,
    equalizing_probabilities,
    equalization_residual,
)
from repro.core.algorithm1 import compute_optimal_defense, DefenseOptimizationResult
from repro.core.payoff_estimation import (
    isotonic_regression,
    fit_monotone_curve,
    estimate_payoff_curves,
)
from repro.core.equilibrium import (
    attacker_best_response_value,
    defense_exploitability,
    cross_check_with_lp,
    EquilibriumCrossCheck,
)
from repro.core.paper_curves import (
    paper_figure1_curves,
    PAPER_N_POISON,
    PAPER_TABLE1_N2,
    PAPER_TABLE1_N3,
)
from repro.core.oracle_solver import (
    solve_poisoning_game_double_oracle,
    OracleSolution,
)
from repro.core.sensitivity import (
    perturb_curves,
    defense_sensitivity,
    regret_under_misestimation,
    SensitivityReport,
)

__all__ = [
    "PayoffCurves",
    "PoisoningGame",
    "attacker_best_response",
    "defender_best_response",
    "ta_percentile",
    "td_percentile",
    "find_pure_equilibrium",
    "proposition1_certificate",
    "PureEquilibriumSearch",
    "MixedDefense",
    "equalizing_probabilities",
    "equalization_residual",
    "compute_optimal_defense",
    "DefenseOptimizationResult",
    "isotonic_regression",
    "fit_monotone_curve",
    "estimate_payoff_curves",
    "attacker_best_response_value",
    "defense_exploitability",
    "cross_check_with_lp",
    "EquilibriumCrossCheck",
    "paper_figure1_curves",
    "PAPER_N_POISON",
    "PAPER_TABLE1_N2",
    "PAPER_TABLE1_N3",
    "solve_poisoning_game_double_oracle",
    "OracleSolution",
    "perturb_curves",
    "defense_sensitivity",
    "regret_under_misestimation",
    "SensitivityReport",
]
