"""Algorithm 1 — "Compute Optimal Defense".

Faithful implementation of the paper's pseudocode:

    {r_1..r_n} = chooseInitialRadius(n)
    repeat:
        pdf   = findPercentage(S_r)          # equalizing probabilities
        r_min = min(S_r)                     # innermost support radius
        f     = N * E(r_min) + Σ pdf(p_i) * Γ(p_i)
        S_r   = S_r - ∇f(S_r)                # gradient descent step
    until |f_t - f_{t-1}| < ε
    return (S_r, pdf), f(S_r)

On our percentile axis ``r_min`` (smallest radius) is the *largest*
percentile in the support.  ``findPercentage`` is
:func:`repro.core.mixed_strategy.equalizing_probabilities`; the
gradient is computed by central finite differences (the curves are
empirical fits, so analytic derivatives are unavailable by
construction); the step uses backtracking so the loss is monotone
non-increasing, and the iterate is projected back onto the feasible
set (sorted, separated, inside the domain where ``E`` is profitable).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.game import PayoffCurves
from repro.core.mixed_strategy import MixedDefense, equalizing_probabilities
from repro.utils.validation import check_positive_int

__all__ = ["DefenseOptimizationResult", "compute_optimal_defense"]


@dataclass
class DefenseOptimizationResult:
    """Output of Algorithm 1.

    Attributes
    ----------
    defense:
        The approximated NE mixed strategy ``M_d``.
    expected_loss:
        ``U_d(M_d, *)`` — the paper's second output: the resulting
        impact on the ML model when both players play optimally
        (accuracy-damage units: equalized attack damage plus the
        expected collateral cost).
    converged:
        True iff the ε criterion was met within ``max_iter``.
    n_iterations:
        Gradient steps taken.
    loss_trace:
        Loss after each iteration (monotone non-increasing).
    support_trace:
        Support percentiles after each iteration (for diagnostics and
        the convergence benchmarks).
    """

    defense: MixedDefense
    expected_loss: float
    converged: bool
    n_iterations: int
    loss_trace: list = field(default_factory=list)
    support_trace: list = field(default_factory=list)


def _project(ps: np.ndarray, lo: float, hi: float, min_gap: float) -> np.ndarray:
    """Project onto {sorted, pairwise >= min_gap apart, within [lo, hi]}."""
    ps = np.clip(np.sort(ps), lo, hi)
    for i in range(1, len(ps)):
        if ps[i] - ps[i - 1] < min_gap:
            ps[i] = ps[i - 1] + min_gap
    # If the forward sweep pushed past hi, sweep back from the top.
    ps[-1] = min(ps[-1], hi)
    for i in range(len(ps) - 2, -1, -1):
        if ps[i + 1] - ps[i] < min_gap:
            ps[i] = ps[i + 1] - min_gap
    if ps[0] < lo - 1e-12:
        raise ValueError(
            f"cannot fit {len(ps)} support points with gap {min_gap} in "
            f"[{lo}, {hi}]"
        )
    return np.clip(ps, lo, hi)


def _profitable_upper_bound(curves: PayoffCurves, *, n_grid: int = 2001,
                            floor: float = 1e-12) -> float:
    """Largest percentile where ``E`` is still strictly positive."""
    ps = curves.grid(n_grid)
    E_vals = curves.E_vec(ps)
    positive = np.flatnonzero(E_vals > floor)
    if positive.size == 0:
        raise ValueError("E(p) is nowhere positive: the attacker cannot profit "
                         "and the defence optimisation is vacuous")
    return float(ps[positive[-1]])


def compute_optimal_defense(
    curves: PayoffCurves,
    n_radii: int,
    n_poison: int,
    *,
    epsilon: float = 1e-9,
    max_iter: int = 300,
    initial_step: float = 0.02,
    min_gap: float = 5e-3,
    p_floor: float = 1e-3,
    initial_percentiles=None,
) -> DefenseOptimizationResult:
    """Approximate the defender's NE mixed strategy (Algorithm 1).

    Parameters
    ----------
    curves:
        Estimated ``E(p)`` / ``Γ(p)`` (Algorithm inputs 1 and 2).
    n_radii:
        Support size ``n`` (input 3).
    n_poison:
        Expected number of poisoning points ``N`` (input 5).
    epsilon:
        Convergence threshold on the loss improvement (input 4).
    max_iter:
        Safety bound on gradient iterations.
    initial_step:
        Starting gradient-descent step (percentile units); adapted by
        backtracking.
    min_gap:
        Minimum separation between support percentiles (keeps
        ``findPercentage`` well-conditioned).
    p_floor:
        Smallest admissible support percentile (strictly positive so
        the innermost point always implies *some* filtering).
    initial_percentiles:
        Optional explicit start (``chooseInitialRadius`` override).

    Returns
    -------
    :class:`DefenseOptimizationResult`
    """
    n_radii = check_positive_int(n_radii, name="n_radii")
    n_poison = check_positive_int(n_poison, name="n_poison")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")

    hi = _profitable_upper_bound(curves)
    lo = min(p_floor, hi / 2.0)
    if initial_percentiles is not None:
        ps = np.asarray(initial_percentiles, dtype=float)
        if ps.shape != (n_radii,):
            raise ValueError(
                f"initial_percentiles has shape {ps.shape}, expected ({n_radii},)"
            )
    else:
        # chooseInitialRadius: geometric spread over the profitable
        # range.  Empirical damage curves decay fastest near the
        # boundary (small percentiles), so log-spaced radii sample the
        # region where the equalizing probabilities actually
        # differentiate; a linear grid would cluster the support in the
        # flat tail of E and produce a near-degenerate mixture.
        ps = np.geomspace(max(lo, 1e-3), hi - 0.03 * (hi - lo), n_radii)
    ps = _project(ps, lo, hi, min_gap)

    def loss(support: np.ndarray) -> float:
        probs = equalizing_probabilities(support, curves)
        attack_term = n_poison * float(curves.E(float(support[-1])))
        gamma_term = float(probs @ curves.gamma_vec(support))
        return attack_term + gamma_term

    def gradient(support: np.ndarray, h: float = 1e-4) -> np.ndarray:
        grad = np.zeros_like(support)
        for i in range(len(support)):
            up = support.copy()
            down = support.copy()
            up[i] = min(up[i] + h, hi)
            down[i] = max(down[i] - h, lo)
            try:
                up_proj = _project(up, lo, hi, min_gap * 0.5)
                down_proj = _project(down, lo, hi, min_gap * 0.5)
                denom = up_proj[i] - down_proj[i]
                if denom <= 0:
                    continue
                grad[i] = (loss(up_proj) - loss(down_proj)) / denom
            except ValueError:
                grad[i] = 0.0
        return grad

    current_loss = loss(ps)
    loss_trace = [current_loss]
    support_trace = [ps.copy()]
    step = float(initial_step)
    converged = False
    iterations = 0

    for _ in range(max_iter):
        iterations += 1
        grad = gradient(ps)
        grad_norm = float(np.linalg.norm(grad))
        if grad_norm < 1e-14:
            converged = True
            break
        # Backtracking line search on the projected step.
        improved = False
        trial_step = step
        for _ in range(30):
            candidate = _project(ps - trial_step * grad / max(grad_norm, 1e-300),
                                 lo, hi, min_gap)
            candidate_loss = loss(candidate)
            if candidate_loss < current_loss - 1e-15:
                improved = True
                break
            trial_step *= 0.5
        if not improved:
            converged = True
            break
        improvement = current_loss - candidate_loss
        ps = candidate
        current_loss = candidate_loss
        loss_trace.append(current_loss)
        support_trace.append(ps.copy())
        step = min(trial_step * 2.0, initial_step)  # gentle step re-growth
        if improvement < epsilon:
            converged = True
            break

    probs = equalizing_probabilities(ps, curves)
    defense = MixedDefense(percentiles=ps, probabilities=probs)
    return DefenseOptimizationResult(
        defense=defense,
        expected_loss=current_loss,
        converged=converged,
        n_iterations=iterations,
        loss_trace=loss_trace,
        support_trace=support_trace,
    )
