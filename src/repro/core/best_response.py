"""Best-response functions and the Proposition-1 machinery.

The paper's proof of pure-NE non-existence analyses the two
best-response functions (BRFs):

* attacker (eq. 1a/1b): against a filter at ``θ_d``, place the budget
  exactly at the filter boundary when that is still profitable
  (``θ_d >= Ta``); otherwise placement is irrelevant — anything beyond
  ``Ta`` gets removed and yields zero.
* defender (eq. 2a/2b): against an attack ``S_a``, either don't filter
  at all (``B``) when every attacking radius is too deep to be worth
  chasing (``r_i <= Td``), or clamp just inside the shallowest
  profitable attacking radius (``r_min - ε``).

On the percentile axis (``p`` = fraction removed; radius decreasing in
``p``) those translate to:

* attacker: ``p_a = p_d`` when ``p_d <= ta`` (where ``ta`` is the
  percentile with ``E(ta) = 0``); otherwise any ``p_a <= ta``.
* defender: ``p_d = 0`` (no filter) or ``p_d = p_attack + ε``.

The BRFs chase each other: the attacker sits exactly *on* the filter,
the defender steps ``ε`` past the attacker, ad infinitum — the cycle
:func:`find_pure_equilibrium` detects and certifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.mixed_attack import RadiusAllocation
from repro.core.game import PoisoningGame
from repro.gametheory.best_response_dynamics import best_response_dynamics, BestResponseTrace
from repro.utils.validation import check_fraction, check_positive_int

__all__ = [
    "ta_percentile",
    "td_percentile",
    "attacker_best_response",
    "defender_best_response",
    "find_pure_equilibrium",
    "proposition1_certificate",
    "PureEquilibriumSearch",
]


def ta_percentile(game: PoisoningGame, *, n_grid: int = 2001) -> float:
    """The paper's ``Ta`` threshold on the percentile axis.

    ``Ta`` is the minimum radius at which a poisoning point still
    benefits the attacker (``E <= 0`` inside it).  On the percentile
    axis it is the largest ``p`` with ``E(p) > 0``; if ``E`` is
    positive on the whole domain it is ``p_max`` (the attacker profits
    everywhere the game is defined).
    """
    ps = game.curves.grid(check_positive_int(n_grid, name="n_grid"))
    E_vals = game.curves.E_vec(ps)
    positive = np.flatnonzero(E_vals > 0.0)
    if positive.size == 0:
        return 0.0
    return float(ps[positive[-1]])


def td_percentile(game: PoisoningGame, allocation: RadiusAllocation, *,
                  n_grid: int = 2001) -> float:
    """The paper's ``Td`` threshold for a given attack, on the percentile axis.

    ``Td`` is the filter strength past which strengthening further is a
    strict loss for the defender *given this attack* — i.e. the largest
    minimiser of the defender's loss ``U(S_a, ·)`` over the domain.
    """
    ps = game.curves.grid(check_positive_int(n_grid, name="n_grid"))
    losses = np.array([game.payoff(allocation, float(p)) for p in ps])
    minimisers = np.flatnonzero(np.isclose(losses, losses.min(), atol=1e-12))
    return float(ps[minimisers[-1]])


def attacker_best_response(game: PoisoningGame, p_defense: float) -> RadiusAllocation:
    """Equations 1a/1b: the attacker's best pure response to a known filter.

    * 1a (``θ_d >= Ta``, i.e. ``p_d <= ta``): the whole budget exactly
      at the filter boundary, ``p_a = p_d`` — surviving by the tie rule
      with maximal damage among surviving radii.
    * 1b (otherwise): placement cannot profit; any radius beyond ``Ta``
      is equivalent (everything gets removed or is worthless).  We
      return the boundary placement ``p_a = 0`` as the canonical
      representative.
    """
    p_defense = check_fraction(p_defense, name="p_defense")
    ta = ta_percentile(game)
    if p_defense <= ta:
        return game.all_at(p_defense)
    return game.all_at(0.0)


def defender_best_response(game: PoisoningGame, allocation: RadiusAllocation, *,
                           n_grid: int = 2001) -> float:
    """Equations 2a/2b: the defender's best pure response to a known attack.

    Evaluated by direct minimisation of ``U(S_a, ·)`` on a fine grid,
    which recovers both branches: the no-filter boundary strategy
    (``p_d = 0``) when chasing the attack costs more than it saves, and
    the ``r_min - ε`` clamp (on the percentile axis, the grid point
    just above the shallowest profitable attack percentile) otherwise.
    """
    ps = game.curves.grid(check_positive_int(n_grid, name="n_grid"))
    losses = np.array([game.payoff(allocation, float(p)) for p in ps])
    return float(ps[int(np.argmin(losses))])


@dataclass
class PureEquilibriumSearch:
    """Outcome of the pure-NE search.

    ``equilibrium`` is ``None`` when no pure NE exists (the generic
    case, Proposition 1); ``trace`` then holds the best-response cycle
    that certifies it constructively.
    """

    equilibrium: tuple | None
    trace: BestResponseTrace
    n_grid: int

    @property
    def exists(self) -> bool:
        return self.equilibrium is not None


def find_pure_equilibrium(game: PoisoningGame, *, n_grid: int = 201,
                          max_steps: int = 500) -> PureEquilibriumSearch:
    """Search for a pure NE via alternating best responses on a grid.

    The continuous game has no pure NE (Proposition 1); on a finite
    grid the ε-chase becomes a finite cycle, which this function
    detects.  A fixed point is only reported as an equilibrium if
    neither player can strictly improve on the grid.
    """
    check_positive_int(n_grid, name="n_grid")
    ps = game.curves.grid(n_grid)

    def br_attacker(p_d_idx: int) -> int:
        alloc = attacker_best_response(game, float(ps[p_d_idx]))
        # Snap the allocation percentile onto the grid.
        target = alloc.percentiles[0]
        return int(np.argmin(np.abs(ps - target)))

    def br_defender(p_a_idx: int) -> int:
        best = defender_best_response(game, game.all_at(float(ps[p_a_idx])),
                                      n_grid=n_grid)
        return int(np.argmin(np.abs(ps - best)))

    trace = best_response_dynamics(
        (br_attacker, br_defender), initial=(0, 0), max_steps=max_steps
    )
    if trace.converged:
        a_idx, d_idx = trace.equilibrium
        # Verify no strict grid deviation (grid fixed points can be
        # artefacts of discretisation).
        alloc = game.all_at(float(ps[a_idx]))
        current = game.payoff(alloc, float(ps[d_idx]))
        attacker_best = max(
            game.payoff(game.all_at(float(pa)), float(ps[d_idx])) for pa in ps
        )
        defender_best = min(game.payoff(alloc, float(pd)) for pd in ps)
        if attacker_best <= current + 1e-12 and defender_best >= current - 1e-12:
            return PureEquilibriumSearch(
                equilibrium=(float(ps[a_idx]), float(ps[d_idx])),
                trace=trace,
                n_grid=n_grid,
            )
    return PureEquilibriumSearch(equilibrium=None, trace=trace, n_grid=n_grid)


def proposition1_certificate(game: PoisoningGame, *, n_grid: int = 2001) -> dict:
    """Numeric certificate for the Proposition-1 case analysis.

    Returns the thresholds and the pairwise BRF-intersection checks the
    proof walks through:

    * ``1a & 2b``: attacker sits on the filter, defender steps ε past —
      never intersect (chase).
    * ``1b & 2a``: requires ``p_d > ta`` (strong filter) *and* defender
      preferring no filter — incompatible once the attack moves inside.
    * ``1a & 2a``: intersect only at the boundary ``(B, B)``, excluded.
    * ``1b & 2b``: only at the degenerate ``Ta == Td``.
    """
    ta = ta_percentile(game, n_grid=n_grid)
    # Td is attack-dependent; the proof's relaxation uses the attack at
    # the boundary of profitability, so evaluate it there.
    td_at_ta = td_percentile(game, game.all_at(ta), n_grid=n_grid)
    td_at_boundary = td_percentile(game, game.all_at(0.0), n_grid=n_grid)
    return {
        "ta": ta,
        "td_at_ta_attack": td_at_ta,
        "td_at_boundary_attack": td_at_boundary,
        "degenerate_ta_equals_td": bool(np.isclose(ta, td_at_ta, atol=1e-6)),
        "chase_gap_positive": True,  # 1a/2b ε-chase holds by construction
    }
