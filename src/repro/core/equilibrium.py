"""Equilibrium quality metrics and the exact LP cross-check.

Algorithm 1 is a local gradient method on a restricted (fixed support
size, equalized) strategy family.  Two independent checks validate its
output:

* :func:`defense_exploitability` — how much more than the equalized
  value an unconstrained attacker can extract against the returned
  strategy (≈ 0 for a true equilibrium strategy);
* :func:`cross_check_with_lp` — solve a fine discretisation of the
  game *exactly* with the zero-sum LP from
  :mod:`repro.gametheory.lp_solver` and compare game values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.game import PoisoningGame
from repro.core.mixed_strategy import MixedDefense
from repro.gametheory.continuous import DiscretizedZeroSumGame
from repro.gametheory.lp_solver import LPSolution
from repro.utils.validation import check_positive_int

__all__ = [
    "attacker_best_response_value",
    "defense_exploitability",
    "cross_check_with_lp",
    "EquilibriumCrossCheck",
]


def attacker_best_response_value(
    game: PoisoningGame, defense: MixedDefense, *, n_grid: int = 2001
) -> tuple[float, float]:
    """Best per-point placement against a mixed defence.

    Scans the percentile grid (including the support points themselves,
    where the survival indicator steps) for the placement maximising
    ``E(p) * survival(p)``.  Returns ``(total_value, best_percentile)``
    with ``total_value = N * max_p E(p) * survival(p)``.
    """
    check_positive_int(n_grid, name="n_grid")
    candidates = np.unique(np.concatenate([
        game.curves.grid(n_grid),
        defense.percentiles,  # survival steps exactly here
    ]))
    values = np.array([
        defense.attacker_value_at(float(p), game.curves) for p in candidates
    ])
    best = int(np.argmax(values))
    return game.n_poison * float(values[best]), float(candidates[best])


def defense_exploitability(
    game: PoisoningGame, defense: MixedDefense, *, n_grid: int = 2001
) -> float:
    """Gap between the attacker's best response and the equalized value.

    For an equalized strategy the supported placements all yield
    ``E(p_innermost)`` per point; if some *other* placement yields
    more, the strategy is exploitable by that amount (scaled by ``N``).
    Non-negative; ≈ 0 at equilibrium.
    """
    br_value, _ = attacker_best_response_value(game, defense, n_grid=n_grid)
    equalized = game.n_poison * defense.equalized_value(game.curves)
    return max(0.0, br_value - equalized)


@dataclass(frozen=True)
class EquilibriumCrossCheck:
    """Comparison of Algorithm 1's solution against the exact LP.

    Attributes
    ----------
    lp_solution:
        Exact solution of the discretised zero-sum game.
    lp_value:
        Its game value (defender's expected loss at the discretised NE).
    algorithm1_loss:
        The loss Algorithm 1 reported for its strategy.
    value_gap:
        ``algorithm1_loss - lp_value`` — how far the restricted-family
        local optimum is from the (discretised) game value.  Small and
        non-negative (up to discretisation error) when Algorithm 1 is
        working.
    lp_defense_support:
        Defender grid percentiles receiving > 1 % probability in the LP
        solution, for qualitative comparison with Algorithm 1's support.
    """

    lp_solution: LPSolution
    lp_value: float
    algorithm1_loss: float
    value_gap: float
    lp_defense_support: np.ndarray


def cross_check_with_lp(
    game: PoisoningGame,
    algorithm1_loss: float,
    *,
    n_grid: int = 101,
    support_threshold: float = 0.01,
) -> EquilibriumCrossCheck:
    """Solve the discretised poisoning game exactly and compare values.

    The attacker's pure strategies are restricted to single-radius
    allocations ("all N at p"), which is payoff-sufficient: against any
    defender mix, *some* single radius maximises per-point value, so
    splitting the budget cannot beat the best single placement.
    """
    check_positive_int(n_grid, name="n_grid")

    def payoff(p_attack: float, p_defense: float) -> float:
        return game.payoff(game.all_at(float(np.clip(p_attack, 0.0, 1.0))),
                           float(np.clip(p_defense, 0.0, 1.0)))

    continuous = DiscretizedZeroSumGame(
        payoff=payoff,
        row_interval=(0.0, game.curves.p_max),
        col_interval=(0.0, game.curves.p_max),
    )
    solution, matrix = continuous.solve(n_grid, n_grid)
    defender_grid = np.asarray(matrix.col_labels, dtype=float)
    support = defender_grid[solution.col_strategy > support_threshold]
    return EquilibriumCrossCheck(
        lp_solution=solution,
        lp_value=solution.value,
        algorithm1_loss=float(algorithm1_loss),
        value_gap=float(algorithm1_loss - solution.value),
        lp_defense_support=support,
    )
