"""The poisoning attack/defence zero-sum game (Section 3 of the paper).

Conventions
-----------
All strategies live on the **percentile axis** ``p ∈ [0, 1]``: the
fraction of genuine training points *farther from the centroid* than
the radius in question (equivalently, the fraction a filter at that
radius removes).  ``p = 0`` is the data boundary ``B`` (weakest filter:
nothing removed; most exposed attack placement), increasing ``p`` moves
toward the centroid.  The geometric radius is strictly decreasing in
``p``, so:

* a poisoning point placed at percentile ``p_a`` **survives** a filter
  at percentile ``p_d`` iff its radius is inside the filter radius,
  i.e. iff ``p_a >= p_d``;
* the per-point damage curve ``E`` is **non-increasing** in ``p``
  (the paper's "the greater r_i is, the higher the payoff");
* the collateral-cost curve ``Γ`` is **non-decreasing** in ``p``
  (the paper's "the smaller θ_d is, the higher the cost").

The payoff (attacker's gain = defender's loss) of pure strategies
``S_a = {(p_i, n_i)}`` and ``θ_d ~ p_d`` is

    U(S_a, p_d) = Σ_{p_i >= p_d} n_i · E(p_i)  +  Γ(p_d)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.attacks.mixed_attack import RadiusAllocation
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["PayoffCurves", "PoisoningGame"]


def _evaluate_curve(curve: Callable, ps: np.ndarray) -> np.ndarray:
    """Evaluate a payoff curve on a grid, vectorised when possible.

    Dispatch order: a fitted :class:`~repro.core.payoff_estimation.
    MonotoneCurve` exposes ``evaluate`` and is called once on the whole
    grid; an arbitrary callable is probed with the array (NumPy-native
    lambdas broadcast correctly and the result shape confirms it);
    anything else falls back to the legacy per-element loop.
    """
    evaluate = getattr(curve, "evaluate", None)
    if callable(evaluate):
        return np.asarray(evaluate(ps), dtype=float).reshape(ps.shape)
    try:
        out = np.asarray(curve(ps), dtype=float)
        if out.shape == ps.shape:
            return out
    except Exception:
        pass
    return np.array([float(curve(float(p))) for p in ps])


@dataclass
class PayoffCurves:
    """The game's primitive curves ``E(p)`` and ``Γ(p)``.

    Parameters
    ----------
    E:
        Per-point attacker payoff at percentile ``p`` (accuracy-damage
        units).  Must be non-increasing on the domain; may cross zero —
        the crossing is the paper's ``Ta`` threshold.
    gamma:
        Defender's collateral cost of filtering at percentile ``p``.
        Must be non-decreasing with ``gamma(0) == 0`` (no filter, no
        cost).
    p_max:
        Upper end of the modelled percentile domain (filters stronger
        than this are never considered; the paper sweeps up to ~50 %).
    """

    E: Callable[[float], float]
    gamma: Callable[[float], float]
    p_max: float = 0.5

    def __post_init__(self):
        self.p_max = check_fraction(self.p_max, name="p_max", inclusive_low=False)

    def E_vec(self, ps) -> np.ndarray:
        """Vectorised ``E`` (one interpolant call for fitted curves)."""
        return _evaluate_curve(self.E, np.atleast_1d(np.asarray(ps, float)))

    def gamma_vec(self, ps) -> np.ndarray:
        """Vectorised ``Γ`` (one interpolant call for fitted curves)."""
        return _evaluate_curve(self.gamma, np.atleast_1d(np.asarray(ps, float)))

    def grid(self, n: int = 201) -> np.ndarray:
        """Uniform percentile grid over the domain ``[0, p_max]``."""
        check_positive_int(n, name="n")
        return np.linspace(0.0, self.p_max, n)

    def validate_shape(self, *, n_grid: int = 201, tol: float = 1e-9) -> None:
        """Raise if ``E`` is not non-increasing or ``Γ`` not non-decreasing."""
        ps = self.grid(n_grid)
        E_vals = self.E_vec(ps)
        g_vals = self.gamma_vec(ps)
        if np.any(np.diff(E_vals) > tol):
            worst = float(np.diff(E_vals).max())
            raise ValueError(f"E must be non-increasing in p; max increase {worst}")
        if np.any(np.diff(g_vals) < -tol):
            worst = float(np.diff(g_vals).min())
            raise ValueError(f"gamma must be non-decreasing in p; max decrease {worst}")
        if abs(float(self.gamma(0.0))) > 1e-6:
            raise ValueError(f"gamma(0) must be 0 (no filter, no cost), got {self.gamma(0.0)}")


@dataclass
class PoisoningGame:
    """The two-player zero-sum poisoning game.

    Parameters
    ----------
    curves:
        The payoff primitives ``E`` and ``Γ``.
    n_poison:
        The attacker's budget ``N`` (number of injected points).
    """

    curves: PayoffCurves
    n_poison: int = 100
    _history: list = field(default_factory=list, repr=False)

    def __post_init__(self):
        self.n_poison = check_positive_int(self.n_poison, name="n_poison")

    # -- survival rule -----------------------------------------------------

    @staticmethod
    def survives(p_attack: float, p_defense: float) -> bool:
        """A point at percentile ``p_attack`` survives a filter at ``p_defense``.

        Survival means the point's radius is within the filter radius;
        on the percentile axis that is ``p_attack >= p_defense`` (ties
        survive: a point exactly on the filter sphere is kept, matching
        the paper's ``θ_d >= r_i``).
        """
        return p_attack >= p_defense

    # -- payoffs -----------------------------------------------------------

    def payoff(self, allocation: RadiusAllocation, p_defense: float) -> float:
        """``U(S_a, θ_d)`` — attacker's payoff / defender's loss."""
        p_defense = check_fraction(p_defense, name="p_defense")
        surviving = sum(
            n_i * float(self.curves.E(p_i))
            for p_i, n_i in zip(allocation.percentiles, allocation.counts)
            if self.survives(p_i, p_defense)
        )
        return surviving + float(self.curves.gamma(p_defense))

    def attacker_payoff(self, allocation: RadiusAllocation, p_defense: float) -> float:
        """Alias for :meth:`payoff` (the attacker maximises it)."""
        return self.payoff(allocation, p_defense)

    def defender_payoff(self, allocation: RadiusAllocation, p_defense: float) -> float:
        """Zero-sum mirror: ``-U``."""
        return -self.payoff(allocation, p_defense)

    def expected_payoff(self, allocation: RadiusAllocation, defense) -> float:
        """Expected ``U`` against a mixed defence.

        ``defense`` is any object with ``percentiles`` and
        ``probabilities`` arrays (duck-typed to avoid a circular import
        with :mod:`repro.core.mixed_strategy`).
        """
        ps = np.asarray(defense.percentiles, dtype=float)
        qs = np.asarray(defense.probabilities, dtype=float)
        return float(sum(q * self.payoff(allocation, p) for p, q in zip(ps, qs)))

    def per_point_value(self, p_attack: float, defense) -> float:
        """Expected damage of one point at ``p_attack`` vs a mixed defence.

        This is the quantity the equalization condition makes constant:
        ``E(p) * P(filter weaker or equal)``.
        """
        p_attack = check_fraction(p_attack, name="p_attack")
        ps = np.asarray(defense.percentiles, dtype=float)
        qs = np.asarray(defense.probabilities, dtype=float)
        survival = float(qs[ps <= p_attack].sum())
        return float(self.curves.E(p_attack)) * survival

    # -- convenience ---------------------------------------------------------

    def all_at(self, p: float) -> RadiusAllocation:
        """The canonical pure attack: the whole budget at one percentile."""
        return RadiusAllocation.all_at(check_fraction(p, name="p"), self.n_poison)

    def matrix_on_grids(self, attacker_ps, defender_ps) -> np.ndarray:
        """Payoff matrix ``U`` tabulated on percentile grids (attacker rows).

        Built by broadcasting: the survival rule ``p_a >= p_d`` is an
        outer comparison, the attack term ``N·E(p_a)`` a row vector and
        the collateral term ``Γ(p_d)`` a column vector — entrywise
        identical to looping :meth:`payoff` over the canonical pure
        attack :meth:`all_at`, but two curve calls instead of
        ``O(|A|·|D|)`` Python-level payoff evaluations.
        """
        attacker_ps = np.atleast_1d(np.asarray(attacker_ps, dtype=float))
        defender_ps = np.atleast_1d(np.asarray(defender_ps, dtype=float))
        for name, grid in (("attacker_ps", attacker_ps),
                           ("defender_ps", defender_ps)):
            if grid.size and (grid.min() < 0.0 or grid.max() > 1.0):
                raise ValueError(f"{name} must lie within [0, 1]")
        attack_term = self.n_poison * self.curves.E_vec(attacker_ps)
        gamma_term = self.curves.gamma_vec(defender_ps)
        survives = attacker_ps[:, None] >= defender_ps[None, :]
        return np.where(survives, attack_term[:, None], 0.0) + gamma_term[None, :]
