"""The mixed-strategy defence and the Section-4.2 equalization conditions.

A mixed defence is a distribution over filter percentiles.  The paper
proves two necessary NE conditions for the defender:

1. the support has at least two points (no pure NE exists), and
2. for every supported percentile ``p`` the product
   ``E(p) * cdf_m(p)`` is the same constant, where ``cdf_m`` counts
   probability *from the boundary B toward the centroid* — i.e. the
   probability that the realised filter is weaker than (or equal to)
   ``p``, which is exactly the survival probability of a point placed
   at ``p``.

Under condition 2 the attacker is indifferent over all supported
radii, so its best-response value is ``N * E(p_innermost)`` (the
paper's ``N · E(r_min)``), and the defender's equilibrium strategy is
the equalized distribution minimising total loss — what Algorithm 1
searches for.

The closed form implemented by :func:`equalizing_probabilities`: with
support ``p_1 < ... < p_n`` (ascending percentile = outermost radius
first) and survival ``s_i = Σ_{j<=i} q_j``, equalization requires
``E(p_i) s_i = c`` with ``s_n = 1``, hence ``c = E(p_n)`` and

    s_i = E(p_n) / E(p_i),     q_i = s_i - s_{i-1}.

All ``q_i`` are non-negative precisely because ``E`` is non-increasing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.game import PayoffCurves
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability_vector, check_sorted_increasing

__all__ = ["MixedDefense", "equalizing_probabilities", "equalization_residual"]


@dataclass
class MixedDefense:
    """A finite-support mixed strategy over filter percentiles.

    ``percentiles`` are sorted ascending (weakest filter first);
    ``probabilities`` is the matching distribution.
    """

    percentiles: np.ndarray
    probabilities: np.ndarray

    def __post_init__(self):
        self.percentiles = check_sorted_increasing(self.percentiles,
                                                   name="percentiles", strict=True)
        if np.any((self.percentiles < 0.0) | (self.percentiles >= 1.0)):
            raise ValueError(f"percentiles must lie in [0, 1), got {self.percentiles}")
        self.probabilities = check_probability_vector(self.probabilities,
                                                      name="probabilities")
        if self.probabilities.shape != self.percentiles.shape:
            raise ValueError(
                f"{self.percentiles.size} percentiles but "
                f"{self.probabilities.size} probabilities"
            )

    @property
    def n_support(self) -> int:
        return int(self.percentiles.size)

    @property
    def innermost(self) -> float:
        """The strongest supported filter — the paper's ``r_min`` percentile."""
        return float(self.percentiles[-1])

    def survival_probability(self, p_attack: float) -> float:
        """``cdf_m`` from the boundary: P(filter weaker or equal to ``p_attack``).

        This is the probability a point placed at ``p_attack``
        survives.  Ties survive (``p_d <= p_a``).
        """
        return float(self.probabilities[self.percentiles <= p_attack].sum())

    def survival_vector(self) -> np.ndarray:
        """Survival probability at each support point (the cumulative sum)."""
        return np.cumsum(self.probabilities)

    def sample(self, size: int | None = None,
               seed: int | np.random.Generator | None = None):
        """Draw filter percentile(s) from the strategy."""
        rng = as_generator(seed)
        draw = rng.choice(self.percentiles, size=size, p=self.probabilities)
        return float(draw) if size is None else np.asarray(draw, dtype=float)

    def expected_gamma(self, curves: PayoffCurves) -> float:
        """Expected collateral cost ``Σ q_i Γ(p_i)``."""
        return float(self.probabilities @ curves.gamma_vec(self.percentiles))

    def attacker_value_at(self, p_attack: float, curves: PayoffCurves) -> float:
        """Per-point expected damage of a placement at ``p_attack``."""
        return float(curves.E(p_attack)) * self.survival_probability(p_attack)

    def equalized_value(self, curves: PayoffCurves) -> float:
        """The common per-point value when equalized: ``E(p_innermost)``."""
        return float(curves.E(self.innermost))

    def satisfies_ne_conditions(self, curves: PayoffCurves, *, tol: float = 1e-6) -> bool:
        """Check the two Section-4.2 necessary conditions."""
        if self.n_support < 2:
            return False
        return equalization_residual(self, curves) <= tol

    def as_filter(self, *, seed: int | np.random.Generator | None = None,
                  centroid_method: str = "median"):
        """Materialise as an executable :class:`~repro.defenses.MixedDefenseFilter`."""
        from repro.defenses.mixed_defense import MixedDefenseFilter

        return MixedDefenseFilter(
            self.percentiles, self.probabilities,
            seed=seed, centroid_method=centroid_method,
        )

    @staticmethod
    def equalized(percentiles, curves: PayoffCurves) -> "MixedDefense":
        """Build the unique equalized strategy on a given support."""
        percentiles = check_sorted_increasing(percentiles, name="percentiles",
                                              strict=True)
        probs = equalizing_probabilities(percentiles, curves)
        return MixedDefense(percentiles=percentiles, probabilities=probs)


def equalizing_probabilities(percentiles, curves: PayoffCurves) -> np.ndarray:
    """Probabilities making ``E(p_i) * survival(p_i)`` constant on the support.

    This is the paper's ``findPercentage`` step in Algorithm 1.
    Requires ``E`` strictly positive on the support (placement there
    must be profitable, otherwise the support point is vacuous) and
    non-increasing (otherwise some ``q_i`` would be negative —
    structurally impossible at an NE).
    """
    percentiles = check_sorted_increasing(percentiles, name="percentiles", strict=True)
    E_vals = curves.E_vec(percentiles)
    if np.any(E_vals <= 0.0):
        raise ValueError(
            f"E must be strictly positive on the support; got E={E_vals} "
            f"at percentiles={percentiles}"
        )
    if np.any(np.diff(E_vals) > 1e-12):
        raise ValueError(
            f"E must be non-increasing on the support for equalization; got {E_vals}"
        )
    survival = E_vals[-1] / E_vals  # s_i = E(p_n) / E(p_i), ascending to 1
    probs = np.diff(survival, prepend=0.0)
    probs = np.clip(probs, 0.0, None)
    return probs / probs.sum()


def equalization_residual(defense: MixedDefense, curves: PayoffCurves) -> float:
    """Max relative spread of ``E(p_i) * survival(p_i)`` over the support.

    Zero (up to float noise) iff the strategy satisfies the paper's
    condition 2.
    """
    values = curves.E_vec(defense.percentiles) * defense.survival_vector()
    scale = max(float(np.abs(values).max()), 1e-300)
    return float((values.max() - values.min()) / scale)
