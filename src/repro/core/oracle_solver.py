"""Double-oracle solution of the continuous poisoning game.

A third, independent solution method for the defender's equilibrium
(besides Algorithm 1 and the fixed-grid LP): both players' best
responses in the poisoning game are one-dimensional searches over the
percentile interval, so the double-oracle loop converges with a handful
of actions and places support points *exactly* where the equilibrium
needs them — including the ε-chase region a uniform grid straddles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.game import PoisoningGame
from repro.core.mixed_strategy import MixedDefense
from repro.gametheory.double_oracle import DoubleOracleResult, double_oracle
from repro.utils.validation import check_positive_int

__all__ = ["OracleSolution", "solve_poisoning_game_double_oracle"]


@dataclass
class OracleSolution:
    """Defender-centric view of the double-oracle equilibrium.

    ``defense`` is the defender's equilibrium mixed strategy (support
    merged and renormalised over percentiles with probability above
    1e-6); ``attacker_support`` the attacker's; ``value`` the game
    value (attacker payoff = defender loss); ``raw`` the underlying
    :class:`~repro.gametheory.double_oracle.DoubleOracleResult`.
    """

    defense: MixedDefense
    attacker_support: list
    value: float
    converged: bool
    iterations: int
    raw: DoubleOracleResult


def solve_poisoning_game_double_oracle(
    game: PoisoningGame,
    *,
    n_grid: int = 4001,
    tol: float = 1e-9,
    max_iter: int = 60,
) -> OracleSolution:
    """Solve the poisoning game with best-response oracles on a fine grid.

    The oracles search a fine percentile grid (``n_grid`` points over
    the curve domain), which approximates the continuous best response
    far more cheaply than solving an ``n_grid`` x ``n_grid`` LP — the
    double-oracle restricted games stay tiny (typically < 10 actions).
    """
    check_positive_int(n_grid, name="n_grid")
    grid = game.curves.grid(n_grid)
    # Pre-tabulate the curve values once; oracles are then pure numpy.
    E_vals = game.curves.E_vec(grid)
    gamma_vals = game.curves.gamma_vec(grid)
    N = game.n_poison

    def payoff(p_attack: float, p_defense: float) -> float:
        return game.payoff(game.all_at(float(p_attack)), float(p_defense))

    def attacker_oracle(defense_actions, defense_strategy) -> float:
        defense_actions = np.asarray(defense_actions, dtype=float)
        defense_strategy = np.asarray(defense_strategy, dtype=float)
        # survival of a placement at grid[i] = P(defense percentile <= grid[i])
        survival = (defense_actions[None, :] <= grid[:, None]) @ defense_strategy
        values = N * E_vals * survival
        return float(grid[int(np.argmax(values))])

    def defender_oracle(attack_actions, attack_strategy) -> float:
        attack_actions = np.asarray(attack_actions, dtype=float)
        attack_strategy = np.asarray(attack_strategy, dtype=float)
        attack_E = game.curves.E_vec(attack_actions)
        # expected damage at defense grid[j]: attacks with p_a >= grid[j] survive
        survive = attack_actions[None, :] >= grid[:, None]
        damage = N * (survive * (attack_strategy * attack_E)[None, :]).sum(axis=1)
        losses = damage + gamma_vals
        return float(grid[int(np.argmin(losses))])

    result = double_oracle(
        payoff,
        attacker_oracle,
        defender_oracle,
        initial_row=[float(grid[0]), float(grid[-1])],
        initial_col=[float(grid[0]), float(grid[-1])],
        tol=tol,
        max_iter=max_iter,
    )

    # Merge the defender's support into a MixedDefense (sorted, deduped).
    pairs: dict[float, float] = {}
    for action, prob in zip(result.col_actions, result.col_strategy):
        if prob > 1e-6:
            pairs[float(action)] = pairs.get(float(action), 0.0) + float(prob)
    percentiles = np.array(sorted(pairs))
    probabilities = np.array([pairs[p] for p in percentiles])
    probabilities = probabilities / probabilities.sum()
    # Guard the MixedDefense invariants (strictly increasing, < 1).
    percentiles = np.clip(percentiles, 0.0, 1.0 - 1e-9)
    defense = MixedDefense(percentiles=percentiles, probabilities=probabilities)

    attacker_support = result.support("row")
    return OracleSolution(
        defense=defense,
        attacker_support=attacker_support,
        value=result.value,
        converged=result.converged,
        iterations=result.iterations,
        raw=result,
    )
