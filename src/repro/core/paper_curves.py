"""Payoff curves calibrated to the paper's own reported numbers.

Our substrate is a Spambase *surrogate*, so the E/Γ curves measured on
it differ quantitatively from the authors' (see EXPERIMENTS.md).  To
validate Algorithm 1 against the paper's **published outputs**, this
module reconstructs the curves the authors' own Figure 1 and Table 1
imply, and exposes them as a :class:`~repro.core.game.PayoffCurves`:

* Table 1 (n = 2): support {5.8 %, 15.7 %} with probabilities
  {51.2 %, 48.8 %}.  The equalization condition fixes the ratio
  ``E(0.157) / E(0.058) = 0.512`` (the survival probability of the
  outer radius equals ``E(p_inner)/E(p_outer)``).
* Table 1 (n = 3): support {5.8 %, 9.4 %, 16.3 %} with uniform
  probabilities, fixing ``E(0.094)/E(0.058) = 1/2`` and
  ``E(0.163)/E(0.094) = 2/3``.
* Figure 1: the attacked accuracy collapses to ≈50 % with no filtering
  (so ``N·E(0) ≈ 0.38`` below the ≈88 % clean baseline) yet recovers to
  ≈85-86 % at 10-30 % filtering — a *much* faster decay near the
  boundary than the Table-1 ratios allow in the 6-16 % band.  A single
  exponential cannot satisfy both, so we fit a two-scale exponential

      E(p) = a·exp(-k1·p) + b·exp(-k2·p),   k1 >> k2,

  with the fast component matching the boundary collapse and the slow
  component matching the Table-1 equalization ratios.
* The clean curve declines by roughly a point over the swept range,
  giving a gently superlinear ``Γ(p) = g·p^1.5``.

With these curves, running Algorithm 1 reproduces Table 1's support
radii and probabilities to within a few percent — the strongest
available check that the algorithm implementation matches the paper's
(see ``benchmarks/bench_table1_paper_curves.py``).
"""

from __future__ import annotations

import numpy as np

from repro.core.game import PayoffCurves

__all__ = [
    "PAPER_N_POISON",
    "PAPER_TABLE1_N2",
    "PAPER_TABLE1_N3",
    "paper_figure1_curves",
]

# The paper: 3220 training instances, attacker manipulates 20 % of the
# training data -> N = 0.25 * 3220 = 805 injected points.
PAPER_N_POISON = 805

# Published Table 1 (radii as removal percentiles, probabilities).
PAPER_TABLE1_N2 = {
    "percentiles": (0.058, 0.157),
    "probabilities": (0.512, 0.488),
    "accuracy": 0.856,
}
PAPER_TABLE1_N3 = {
    "percentiles": (0.058, 0.094, 0.163),
    "probabilities": (0.333, 0.333, 0.334),
    "accuracy": 0.861,
}

# Two-scale exponential fitted to the constraints in the module
# docstring (see the derivation in EXPERIMENTS.md):
#   N·E(0)               = 0.38   (attacked accuracy ~0.50 vs clean ~0.88)
#   E(0.094) / E(0.058)  = 0.5    (Table 1, n = 3 equalization)
_K_FAST = 60.0
_K_SLOW = 8.0
_N_A = 0.353   # N·a — fast component weight
_N_B = 0.0268  # N·b — slow component weight
# Γ calibrated so that Algorithm 1's optimal support lands on the
# paper's Table-1 radii band (5-16 %): Γ(0.157) ≈ 1.2 accuracy points.
_GAMMA_SCALE = 0.2
_GAMMA_POWER = 1.5


def paper_figure1_curves(n_poison: int = PAPER_N_POISON) -> PayoffCurves:
    """The E/Γ curves implied by the paper's Figure 1 and Table 1.

    ``n_poison`` rescales the per-point damage so that the *total*
    attack damage matches the paper's regardless of the budget used
    (the paper's own N is 805).
    """
    if n_poison <= 0:
        raise ValueError(f"n_poison must be positive, got {n_poison}")
    a = _N_A / n_poison
    b = _N_B / n_poison

    def E(p: float) -> float:
        return a * np.exp(-_K_FAST * p) + b * np.exp(-_K_SLOW * p)

    def gamma(p: float) -> float:
        return _GAMMA_SCALE * max(p, 0.0) ** _GAMMA_POWER

    return PayoffCurves(E=E, gamma=gamma, p_max=0.5)
