"""Estimating ``E(p)`` and ``Γ(p)`` from pure-strategy sweep measurements.

The paper: "The input of the algorithm, E(p) and Γ(p), are approximated
using the results in Fig. 1."  Concretely:

* ``Γ(p)`` — collateral cost — is the accuracy the *clean* model loses
  when a filter removes fraction ``p`` of genuine data:
  ``Γ(p) = acc_clean(0) - acc_clean(p)``.
* ``E(p)`` — per-point damage — comes from the attacked curve: when
  the optimal attack places all ``N`` points just inside a filter at
  ``p`` (so they survive), the measured accuracy satisfies
  ``acc_attacked(p) ≈ acc_clean(p) - N * E(p)``, hence
  ``E(p) = (acc_clean(p) - acc_attacked(p)) / N``.

Raw sweep measurements are noisy (SVM training is stochastic), so both
curves are regularised to their known shapes — ``Γ`` non-decreasing,
``E`` non-increasing — by isotonic regression (pool-adjacent-violators)
and then interpolated with a shape-preserving monotone cubic (PCHIP).
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy.interpolate import PchipInterpolator

from repro.core.game import PayoffCurves
from repro.utils.validation import check_positive_int, check_sorted_increasing

__all__ = ["MonotoneCurve", "isotonic_regression", "fit_monotone_curve",
           "estimate_payoff_curves"]


def isotonic_regression(y, *, increasing: bool = True, weights=None) -> np.ndarray:
    """Pool-adjacent-violators (PAVA) isotonic fit.

    Returns the monotone sequence minimising the (weighted) squared
    distance to ``y``.
    """
    y = np.asarray(y, dtype=float)
    if y.ndim != 1 or y.size == 0:
        raise ValueError("y must be a non-empty 1-d array")
    if weights is None:
        weights = np.ones_like(y)
    else:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != y.shape or np.any(weights <= 0):
            raise ValueError("weights must be positive and match y's shape")
    if not increasing:
        return -isotonic_regression(-y, increasing=True, weights=weights)

    # Blocks of (value, weight, count), merged while out of order.
    values = list(y)
    w = list(weights)
    counts = [1] * len(values)
    i = 0
    while i < len(values) - 1:
        if values[i] > values[i + 1] + 1e-15:
            total_w = w[i] + w[i + 1]
            merged = (values[i] * w[i] + values[i + 1] * w[i + 1]) / total_w
            values[i : i + 2] = [merged]
            counts[i : i + 2] = [counts[i] + counts[i + 1]]
            w[i : i + 2] = [total_w]
            if i > 0:
                i -= 1
        else:
            i += 1
    return np.repeat(values, counts)


class MonotoneCurve:
    """A fitted monotone curve, callable on scalars *and* arrays.

    Wraps PCHIP through already-monotone knots (PCHIP through monotone
    data is monotone) with endpoint clamping.  Three properties the
    payoff layer relies on:

    * ``curve(p)`` keeps the legacy scalar ``float -> float`` contract;
    * ``curve.evaluate(ps)`` evaluates a whole grid in one vectorised
      interpolant call (``PayoffCurves.E_vec``/``gamma_vec`` dispatch
      on this method), elementwise-identical to the scalar path;
    * instances pickle by their knots, so curves ride along with
      experiment contexts and round batches across process boundaries.
    """

    def __init__(self, x, y, clamp: bool = True):
        self.x = np.asarray(x, dtype=float)
        self.y = np.asarray(y, dtype=float)
        if self.x.ndim != 1 or self.x.size == 0 or self.y.shape != self.x.shape:
            raise ValueError(
                f"knots must be matching 1-d arrays, got {self.x.shape} vs "
                f"{self.y.shape}"
            )
        self.clamp = bool(clamp)
        # PCHIP needs strictly increasing x but handles flat stretches
        # in y fine; a single knot degenerates to a constant curve.
        self._interp = (PchipInterpolator(self.x, self.y, extrapolate=False)
                        if self.x.size > 1 else None)

    def __reduce__(self):
        return (type(self), (self.x, self.y, self.clamp))

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.x.size} knots on "
                f"[{self.x[0]:g}, {self.x[-1]:g}], clamp={self.clamp})")

    def evaluate(self, ps) -> np.ndarray | float:
        """Vectorised evaluation; scalar in, scalar out."""
        ps = np.asarray(ps, dtype=float)
        scalar = ps.ndim == 0
        grid = np.atleast_1d(ps)
        if self._interp is None:
            out = np.full(grid.shape, float(self.y[0]))
        else:
            out = np.asarray(self._interp(grid), dtype=float)
            if self.clamp:
                out = np.where(grid <= self.x[0], self.y[0], out)
                out = np.where(grid >= self.x[-1], self.y[-1], out)
            nan = np.isnan(out)
            if nan.any():
                raise ValueError(
                    f"curve evaluated outside fitted range at p={grid[nan][0]}"
                )
        return float(out[0]) if scalar else out

    def __call__(self, p: float) -> float:
        return float(self.evaluate(float(p)))


def fit_monotone_curve(x, y, *, increasing: bool = True,
                       clamp: bool = True) -> MonotoneCurve:
    """Fit a smooth monotone curve through noisy samples.

    PAVA enforces the shape, PCHIP interpolates it without overshoot.
    Outside the sampled range the curve is clamped to its endpoint
    values when ``clamp`` (sensible for accuracy-derived curves, which
    saturate).  Returns a :class:`MonotoneCurve` — callable like the
    plain function it used to be, but vectorisation-aware.
    """
    x = check_sorted_increasing(x, name="x", strict=True)
    y = np.asarray(y, dtype=float)
    if y.shape != x.shape:
        raise ValueError(f"x and y must match, got {x.shape} vs {y.shape}")
    y_iso = isotonic_regression(y, increasing=increasing)
    return MonotoneCurve(x, y_iso, clamp=clamp)


def estimate_payoff_curves(
    percentiles,
    acc_clean,
    acc_attacked,
    n_poison: int,
    *,
    p_max: float | None = None,
) -> PayoffCurves:
    """Build :class:`PayoffCurves` from a Figure-1 style sweep.

    Parameters
    ----------
    percentiles:
        Filter strengths swept (must include 0 — the no-filter
        baseline that anchors ``Γ(0) = 0``).
    acc_clean:
        Test accuracy with the filter but **no attack** at each
        percentile.
    acc_attacked:
        Test accuracy with the filter and the optimal boundary attack
        surviving at each percentile.
    n_poison:
        The attack budget ``N`` used in the sweep.
    p_max:
        Domain bound for the curves.  ``None`` (default) truncates
        automatically at the percentile where the measured damage gap
        ``acc_clean - acc_attacked`` reaches its minimum: beyond that
        point the empirical damage *rises* again (stronger filters
        amplify the surviving poison's relative mass), which violates
        the game model's premise that ``E`` is non-increasing — those
        filter strengths are outside the model's validity range, and a
        rational defender never uses them anyway (both ``E`` and ``Γ``
        grow there).
    """
    percentiles = check_sorted_increasing(percentiles, name="percentiles", strict=True)
    acc_clean = np.asarray(acc_clean, dtype=float)
    acc_attacked = np.asarray(acc_attacked, dtype=float)
    n_poison = check_positive_int(n_poison, name="n_poison")
    if acc_clean.shape != percentiles.shape or acc_attacked.shape != percentiles.shape:
        raise ValueError("percentiles, acc_clean and acc_attacked must align")
    if percentiles[0] != 0.0:
        raise ValueError(
            "the sweep must include percentile 0 (the unfiltered baseline); "
            f"got minimum {percentiles[0]}"
        )

    baseline = float(acc_clean[0])
    gamma_samples = np.clip(baseline - acc_clean, 0.0, None)
    gamma_samples[0] = 0.0  # exact anchor: no filter, no collateral cost
    # Non-negative samples with a zero first entry keep PAVA from ever
    # pooling the anchor upward, so gamma(0) == 0 exactly.
    gamma = fit_monotone_curve(percentiles, gamma_samples, increasing=True)

    damage_samples = (acc_clean - acc_attacked) / n_poison
    E = fit_monotone_curve(percentiles, damage_samples, increasing=False)

    if p_max is not None:
        domain = float(p_max)
    else:
        gap_min_idx = int(np.argmin(acc_clean - acc_attacked))
        domain = float(percentiles[gap_min_idx])
        if domain <= 0.0:
            domain = float(percentiles[-1])
    return PayoffCurves(E=E, gamma=gamma, p_max=domain)
