"""Estimating ``E(p)`` and ``Γ(p)`` from pure-strategy sweep measurements.

The paper: "The input of the algorithm, E(p) and Γ(p), are approximated
using the results in Fig. 1."  Concretely:

* ``Γ(p)`` — collateral cost — is the accuracy the *clean* model loses
  when a filter removes fraction ``p`` of genuine data:
  ``Γ(p) = acc_clean(0) - acc_clean(p)``.
* ``E(p)`` — per-point damage — comes from the attacked curve: when
  the optimal attack places all ``N`` points just inside a filter at
  ``p`` (so they survive), the measured accuracy satisfies
  ``acc_attacked(p) ≈ acc_clean(p) - N * E(p)``, hence
  ``E(p) = (acc_clean(p) - acc_attacked(p)) / N``.

Raw sweep measurements are noisy (SVM training is stochastic), so both
curves are regularised to their known shapes — ``Γ`` non-decreasing,
``E`` non-increasing — by isotonic regression (pool-adjacent-violators)
and then interpolated with a shape-preserving monotone cubic (PCHIP).
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy.interpolate import PchipInterpolator

from repro.core.game import PayoffCurves
from repro.utils.validation import check_positive_int, check_sorted_increasing

__all__ = ["isotonic_regression", "fit_monotone_curve", "estimate_payoff_curves"]


def isotonic_regression(y, *, increasing: bool = True, weights=None) -> np.ndarray:
    """Pool-adjacent-violators (PAVA) isotonic fit.

    Returns the monotone sequence minimising the (weighted) squared
    distance to ``y``.
    """
    y = np.asarray(y, dtype=float)
    if y.ndim != 1 or y.size == 0:
        raise ValueError("y must be a non-empty 1-d array")
    if weights is None:
        weights = np.ones_like(y)
    else:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != y.shape or np.any(weights <= 0):
            raise ValueError("weights must be positive and match y's shape")
    if not increasing:
        return -isotonic_regression(-y, increasing=True, weights=weights)

    # Blocks of (value, weight, count), merged while out of order.
    values = list(y)
    w = list(weights)
    counts = [1] * len(values)
    i = 0
    while i < len(values) - 1:
        if values[i] > values[i + 1] + 1e-15:
            total_w = w[i] + w[i + 1]
            merged = (values[i] * w[i] + values[i + 1] * w[i + 1]) / total_w
            values[i : i + 2] = [merged]
            counts[i : i + 2] = [counts[i] + counts[i + 1]]
            w[i : i + 2] = [total_w]
            if i > 0:
                i -= 1
        else:
            i += 1
    return np.repeat(values, counts)


def fit_monotone_curve(x, y, *, increasing: bool = True,
                       clamp: bool = True) -> Callable[[float], float]:
    """Fit a smooth monotone curve through noisy samples.

    PAVA enforces the shape, PCHIP interpolates it without overshoot
    (PCHIP through monotone data is monotone).  Outside the sampled
    range the curve is clamped to its endpoint values when ``clamp``
    (sensible for accuracy-derived curves, which saturate).
    """
    x = check_sorted_increasing(x, name="x", strict=True)
    y = np.asarray(y, dtype=float)
    if y.shape != x.shape:
        raise ValueError(f"x and y must match, got {x.shape} vs {y.shape}")
    y_iso = isotonic_regression(y, increasing=increasing)
    if x.size == 1:
        const = float(y_iso[0])
        return lambda p: const
    # PCHIP needs strictly monotone data for strict monotonicity, but
    # handles flat stretches fine; tiny jitter is unnecessary.
    interp = PchipInterpolator(x, y_iso, extrapolate=False)
    lo_x, hi_x = float(x[0]), float(x[-1])
    lo_y, hi_y = float(y_iso[0]), float(y_iso[-1])

    def curve(p: float) -> float:
        p = float(p)
        if clamp:
            if p <= lo_x:
                return lo_y
            if p >= hi_x:
                return hi_y
        value = interp(p)
        if np.isnan(value):
            raise ValueError(f"curve evaluated outside fitted range at p={p}")
        return float(value)

    return curve


def estimate_payoff_curves(
    percentiles,
    acc_clean,
    acc_attacked,
    n_poison: int,
    *,
    p_max: float | None = None,
) -> PayoffCurves:
    """Build :class:`PayoffCurves` from a Figure-1 style sweep.

    Parameters
    ----------
    percentiles:
        Filter strengths swept (must include 0 — the no-filter
        baseline that anchors ``Γ(0) = 0``).
    acc_clean:
        Test accuracy with the filter but **no attack** at each
        percentile.
    acc_attacked:
        Test accuracy with the filter and the optimal boundary attack
        surviving at each percentile.
    n_poison:
        The attack budget ``N`` used in the sweep.
    p_max:
        Domain bound for the curves.  ``None`` (default) truncates
        automatically at the percentile where the measured damage gap
        ``acc_clean - acc_attacked`` reaches its minimum: beyond that
        point the empirical damage *rises* again (stronger filters
        amplify the surviving poison's relative mass), which violates
        the game model's premise that ``E`` is non-increasing — those
        filter strengths are outside the model's validity range, and a
        rational defender never uses them anyway (both ``E`` and ``Γ``
        grow there).
    """
    percentiles = check_sorted_increasing(percentiles, name="percentiles", strict=True)
    acc_clean = np.asarray(acc_clean, dtype=float)
    acc_attacked = np.asarray(acc_attacked, dtype=float)
    n_poison = check_positive_int(n_poison, name="n_poison")
    if acc_clean.shape != percentiles.shape or acc_attacked.shape != percentiles.shape:
        raise ValueError("percentiles, acc_clean and acc_attacked must align")
    if percentiles[0] != 0.0:
        raise ValueError(
            "the sweep must include percentile 0 (the unfiltered baseline); "
            f"got minimum {percentiles[0]}"
        )

    baseline = float(acc_clean[0])
    gamma_samples = np.clip(baseline - acc_clean, 0.0, None)
    gamma_samples[0] = 0.0  # exact anchor: no filter, no collateral cost
    # Non-negative samples with a zero first entry keep PAVA from ever
    # pooling the anchor upward, so gamma(0) == 0 exactly.
    gamma = fit_monotone_curve(percentiles, gamma_samples, increasing=True)

    damage_samples = (acc_clean - acc_attacked) / n_poison
    E = fit_monotone_curve(percentiles, damage_samples, increasing=False)

    if p_max is not None:
        domain = float(p_max)
    else:
        gap_min_idx = int(np.argmin(acc_clean - acc_attacked))
        domain = float(percentiles[gap_min_idx])
        if domain <= 0.0:
            domain = float(percentiles[-1])
    return PayoffCurves(E=E, gamma=gamma, p_max=domain)
