"""Sensitivity of the mixed defence to payoff-curve misestimation.

The paper's closing limitation: "we used the results from the pure
strategy scenario to approximate E(p) and Γ(p)" — the algorithm's
inputs are noisy estimates.  This module quantifies how much that
matters:

* :func:`perturb_curves` builds multiplicatively perturbed copies of a
  curve pair (the natural error model for accuracy-derived curves);
* :func:`defense_sensitivity` runs Algorithm 1 across an ensemble of
  perturbations and reports the dispersion of the support, the
  probabilities and the loss;
* :func:`regret_under_misestimation` answers the operational question:
  if the defence was computed on *estimated* curves but the world
  follows the *true* curves, how much worse off is the defender than
  if it had known the truth?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.algorithm1 import compute_optimal_defense
from repro.core.game import PayoffCurves, PoisoningGame
from repro.core.equilibrium import attacker_best_response_value
from repro.core.mixed_strategy import MixedDefense
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["perturb_curves", "SensitivityReport", "defense_sensitivity",
           "regret_under_misestimation"]


def perturb_curves(
    curves: PayoffCurves,
    *,
    e_noise: float = 0.1,
    gamma_noise: float = 0.1,
    seed: int | np.random.Generator | None = None,
    n_knots: int = 9,
) -> PayoffCurves:
    """A smoothly perturbed copy of ``curves``.

    Each curve is multiplied by a log-normal random field interpolated
    from ``n_knots`` independent knot values (piecewise-linear in log
    space), preserving positivity and approximate monotonicity for
    small noise levels.
    """
    if e_noise < 0 or gamma_noise < 0:
        raise ValueError("noise levels must be non-negative")
    check_positive_int(n_knots, name="n_knots")
    rng = as_generator(seed)
    knots = np.linspace(0.0, curves.p_max, n_knots)
    e_field = rng.normal(0.0, e_noise, n_knots)
    g_field = rng.normal(0.0, gamma_noise, n_knots)

    def factor(field: np.ndarray, p: float) -> float:
        return float(np.exp(np.interp(p, knots, field)))

    base_E, base_gamma = curves.E, curves.gamma

    def E(p: float) -> float:
        return base_E(p) * factor(e_field, p)

    def gamma(p: float) -> float:
        return base_gamma(p) * factor(g_field, p)

    return PayoffCurves(E=E, gamma=gamma, p_max=curves.p_max)


@dataclass
class SensitivityReport:
    """Dispersion of Algorithm 1's output across curve perturbations.

    Attributes
    ----------
    support_mean, support_std:
        Per-radius mean and standard deviation of the support
        percentiles across the ensemble.
    probability_mean, probability_std:
        Same for the equalizing probabilities.
    loss_mean, loss_std:
        Same for the modelled defender loss.
    n_runs:
        Ensemble size actually used (failed perturbations skipped).
    """

    support_mean: np.ndarray
    support_std: np.ndarray
    probability_mean: np.ndarray
    probability_std: np.ndarray
    loss_mean: float
    loss_std: float
    n_runs: int


def defense_sensitivity(
    curves: PayoffCurves,
    n_radii: int,
    n_poison: int,
    *,
    n_runs: int = 20,
    e_noise: float = 0.1,
    gamma_noise: float = 0.1,
    seed: int | np.random.Generator | None = 0,
    algorithm_kwargs: dict | None = None,
) -> SensitivityReport:
    """Run Algorithm 1 across an ensemble of perturbed curves."""
    check_positive_int(n_runs, name="n_runs")
    rng = as_generator(seed)
    supports, probabilities, losses = [], [], []
    for _ in range(n_runs):
        perturbed = perturb_curves(curves, e_noise=e_noise,
                                   gamma_noise=gamma_noise, seed=rng)
        try:
            result = compute_optimal_defense(
                perturbed, n_radii, n_poison, **(algorithm_kwargs or {})
            )
        except ValueError:
            # a perturbation can push E non-monotone enough to break
            # equalization; skip it rather than crash the ensemble
            continue
        supports.append(result.defense.percentiles)
        probabilities.append(result.defense.probabilities)
        losses.append(result.expected_loss)
    if not supports:
        raise RuntimeError("every perturbed run failed; lower the noise levels")
    supports = np.vstack(supports)
    probabilities = np.vstack(probabilities)
    losses = np.asarray(losses)
    return SensitivityReport(
        support_mean=supports.mean(axis=0),
        support_std=supports.std(axis=0),
        probability_mean=probabilities.mean(axis=0),
        probability_std=probabilities.std(axis=0),
        loss_mean=float(losses.mean()),
        loss_std=float(losses.std()),
        n_runs=len(losses),
    )


def regret_under_misestimation(
    true_curves: PayoffCurves,
    estimated_curves: PayoffCurves,
    n_radii: int,
    n_poison: int,
    *,
    algorithm_kwargs: dict | None = None,
) -> dict:
    """Defender's regret from optimising against misestimated curves.

    Computes the defence on ``estimated_curves``, evaluates it against
    a best-responding attacker under ``true_curves``, and compares with
    the defence computed on the truth.  Returns a dict with
    ``loss_with_estimate``, ``loss_with_truth`` and ``regret`` (their
    difference, >= 0 up to optimisation error).
    """
    kwargs = algorithm_kwargs or {}
    est = compute_optimal_defense(estimated_curves, n_radii, n_poison, **kwargs)
    true = compute_optimal_defense(true_curves, n_radii, n_poison, **kwargs)
    game = PoisoningGame(curves=true_curves, n_poison=n_poison)

    def realised_loss(defense: MixedDefense) -> float:
        br_value, _ = attacker_best_response_value(game, defense)
        gamma_term = defense.expected_gamma(true_curves)
        return br_value + gamma_term

    loss_est = realised_loss(est.defense)
    loss_true = realised_loss(true.defense)
    return {
        "loss_with_estimate": loss_est,
        "loss_with_truth": loss_true,
        "regret": loss_est - loss_true,
    }
