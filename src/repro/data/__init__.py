"""Datasets and data geometry.

* :mod:`repro.data.spambase` — the paper's evaluation dataset (real
  file if available, statistically matched synthetic surrogate
  otherwise).
* :mod:`repro.data.synthetic` — controlled synthetic tasks for unit
  tests and ablations.
* :mod:`repro.data.geometry` — centroid estimators and the radius /
  percentile machinery the filter defence and the game model share.
"""

from repro.data.spambase import load_spambase, SpambaseSurrogate, SPAMBASE_N_FEATURES
from repro.data.synthetic import (
    make_gaussian_blobs,
    make_two_moons,
    make_xor,
    make_imbalanced_mixture,
)
from repro.data.geometry import (
    Centroid,
    compute_centroid,
    distances_to_centroid,
    radius_for_percentile,
    percentile_for_radius,
    RadiusPercentileMap,
)

__all__ = [
    "load_spambase",
    "SpambaseSurrogate",
    "SPAMBASE_N_FEATURES",
    "make_gaussian_blobs",
    "make_two_moons",
    "make_xor",
    "make_imbalanced_mixture",
    "Centroid",
    "compute_centroid",
    "distances_to_centroid",
    "radius_for_percentile",
    "percentile_for_radius",
    "RadiusPercentileMap",
]
