"""Centroids, distances, and the radius <-> percentile correspondence.

The paper parameterises both players' strategies by distance from the
centroid of the genuine data, and reports results on a *percentile*
axis ("percentage of data points removed by the filter").  This module
is the single source of truth for that correspondence so the attacker,
the defender and the game model all measure radii identically.

Centroid robustness matters: the paper argues the defence stays valid
under contamination because a robust centroid (median, trimmed mean)
barely moves when 20 % of points are malicious.  All three estimators
are provided and benchmarked in the ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_array, check_fraction

__all__ = [
    "Centroid",
    "compute_centroid",
    "distances_to_centroid",
    "radius_for_percentile",
    "percentile_for_radius",
    "RadiusPercentileMap",
]

_CENTROID_METHODS = ("mean", "median", "trimmed_mean")


@dataclass(frozen=True)
class Centroid:
    """A centroid estimate plus the method that produced it."""

    location: np.ndarray
    method: str

    def __post_init__(self):
        object.__setattr__(self, "location", np.asarray(self.location, dtype=float))
        if self.method not in _CENTROID_METHODS:
            raise ValueError(
                f"unknown centroid method {self.method!r}; choose from {_CENTROID_METHODS}"
            )


def compute_centroid(X, *, method: str = "median", trim: float = 0.1) -> Centroid:
    """Estimate the centroid of ``X`` (rows are samples).

    Parameters
    ----------
    method:
        ``"mean"`` — arithmetic mean (breakdown point 0: a single
        far-out poisoning point moves it arbitrarily).
        ``"median"`` — coordinate-wise median (breakdown point 0.5; the
        paper's recommended "good method to find the centroid").
        ``"trimmed_mean"`` — coordinate-wise mean after dropping the
        ``trim`` fraction of extreme values at each end.
    trim:
        Trim fraction per tail for ``trimmed_mean``.
    """
    X = check_array(X, ndim=2, name="X")
    if method == "mean":
        loc = X.mean(axis=0)
    elif method == "median":
        loc = np.median(X, axis=0)
    elif method == "trimmed_mean":
        trim = check_fraction(trim, name="trim", inclusive_high=False)
        n = X.shape[0]
        k = int(np.floor(trim * n))
        if 2 * k >= n:
            raise ValueError(f"trim={trim} removes all {n} samples")
        sorted_cols = np.sort(X, axis=0)
        loc = sorted_cols[k : n - k].mean(axis=0)
    else:
        raise ValueError(
            f"unknown centroid method {method!r}; choose from {_CENTROID_METHODS}"
        )
    return Centroid(location=loc, method=method)


def distances_to_centroid(X, centroid: Centroid | np.ndarray) -> np.ndarray:
    """Euclidean distance from every row of ``X`` to the centroid."""
    X = check_array(X, ndim=2, name="X")
    loc = centroid.location if isinstance(centroid, Centroid) else np.asarray(centroid, float)
    if loc.shape != (X.shape[1],):
        raise ValueError(
            f"centroid has shape {loc.shape}, expected ({X.shape[1]},)"
        )
    return np.linalg.norm(X - loc, axis=1)


def radius_for_percentile(distances: np.ndarray, p: float) -> float:
    """Geometric radius below which a fraction ``1 - p`` of points fall.

    ``p`` is the paper's x-axis: the fraction of genuine points a filter
    of this radius would *remove*.  ``p = 0`` returns the maximum
    distance (the boundary ``B``; nothing removed), ``p -> 1`` shrinks
    toward the centroid.
    """
    distances = np.asarray(distances, dtype=float)
    if distances.ndim != 1 or distances.size == 0:
        raise ValueError("distances must be a non-empty 1-d array")
    p = check_fraction(p, name="p")
    return float(np.quantile(distances, 1.0 - p))


def percentile_for_radius(distances: np.ndarray, radius: float) -> float:
    """Fraction of points strictly farther than ``radius`` (inverse map)."""
    distances = np.asarray(distances, dtype=float)
    if distances.ndim != 1 or distances.size == 0:
        raise ValueError("distances must be a non-empty 1-d array")
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    return float(np.mean(distances > radius))


@dataclass
class RadiusPercentileMap:
    """Bidirectional radius <-> removal-percentile map for one dataset.

    Freezes the genuine-data distance distribution once so repeated
    conversions during a game (thousands per experiment) are cheap and
    mutually consistent.
    """

    distances: np.ndarray

    def __post_init__(self):
        d = np.asarray(self.distances, dtype=float)
        if d.ndim != 1 or d.size == 0:
            raise ValueError("distances must be a non-empty 1-d array")
        if np.any(d < 0) or not np.all(np.isfinite(d)):
            raise ValueError("distances must be finite and non-negative")
        self.distances = np.sort(d)

    @property
    def boundary(self) -> float:
        """``B`` — the maximum genuine distance (the feasible-space edge)."""
        return float(self.distances[-1])

    def radius(self, p: float) -> float:
        """Radius whose filter removes fraction ``p`` of genuine points."""
        return radius_for_percentile(self.distances, p)

    def percentile(self, radius: float) -> float:
        """Fraction of genuine points removed by a filter at ``radius``."""
        return percentile_for_radius(self.distances, radius)

    def radii(self, ps) -> np.ndarray:
        """Vectorised :meth:`radius`."""
        return np.array([self.radius(float(p)) for p in np.asarray(ps, dtype=float)])
