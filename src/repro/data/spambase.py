"""The Spambase dataset: real-file loader plus a synthetic surrogate.

The paper evaluates on UCI Spambase: 4601 emails, 57 continuous
features (48 word frequencies, 6 character frequencies, 3 capital-run
statistics), 39.4 % spam.  This environment has no network access, so
:func:`load_spambase` first looks for a local copy of
``spambase.data`` and otherwise generates a **statistically matched
synthetic surrogate** (see :class:`SpambaseSurrogate`).

Why the surrogate preserves the paper's behaviour
-------------------------------------------------
The game analysis needs exactly three properties of the dataset:

1. a binary task on which a hinge-loss linear SVM reaches ≈90 % clean
   accuracy (so accuracy deltas of a few points are measurable);
2. non-negative, strongly right-skewed features whose distance-from-
   centroid distribution has a long tail — this is what makes the
   radius/percentile filter trade-off non-trivial;
3. enough samples (thousands) that removing 5–30 % of genuine points
   costs measurable but not catastrophic accuracy (the Γ(p) curve).

The surrogate reproduces all three: per-class log-normal word/char
frequencies with class-dependent rates mirroring the published
Spambase per-class means (e.g. spam mails have high ``free``/``money``/
``!``/``$`` rates and long capital runs, ham mails have high ``hp``/
``george``/``meeting`` rates), plus Pareto-tailed capital-run features.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["SPAMBASE_N_FEATURES", "SPAMBASE_N_SAMPLES", "SPAMBASE_SPAM_FRACTION",
           "SpambaseSurrogate", "load_spambase", "spambase_feature_names"]

SPAMBASE_N_FEATURES = 57
SPAMBASE_N_SAMPLES = 4601
SPAMBASE_SPAM_FRACTION = 0.394

_WORDS = [
    "make", "address", "all", "3d", "our", "over", "remove", "internet",
    "order", "mail", "receive", "will", "people", "report", "addresses",
    "free", "business", "email", "you", "credit", "your", "font", "000",
    "money", "hp", "hpl", "george", "650", "lab", "labs", "telnet", "857",
    "data", "415", "85", "technology", "1999", "parts", "pm", "direct",
    "cs", "meeting", "original", "project", "re", "edu", "table",
    "conference",
]
_CHARS = [";", "(", "[", "!", "$", "#"]


def spambase_feature_names() -> list[str]:
    """The 57 canonical Spambase feature names, in dataset order."""
    names = [f"word_freq_{w}" for w in _WORDS]
    names += [f"char_freq_{c}" for c in _CHARS]
    names += ["capital_run_length_average", "capital_run_length_longest",
              "capital_run_length_total"]
    return names


# Per-class mean word frequencies (percent of words) for the surrogate.
# Values are drawn from the published Spambase documentation's class
# profiles: spam-indicative words are elevated in spam, business/HP
# words in ham.  Only the *relative* structure matters to the game.
_SPAM_ELEVATED = {
    "make": 0.28, "address": 0.25, "all": 0.50, "our": 0.51, "over": 0.18,
    "remove": 0.27, "internet": 0.21, "order": 0.17, "mail": 0.35,
    "receive": 0.12, "will": 0.55, "people": 0.14, "free": 0.52,
    "business": 0.29, "email": 0.32, "you": 2.26, "credit": 0.21,
    "your": 1.38, "font": 0.24, "000": 0.25, "money": 0.21, "3d": 0.16,
}
_HAM_ELEVATED = {
    "hp": 0.90, "hpl": 0.43, "george": 1.27, "650": 0.25, "lab": 0.16,
    "labs": 0.18, "telnet": 0.11, "857": 0.09, "data": 0.18, "415": 0.09,
    "85": 0.17, "technology": 0.14, "1999": 0.20, "parts": 0.01,
    "pm": 0.12, "direct": 0.08, "cs": 0.11, "meeting": 0.22,
    "original": 0.09, "project": 0.13, "re": 0.42, "edu": 0.29,
    "table": 0.01, "conference": 0.05,
}
_CHAR_SPAM = {";": 0.02, "(": 0.11, "[": 0.01, "!": 0.51, "$": 0.17, "#": 0.08}
_CHAR_HAM = {";": 0.05, "(": 0.16, "[": 0.02, "!": 0.11, "$": 0.01, "#": 0.02}


@dataclass(frozen=True)
class _ModeLayer:
    """One heated-discussion layer: share of the mode mass, its
    capital-run scale (which fixes its distance shell) and the words
    that separate spam from ham *within* the layer."""

    fraction: float
    run_scale: float
    spam_words: tuple
    ham_words: tuple


@dataclass
class SpambaseSurrogate:
    """Generator for a synthetic Spambase-like dataset.

    Features are zero-inflated log-normal draws whose class-conditional
    rates follow the canonical Spambase profile, so a linear SVM on
    standardised features reaches ≈90 % accuracy and the genuine
    distance-from-centroid distribution is long-tailed.

    Parameters
    ----------
    n_samples:
        Dataset size (default: the real 4601).
    spam_fraction:
        Positive-class prior (default: the real 0.394).
    seed:
        Generation seed.  The same seed always produces the same data.
    """

    n_samples: int = SPAMBASE_N_SAMPLES
    spam_fraction: float = SPAMBASE_SPAM_FRACTION
    seed: int | None = 0
    confusable_fraction: float = 0.10
    tail_alpha: float = 1.3
    word_contrast: float = 1.0
    discussion_mode_fraction: float = 0.15
    mode_spam_bias: float = 2.2
    mode_ham_bias: float = 0.3

    def generate(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(X, y)`` with y=1 for spam, in shuffled order."""
        n = check_positive_int(self.n_samples, name="n_samples")
        if not 0.0 < self.spam_fraction < 1.0:
            raise ValueError(
                f"spam_fraction must lie in (0, 1), got {self.spam_fraction}"
            )
        rng = as_generator(self.seed)
        n_spam = max(1, int(round(self.spam_fraction * n)))
        n_ham = n - n_spam
        X_spam = self._sample_class(rng, n_spam, spam=True)
        X_ham = self._sample_class(rng, n_ham, spam=False)
        # Confusable emails: a fraction of each class is drawn from the
        # *other* class's feature profile (borderline messages — spam
        # written to look like business mail and vice versa).  This is
        # what keeps the task at Spambase's ≈90 % SVM accuracy instead
        # of being trivially separable.
        if self.confusable_fraction > 0:
            k_spam = int(round(self.confusable_fraction * n_spam))
            k_ham = int(round(self.confusable_fraction * n_ham))
            if k_spam:
                X_spam[:k_spam] = self._sample_class(rng, k_spam, spam=False)
            if k_ham:
                X_ham[:k_ham] = self._sample_class(rng, k_ham, spam=True)
        # "Heated discussion" modes: emails of both classes with large
        # capital-run statistics (they live in the outer distance
        # shells) whose spam/ham distinction is carried by *mode-
        # specific* vocabularies that barely occur in the bulk.  The
        # model can only classify these test emails if it saw their
        # training counterparts — so a distance filter that trims the
        # outer shells measurably costs accuracy.  Modes are layered at
        # decreasing distances, which makes the collateral cost Γ(p)
        # ramp up *gradually* as the filter strengthens (the declining
        # no-attack curve in the paper's Figure 1) instead of jumping
        # at a single threshold.
        # The modes are spam-biased (``mode_spam_bias`` > 1 >
        # ``mode_ham_bias``): in the real dataset the extreme capital-
        # run shell is overwhelmingly spam, so strengthening the filter
        # both discards informative outliers AND skews the training
        # class prior — the two ingredients of the collateral cost Γ(p).
        if self.discussion_mode_fraction > 0:
            spam_cursor, ham_cursor = n_spam, n_ham
            for layer in self._MODE_LAYERS:
                k_spam_mode = int(round(
                    layer.fraction * self.discussion_mode_fraction
                    * self.mode_spam_bias * n_spam / self._TOTAL_LAYER_FRACTION
                ))
                k_ham_mode = int(round(
                    layer.fraction * self.discussion_mode_fraction
                    * self.mode_ham_bias * n_ham / self._TOTAL_LAYER_FRACTION
                ))
                if k_spam_mode and spam_cursor - k_spam_mode >= 0:
                    X_spam[spam_cursor - k_spam_mode: spam_cursor] = self._sample_mode(
                        rng, k_spam_mode, spam=True, layer=layer
                    )
                    spam_cursor -= k_spam_mode
                if k_ham_mode and ham_cursor - k_ham_mode >= 0:
                    X_ham[ham_cursor - k_ham_mode: ham_cursor] = self._sample_mode(
                        rng, k_ham_mode, spam=False, layer=layer
                    )
                    ham_cursor -= k_ham_mode
        X = np.vstack([X_spam, X_ham])
        y = np.concatenate([np.ones(n_spam, dtype=int), np.zeros(n_ham, dtype=int)])
        perm = rng.permutation(n)
        return X[perm], y[perm]

    def _sample_class(self, rng: np.random.Generator, count: int, *, spam: bool) -> np.ndarray:
        cols = []
        for word in _WORDS:
            base = 0.04  # background rate for neutral words
            rate = _SPAM_ELEVATED.get(word, base) if spam else _HAM_ELEVATED.get(word, base)
            other = _HAM_ELEVATED.get(word, base) if spam else _SPAM_ELEVATED.get(word, base)
            # A word that is elevated for the *other* class still appears
            # occasionally in this class at a tenth of its rate.
            mean = max(rate, 0.1 * other, base)
            # word_contrast < 1 pulls the class-specific rates toward
            # their cross-class average, moving discriminative signal
            # out of the word block and into the capital-run tail.
            neutral = 0.5 * (max(rate, base) + max(other, base))
            mean = neutral + self.word_contrast * (mean - neutral)
            cols.append(self._zero_inflated_lognormal(rng, count, mean))
        char_profile = _CHAR_SPAM if spam else _CHAR_HAM
        for ch in _CHARS:
            cols.append(self._zero_inflated_lognormal(rng, count, char_profile[ch]))
        # Capital-run statistics: heavy-tailed for spam (Pareto, like
        # the real dataset whose capital_run_length_total spans
        # 1 .. 15841) and light-tailed for ham.  Two consequences match
        # the real data: (a) the distance-from-centroid distribution
        # has a long tail — the boundary B sits an order of magnitude
        # beyond the 10th-percentile radius, the geometry the
        # radius/percentile game lives on; and (b) the outer shell is
        # informative, predominantly spam, so distance filtering trims
        # class signal and Γ(p) is genuinely positive.
        if spam:
            run_scale = 4.0
            avg = 1.0 + rng.pareto(2.4, count) * run_scale
            longest = 1.0 + rng.pareto(2.2, count) * run_scale * 12.0
            total = avg * (10.0 + rng.pareto(2.2, count) * run_scale * 40.0)
        else:
            run_scale = 1.2
            avg = 1.0 + rng.pareto(2.6, count) * run_scale
            longest = 1.0 + rng.pareto(2.4, count) * run_scale * 12.0
            total = avg * (10.0 + rng.pareto(2.4, count) * run_scale * 40.0)
        cols.extend([avg, longest, total])
        return np.column_stack(cols)

    # Layered heated-discussion modes.  Each layer has its own
    # vocabulary (neutral in the bulk, discriminative within the layer)
    # and its own capital-run scale, so the layers stack at different
    # distance shells: trimming 3 % removes (and un-learns) the
    # outermost layer, trimming 10 % the second, and so on.
    _MODE_LAYERS = (
        _ModeLayer(
            fraction=0.34, run_scale=16.0,
            spam_words=("3d", "font", "000", "credit"),
            ham_words=("table", "conference", "telnet", "857"),
        ),
        _ModeLayer(
            fraction=0.33, run_scale=9.0,
            spam_words=("receive", "people", "report", "addresses"),
            ham_words=("data", "415", "85", "technology"),
        ),
        _ModeLayer(
            fraction=0.33, run_scale=5.5,
            spam_words=("make", "address", "over", "internet"),
            ham_words=("parts", "pm", "direct", "cs"),
        ),
    )
    _TOTAL_LAYER_FRACTION = sum(layer.fraction for layer in _MODE_LAYERS)

    def _sample_mode(self, rng: np.random.Generator, count: int, *, spam: bool,
                     layer: "_ModeLayer") -> np.ndarray:
        """Sample heated-discussion-mode emails of one class and layer."""
        X = self._sample_class(rng, count, spam=spam)
        word_index = {w: i for i, w in enumerate(_WORDS)}
        elevated = layer.spam_words if spam else layer.ham_words
        suppressed = layer.ham_words if spam else layer.spam_words
        for w in elevated:
            X[:, word_index[w]] = self._zero_inflated_lognormal(rng, count, 1.6)
        for w in suppressed:
            X[:, word_index[w]] = self._zero_inflated_lognormal(rng, count, 0.02)
        # Mute the bulk spam/ham word signal inside the mode so the
        # layer vocabulary is what carries the label.
        layer_words = set(layer.spam_words) | set(layer.ham_words)
        for w in list(_SPAM_ELEVATED) + list(_HAM_ELEVATED):
            if w in layer_words:
                continue
            X[:, word_index[w]] = self._zero_inflated_lognormal(rng, count, 0.05)
        # Large capital runs for BOTH classes, concentrated in a NARROW
        # band (small log-normal sigma): each layer forms a thin
        # distance shell, so a filter either keeps essentially the whole
        # layer or removes essentially the whole layer.  Runs are
        # uninformative within a layer.
        scale = layer.run_scale
        X[:, -3] = 1.0 + scale * rng.lognormal(0.0, 0.2, count)
        X[:, -2] = 1.0 + scale * 10.0 * rng.lognormal(0.0, 0.2, count)
        X[:, -1] = scale * 40.0 * rng.lognormal(0.0, 0.2, count)
        return X

    @staticmethod
    def _zero_inflated_lognormal(rng: np.random.Generator, count: int, mean: float) -> np.ndarray:
        """Non-negative skewed feature with expectation ≈ ``mean``.

        A fraction of entries are exactly zero (most emails do not
        contain most words) and the rest are log-normal.
        """
        p_nonzero = min(0.9, 0.15 + mean)  # rarer words are more often absent
        nonzero = rng.random(count) < p_nonzero
        sigma = 0.75
        # E[lognormal] = exp(mu + sigma^2/2); solve mu for target mean.
        target_nonzero_mean = mean / max(p_nonzero, 1e-9)
        mu = np.log(max(target_nonzero_mean, 1e-6)) - sigma**2 / 2.0
        values = np.where(nonzero, rng.lognormal(mu, sigma, count), 0.0)
        return values


def _read_spambase_file(path: str) -> tuple[np.ndarray, np.ndarray]:
    """Parse the UCI ``spambase.data`` CSV (57 features + label column)."""
    data = np.loadtxt(path, delimiter=",")
    if data.ndim != 2 or data.shape[1] != SPAMBASE_N_FEATURES + 1:
        raise ValueError(
            f"{path} does not look like spambase.data "
            f"(expected {SPAMBASE_N_FEATURES + 1} columns, got {data.shape})"
        )
    return data[:, :-1], data[:, -1].astype(int)


def load_spambase(
    path: str | None = None,
    *,
    seed: int | None = 0,
    allow_surrogate: bool = True,
) -> tuple[np.ndarray, np.ndarray, bool]:
    """Load Spambase, preferring a real local file.

    Search order: explicit ``path`` argument, the ``SPAMBASE_PATH``
    environment variable, ``./data/spambase.data``.  If none exists and
    ``allow_surrogate`` is true, a :class:`SpambaseSurrogate` with the
    canonical size/prior is generated.

    Returns
    -------
    ``(X, y, is_real)`` where ``is_real`` reports whether the data came
    from an actual UCI file.
    """
    candidates = [
        path,
        os.environ.get("SPAMBASE_PATH"),
        os.path.join("data", "spambase.data"),
    ]
    for candidate in candidates:
        if candidate and os.path.isfile(candidate):
            X, y = _read_spambase_file(candidate)
            return X, y, True
    if not allow_surrogate:
        raise FileNotFoundError(
            "spambase.data not found (looked at: explicit path, $SPAMBASE_PATH, "
            "./data/spambase.data) and allow_surrogate=False"
        )
    X, y = SpambaseSurrogate(seed=seed).generate()
    return X, y, False
