"""Synthetic binary-classification tasks.

Used throughout the test suite (fast, controlled geometry) and in the
examples: the paper's game analysis should — and does — transfer to any
dataset where a margin classifier degrades smoothly under poisoning.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["make_gaussian_blobs", "make_two_moons", "make_xor", "make_imbalanced_mixture"]


def make_gaussian_blobs(
    n_samples: int = 400,
    n_features: int = 2,
    *,
    separation: float = 3.0,
    scale: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Two isotropic Gaussian classes separated along the first axis.

    Returns ``(X, y)`` with labels in ``{0, 1}`` and an exact 50/50
    class split (odd sample counts give the extra point to class 1).
    """
    n_samples = check_positive_int(n_samples, name="n_samples")
    n_features = check_positive_int(n_features, name="n_features")
    if separation < 0:
        raise ValueError(f"separation must be non-negative, got {separation}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    rng = as_generator(seed)
    n_neg = n_samples // 2
    n_pos = n_samples - n_neg
    offset = np.zeros(n_features)
    offset[0] = separation / 2.0
    X_neg = rng.normal(-offset, scale, size=(n_neg, n_features))
    X_pos = rng.normal(offset, scale, size=(n_pos, n_features))
    X = np.vstack([X_neg, X_pos])
    y = np.concatenate([np.zeros(n_neg, dtype=int), np.ones(n_pos, dtype=int)])
    perm = rng.permutation(n_samples)
    return X[perm], y[perm]


def make_two_moons(
    n_samples: int = 400,
    *,
    noise: float = 0.1,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The classic interleaved half-circles task in 2-d."""
    n_samples = check_positive_int(n_samples, name="n_samples")
    if noise < 0:
        raise ValueError(f"noise must be non-negative, got {noise}")
    rng = as_generator(seed)
    n_neg = n_samples // 2
    n_pos = n_samples - n_neg
    theta_neg = rng.uniform(0.0, np.pi, n_neg)
    theta_pos = rng.uniform(0.0, np.pi, n_pos)
    X_neg = np.column_stack([np.cos(theta_neg), np.sin(theta_neg)])
    X_pos = np.column_stack([1.0 - np.cos(theta_pos), 0.5 - np.sin(theta_pos)])
    X = np.vstack([X_neg, X_pos]) + rng.normal(0.0, noise, size=(n_samples, 2))
    y = np.concatenate([np.zeros(n_neg, dtype=int), np.ones(n_pos, dtype=int)])
    perm = rng.permutation(n_samples)
    return X[perm], y[perm]


def make_xor(
    n_samples: int = 400,
    *,
    scale: float = 0.4,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Four Gaussian clusters in an XOR arrangement (not linearly separable).

    Useful negative control: linear learners should hover near chance,
    which the sanity tests exploit.
    """
    n_samples = check_positive_int(n_samples, name="n_samples")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    rng = as_generator(seed)
    centers = np.array([[1, 1], [-1, -1], [1, -1], [-1, 1]], dtype=float)
    labels = np.array([0, 0, 1, 1])
    per = [n_samples // 4] * 4
    for i in range(n_samples - sum(per)):
        per[i] += 1
    parts_X, parts_y = [], []
    for center, label, count in zip(centers, labels, per):
        parts_X.append(rng.normal(center, scale, size=(count, 2)))
        parts_y.append(np.full(count, label, dtype=int))
    X = np.vstack(parts_X)
    y = np.concatenate(parts_y)
    perm = rng.permutation(n_samples)
    return X[perm], y[perm]


def make_imbalanced_mixture(
    n_samples: int = 500,
    *,
    positive_fraction: float = 0.3,
    n_features: int = 10,
    separation: float = 2.5,
    heavy_tail: bool = True,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Imbalanced classes with optionally heavy-tailed features.

    Mimics Spambase's structure — skewed non-negative-ish features, a
    minority positive class — at arbitrary, test-friendly sizes.
    """
    n_samples = check_positive_int(n_samples, name="n_samples")
    n_features = check_positive_int(n_features, name="n_features")
    positive_fraction = check_fraction(positive_fraction, name="positive_fraction",
                                       inclusive_low=False, inclusive_high=False)
    rng = as_generator(seed)
    n_pos = max(1, int(round(positive_fraction * n_samples)))
    n_neg = n_samples - n_pos
    offset = np.zeros(n_features)
    offset[: max(1, n_features // 3)] = separation / 2.0
    if heavy_tail:
        X_neg = rng.standard_t(df=4, size=(n_neg, n_features)) - offset
        X_pos = rng.standard_t(df=4, size=(n_pos, n_features)) + offset
    else:
        X_neg = rng.normal(-offset, 1.0, size=(n_neg, n_features))
        X_pos = rng.normal(offset, 1.0, size=(n_pos, n_features))
    X = np.vstack([X_neg, X_pos])
    y = np.concatenate([np.zeros(n_neg, dtype=int), np.ones(n_pos, dtype=int)])
    perm = rng.permutation(n_samples)
    return X[perm], y[perm]
