"""Training-data sanitisation defences.

The paper's defender uses a distance-from-centroid filter
(:class:`RadiusFilter` / :class:`PercentileFilter`); the mixed-strategy
equilibrium randomises its strength (:class:`MixedDefenseFilter`).
The remaining defences are the comparison points cited in the paper's
related-work section: k-NN label sanitisation (Paudice et al.), Reject
On Negative Impact (Nelson et al.), PCA subspace detection (Rubinstein
et al.) and loss-based trimming (Steinhardt et al.).

All defences implement :class:`Defense`: ``mask(X, y)`` returns the
boolean keep-mask and ``sanitize(X, y)`` the filtered dataset.
"""

from repro.defenses.base import Defense, defense_report, DefenseReport
from repro.defenses.radius_filter import RadiusFilter
from repro.defenses.percentile_filter import PercentileFilter
from repro.defenses.mixed_defense import MixedDefenseFilter
from repro.defenses.knn_sanitizer import KNNSanitizer
from repro.defenses.roni import RONIDefense
from repro.defenses.pca_detector import PCADetector
from repro.defenses.loss_filter import LossFilter
from repro.defenses.slab_filter import SlabFilter
from repro.defenses.certified import certify_radius_defense, CertificateResult, \
    CertifiedRadiusDefense

__all__ = [
    "Defense",
    "defense_report",
    "DefenseReport",
    "RadiusFilter",
    "PercentileFilter",
    "MixedDefenseFilter",
    "KNNSanitizer",
    "RONIDefense",
    "PCADetector",
    "LossFilter",
    "SlabFilter",
    "certify_radius_defense",
    "CertificateResult",
    "CertifiedRadiusDefense",
]
