"""Defense interface and evaluation report."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_X_y

__all__ = ["Defense", "DefenseReport", "defense_report"]


class Defense(ABC):
    """Abstract training-set sanitiser.

    Subclasses implement :meth:`mask`; :meth:`sanitize` derives the
    filtered dataset from it.  Defences must keep at least one sample
    of each class (a defender who deletes a whole class has destroyed
    the learning problem; implementations guard against it).
    """

    @abstractmethod
    def mask(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Boolean keep-mask over the rows of ``X``."""

    def sanitize(self, X, y) -> tuple[np.ndarray, np.ndarray]:
        """Return the kept ``(X, y)`` subset."""
        X, y = check_X_y(X, y)
        keep = np.asarray(self.mask(X, y), dtype=bool)
        if keep.shape != (X.shape[0],):
            raise ValueError(
                f"{type(self).__name__}.mask returned shape {keep.shape}, "
                f"expected ({X.shape[0]},)"
            )
        if not keep.any():
            raise ValueError(f"{type(self).__name__} removed every sample")
        return X[keep], y[keep]

    def name(self) -> str:
        """Human-readable defence name for reports."""
        return type(self).__name__


@dataclass(frozen=True)
class DefenseReport:
    """Ground-truth filtering quality of one defence application.

    Only available in experiments, where the poison mask is known.

    Attributes
    ----------
    n_total, n_removed:
        Dataset size and number of removed points.
    poison_recall:
        Fraction of poisoning points removed (detection rate).
    genuine_loss:
        Fraction of genuine points removed (collateral damage, the
        empirical counterpart of the paper's Γ).
    precision:
        Fraction of removed points that were actually poison.
    """

    n_total: int
    n_removed: int
    poison_recall: float
    genuine_loss: float
    precision: float


def defense_report(keep_mask: np.ndarray, is_poison: np.ndarray) -> DefenseReport:
    """Score a keep-mask against the ground-truth poison mask."""
    keep_mask = np.asarray(keep_mask, dtype=bool)
    is_poison = np.asarray(is_poison, dtype=bool)
    if keep_mask.shape != is_poison.shape:
        raise ValueError(
            f"mask shapes differ: {keep_mask.shape} vs {is_poison.shape}"
        )
    removed = ~keep_mask
    n_poison = int(is_poison.sum())
    n_genuine = int((~is_poison).sum())
    n_removed = int(removed.sum())
    poison_removed = int((removed & is_poison).sum())
    genuine_removed = int((removed & ~is_poison).sum())
    return DefenseReport(
        n_total=int(keep_mask.size),
        n_removed=n_removed,
        poison_recall=poison_removed / n_poison if n_poison else 0.0,
        genuine_loss=genuine_removed / n_genuine if n_genuine else 0.0,
        precision=poison_removed / n_removed if n_removed else 0.0,
    )
