"""Certified upper bound on poisoning damage (Steinhardt et al., 2017 style).

The certified-defences framework the paper's related work builds on:
for a *fixed* sanitisation rule (here: the radius filter at percentile
``p``) and a contamination budget ``eps``, compute an upper bound on
the training loss any attacker confined to the feasible set (the
filter's interior) can force, by simulating the worst case directly —
an online mirror-descent game where each round the attacker inserts
the feasible point with the highest current hinge loss.

The returned certificate bounds the *training* hinge loss of the
regularised learner under the worst feasible attack; by the standard
online-to-batch argument it upper-bounds what any fixed-filter defence
can guarantee, which is the quantity the paper's E(p) curve measures
empirically.  Comparing ``certificate(p)`` across ``p`` reproduces the
qualitative trade-off of Figure 1 from first principles (no attack
simulation needed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.geometry import compute_centroid, distances_to_centroid, \
    radius_for_percentile
from repro.defenses.base import Defense
from repro.ml.base import signed_labels
from repro.utils.validation import check_fraction, check_positive_int, check_X_y

__all__ = ["CertificateResult", "certify_radius_defense",
           "CertifiedRadiusDefense"]


@dataclass
class CertificateResult:
    """Certified worst-case analysis of a radius defence.

    Attributes
    ----------
    certified_loss:
        Upper bound on the regularised training hinge loss under any
        ``eps``-fraction attack confined to the filter's interior.
    clean_loss:
        The same learner's loss on clean data (the bound's floor).
    attack_contribution:
        ``certified_loss - clean_loss`` — how much the feasible attack
        can add; this is the certificate's counterpart of ``N·E(p)``.
    worst_points:
        The worst-case poisoning locations the certificate constructed
        (one per iteration), usable as an attack in their own right.
    loss_trace:
        Per-iteration averaged losses (the certificate is their mean).
    """

    certified_loss: float
    clean_loss: float
    attack_contribution: float
    worst_points: np.ndarray
    worst_labels: np.ndarray
    loss_trace: list = field(default_factory=list)
    weights: np.ndarray | None = None


def _hinge_grad(X, y_signed, w, reg):
    scores = X @ w
    active = (y_signed * scores) < 1.0
    grad = reg * w
    if np.any(active):
        grad = grad - (y_signed[active, None] * X[active]).mean(axis=0) * (
            active.mean()
        )
    return grad


def certify_radius_defense(
    X,
    y,
    *,
    filter_percentile: float,
    eps: float = 0.2,
    reg: float = 0.05,
    n_iter: int = 100,
    step: float = 0.5,
    centroid_method: str = "median",
) -> CertificateResult:
    """Certify the radius filter at ``filter_percentile`` against ``eps`` poisoning.

    Implements the online-learning certificate: at each round the model
    takes a gradient step on the mixture of the clean data and the
    current worst-case feasible point, and the attacker re-picks the
    feasible point with maximal hinge loss.  The averaged mixture loss
    upper-bounds the minimax training loss (regret analysis of online
    gradient descent on a linear game).

    The attacker's feasible set is the filter's interior: the ball of
    radius ``r(filter_percentile)`` around the (robust) centroid, with
    either label.  The worst feasible point for weights ``w`` and label
    ``y`` is the interior point minimising ``y·w·x`` — i.e.
    ``centroid + r·(-y)·w/||w||`` — so the inner maximisation is closed
    form for hinge loss.
    """
    X, y = check_X_y(X, y)
    check_fraction(filter_percentile, name="filter_percentile")
    eps = check_fraction(eps, name="eps", inclusive_high=False)
    check_positive_int(n_iter, name="n_iter")
    if reg <= 0 or step <= 0:
        raise ValueError("reg and step must be positive")

    y_signed = signed_labels(y).astype(float)
    centroid = compute_centroid(X, method=centroid_method)
    radius = radius_for_percentile(distances_to_centroid(X, centroid),
                                   filter_percentile)
    center = centroid.location

    d = X.shape[1]
    w = np.zeros(d)
    w_sum = np.zeros(d)
    worst_points, worst_labels = [], []
    mixture_losses = []
    clean_losses = []

    for t in range(1, n_iter + 1):
        w_sum += w  # the iterate whose losses this round measures
        # --- attacker's closed-form inner maximisation ----------------
        norm = np.linalg.norm(w)
        direction = w / norm if norm > 0 else np.zeros(d)
        candidates = []
        for label in (-1.0, 1.0):
            x_bad = center - label * radius * direction
            loss = max(0.0, 1.0 - label * float(x_bad @ w))
            candidates.append((loss, x_bad, label))
        worst_loss, x_star, y_star = max(candidates, key=lambda c: c[0])
        worst_points.append(x_star)
        worst_labels.append(int(y_star))

        # --- losses of the current iterate ----------------------------
        clean_scores = X @ w
        clean_hinge = np.maximum(0.0, 1.0 - y_signed * clean_scores).mean()
        mixture = (1.0 - eps) * clean_hinge + eps * worst_loss \
            + 0.5 * reg * float(w @ w)
        mixture_losses.append(mixture)
        clean_losses.append(clean_hinge + 0.5 * reg * float(w @ w))

        # --- defender's gradient step on the mixture -------------------
        grad = reg * w
        active = (y_signed * clean_scores) < 1.0
        if np.any(active):
            grad = grad - (1.0 - eps) * (
                (y_signed[active, None] * X[active]).sum(axis=0) / X.shape[0]
            )
        if worst_loss > 0.0:
            grad = grad - eps * y_star * x_star
        w = w - (step / np.sqrt(t)) * grad

    certified = float(np.mean(mixture_losses))
    clean = float(np.mean(clean_losses))
    return CertificateResult(
        certified_loss=certified,
        clean_loss=clean,
        attack_contribution=max(0.0, certified - clean),
        worst_points=np.vstack(worst_points),
        worst_labels=np.asarray(worst_labels),
        loss_trace=mixture_losses,
        weights=w_sum / n_iter,
    )


class CertifiedRadiusDefense(Defense):
    """The certificate turned into an operational sanitiser.

    The certificate analyses the radius filter at ``filter_percentile``:
    under ``eps``-contamination confined to that filter's interior, the
    averaged robust iterate the online game produced suffers at most
    ``certified_loss`` (mixture mean).  This defence applies that
    analysis to the data it receives:

    * points outside the ball (radius at ``filter_percentile`` of the
      received data's distance distribution, like the operational
      :class:`~repro.defenses.PercentileFilter`) are removed — they sit
      where the certificate grants the attacker nothing;
    * of the points *inside* the ball, those whose hinge loss under the
      certificate's averaged robust model exceeds ``certified_loss``
      are trimmed, worst first, up to the ``eps`` contamination budget
      the certificate assumed.  Margin-violating poison (the optimal
      attack's signature) carries exactly such losses, while the
      robust model — unlike the provisional fits of
      :class:`~repro.defenses.LossFilter` — was trained *not* to bend
      toward it; the budget cap keeps the trim inside the threat model
      instead of eating genuinely hard examples without bound.

    Deterministic (no RNG), so spec-driven rounds are bit-identical to
    direct application.
    """

    def __init__(self, filter_percentile: float = 0.1, *, eps: float = 0.2,
                 reg: float = 0.05, n_iter: int = 100, step: float = 0.5,
                 centroid_method: str = "median"):
        self.filter_percentile = check_fraction(filter_percentile,
                                                name="filter_percentile")
        self.eps = check_fraction(eps, name="eps", inclusive_high=False)
        self.reg = float(reg)
        self.n_iter = check_positive_int(n_iter, name="n_iter")
        self.step = float(step)
        self.centroid_method = centroid_method
        self.theta_: float | None = None
        self.certificate_: CertificateResult | None = None

    def mask(self, X, y):
        from repro.defenses.radius_filter import ensure_class_survival

        X, y = check_X_y(X, y)
        cert = certify_radius_defense(
            X, y, filter_percentile=self.filter_percentile, eps=self.eps,
            reg=self.reg, n_iter=self.n_iter, step=self.step,
            centroid_method=self.centroid_method,
        )
        self.certificate_ = cert
        centroid = compute_centroid(X, method=self.centroid_method)
        distances = distances_to_centroid(X, centroid)
        radius = radius_for_percentile(distances, self.filter_percentile)
        self.theta_ = radius
        keep = distances <= radius

        w = cert.weights
        budget = int(np.floor(self.eps * X.shape[0]))
        if w is not None and np.linalg.norm(w) > 0.0 and budget > 0:
            losses = np.maximum(0.0, 1.0 - signed_labels(y) * (X @ w))
            offenders = np.flatnonzero(keep & (losses > cert.certified_loss))
            worst = offenders[np.argsort(-losses[offenders])][:budget]
            keep[worst] = False
        return ensure_class_survival(keep, y)
