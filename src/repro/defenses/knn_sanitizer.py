"""k-NN label sanitisation (Paudice et al., 2018 style).

A point is suspicious when its label disagrees with the dominant label
of its k nearest neighbours — poisoning points planted deep in the
opposite class's region trip this immediately, even when they sit at
an inconspicuous distance from the global centroid.  Kept as a
comparison defence in the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Defense
from repro.defenses.radius_filter import _ensure_class_survival
from repro.ml.base import signed_labels
from repro.utils.validation import check_fraction, check_positive_int, check_X_y

__all__ = ["KNNSanitizer"]


class KNNSanitizer(Defense):
    """Remove points whose neighbourhood label agreement is too low.

    Parameters
    ----------
    k:
        Number of neighbours (the point itself excluded).
    agreement:
        Minimum fraction of neighbours sharing the point's label for it
        to be kept.
    chunk_size:
        Pairwise distances are computed in row chunks of this size to
        bound memory at ``O(chunk_size * n)``.
    """

    def __init__(self, k: int = 10, *, agreement: float = 0.5, chunk_size: int = 512):
        self.k = check_positive_int(k, name="k")
        self.agreement = check_fraction(agreement, name="agreement")
        self.chunk_size = check_positive_int(chunk_size, name="chunk_size")

    def mask(self, X, y):
        X, y = check_X_y(X, y)
        y_signed = signed_labels(y)
        n = X.shape[0]
        k = min(self.k, n - 1)
        if k == 0:
            return np.ones(n, dtype=bool)
        sq_norms = np.einsum("ij,ij->i", X, X)
        keep = np.ones(n, dtype=bool)
        # One persistent (chunk, n) block serves every iteration: the
        # gemm writes straight into it and the norm terms fold in
        # place, so peak extra memory is a single fixed-size block
        # instead of the four chunk-sized temporaries the expression
        # form ``col - 2.0 * gram + row`` allocated per chunk.  Bits
        # are unchanged: ``(-2.0) * g == -(2.0 * g)`` (sign flips are
        # exact) and ``a - b == a + (-b)`` in IEEE-754, with the same
        # left-to-right accumulation order as the expression.
        block = np.empty((min(self.chunk_size, n), n))
        for start in range(0, n, self.chunk_size):
            stop = min(start + self.chunk_size, n)
            # Squared Euclidean distances from this chunk to everything.
            d2 = block[: stop - start]
            np.dot(X[start:stop], X.T, out=d2)
            np.multiply(d2, -2.0, out=d2)
            np.add(d2, sq_norms[start:stop, None], out=d2)
            np.add(d2, sq_norms[None, :], out=d2)
            rows = np.arange(stop - start)
            d2[rows, np.arange(start, stop)] = np.inf  # exclude self
            neighbour_idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
            neighbour_labels = y_signed[neighbour_idx]
            agree = (neighbour_labels == y_signed[start:stop, None]).mean(axis=1)
            keep[start:stop] = agree >= self.agreement
        return _ensure_class_survival(keep, y)
