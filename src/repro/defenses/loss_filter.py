"""Loss-based trimming (Steinhardt et al., 2017 flavour).

Train a provisional model on everything, then drop the points with the
highest training loss and retrain.  Poisoning points engineered to be
margin-violating (like the paper's optimal attack) carry the largest
hinge losses, so one or two trimming rounds remove most of them — at
the cost of also trimming genuinely hard examples, the same
accuracy-vs-robustness trade-off the radius filter exhibits.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Defense
from repro.defenses.radius_filter import _ensure_class_survival
from repro.ml.base import clone_estimator, signed_labels
from repro.ml.metrics import hinge_loss
from repro.ml.ridge import RidgeClassifier
from repro.utils.validation import check_fraction, check_positive_int, check_X_y

__all__ = ["LossFilter"]


class LossFilter(Defense):
    """Iteratively remove the highest-loss fraction of the training set.

    Parameters
    ----------
    remove_fraction:
        Total fraction of points to remove (split across rounds).
    n_rounds:
        Number of trim-retrain rounds.
    learner:
        Unfitted estimator used for the provisional fits.
    """

    def __init__(self, remove_fraction: float = 0.1, *, n_rounds: int = 2, learner=None):
        self.remove_fraction = check_fraction(remove_fraction, name="remove_fraction",
                                              inclusive_high=False)
        self.n_rounds = check_positive_int(n_rounds, name="n_rounds")
        self.learner = learner if learner is not None else RidgeClassifier(reg=1e-2)

    def kernel_mask(self, kernel, X, y, is_poison, sources):
        """Serve the clean-data mask from the context kernel's memo.

        The trim loop is deterministic given ``(X, y)`` and the filter
        parameters — no per-round randomness — so on *clean* rounds
        (no poison present) every round of a sweep recomputes the
        identical mask, two ridge fits per round.  When ``X`` is the
        kernel's own clean training matrix, delegate to
        :meth:`~repro.experiments.kernel.ContextKernel.reuse_mask`,
        which memoises it behind a one-time replay probe (bit-compare
        on second use, permanent sequential fallback on mismatch).
        ``None`` — poisoned round, foreign matrix, or a non-ridge
        learner whose clone semantics we have not verified — means
        "not applicable": the runner falls through to :meth:`mask`.
        Cache keys are untouched; the mask is bit-identical.
        """
        if type(self.learner) is not RidgeClassifier:
            return None
        if is_poison is not None and np.asarray(is_poison).any():
            return None
        if not kernel.describes(X):
            return None
        key = ("loss_filter", float(self.remove_fraction),
               int(self.n_rounds), float(self.learner.reg),
               bool(self.learner.fit_intercept))
        return kernel.reuse_mask(key, lambda: self.mask(X, y))

    def mask(self, X, y):
        X, y = check_X_y(X, y)
        n = X.shape[0]
        if self.remove_fraction == 0.0:
            return np.ones(n, dtype=bool)
        keep = np.ones(n, dtype=bool)
        per_round = int(np.floor(self.remove_fraction * n / self.n_rounds))
        if per_round == 0:
            return np.ones(n, dtype=bool)
        for _ in range(self.n_rounds):
            active = np.flatnonzero(keep)
            if len(np.unique(y[active])) < 2 or len(active) <= per_round:
                break
            model = clone_estimator(self.learner).fit(X[active], y[active])
            scores = model.decision_function(X[active])
            losses = hinge_loss(signed_labels(y[active]), scores, reduce=False)
            worst = active[np.argsort(-losses)[:per_round]]
            keep[worst] = False
        return _ensure_class_survival(keep, y)
