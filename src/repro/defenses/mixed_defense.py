"""Mixed-strategy defence: a randomised filter strength.

The paper's central object.  Each time the defender trains, it draws a
filter percentile from its equilibrium distribution and applies the
corresponding :class:`PercentileFilter`.  Because the attacker commits
simultaneously (it cannot observe the draw), the expected damage of a
poisoning point at radius r is ``E(r) * P(filter weaker than r)`` —
which the equalizing distribution makes constant across its support,
removing the attacker's ability to aim just outside any fixed filter.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Defense
from repro.defenses.percentile_filter import PercentileFilter
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability_vector

__all__ = ["MixedDefenseFilter"]


class MixedDefenseFilter(Defense):
    """Randomise over :class:`PercentileFilter` strengths.

    Parameters
    ----------
    percentiles:
        Support of the mixed strategy (fractions removed, in [0, 1)).
    probabilities:
        Probability of each support point.
    seed:
        RNG for the draws.
    centroid_method:
        Passed through to the underlying filters.

    Attributes
    ----------
    last_draw_:
        Percentile drawn on the most recent :meth:`mask` call (for
        experiment logging).
    """

    def __init__(self, percentiles, probabilities, *,
                 seed: int | np.random.Generator | None = None,
                 centroid_method: str = "median"):
        self.percentiles = np.asarray(percentiles, dtype=float)
        if self.percentiles.ndim != 1 or self.percentiles.size == 0:
            raise ValueError("percentiles must be a non-empty 1-d array")
        if np.any((self.percentiles < 0) | (self.percentiles >= 1)):
            raise ValueError(f"percentiles must lie in [0, 1), got {self.percentiles}")
        self.probabilities = check_probability_vector(probabilities)
        if self.probabilities.shape != self.percentiles.shape:
            raise ValueError(
                f"{self.percentiles.size} percentiles but "
                f"{self.probabilities.size} probabilities"
            )
        self._rng = as_generator(seed)
        self.centroid_method = centroid_method
        self.last_draw_: float | None = None

    def draw(self) -> float:
        """Sample a filter percentile from the mixed strategy."""
        self.last_draw_ = float(self._rng.choice(self.percentiles, p=self.probabilities))
        return self.last_draw_

    def mask(self, X, y):
        p = self.draw()
        return PercentileFilter(p, centroid_method=self.centroid_method).mask(X, y)

    def expected_fraction_removed(self) -> float:
        """Mean filter strength (useful for sanity checks in reports)."""
        return float(self.percentiles @ self.probabilities)
