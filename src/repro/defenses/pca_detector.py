"""PCA-subspace anomaly detection (Rubinstein et al., 2009, "ANTIDOTE" style).

Genuine data concentrates near a low-dimensional principal subspace;
poisoning points placed far out along adversarial directions tend to
have large residuals off that subspace.  The detector fits the top-q
principal components (optionally on a robust, trimmed pass) and removes
the points with the largest reconstruction residuals.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Defense
from repro.defenses.radius_filter import _ensure_class_survival
from repro.utils.validation import check_fraction, check_positive_int, check_X_y

__all__ = ["PCADetector"]


class PCADetector(Defense):
    """Remove the points with the largest off-subspace residuals.

    Parameters
    ----------
    n_components:
        Dimension of the principal subspace.
    remove_fraction:
        Fraction of points (largest residuals) to remove.
    robust:
        If true, the subspace is re-fitted once after provisionally
        dropping the initial outliers — a one-step trimmed PCA that
        blunts the attacker's influence on the subspace itself.
    """

    def __init__(self, n_components: int = 5, *, remove_fraction: float = 0.1,
                 robust: bool = True):
        self.n_components = check_positive_int(n_components, name="n_components")
        self.remove_fraction = check_fraction(remove_fraction, name="remove_fraction",
                                              inclusive_high=False)
        self.robust = bool(robust)

    def _residuals(self, X: np.ndarray, fit_rows: np.ndarray) -> np.ndarray:
        center = X[fit_rows].mean(axis=0)
        Xc = X - center
        q = min(self.n_components, X.shape[1], int(fit_rows.sum()) - 1)
        if q < 1:
            return np.zeros(X.shape[0])
        # Principal directions of the fitting subset.
        _, _, vt = np.linalg.svd(Xc[fit_rows], full_matrices=False)
        basis = vt[:q]
        projected = (Xc @ basis.T) @ basis
        return np.linalg.norm(Xc - projected, axis=1)

    def mask(self, X, y):
        X, y = check_X_y(X, y)
        n = X.shape[0]
        if self.remove_fraction == 0.0:
            return np.ones(n, dtype=bool)
        all_rows = np.ones(n, dtype=bool)
        residuals = self._residuals(X, all_rows)
        n_remove = int(np.floor(self.remove_fraction * n))
        if n_remove == 0:
            return np.ones(n, dtype=bool)
        if self.robust:
            provisional_keep = np.ones(n, dtype=bool)
            provisional_keep[np.argsort(-residuals)[:n_remove]] = False
            residuals = self._residuals(X, provisional_keep)
        keep = np.ones(n, dtype=bool)
        keep[np.argsort(-residuals)[:n_remove]] = False
        return _ensure_class_survival(keep, y)
