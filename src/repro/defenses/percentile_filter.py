"""Percentile-parameterised distance filter (the paper's x-axis).

Figure 1 sweeps "the percentage of data points removed by the filter";
this defence takes that percentage directly and derives the radius from
the training set it is given.  It is the operational form of
:class:`repro.defenses.RadiusFilter` — the defender does not know the
genuine distance distribution, so it computes the cut-off quantile on
the (possibly contaminated) data it has, exactly as a real deployment
would.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Defense
from repro.defenses.radius_filter import _ensure_class_survival
from repro.data.geometry import compute_centroid, distances_to_centroid
from repro.utils.validation import check_fraction, check_X_y

__all__ = ["PercentileFilter"]


class PercentileFilter(Defense):
    """Remove the ``fraction`` of training points farthest from the centroid.

    Parameters
    ----------
    fraction:
        Fraction of the training set to remove (``0`` disables the
        filter entirely — the boundary strategy ``B``).
    centroid_method:
        Centroid estimator; the robust ``"median"`` default is what
        keeps the filter meaningful under contamination.

    Attributes (after :meth:`mask`)
    -------------------------------
    theta_:
        The geometric radius the fraction translated to on the last
        dataset seen — this is the defender's realised θ_d.
    """

    def __init__(self, fraction: float, *, centroid_method: str = "median"):
        self.fraction = check_fraction(fraction, name="fraction", inclusive_high=False)
        self.centroid_method = centroid_method
        self.theta_: float | None = None

    def mask(self, X, y):
        X, y = check_X_y(X, y)
        if self.fraction == 0.0:
            self.theta_ = float("inf")
            return np.ones(X.shape[0], dtype=bool)
        centroid = compute_centroid(X, method=self.centroid_method)
        distances = distances_to_centroid(X, centroid)
        cutoff = float(np.quantile(distances, 1.0 - self.fraction))
        self.theta_ = cutoff
        keep = distances <= cutoff
        return _ensure_class_survival(keep, y)
