"""The paper's defence: remove points outside a centroid-centred sphere.

"The defender also chooses θ_d as the radius of the filter.  Any data
points outside the hypersphere centered at the centroid of the original
dataset with radius θ_d will be removed."

The defender computes the centroid from the (possibly contaminated)
training set it actually has; the paper argues a robust estimator
(median) keeps this valid under moderate contamination.  Both a single
global sphere and per-class spheres (the Steinhardt et al. variant) are
supported.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Defense
from repro.data.geometry import compute_centroid, distances_to_centroid
from repro.ml.base import signed_labels
from repro.utils.validation import check_X_y

__all__ = ["RadiusFilter"]


class RadiusFilter(Defense):
    """Keep only points within ``theta`` of the centroid.

    Parameters
    ----------
    theta:
        Filter radius (geometric units of the feature space).
    centroid_method:
        ``"median"`` (robust default), ``"mean"`` or ``"trimmed_mean"``.
    per_class:
        Apply a separate sphere around each class's centroid (same
        radius).  With ``False`` (the paper's model) one global sphere
        is used.
    """

    def __init__(self, theta: float, *, centroid_method: str = "median",
                 per_class: bool = False):
        if theta < 0 or not np.isfinite(theta):
            raise ValueError(f"theta must be a finite non-negative radius, got {theta}")
        self.theta = float(theta)
        self.centroid_method = centroid_method
        self.per_class = bool(per_class)

    def mask(self, X, y):
        X, y = check_X_y(X, y)
        if not self.per_class:
            centroid = compute_centroid(X, method=self.centroid_method)
            keep = distances_to_centroid(X, centroid) <= self.theta
        else:
            y_signed = signed_labels(y)
            keep = np.zeros(X.shape[0], dtype=bool)
            for label in (-1, 1):
                members = y_signed == label
                if not members.any():
                    continue
                centroid = compute_centroid(X[members], method=self.centroid_method)
                dist = distances_to_centroid(X[members], centroid)
                keep[np.flatnonzero(members)[dist <= self.theta]] = True
        keep = _ensure_class_survival(keep, y)
        return keep


def _ensure_class_survival(keep: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Guarantee at least one kept sample per present class.

    If a filter removes an entire class, re-admit that class's single
    innermost point — training is otherwise impossible and downstream
    code would crash on degenerate labels.
    """
    y_signed = signed_labels(y)
    keep = keep.copy()
    for label in np.unique(y_signed):
        members = np.flatnonzero(y_signed == label)
        if not keep[members].any():
            keep[members[0]] = True
    return keep
