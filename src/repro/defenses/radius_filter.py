"""The paper's defence: remove points outside a centroid-centred sphere.

"The defender also chooses θ_d as the radius of the filter.  Any data
points outside the hypersphere centered at the centroid of the original
dataset with radius θ_d will be removed."

The defender computes the centroid from the (possibly contaminated)
training set it actually has; the paper argues a robust estimator
(median) keeps this valid under moderate contamination.  Both a single
global sphere and per-class spheres (the Steinhardt et al. variant) are
supported.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Defense
from repro.data.geometry import compute_centroid, distances_to_centroid
from repro.ml.base import signed_labels
from repro.utils.validation import check_X_y

__all__ = ["RadiusFilter", "ensure_class_survival"]


class RadiusFilter(Defense):
    """Keep only points within ``theta`` of the centroid.

    Parameters
    ----------
    theta:
        Filter radius (geometric units of the feature space).
    centroid_method:
        ``"median"`` (robust default), ``"mean"`` or ``"trimmed_mean"``.
    per_class:
        Apply a separate sphere around each class's centroid (same
        radius).  With ``False`` (the paper's model) one global sphere
        is used.
    centroid:
        Optional precomputed centroid (a
        :class:`~repro.data.geometry.Centroid` or location array).
        When given, the sphere is centred there instead of on an
        estimate from the filtered set itself — this is how the
        experiment pipeline realises the paper's "hypersphere centered
        at the centroid of the *original* dataset" exactly, reusing
        the clean-data centroid its context precomputed.  Incompatible
        with ``per_class``.
    """

    def __init__(self, theta: float, *, centroid_method: str = "median",
                 per_class: bool = False, centroid=None):
        if theta < 0 or not np.isfinite(theta):
            raise ValueError(f"theta must be a finite non-negative radius, got {theta}")
        if centroid is not None and per_class:
            raise ValueError("a precomputed centroid cannot be combined with "
                             "per_class=True (per-class centroids are "
                             "estimated from each class's own points)")
        self.theta = float(theta)
        self.centroid_method = centroid_method
        self.per_class = bool(per_class)
        self.centroid = centroid

    def mask(self, X, y):
        X, y = check_X_y(X, y)
        if not self.per_class:
            centroid = self.centroid
            if centroid is None:
                centroid = compute_centroid(X, method=self.centroid_method)
            keep = distances_to_centroid(X, centroid) <= self.theta
        else:
            y_signed = signed_labels(y)
            keep = np.zeros(X.shape[0], dtype=bool)
            for label in (-1, 1):
                members = y_signed == label
                if not members.any():
                    continue
                centroid = compute_centroid(X[members], method=self.centroid_method)
                dist = distances_to_centroid(X[members], centroid)
                keep[np.flatnonzero(members)[dist <= self.theta]] = True
        keep = ensure_class_survival(keep, y)
        return keep


def ensure_class_survival(keep: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Guarantee at least one kept sample per present class.

    If a filter removes an entire class, re-admit that class's single
    innermost point — training is otherwise impossible and downstream
    code would crash on degenerate labels.
    """
    y_signed = signed_labels(y)
    keep = keep.copy()
    for label in np.unique(y_signed):
        members = np.flatnonzero(y_signed == label)
        if not keep[members].any():
            keep[members[0]] = True
    return keep


# Backwards-compatible alias (the helper predates its public name).
_ensure_class_survival = ensure_class_survival
