"""Reject On Negative Impact (Nelson et al., 2009).

RONI scores every candidate training point by the change in held-out
accuracy caused by adding it to a calibration set; points whose impact
is negative beyond a tolerance are rejected.  It is the most expensive
defence in the library (one retrain per candidate batch), so it scores
*batches* of candidates with a shared calibration model and uses the
fast closed-form :class:`RidgeClassifier` by default.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Defense
from repro.defenses.radius_filter import _ensure_class_survival
from repro.ml.base import clone_estimator, signed_labels
from repro.ml.batched import ridge_kernels_verified, ridge_scores_many
from repro.ml.ridge import RidgeClassifier
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_positive_int, check_X_y

# Candidates per stacked ridge solve on the fast path: large enough to
# amortise dispatch, small enough that the (chunk, n_base+1, d) stack of
# augmented calibration matrices stays cache-resident.
_FAST_CHUNK = 256

__all__ = ["RONIDefense"]


class RONIDefense(Defense):
    """Reject points whose marginal effect on held-out accuracy is negative.

    Parameters
    ----------
    base_fraction:
        Fraction of the data used as the trusted calibration training
        set (sampled randomly; under moderate contamination the sample
        is mostly clean, which is all RONI needs).
    val_fraction:
        Fraction used as the held-out accuracy probe.
    tolerance:
        Allowed accuracy drop before a point is rejected.  Small
        positive values avoid rejecting genuine points on noise.
    learner:
        Unfitted estimator used for the impact probes.
    seed:
        RNG seed for the calibration split.
    batch_size:
        Candidates are scored in batches of this size: the marginal
        impact of each batch member is measured against the same
        calibration model, trading a little fidelity for a large
        constant-factor speedup.
    """

    def __init__(self, *, base_fraction: float = 0.2, val_fraction: float = 0.2,
                 tolerance: float = 0.0, learner=None,
                 seed: int | np.random.Generator | None = 0, batch_size: int = 25):
        self.base_fraction = check_fraction(base_fraction, name="base_fraction",
                                            inclusive_low=False, inclusive_high=False)
        self.val_fraction = check_fraction(val_fraction, name="val_fraction",
                                           inclusive_low=False, inclusive_high=False)
        if tolerance < 0:
            raise ValueError(f"tolerance must be non-negative, got {tolerance}")
        self.tolerance = float(tolerance)
        self.learner = learner if learner is not None else RidgeClassifier(reg=1e-2)
        self.seed = seed
        self.batch_size = check_positive_int(batch_size, name="batch_size")

    def mask(self, X, y):
        X, y = check_X_y(X, y)
        rng = as_generator(self.seed)
        n = X.shape[0]
        perm = rng.permutation(n)
        n_base = max(2, int(round(self.base_fraction * n)))
        n_val = max(2, int(round(self.val_fraction * n)))
        base_idx = perm[:n_base]
        val_idx = perm[n_base : n_base + n_val]
        candidate_idx = perm[n_base + n_val :]

        X_base, y_base = X[base_idx], y[base_idx]
        X_val, y_val = X[val_idx], y[val_idx]
        if len(np.unique(y_base)) < 2 or len(np.unique(y_val)) < 2:
            # Degenerate split; RONI cannot calibrate — keep everything.
            return np.ones(n, dtype=bool)

        baseline = clone_estimator(self.learner).fit(X_base, y_base).score(X_val, y_val)

        keep = np.ones(n, dtype=bool)
        for start in range(0, len(candidate_idx), self.batch_size):
            batch = candidate_idx[start : start + self.batch_size]
            for i in batch:
                model = clone_estimator(self.learner).fit(
                    np.vstack([X_base, X[i : i + 1]]),
                    np.concatenate([y_base, y[i : i + 1]]),
                )
                impact = model.score(X_val, y_val) - baseline
                if impact < -self.tolerance:
                    keep[i] = False
        return _ensure_class_survival(keep, y)

    def kernel_mask(self, kernel, X, y, is_poison, sources):
        """Keep mask from the vectorised (stacked-ridge) impact scorer.

        The per-family fast-path hook ``evaluate_configuration``
        consults before :meth:`mask`.  RONI's probes reuse no kernel
        geometry — the hook is simply the engine's entry point to the
        batched scorer: every candidate's augmented calibration matrix
        ``[X_base; x_i]`` is stacked and all the closed-form ridge fits
        plus held-out scorings run as a handful of tensor ops
        (:func:`~repro.ml.batched.ridge_scores_many`) instead of one
        retrain per candidate.  Bit-identity with :meth:`mask` is
        guaranteed the same way as the batched SVM trainer: only
        probe-verified stacked kernels are used
        (:func:`~repro.ml.batched.ridge_kernels_verified`), and the
        method returns ``None`` — fall back to the sequential loop —
        for non-ridge learners or a failed probe.
        """
        if type(self.learner) is not RidgeClassifier:
            return None  # only the closed-form solve stacks losslessly
        X, y = check_X_y(X, y)
        rng = as_generator(self.seed)
        n = X.shape[0]
        perm = rng.permutation(n)
        n_base = max(2, int(round(self.base_fraction * n)))
        n_val = max(2, int(round(self.val_fraction * n)))
        base_idx = perm[:n_base]
        val_idx = perm[n_base : n_base + n_val]
        candidate_idx = perm[n_base + n_val :]

        X_base, y_base = X[base_idx], y[base_idx]
        X_val, y_val = X[val_idx], y[val_idx]
        if len(np.unique(y_base)) < 2 or len(np.unique(y_val)) < 2:
            return np.ones(n, dtype=bool)
        m, d = n_base + 1, X.shape[1]
        if not ridge_kernels_verified(m, d, X_val.shape[0]):
            return None

        baseline = clone_estimator(self.learner).fit(X_base, y_base).score(X_val, y_val)
        t_base = signed_labels(y_base).astype(float)
        t_cand = signed_labels(y).astype(float)
        t_val = signed_labels(y_val)

        keep = np.ones(n, dtype=bool)
        for start in range(0, len(candidate_idx), _FAST_CHUNK):
            cands = candidate_idx[start : start + _FAST_CHUNK]
            X_stack = np.empty((len(cands), m, d))
            X_stack[:, :n_base] = X_base
            X_stack[:, n_base] = X[cands]
            t_stack = np.empty((len(cands), m))
            t_stack[:, :n_base] = t_base
            t_stack[:, n_base] = t_cand[cands]
            scores = ridge_scores_many(
                X_stack, t_stack, X_val,
                reg=self.learner.reg,
                fit_intercept=self.learner.fit_intercept,
            )
            # Exactly score(): sign threshold, bool match, exact mean.
            accuracy = np.mean(np.where(scores >= 0.0, 1, -1) == t_val, axis=1)
            keep[cands[accuracy - baseline < -self.tolerance]] = False
        return _ensure_class_survival(keep, y)
