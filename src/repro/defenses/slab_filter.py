"""The slab defence (Steinhardt, Koh & Liang, 2017).

Complements the sphere (radius) filter: instead of distance *from* the
class centroids, the slab scores each point by its displacement *along
the line connecting the two class centroids*,

    s(x) = | (x - (μ₊ + μ₋)/2) · (μ₊ - μ₋) | / ||μ₊ - μ₋||,

and removes the points that sit implausibly far along that axis.  The
sphere catches points that flee the data; the slab catches points that
camp between/beyond the classes along the discriminative direction —
exactly where label-opposed poisoning wants to live.  Together they
form the sphere+slab sanitisation of the certified-defences paper the
related-work section cites.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Defense
from repro.defenses.radius_filter import _ensure_class_survival
from repro.data.geometry import compute_centroid
from repro.ml.base import signed_labels
from repro.utils.validation import check_fraction, check_X_y

__all__ = ["SlabFilter"]


class SlabFilter(Defense):
    """Remove the fraction of points farthest along the class-mean axis.

    Parameters
    ----------
    remove_fraction:
        Fraction of the training set to remove (largest slab scores).
    centroid_method:
        Robust estimator for the per-class centroids.
    """

    def __init__(self, remove_fraction: float = 0.1, *,
                 centroid_method: str = "median"):
        self.remove_fraction = check_fraction(remove_fraction,
                                              name="remove_fraction",
                                              inclusive_high=False)
        self.centroid_method = centroid_method

    def slab_scores(self, X, y) -> np.ndarray:
        """Absolute displacement along the class-centroid axis."""
        X, y = check_X_y(X, y)
        y_signed = signed_labels(y)
        if len(np.unique(y_signed)) < 2:
            return np.zeros(X.shape[0])
        mu_pos = compute_centroid(X[y_signed == 1],
                                  method=self.centroid_method).location
        mu_neg = compute_centroid(X[y_signed == -1],
                                  method=self.centroid_method).location
        axis = mu_pos - mu_neg
        norm = np.linalg.norm(axis)
        if norm == 0.0:
            return np.zeros(X.shape[0])
        axis = axis / norm
        midpoint = 0.5 * (mu_pos + mu_neg)
        return np.abs((X - midpoint) @ axis)

    def mask(self, X, y):
        X, y = check_X_y(X, y)
        if self.remove_fraction == 0.0:
            return np.ones(X.shape[0], dtype=bool)
        scores = self.slab_scores(X, y)
        n_remove = int(np.floor(self.remove_fraction * X.shape[0]))
        if n_remove == 0:
            return np.ones(X.shape[0], dtype=bool)
        keep = np.ones(X.shape[0], dtype=bool)
        keep[np.argsort(-scores)[:n_remove]] = False
        return _ensure_class_survival(keep, y)
