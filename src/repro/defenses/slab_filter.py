"""The slab defence (Steinhardt, Koh & Liang, 2017).

Complements the sphere (radius) filter: instead of distance *from* the
class centroids, the slab scores each point by its displacement *along
the line connecting the two class centroids*,

    s(x) = | (x - (μ₊ + μ₋)/2) · (μ₊ - μ₋) | / ||μ₊ - μ₋||,

and removes the points that sit implausibly far along that axis.  The
sphere catches points that flee the data; the slab catches points that
camp between/beyond the classes along the discriminative direction —
exactly where label-opposed poisoning wants to live.  Together they
form the sphere+slab sanitisation of the certified-defences paper the
related-work section cites.

By default the class centroids are estimated from the (possibly
contaminated) data handed to :meth:`SlabFilter.mask` — the operational
defence.  ``centroids=`` pins the axis to precomputed per-class
centroids instead (the engine's ``slab_filter`` family passes the
*clean* ones for ``axis="clean"`` specs), which makes every score a
row-local dot product against fixed geometry — and therefore lets the
round kernel serve genuine rows' scores from a per-context cache
(:meth:`kernel_mask`), bit-identically to scoring them fresh.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Defense
from repro.defenses.radius_filter import _ensure_class_survival
from repro.data.geometry import compute_centroid
from repro.ml.base import signed_labels
from repro.utils.validation import check_fraction, check_X_y

__all__ = ["SlabFilter", "slab_axis_midpoint", "slab_displacement"]


def slab_axis_midpoint(mu_pos: np.ndarray, mu_neg: np.ndarray):
    """Unit class-centroid axis and its midpoint, or ``None`` if the
    centroids coincide.

    Module-level so the round kernel's cached slab geometry and the
    filter's from-scratch path share one implementation — the fast
    path's bit-identity contract depends on the two never diverging.
    """
    axis = mu_pos - mu_neg
    norm = np.linalg.norm(axis)
    if norm == 0.0:
        return None
    return axis / norm, 0.5 * (mu_pos + mu_neg)


def slab_displacement(X: np.ndarray, axis: np.ndarray,
                      midpoint: np.ndarray) -> np.ndarray:
    """Absolute displacement of each row along ``axis`` from ``midpoint``.

    Row-local (one dot product per row), which is what makes cached
    per-row scores bit-identical to recomputing them in any batch.
    """
    return np.abs((X - midpoint) @ axis)


class SlabFilter(Defense):
    """Remove the fraction of points farthest along the class-mean axis.

    Parameters
    ----------
    remove_fraction:
        Fraction of the training set to remove (largest slab scores).
    centroid_method:
        Robust estimator for the per-class centroids (used when
        ``centroids`` is not given).
    centroids:
        Optional precomputed ``(mu_pos, mu_neg)`` pair pinning the slab
        axis; ``None`` (default) estimates both from the data being
        filtered.
    """

    def __init__(self, remove_fraction: float = 0.1, *,
                 centroid_method: str = "median", centroids=None):
        self.remove_fraction = check_fraction(remove_fraction,
                                              name="remove_fraction",
                                              inclusive_high=False)
        self.centroid_method = centroid_method
        self.centroids = None
        if centroids is not None:
            mu_pos, mu_neg = centroids
            self.centroids = (np.asarray(mu_pos, dtype=float),
                              np.asarray(mu_neg, dtype=float))

    def slab_scores(self, X, y) -> np.ndarray:
        """Absolute displacement along the class-centroid axis."""
        X, y = check_X_y(X, y)
        if self.centroids is not None:
            mu_pos, mu_neg = self.centroids
        else:
            y_signed = signed_labels(y)
            if len(np.unique(y_signed)) < 2:
                return np.zeros(X.shape[0])
            mu_pos = compute_centroid(X[y_signed == 1],
                                      method=self.centroid_method).location
            mu_neg = compute_centroid(X[y_signed == -1],
                                      method=self.centroid_method).location
        geometry = slab_axis_midpoint(mu_pos, mu_neg)
        if geometry is None:
            return np.zeros(X.shape[0])
        axis, midpoint = geometry
        return slab_displacement(X, axis, midpoint)

    def _keep_from_scores(self, scores: np.ndarray, y) -> np.ndarray:
        """Selection shared by the direct and kernel-served paths."""
        n_remove = int(np.floor(self.remove_fraction * scores.shape[0]))
        if n_remove == 0:
            return np.ones(scores.shape[0], dtype=bool)
        keep = np.ones(scores.shape[0], dtype=bool)
        keep[np.argsort(-scores)[:n_remove]] = False
        return _ensure_class_survival(keep, y)

    def mask(self, X, y):
        X, y = check_X_y(X, y)
        if self.remove_fraction == 0.0:
            return np.ones(X.shape[0], dtype=bool)
        return self._keep_from_scores(self.slab_scores(X, y), y)

    def kernel_mask(self, kernel, X, y, is_poison, sources):
        """Keep mask reusing the round kernel's cached clean slab scores.

        The per-family fast-path hook ``evaluate_configuration``
        consults for any defence: return the keep mask when this round
        can be served from the kernel, ``None`` to fall back to
        :meth:`mask`.  Applicable only when this filter's pinned
        ``centroids`` *are* the kernel's cached clean pair (identity,
        not equality — same convention as the kernel's attack-direction
        reuse), so cached genuine-row scores are bit-identical to what
        :meth:`mask` would recompute.
        """
        if self.centroids is None:
            return None
        pair = kernel.class_centroids
        if pair is None or self.centroids[0] is not pair[0] \
                or self.centroids[1] is not pair[1]:
            return None
        if self.remove_fraction == 0.0:
            return np.ones(np.asarray(X).shape[0], dtype=bool)
        scores = kernel.slab_scores(X, is_poison, sources)
        if scores is None:
            return None
        return self._keep_from_scores(scores, y)
