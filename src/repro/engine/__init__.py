"""Parallel, cached evaluation engine.

The layer between the core game model and the experiment drivers:
experiments *declare* their rounds as :class:`RoundSpec` batches; the
:class:`EvaluationEngine` decides how they run (serial loop or process
pool today, sharded/async backends tomorrow) and which of them need
running at all (content-keyed :class:`ResultCache`).

See ``ARCHITECTURE.md`` at the repository root for how this layer fits
the overall system and how to add a backend.
"""

from repro.engine.spec import (
    AttackSpec,
    DefenseSpec,
    VictimSpec,
    RoundSpec,
    register_attack_builder,
    register_attack_prewarmer,
    registered_attack_kinds,
    materialize_attack,
    register_defense_builder,
    register_defense_prewarmer,
    registered_defense_kinds,
    materialize_defense,
    register_victim_builder,
    register_victim_prewarmer,
    registered_victim_kinds,
    materialize_victim,
    prewarm_context,
    prewarm_all,
    parse_spec_string,
    parse_attack_spec,
    parse_defense_spec,
    parse_victim_spec,
)
from repro.engine.cache import (
    CacheStats,
    ResultCache,
    round_key,
    round_keys,
    cache_schema_version,
    read_manifest,
    write_manifest,
    prune_cache_dir,
)
from repro.engine.backends import (
    EvaluationBackend,
    SerialBackend,
    ProcessPoolBackend,
    execute_round,
    execute_rounds,
    register_backend,
    make_backend,
    available_backends,
)
from repro.engine.core import (
    EvaluationEngine,
    default_engine,
    set_default_engine,
    engine_from_env,
    resolve_engine,
)

__all__ = [
    "AttackSpec",
    "DefenseSpec",
    "VictimSpec",
    "RoundSpec",
    "register_attack_builder",
    "register_attack_prewarmer",
    "registered_attack_kinds",
    "materialize_attack",
    "register_defense_builder",
    "register_defense_prewarmer",
    "registered_defense_kinds",
    "materialize_defense",
    "register_victim_builder",
    "register_victim_prewarmer",
    "registered_victim_kinds",
    "materialize_victim",
    "prewarm_context",
    "prewarm_all",
    "parse_spec_string",
    "parse_attack_spec",
    "parse_defense_spec",
    "parse_victim_spec",
    "CacheStats",
    "ResultCache",
    "round_key",
    "round_keys",
    "cache_schema_version",
    "read_manifest",
    "write_manifest",
    "prune_cache_dir",
    "EvaluationBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "execute_round",
    "execute_rounds",
    "register_backend",
    "make_backend",
    "available_backends",
    "EvaluationEngine",
    "default_engine",
    "set_default_engine",
    "engine_from_env",
    "resolve_engine",
]
