"""Execution backends: how a batch of round specs actually runs.

Determinism contract: every round's randomness derives solely from the
round's own seed (via ``derive_seed`` inside ``evaluate_configuration``),
never from shared generator state or execution order.  Backends may
therefore run rounds in any order, on any number of workers, and must
return outcomes **bit-identical** to the serial backend, ordered like
the input specs.  This is the property that makes future sharded or
async backends drop-in safe.

Built-ins:

* ``serial`` — in-process loop; zero overhead, the reference semantics.
* ``process`` — ``concurrent.futures.ProcessPoolExecutor`` fan-out.
  The context is shipped once per worker (pool initializer), specs
  travel individually; everything involved is plain
  dataclasses/NumPy arrays, so pickling is cheap.

New backends register with :func:`register_backend`.
"""

from __future__ import annotations

import os
import pickle
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from typing import Callable

__all__ = [
    "EvaluationBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "execute_round",
    "register_backend",
    "make_backend",
    "available_backends",
]


def execute_round(ctx, spec):
    """Run one :class:`~repro.engine.spec.RoundSpec` in ``ctx``.

    This is *the* semantics of a round — every backend funnels through
    it, in this process or another.
    """
    # Imported lazily: the engine package must stay importable without
    # dragging in (or circularly importing) the experiments layer.
    from repro.engine.spec import materialize_attack
    from repro.experiments.runner import evaluate_configuration

    attack = None
    if spec.attack is not None:
        attack = materialize_attack(ctx, spec.attack)
    return evaluate_configuration(
        ctx,
        filter_percentile=spec.filter_percentile,
        attack=attack,
        poison_fraction=spec.poison_fraction,
        seed=spec.seed,
    )


class EvaluationBackend(ABC):
    """Executes batches of rounds; see the module determinism contract."""

    name: str = "abstract"

    @abstractmethod
    def run(self, ctx, specs) -> list:
        """Evaluate ``specs`` in ``ctx``; outcomes in input order."""


class SerialBackend(EvaluationBackend):
    """The reference backend: a plain in-process loop."""

    name = "serial"

    def __init__(self, jobs: int | None = None):
        pass  # accepts (and ignores) jobs so all backends share a signature

    def run(self, ctx, specs) -> list:
        return [execute_round(ctx, spec) for spec in specs]


# -- process-pool workers (module-level: must be picklable) ----------------

_WORKER_CTX = None


def _worker_init(ctx_blob: bytes) -> None:
    global _WORKER_CTX
    _WORKER_CTX = pickle.loads(ctx_blob)


def _worker_run(spec):
    return execute_round(_WORKER_CTX, spec)


class ProcessPoolBackend(EvaluationBackend):
    """Fan rounds out over a ``ProcessPoolExecutor``.

    Parameters
    ----------
    jobs:
        Worker count; ``None`` uses ``os.cpu_count()``.
    """

    name = "process"

    def __init__(self, jobs: int | None = None):
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)

    def run(self, ctx, specs) -> list:
        specs = list(specs)
        if not specs:
            return []
        try:
            # The context is pickled exactly once, here, and shipped to
            # each worker through the initializer; this also surfaces
            # unpicklable contexts (e.g. a lambda model_factory) as one
            # clear error instead of a broken pool.
            ctx_blob = pickle.dumps(ctx, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise TypeError(
                "the experiment context cannot be pickled for the process "
                "backend (a lambda/closure model_factory is the usual "
                "culprit — use a picklable callable class such as "
                "repro.experiments.runner.SVMVictimFactory, or the serial "
                f"backend): {exc}"
            ) from exc
        workers = max(1, min(self.jobs, len(specs)))
        chunksize = max(1, len(specs) // (workers * 4))
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_worker_init, initargs=(ctx_blob,)
        ) as pool:
            return list(pool.map(_worker_run, specs, chunksize=chunksize))


# -- registry --------------------------------------------------------------

_BACKENDS: dict[str, Callable[[int | None], EvaluationBackend]] = {}


def register_backend(name: str, factory: Callable[[int | None], EvaluationBackend]) -> None:
    """Register ``factory(jobs) -> EvaluationBackend`` under ``name``."""
    _BACKENDS[str(name)] = factory


def available_backends() -> list[str]:
    """Sorted names of all registered backends."""
    return sorted(_BACKENDS)


def make_backend(name: str, jobs: int | None = None) -> EvaluationBackend:
    """Instantiate a backend by registry name."""
    if isinstance(name, EvaluationBackend):
        return name
    try:
        factory = _BACKENDS[str(name)]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {available_backends()}"
        ) from None
    return factory(jobs)


register_backend("serial", SerialBackend)
register_backend("process", ProcessPoolBackend)
register_backend("process-pool", ProcessPoolBackend)  # alias
