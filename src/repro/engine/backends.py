"""Execution backends: how a batch of round specs actually runs.

Determinism contract: every round's randomness derives solely from the
round's own seed (via ``derive_seed`` inside ``evaluate_configuration``),
never from shared generator state or execution order.  Backends may
therefore run rounds in any order, on any number of workers, and must
return outcomes **bit-identical** to the serial backend, ordered like
the input specs.  This is the property that makes future sharded or
async backends drop-in safe.

Built-ins:

* ``serial`` — in-process loop; zero overhead, the reference semantics.
* ``process`` — ``concurrent.futures.ProcessPoolExecutor`` fan-out
  with **zero-copy context transport**: the context's data arrays are
  published once into a ``multiprocessing.shared_memory`` block that
  every worker maps read-only, and only a small metadata blob (array
  layout, scalar fields, the picklable victim factory, and the round
  kernel's fitted attack direction) is pickled into the pool
  initializer.  Worker start-up therefore stops copying the full
  train/test split per process, and fan-out cost no longer grows with
  context size.  Contexts that do not look like experiment contexts
  fall back to whole-object pickling.
* ``cluster`` — fans chunks out to shard servers over TCP (see
  :mod:`repro.cluster`); autospawns localhost shards when none are
  configured.  Registered lazily so the engine package stays light.

Backends additionally expose :meth:`EvaluationBackend.run_iter`, the
streaming face of ``run``: ``(index, outcome)`` pairs as rounds land,
bit-identical to ``run`` in every position.  The engine's
``evaluate_stream`` rides it.

New backends register with :func:`register_backend`.
"""

from __future__ import annotations

import os
import pickle
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, as_completed
from multiprocessing import shared_memory
from typing import Callable

import numpy as np

__all__ = [
    "EvaluationBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "execute_round",
    "execute_rounds",
    "register_backend",
    "make_backend",
    "available_backends",
]

# Rounds per batched-fit window: execute_rounds prepares this many
# rounds at a time, then trains eligible same-victim/same-shape groups
# through LinearSVM.fit_many.  Large enough to catch a grid study's
# repeat axis, small enough to keep B prepared training sets resident.
_FIT_WINDOW = 32

# Fields of an ExperimentContext large enough to be worth publishing in
# shared memory instead of pickling ("map" is the radius map's sorted
# distance vector).
_SHARED_ARRAY_FIELDS = ("X_train", "y_train", "X_test", "y_test")


def _round_kwargs(ctx, spec) -> dict:
    """Materialise ``spec``'s attack/defense/victim into the keyword
    arguments ``evaluate_configuration`` / ``prepare_configuration``
    expect for this round."""
    # Imported lazily: the engine package must stay importable without
    # dragging in (or circularly importing) the experiments layer.
    from repro.engine.spec import (
        materialize_attack,
        materialize_defense,
        materialize_victim,
    )
    from repro.utils.rng import derive_seed

    attack = None
    if spec.attack is not None:
        attack = materialize_attack(ctx, spec.attack)
    victim_factory = None
    if spec.victim is not None:
        victim_factory = materialize_victim(ctx, spec.victim)
    kwargs = dict(
        attack=attack,
        poison_fraction=spec.poison_fraction,
        seed=spec.seed,
        victim_factory=victim_factory,
    )
    dspec = spec.defense
    if dspec is None or dspec.is_fast_radius:
        # The paper's radius filter rides the kernel-served fast path
        # (clean distances reused, only poison rows recomputed).
        # spec.filter_percentile mirrors the defence's percentile and
        # preserves the caller's 0-vs-None spelling for the outcome.
        kwargs["filter_percentile"] = spec.filter_percentile
    else:
        kwargs["defense"] = materialize_defense(
            ctx, dspec, seed=derive_seed(spec.seed, "defense"))
    return kwargs


def execute_round(ctx, spec):
    """Run one :class:`~repro.engine.spec.RoundSpec` in ``ctx``.

    This is *the* semantics of a round — every backend funnels through
    it (or through its batch-aware sibling :func:`execute_rounds`,
    which computes the same outcomes round for round), in this process
    or another.
    """
    from repro.experiments.runner import evaluate_configuration

    return evaluate_configuration(ctx, **_round_kwargs(ctx, spec))


def _batch_fits_enabled() -> bool:
    """The ``REPRO_BATCH_FITS`` toggle (default on; ``0`` disables)."""
    return os.environ.get("REPRO_BATCH_FITS", "1").strip().lower() \
        not in ("0", "false", "no", "off")


def _fit_group_key(prepared):
    """Grouping key for batched fits, or ``None`` when ineligible.

    Exactly LinearSVM (subclasses may override ``fit``) with matching
    hyperparameters on same-shape float64 training sets — the envelope
    ``LinearSVM.can_fit_many`` accepts.  The key errs loose on purpose:
    ``fit_many`` re-checks eligibility and falls back to sequential
    fits itself, so a stale key can cost speed, never bits.
    """
    from repro.ml.linear_svm import LinearSVM

    model = prepared.model
    if type(model) is not LinearSVM:
        return None
    X = prepared.X_tr
    if getattr(X, "ndim", 0) != 2:
        return None
    return (model.reg, model.epochs, model.batch_size, model.fit_intercept,
            model.average, model.tol, bool(model.track_objective),
            X.shape, X.dtype.str)


def _fit_prepared_groups(prepared_rounds) -> None:
    """Train all eligible groups of prepared rounds through
    ``LinearSVM.fit_many``; ungrouped rounds stay unfitted (the finish
    step trains them sequentially, as before)."""
    from repro import telemetry
    from repro.ml.linear_svm import LinearSVM

    groups: dict[tuple, list] = {}
    for prepared in prepared_rounds:
        key = _fit_group_key(prepared)
        if key is not None:
            groups.setdefault(key, []).append(prepared)
    for group in groups.values():
        if len(group) < 2:
            continue
        with telemetry.trace_span("fit", rounds=len(group), batched=True):
            LinearSVM.fit_many([p.model for p in group],
                               [(p.X_tr, p.y_tr) for p in group])
        for prepared in group:
            prepared.fitted = True


def execute_rounds(ctx, specs) -> list:
    """Run a batch of round specs, outcomes in input order.

    The batch-aware sibling of :func:`execute_round`: rounds are
    prepared (attack + defence + fresh victim) one at a time exactly
    as today, but the victim fits of same-victim, same-shape rounds in
    each window of ``_FIT_WINDOW`` are dispatched together through
    ``LinearSVM.fit_many`` — bit-identical to sequential fits by the
    batched trainer's contract, so outcomes, cache keys and streaming
    semantics are unchanged.  Set ``REPRO_BATCH_FITS=0`` to force the
    plain per-round path.
    """
    specs = list(specs)
    if len(specs) < 2 or not _batch_fits_enabled():
        return [execute_round(ctx, spec) for spec in specs]

    from repro.experiments.runner import (
        finish_configuration,
        prepare_configuration,
    )

    outcomes = []
    for base in range(0, len(specs), _FIT_WINDOW):
        window = specs[base:base + _FIT_WINDOW]
        prepared = [prepare_configuration(ctx, **_round_kwargs(ctx, spec))
                    for spec in window]
        _fit_prepared_groups(prepared)
        outcomes.extend(finish_configuration(ctx, p) for p in prepared)
    return outcomes


class EvaluationBackend(ABC):
    """Executes batches of rounds; see the module determinism contract."""

    name: str = "abstract"

    @abstractmethod
    def run(self, ctx, specs) -> list:
        """Evaluate ``specs`` in ``ctx``; outcomes in input order."""

    def run_iter(self, ctx, specs):
        """Yield ``(index, outcome)`` pairs as rounds complete.

        The streaming face of :meth:`run`: indices refer to positions
        in ``specs``, every index is yielded exactly once, and — by the
        module determinism contract — each outcome is bit-identical to
        the one :meth:`run` would put at that position, whatever order
        they arrive in.  The default runs the whole batch first and
        yields in input order; backends with genuinely incremental
        execution override it.
        """
        for index, outcome in enumerate(self.run(ctx, specs)):
            yield index, outcome

    def batch_telemetry(self) -> dict | None:
        """Backend-specific counters of the most recent batch, or ``None``.

        Read-once: the engine calls this after each batch and merges a
        truthy result into the ``batch_log`` entry (the cluster backend
        reports its placement/shard-cache stats here).  Backends with
        nothing to report inherit this ``None``.
        """
        return None


class SerialBackend(EvaluationBackend):
    """The reference backend: a plain in-process loop."""

    name = "serial"

    def __init__(self, jobs: int | None = None):
        pass  # accepts (and ignores) jobs so all backends share a signature

    def run(self, ctx, specs) -> list:
        return execute_rounds(ctx, specs)

    def run_iter(self, ctx, specs):
        # Stream one fit window at a time: rounds inside a window train
        # together (batched fits), whole windows surface in input order.
        specs = list(specs)
        for base in range(0, len(specs), _FIT_WINDOW):
            window = specs[base:base + _FIT_WINDOW]
            for offset, outcome in enumerate(execute_rounds(ctx, window)):
                yield base + offset, outcome


# -- zero-copy context transport --------------------------------------------


def _pack_context(ctx):
    """Split ``ctx`` into (small metadata dict, shared-memory block).

    The metadata is what actually gets pickled to workers; the block
    holds the data arrays.  Returns ``(meta, shm)`` with ``shm=None``
    for contexts that don't expose the expected array fields (those
    travel whole, as before).  The caller owns the block and must
    ``close()``/``unlink()`` it once the pool is done.
    """
    if not all(hasattr(ctx, f) for f in _SHARED_ARRAY_FIELDS + ("radius_map",)):
        return {"mode": "pickle", "ctx": ctx}, None

    arrays = {f: np.ascontiguousarray(getattr(ctx, f))
              for f in _SHARED_ARRAY_FIELDS}
    arrays["map_distances"] = np.ascontiguousarray(ctx.radius_map.distances)

    layout = {}
    offset = 0
    for name, arr in arrays.items():
        offset = -(-offset // 16) * 16  # 16-byte alignment
        layout[name] = (offset, arr.shape, arr.dtype.str)
        offset += arr.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for name, arr in arrays.items():
        off = layout[name][0]
        view = np.frombuffer(shm.buf, dtype=arr.dtype, count=arr.size, offset=off)
        view[:] = arr.ravel()

    state = ctx.__getstate__() if hasattr(ctx, "__getstate__") else dict(ctx.__dict__)
    state = dict(state)
    for f in _SHARED_ARRAY_FIELDS:
        state.pop(f, None)
    state.pop("radius_map", None)
    kernel = ctx.__dict__.get("_kernel")
    meta = {
        "mode": "shm",
        "shm_name": shm.name,
        "layout": layout,
        "cls": type(ctx),
        "state": state,
        "kernel_state": kernel.export_state() if kernel is not None else None,
    }
    return meta, shm


def _unpack_context(meta):
    """Rebuild a context in a worker from :func:`_pack_context` output.

    Array fields become read-only views of the shared block — nothing
    data-sized is copied.  Returns ``(ctx, shm)``; the shm handle must
    stay referenced for the arrays' lifetime.
    """
    if meta["mode"] == "pickle":
        return meta["ctx"], None

    shm = shared_memory.SharedMemory(name=meta["shm_name"])
    # The parent owns (and unlinks) the segment.  Attaching registers
    # the name with the resource tracker again, but under the default
    # fork start method the workers share the parent's tracker, whose
    # per-type cache is a set — the duplicate registration collapses
    # and the parent's single unlink() retires it cleanly.

    views = {}
    for name, (offset, shape, dtype) in meta["layout"].items():
        count = int(np.prod(shape, dtype=np.int64))
        arr = np.frombuffer(shm.buf, dtype=np.dtype(dtype), count=count,
                            offset=offset).reshape(shape)
        arr.flags.writeable = False
        views[name] = arr

    from repro.data.geometry import RadiusPercentileMap

    # Bypass __post_init__: the vector was sorted (and validated) by the
    # parent; re-sorting would copy it out of shared memory.
    radius_map = RadiusPercentileMap.__new__(RadiusPercentileMap)
    radius_map.distances = views["map_distances"]

    ctx = meta["cls"].__new__(meta["cls"])
    ctx.__dict__.update(meta["state"])
    for f in _SHARED_ARRAY_FIELDS:
        setattr(ctx, f, views[f])
    ctx.radius_map = radius_map

    kernel_state = meta.get("kernel_state")
    if kernel_state is not None:
        from repro.experiments.kernel import build_context_kernel

        ctx.__dict__["_kernel"] = build_context_kernel(ctx, state=kernel_state)
    return ctx, shm


def _release_shm(shm) -> None:
    """Close and unlink a parent-owned shared block (idempotent-ish)."""
    if shm is None:
        return
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover
        pass  # a foreign resource tracker got there first


# -- process-pool workers (module-level: must be picklable) ----------------

_WORKER_CTX = None
_WORKER_SHM = None  # keeps the mapped block alive for the worker's lifetime


def _worker_cleanup() -> None:
    """Release the context before the shared block, in that order.

    Interpreter shutdown clears module globals in arbitrary order; if
    the block's ``__del__`` ran while the context's array views were
    still alive it would raise ``BufferError`` into stderr.  Dropping
    the context first (plus a GC pass for the context<->kernel cycle)
    guarantees a silent close.
    """
    global _WORKER_CTX, _WORKER_SHM
    _WORKER_CTX = None
    if _WORKER_SHM is not None:
        import gc

        gc.collect()
        try:
            _WORKER_SHM.close()
        except BufferError:  # pragma: no cover - views kept alive elsewhere
            pass
        _WORKER_SHM = None


def _worker_init(meta_blob: bytes) -> None:
    global _WORKER_CTX, _WORKER_SHM
    import atexit

    _WORKER_CTX, _WORKER_SHM = _unpack_context(pickle.loads(meta_blob))
    if _WORKER_SHM is not None:
        atexit.register(_worker_cleanup)


def _worker_run(spec):
    return execute_round(_WORKER_CTX, spec)


def _worker_run_specs(specs):
    """Run a chunk of specs in a worker, outcomes in chunk order.

    Routes through :func:`execute_rounds` so a worker's chunk gets the
    same batched-fit treatment as the serial backend — chunking decides
    *where* rounds run, ``execute_rounds`` decides *how*.
    """
    return execute_rounds(_WORKER_CTX, specs)


def _worker_run_chunk(indexed_specs):
    """Run ``[(index, spec), ...]`` and return ``[(index, outcome), ...]``.

    The chunked unit of the process backend's streaming path: one
    future per chunk keeps submission overhead off the hot path while
    letting ``as_completed`` surface whole chunks as they finish.
    """
    outcomes = execute_rounds(_WORKER_CTX,
                              [spec for _, spec in indexed_specs])
    return [(index, outcome)
            for (index, _), outcome in zip(indexed_specs, outcomes)]


def _worker_run_specs_telemetry(specs):
    """:func:`_worker_run_specs` plus the worker's telemetry delta.

    The delta (``None`` when telemetry is disabled or nothing changed)
    carries the stage histograms and counters this chunk accumulated in
    the worker process; the parent merges it into its own registry so
    client-side summaries cover the whole pool.  Spans still land in
    the worker's own JSONL file — only metrics travel back.
    """
    from repro import telemetry

    return _worker_run_specs(specs), telemetry.flush_delta()


def _worker_run_chunk_telemetry(indexed_specs):
    """:func:`_worker_run_chunk` plus the worker's telemetry delta."""
    from repro import telemetry

    return _worker_run_chunk(indexed_specs), telemetry.flush_delta()


class ProcessPoolBackend(EvaluationBackend):
    """Fan rounds out over a ``ProcessPoolExecutor``.

    The context's data arrays ride in one shared-memory block (mapped
    read-only by every worker); the pool initializer receives only a
    small metadata blob.  Shared state attack builders can precompute
    once per batch (e.g. the boundary attack's surrogate direction) is
    warmed in the parent and shipped in that blob, so workers never
    repeat it.

    Parameters
    ----------
    jobs:
        Worker count; ``None`` uses ``os.cpu_count()``.
    """

    name = "process"

    def __init__(self, jobs: int | None = None):
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)

    def _prepare(self, ctx, specs):
        """Prewarm + pack ``ctx``; return ``(meta_blob, shm, workers)``.

        Shared front half of :meth:`run` and :meth:`run_iter`.  The
        caller owns the returned shared-memory block (when not None)
        and must close+unlink it after the pool is done.
        """
        # Imported lazily, like execute_round: keep the engine package
        # importable without the experiments layer.
        from repro.engine.spec import prewarm_context

        prewarm_context(ctx, specs)
        meta, shm = _pack_context(ctx)
        try:
            # The metadata is pickled exactly once, here, and shipped to
            # each worker through the initializer; this also surfaces
            # unpicklable contexts (e.g. a lambda model_factory) as one
            # clear error instead of a broken pool.
            try:
                meta_blob = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as exc:
                raise TypeError(
                    "the experiment context cannot be pickled for the process "
                    "backend (a lambda/closure model_factory is the usual "
                    "culprit — use a picklable callable class such as "
                    "repro.experiments.runner.SVMVictimFactory, or the serial "
                    f"backend): {exc}"
                ) from exc
        except BaseException:
            _release_shm(shm)
            raise
        return meta_blob, shm, max(1, min(self.jobs, len(specs)))

    def run(self, ctx, specs) -> list:
        specs = list(specs)
        if not specs:
            return []
        meta_blob, shm, workers = self._prepare(ctx, specs)
        try:
            # Explicit chunks (the same sizing pool.map would pick) so
            # each worker-side chunk flows through execute_rounds and
            # gets its fits batched; results flatten back in order.
            chunksize = max(1, len(specs) // (workers * 4))
            chunks = [specs[i:i + chunksize]
                      for i in range(0, len(specs), chunksize)]
            from repro import telemetry

            with ProcessPoolExecutor(
                max_workers=workers, initializer=_worker_init,
                initargs=(meta_blob,)
            ) as pool:
                outcomes = []
                for chunk_outcomes, delta in pool.map(
                        _worker_run_specs_telemetry, chunks):
                    telemetry.merge(delta)
                    outcomes.extend(chunk_outcomes)
                return outcomes
        finally:
            _release_shm(shm)

    def run_iter(self, ctx, specs):
        """Stream ``(index, outcome)`` pairs as worker chunks complete.

        Same transport and chunk sizing as :meth:`run`, but chunks are
        submitted as individual futures and surfaced through
        ``as_completed`` — outcomes arrive while other chunks still
        train.  Bit-identity with :meth:`run` is inherited from
        ``execute_round``; only arrival order differs.
        """
        specs = list(specs)
        if not specs:
            return
        meta_blob, shm, workers = self._prepare(ctx, specs)
        try:
            chunksize = max(1, len(specs) // (workers * 4))
            indexed = list(enumerate(specs))
            chunks = [indexed[i:i + chunksize]
                      for i in range(0, len(indexed), chunksize)]
            from repro import telemetry

            with ProcessPoolExecutor(
                max_workers=workers, initializer=_worker_init,
                initargs=(meta_blob,)
            ) as pool:
                futures = [pool.submit(_worker_run_chunk_telemetry, chunk)
                           for chunk in chunks]
                for future in as_completed(futures):
                    pairs, delta = future.result()
                    telemetry.merge(delta)
                    yield from pairs
        finally:
            _release_shm(shm)


# -- registry --------------------------------------------------------------

_BACKENDS: dict[str, Callable[[int | None], EvaluationBackend]] = {}


def register_backend(name: str, factory: Callable[[int | None], EvaluationBackend]) -> None:
    """Register ``factory(jobs) -> EvaluationBackend`` under ``name``."""
    _BACKENDS[str(name)] = factory


def available_backends() -> list[str]:
    """Sorted names of all registered backends."""
    return sorted(_BACKENDS)


def make_backend(name: str, jobs: int | None = None) -> EvaluationBackend:
    """Instantiate a backend by registry name."""
    if isinstance(name, EvaluationBackend):
        return name
    try:
        factory = _BACKENDS[str(name)]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {available_backends()}"
        ) from None
    return factory(jobs)


def _make_cluster_backend(jobs: int | None):
    # Imported lazily so the engine package never drags the cluster
    # service in unless someone actually asks for the backend.
    from repro.cluster.backend import ClusterBackend

    return ClusterBackend(jobs)


register_backend("serial", SerialBackend)
register_backend("process", ProcessPoolBackend)
register_backend("process-pool", ProcessPoolBackend)  # alias
register_backend("cluster", _make_cluster_backend)
