"""Content-keyed result cache for evaluation rounds.

Keys are SHA-256 digests over ``(context fingerprint, canonical round
spec)`` — see :meth:`repro.experiments.runner.ExperimentContext.fingerprint`
and :meth:`repro.engine.spec.RoundSpec.canonical` — so a cache entry is
valid exactly as long as the data, preprocessing, victim factory and
round parameters it was computed from are unchanged.  There is no
time-based invalidation: content keys cannot go stale.

Two tiers:

* an **in-memory** dict (always on) — serves repeat rounds within a
  process, e.g. the clean baselines shared by every sweep.  Optionally
  capped (``max_entries``) with least-recently-used eviction so long
  multi-seed sweeps stop growing memory without bound; evicted entries
  survive on the disk tier when one is configured.
* an optional **on-disk JSON store** (one file per key, atomic
  writes) — persists results across processes and runs, which is what
  makes an equal-seed experiment rerun almost free.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass

__all__ = [
    "CacheStats",
    "ResultCache",
    "round_key",
    "round_keys",
    "cache_schema_version",
    "outcome_to_dict",
    "outcome_from_dict",
    "read_manifest",
    "write_manifest",
    "prune_cache_dir",
]

# v3: the round identity generalised from (filter_percentile, attack,
# fraction, seed) to (defense, attack, victim, fraction, seed) — the
# canonical spec tuple changed shape, so v2 keys no longer name the
# same rounds.  (v2: the experiment filter moved to the clean-data
# centroid, staling v1 poisoned-round entries.)
_SCHEMA_VERSION = 3

_MANIFEST_NAME = "manifest.json"


def cache_schema_version() -> int:
    """The current round-identity schema version.

    Exposed for the cluster protocol's handshake: a shard and its
    clients must agree on what a round *is* (the canonical spec tuple
    and key recipe) before exchanging results, otherwise a remote
    outcome could enter a cache tier under a key that names a
    different round in the other build.
    """
    return _SCHEMA_VERSION


def round_key(context_fingerprint: str, spec) -> str:
    """Deterministic cache key for one round in one context."""
    payload = json.dumps(
        [_SCHEMA_VERSION, str(context_fingerprint), spec.canonical()],
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def round_keys(context_fingerprint: str, specs) -> list[str]:
    """Batch form of :func:`round_key`, aligned with ``specs``.

    The export the cluster tier's ``cache-query`` message batches over:
    the client keys a whole batch once and ships the key list, so the
    shard side answers membership without ever seeing a spec.
    """
    fingerprint = str(context_fingerprint)
    return [round_key(fingerprint, spec) for spec in specs]


def outcome_to_dict(outcome) -> dict:
    """JSON-serialisable form of an ``EvaluationOutcome``."""
    d = asdict(outcome)
    d["schema_version"] = _SCHEMA_VERSION
    return d


def outcome_from_dict(d: dict):
    """Rebuild an ``EvaluationOutcome`` (inverse of :func:`outcome_to_dict`)."""
    from repro.defenses.base import DefenseReport
    from repro.experiments.runner import EvaluationOutcome

    d = dict(d)
    d.pop("schema_version", None)
    report = d.pop("report", None)
    return EvaluationOutcome(
        report=DefenseReport(**report) if report is not None else None, **d
    )


def _atomic_write_json(path: str, payload: dict) -> None:
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def write_manifest(disk_dir: str | os.PathLike) -> dict:
    """Summarise a cache directory into its ``manifest.json``.

    The manifest records the current schema version, the number of
    entry files and their total size — enough for operators (and the
    ``repro-cache`` CLI) to reason about a store without opening every
    entry.  Concurrent writers race harmlessly: whoever writes last
    scanned a directory at least as complete as the loser's.
    """
    disk_dir = os.fspath(disk_dir)
    entry_count = 0
    total_bytes = 0
    with os.scandir(disk_dir) as it:
        for entry in it:
            if entry.name.endswith(".json") and entry.name != _MANIFEST_NAME:
                entry_count += 1
                try:
                    total_bytes += entry.stat().st_size
                except OSError:
                    pass
    manifest = {
        "schema_version": _SCHEMA_VERSION,
        "entry_count": entry_count,
        "total_bytes": total_bytes,
    }
    # Provenance survives a rebuild: study fingerprints recorded by
    # ``ResultCache.annotate_study`` describe where entries came from,
    # which a directory scan cannot reconstruct.
    existing = read_manifest(disk_dir)
    if existing is not None and existing.get("studies"):
        manifest["studies"] = sorted(set(existing["studies"]))
    _atomic_write_json(os.path.join(disk_dir, _MANIFEST_NAME), manifest)
    return manifest


def read_manifest(disk_dir: str | os.PathLike) -> dict | None:
    """The cache directory's manifest, or ``None`` when absent/corrupt."""
    path = os.path.join(os.fspath(disk_dir), _MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (FileNotFoundError, json.JSONDecodeError):
        return None


def prune_cache_dir(disk_dir: str | os.PathLike) -> dict:
    """Drop entries from older schema versions; refresh the manifest.

    Returns the refreshed manifest with an extra ``"removed"`` count.
    Unreadable entries are treated as stale (they can never be served).
    """
    disk_dir = os.fspath(disk_dir)
    removed = 0
    with os.scandir(disk_dir) as it:
        names = [e.name for e in it
                 if e.name.endswith(".json") and e.name != _MANIFEST_NAME]
    for name in names:
        path = os.path.join(disk_dir, name)
        stale = False
        try:
            with open(path, "r", encoding="utf-8") as fh:
                stale = json.load(fh).get("schema_version") != _SCHEMA_VERSION
        except (OSError, json.JSONDecodeError):
            stale = True
        if stale:
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
    manifest = write_manifest(disk_dir)
    return {"removed": removed, **manifest}


@dataclass
class CacheStats:
    """Hit/miss accounting (exposed for tests and benchmarks)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """In-memory (plus optional on-disk) store of round outcomes.

    Parameters
    ----------
    disk_dir:
        Directory for the persistent JSON tier (created on demand);
        ``None`` keeps the cache memory-only.
    max_entries:
        Size cap for the in-memory tier; the least recently *used*
        entry is evicted first.  ``None`` (default) is unbounded.
        Eviction never touches the disk tier, so capped memory plus a
        ``disk_dir`` behaves like a small hot cache over a complete
        persistent store.

    The public API is thread-safe (one re-entrant lock around both
    tiers): the cluster scheduler delivers remote results from worker
    threads, and a cache shared across engines may be read while
    another engine's stream is writing.  Remote results enter through
    exactly the same :meth:`put` as local ones — same serialised entry,
    same LRU accounting, same disk tier.
    """

    def __init__(self, disk_dir: str | os.PathLike | None = None,
                 max_entries: int | None = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._memory: OrderedDict[str, dict] = OrderedDict()
        self._max_entries = max_entries
        self._disk_dir = os.fspath(disk_dir) if disk_dir is not None else None
        self._manifest: dict | None = None  # incremental tally, lazy-seeded
        self._lock = threading.RLock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._memory)

    @property
    def max_entries(self) -> int | None:
        return self._max_entries

    def _remember(self, key: str, entry: dict) -> None:
        """Insert/refresh ``key`` as most recently used, evicting LRU."""
        self._memory[key] = entry
        self._memory.move_to_end(key)
        if self._max_entries is not None:
            from repro import telemetry

            while len(self._memory) > self._max_entries:
                self._memory.popitem(last=False)
                self.stats.evictions += 1
                telemetry.counter("cache.evictions").inc()

    # -- internal disk tier ----------------------------------------------

    def _disk_path(self, key: str) -> str:
        return os.path.join(self._disk_dir, f"{key}.json")

    def _disk_get(self, key: str) -> dict | None:
        if self._disk_dir is None:
            return None
        try:
            with open(self._disk_path(key), "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        if entry.get("schema_version") != _SCHEMA_VERSION:
            return None
        return entry

    def _disk_put(self, key: str, entry: dict) -> None:
        if self._disk_dir is None:
            return
        os.makedirs(self._disk_dir, exist_ok=True)
        path = self._disk_path(key)
        try:
            old_size = os.path.getsize(path)
        except OSError:
            old_size = None
        # Atomic publish: concurrent writers of the same key race
        # harmlessly (identical content), readers never see a torn file.
        _atomic_write_json(path, entry)
        self._update_manifest(path, old_size)

    def _update_manifest(self, path: str, old_size: int | None) -> None:
        """Refresh ``manifest.json`` incrementally after storing ``path``.

        The tally is seeded once (from the existing manifest, else one
        directory scan) and adjusted per store, so each write costs one
        small-file write instead of a full-directory scan — the scan
        per store made long sweeps quadratic in cache size.  Concurrent
        writers may drift the advisory counts; ``repro-cache info``
        rebuilds them exactly.
        """
        if self._manifest is None:
            existing = read_manifest(self._disk_dir)
            if existing is not None and \
                    existing.get("schema_version") == _SCHEMA_VERSION:
                # A pre-existing manifest already counts everything on
                # disk except the entry just written (unless it was an
                # overwrite) — fall through to the incremental adjust.
                self._manifest = dict(existing)
            else:
                # First store into an untallied directory: one scan
                # (which already sees the entry just written).
                self._manifest = write_manifest(self._disk_dir)
                return
        try:
            new_size = os.path.getsize(path)
        except OSError:
            new_size = 0
        if old_size is None:
            self._manifest["entry_count"] += 1
            self._manifest["total_bytes"] += new_size
        else:
            self._manifest["total_bytes"] += new_size - old_size
        _atomic_write_json(os.path.join(self._disk_dir, _MANIFEST_NAME),
                          self._manifest)

    # -- public API -------------------------------------------------------

    def contains(self, key: str) -> bool:
        """Whether ``key`` is served by either tier, without side effects.

        A pure probe: no hit/miss accounting, no LRU refresh, no
        promotion from disk — what ``repro describe`` uses to predict a
        run's cache hits without perturbing the cache it inspects.
        """
        with self._lock:
            if key in self._memory:
                return True
        return self._disk_get(key) is not None

    def held_keys(self, keys) -> list[str]:
        """The subset of ``keys`` served by either tier, in input order.

        Batched :meth:`contains` — same side-effect-free semantics (no
        stats, no LRU refresh, no disk promotion).  This is what a shard
        answers a ``cache-query`` message with.
        """
        return [key for key in keys if self.contains(key)]

    def describe(self) -> dict:
        """Operator-facing summary of this cache instance.

        Always reports the schema version and in-memory entry count;
        with a disk tier it adds the directory and the manifest's
        entry/byte tallies (seeding the manifest with one scan if the
        directory has never been tallied).
        """
        info = {
            "schema_version": _SCHEMA_VERSION,
            "memory_entries": len(self._memory),
            "disk_dir": self._disk_dir,
            "entry_count": 0,
            "total_bytes": 0,
        }
        if self._disk_dir is not None and os.path.isdir(self._disk_dir):
            with self._lock:
                manifest = self._manifest or read_manifest(self._disk_dir)
                if manifest is None or \
                        manifest.get("schema_version") != _SCHEMA_VERSION:
                    manifest = write_manifest(self._disk_dir)
            info["entry_count"] = int(manifest.get("entry_count", 0))
            info["total_bytes"] = int(manifest.get("total_bytes", 0))
        return info

    def annotate_study(self, study_fingerprint: str) -> None:
        """Record a study fingerprint in the disk manifest's provenance.

        The manifest's ``"studies"`` list names every study whose rounds
        were stored (or re-served) through this cache directory, so an
        operator can answer "what produced this store?" without the
        original result artifacts.  Memory-only caches have no manifest;
        the call is then a no-op.
        """
        if self._disk_dir is None:
            return
        with self._lock:
            os.makedirs(self._disk_dir, exist_ok=True)
            if self._manifest is None:
                existing = read_manifest(self._disk_dir)
                if existing is not None and \
                        existing.get("schema_version") == _SCHEMA_VERSION:
                    self._manifest = dict(existing)
                else:
                    self._manifest = write_manifest(self._disk_dir)
            # Merge with the on-disk list, not just this instance's
            # cached copy: other processes sharing the directory may
            # have annotated their own studies since we seeded, and a
            # write from our stale copy alone would erase them.
            studies = set(self._manifest.get("studies", ()))
            on_disk = read_manifest(self._disk_dir)
            if on_disk is not None:
                studies.update(on_disk.get("studies", ()))
            if study_fingerprint in studies and \
                    studies == set(self._manifest.get("studies", ())):
                return
            studies.add(study_fingerprint)
            self._manifest["studies"] = sorted(studies)
            _atomic_write_json(os.path.join(self._disk_dir, _MANIFEST_NAME),
                               self._manifest)

    def get(self, key: str):
        """Return the cached ``EvaluationOutcome`` or ``None``."""
        from repro import telemetry

        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)  # refresh recency
                telemetry.counter("cache.memory.hits").inc()
            else:
                entry = self._disk_get(key)
                if entry is not None:
                    self._remember(key, entry)  # promote for next time
                    telemetry.counter("cache.disk.hits").inc()
            if entry is None:
                self.stats.misses += 1
                telemetry.counter("cache.misses").inc()
                return None
            self.stats.hits += 1
        return outcome_from_dict(entry)

    def put(self, key: str, outcome) -> None:
        """Store one outcome under its content key (both tiers)."""
        from repro import telemetry

        entry = outcome_to_dict(outcome)
        with self._lock:
            self._remember(key, entry)
            self._disk_put(key, entry)
            self.stats.stores += 1
        telemetry.counter("cache.stores").inc()

    def clear(self, *, disk: bool = False) -> None:
        """Drop the in-memory tier (and optionally the disk tier)."""
        with self._lock:
            self._memory.clear()
            if disk and self._disk_dir is not None \
                    and os.path.isdir(self._disk_dir):
                self._manifest = None
                for name in os.listdir(self._disk_dir):
                    if name.endswith(".json"):
                        try:
                            os.unlink(os.path.join(self._disk_dir, name))
                        except OSError:
                            pass
