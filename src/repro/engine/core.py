"""The :class:`EvaluationEngine`: batched, cached, backend-agnostic rounds.

Every experiment driver (Figure-1 sweep, Table 1, empirical game,
multi-seed aggregation) expresses its work as a **batch** of
:class:`~repro.engine.spec.RoundSpec`\\ s and hands it to one engine
call.  The engine then

1. keys every spec by content (context fingerprint + canonical spec),
2. collapses duplicates within the batch,
3. serves whatever the :class:`~repro.engine.cache.ResultCache`
   already holds,
4. runs the remainder on the configured
   :class:`~repro.engine.backends.EvaluationBackend`, and
5. returns outcomes aligned with the input order.

Because per-round seeds are pre-derived by the drivers, results are
bit-identical across backends, worker counts and cache states.

A process-wide default engine (configurable via ``REPRO_BACKEND``,
``REPRO_JOBS``, ``REPRO_CACHE``, ``REPRO_CACHE_DIR``,
``REPRO_CACHE_MAX_ENTRIES``) backs drivers that are not handed an
explicit engine, so existing call sites gain caching transparently.
"""

from __future__ import annotations

import os
import time

from repro import telemetry
from repro.engine.backends import EvaluationBackend, make_backend
from repro.engine.cache import ResultCache, round_key

__all__ = [
    "EvaluationEngine",
    "default_engine",
    "set_default_engine",
    "engine_from_env",
    "resolve_engine",
]


class EvaluationEngine:
    """Executes round batches through a backend, behind a result cache.

    Parameters
    ----------
    backend:
        Registry name (``"serial"``, ``"process"``) or a ready
        :class:`EvaluationBackend` instance.
    jobs:
        Worker count for parallel backends (ignored by ``serial``).
    cache:
        ``True`` (default) for a fresh :class:`ResultCache`, ``False``
        to disable caching entirely, or an existing :class:`ResultCache`
        to share one across engines.
    cache_dir:
        Optional directory for the cache's persistent JSON tier (only
        used when ``cache`` is ``True``).
    cache_max_entries:
        Optional LRU size cap for the in-memory cache tier (only used
        when ``cache`` is ``True``); ``None`` is unbounded.
    """

    def __init__(
        self,
        backend: str | EvaluationBackend = "serial",
        *,
        jobs: int | None = None,
        cache: bool | ResultCache = True,
        cache_dir: str | None = None,
        cache_max_entries: int | None = None,
    ):
        self.backend = make_backend(backend, jobs)
        if isinstance(cache, ResultCache):
            self.cache = cache
        elif cache:
            self.cache = ResultCache(disk_dir=cache_dir,
                                     max_entries=cache_max_entries)
        else:
            self.cache = None
        self.rounds_computed = 0
        self.batch_log: list[dict] = []

    # -- evaluation -------------------------------------------------------

    def evaluate(self, ctx, spec):
        """Evaluate a single round (batch of one)."""
        return self.evaluate_batch(ctx, [spec])[0]

    def evaluate_batch(self, ctx, specs, *, progress=None) -> list:
        """Evaluate a batch of rounds; outcomes align with ``specs``.

        Identical rounds — within the batch or across all previous
        batches — are computed exactly once.

        ``progress`` is an optional ``callback(done, total)`` invoked
        after every spec resolves (cache hits included); when given,
        the batch rides the streaming path (:meth:`evaluate_stream`'s
        machinery), whose outcomes are bit-identical — with ``None``
        (the default) the batch goes through ``backend.run`` unchanged.
        """
        specs = list(specs)
        if not specs:
            return []
        if progress is not None:
            results = [None] * len(specs)
            done = 0
            for index, outcome in self._stream_indexed(ctx, specs):
                results[index] = outcome
                done += 1
                progress(done, len(specs))
            return results
        start = time.perf_counter()
        fingerprint = ctx.fingerprint()
        keys = [round_key(fingerprint, spec) for spec in specs]

        unique: dict[str, object] = {}
        for key, spec in zip(keys, specs):
            unique.setdefault(key, spec)

        results: dict[str, object] = {}
        to_run = []
        for key, spec in unique.items():
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is None:
                to_run.append((key, spec))
            else:
                results[key] = cached

        if to_run:
            with telemetry.trace_span("batch", backend=self.backend.name,
                                      rounds=len(to_run)):
                outcomes = self.backend.run(ctx,
                                            [spec for _, spec in to_run])
            self.rounds_computed += len(outcomes)
            for (key, _), outcome in zip(to_run, outcomes):
                if self.cache is not None:
                    self.cache.put(key, outcome)
                results[key] = outcome

        telemetry.counter("engine.rounds_total").inc(len(specs))
        telemetry.counter("engine.rounds_computed").inc(len(to_run))
        telemetry.counter("engine.batches_total").inc()
        entry = {
            "batch": len(self.batch_log) + 1,
            "backend": self.backend.name,
            "n_specs": len(specs),
            "n_unique": len(unique),
            "computed": len(to_run),
            "cache_hits": len(unique) - len(to_run),
            "seconds": time.perf_counter() - start,
        }
        cluster_telemetry = self.backend.batch_telemetry()
        if cluster_telemetry:
            entry["cluster"] = cluster_telemetry
        self.batch_log.append(entry)
        return [results[key] for key in keys]

    def evaluate_stream(self, ctx, specs):
        """Yield ``(spec, outcome)`` pairs as rounds land.

        The streaming face of :meth:`evaluate_batch`: every input spec
        is yielded exactly once (duplicates included — each position
        gets its pair), cache hits come first in input order, then
        backend completions in arrival order.  Arrival order may vary
        between runs and backends; the outcomes themselves — and the
        cache state left behind — are bit-identical to
        :meth:`evaluate_batch` on the same engine.
        """
        specs = list(specs)
        for index, outcome in self._stream_indexed(ctx, specs):
            yield specs[index], outcome

    def _stream_indexed(self, ctx, specs):
        """Yield ``(index, outcome)``: cache hits first, then the
        backend's :meth:`~repro.engine.backends.EvaluationBackend.
        run_iter` completions, deduplicated by content key exactly like
        the batch path."""
        if not specs:
            return
        start = time.perf_counter()
        fingerprint = ctx.fingerprint()
        keys = [round_key(fingerprint, spec) for spec in specs]
        positions: dict[str, list[int]] = {}
        for index, key in enumerate(keys):
            positions.setdefault(key, []).append(index)

        to_run = []
        for key, indices in positions.items():
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is None:
                to_run.append((key, specs[indices[0]]))
            else:
                for index in indices:
                    yield index, cached

        computed = 0
        try:
            if to_run:
                run_specs = [spec for _, spec in to_run]
                with telemetry.trace_span("batch",
                                          backend=self.backend.name,
                                          rounds=len(to_run)):
                    for j, outcome in self.backend.run_iter(ctx,
                                                            run_specs):
                        key = to_run[j][0]
                        self.rounds_computed += 1
                        computed += 1
                        if self.cache is not None:
                            self.cache.put(key, outcome)
                        for index in positions[key]:
                            yield index, outcome
        finally:
            telemetry.counter("engine.rounds_total").inc(len(specs))
            telemetry.counter("engine.rounds_computed").inc(computed)
            telemetry.counter("engine.batches_total").inc()
            entry = {
                "batch": len(self.batch_log) + 1,
                "backend": self.backend.name,
                "n_specs": len(specs),
                "n_unique": len(positions),
                "computed": computed,
                "cache_hits": len(positions) - len(to_run),
                "seconds": time.perf_counter() - start,
            }
            cluster_telemetry = self.backend.batch_telemetry()
            if cluster_telemetry:
                entry["cluster"] = cluster_telemetry
            self.batch_log.append(entry)

    # -- introspection ----------------------------------------------------

    @property
    def stats(self) -> dict:
        """Lifetime counters: computed rounds plus cache hit/miss tallies.

        Includes ``batches_run`` and the wall time summed over
        ``batch_log`` (per-batch backend/timing detail lives in
        :attr:`batch_log` itself; :func:`repro.experiments.reporting.
        format_engine_stats` renders both).
        """
        out = {
            "backend": self.backend.name,
            "rounds_computed": self.rounds_computed,
            "batches_run": len(self.batch_log),
            "batch_seconds": sum(b["seconds"] for b in self.batch_log),
        }
        cluster_entries = [b["cluster"] for b in self.batch_log
                           if b.get("cluster")]
        if cluster_entries:
            for counter in ("chunks", "placed_rounds", "placement_hits",
                            "placed_steals", "shard_cache_hits",
                            "requeues", "rejoins"):
                out[counter] = sum(int(c.get(counter, 0))
                                   for c in cluster_entries)
        if self.cache is not None:
            out.update(
                cache_hits=self.cache.stats.hits,
                cache_misses=self.cache.stats.misses,
                cache_evictions=self.cache.stats.evictions,
                cache_entries=len(self.cache),
                cache_hit_rate=self.cache.stats.hit_rate,
            )
        return out

    def __repr__(self) -> str:
        cache = "off" if self.cache is None else f"{len(self.cache)} entries"
        return (f"{type(self).__name__}(backend={self.backend.name!r}, "
                f"cache={cache}, rounds_computed={self.rounds_computed})")


# -- process-wide default ---------------------------------------------------

_TRUTHY_OFF = {"0", "false", "off", "no"}
_default: EvaluationEngine | None = None


def engine_from_env() -> EvaluationEngine:
    """Build an engine from ``REPRO_*`` environment variables.

    * ``REPRO_BACKEND`` — backend name (default ``serial``);
    * ``REPRO_JOBS`` — worker count for parallel backends;
    * ``REPRO_CACHE`` — set to ``0``/``false`` to disable caching;
    * ``REPRO_CACHE_DIR`` — enable the persistent on-disk cache tier;
    * ``REPRO_CACHE_MAX_ENTRIES`` — LRU cap for the in-memory tier
      (default unbounded).
    """
    backend = os.environ.get("REPRO_BACKEND", "serial")
    jobs_raw = os.environ.get("REPRO_JOBS")
    jobs = int(jobs_raw) if jobs_raw else None
    cache_on = os.environ.get("REPRO_CACHE", "1").strip().lower() not in _TRUTHY_OFF
    cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    max_raw = os.environ.get("REPRO_CACHE_MAX_ENTRIES")
    cache_max_entries = int(max_raw) if max_raw else None
    return EvaluationEngine(backend, jobs=jobs, cache=cache_on,
                            cache_dir=cache_dir,
                            cache_max_entries=cache_max_entries)


def default_engine() -> EvaluationEngine:
    """The process-wide engine used when a driver gets ``engine=None``."""
    global _default
    if _default is None:
        _default = engine_from_env()
    return _default


def set_default_engine(engine: EvaluationEngine | None) -> None:
    """Replace the process-wide default (``None`` re-reads the env)."""
    global _default
    _default = engine


def resolve_engine(engine: EvaluationEngine | None) -> EvaluationEngine:
    """``engine`` itself, or the process-wide default."""
    return engine if engine is not None else default_engine()
