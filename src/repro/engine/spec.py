"""Declarative round specifications — the engine's unit of work.

A :class:`RoundSpec` names one attack/filter/train/score round of the
game *by content* rather than by code path: which filter percentile,
which attack (as a declarative :class:`AttackSpec`, not a live object),
what contamination rate, which seed.  Two properties follow:

* **cacheability** — a spec plus a context fingerprint is a complete,
  stable identity for the round's result, so identical rounds are
  never recomputed (see :mod:`repro.engine.cache`);
* **portability** — specs are tiny frozen dataclasses that pickle
  cheaply, so any backend (in-process, process pool, and future
  sharded/async executors) can run them (see
  :mod:`repro.engine.backends`).

Attack materialisation is a registry keyed by ``AttackSpec.kind`` so
new attack families plug in without touching the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.utils.validation import check_fraction

__all__ = [
    "AttackSpec",
    "RoundSpec",
    "register_attack_builder",
    "register_attack_prewarmer",
    "materialize_attack",
    "prewarm_context",
]


@dataclass(frozen=True)
class AttackSpec:
    """Declarative attack identity.

    Parameters
    ----------
    kind:
        Registry key naming the attack family.  Built-in kinds are
        ``"boundary"`` — the paper's optimal radius-targeted attack
        with the context's matched surrogate
        (:meth:`ExperimentContext.boundary_attack`) — and
        ``"label-flip"`` — genuine points re-injected with inverted
        labels (:class:`~repro.attacks.label_flip.LabelFlipAttack`).
    percentile:
        The attack's placement percentile on the shared axis.
        Families without a radius notion (label-flip) ignore it; keep
        the default ``0.0`` so their rounds share cache entries.
    params:
        Extra family-specific parameters as a mapping or ``(key,
        value)`` pairs (e.g. ``{"strategy": "near_boundary"}`` for
        label-flip).  Canonicalised to a sorted tuple so equal
        parameter sets always produce equal cache keys.
    """

    kind: str = "boundary"
    percentile: float = 0.0
    params: tuple = ()

    def __post_init__(self):
        if not isinstance(self.kind, str) or not self.kind:
            raise ValueError(f"kind must be a non-empty string, got {self.kind!r}")
        object.__setattr__(
            self, "percentile",
            check_fraction(self.percentile, name="percentile"),
        )
        params = self.params
        if isinstance(params, dict):
            pairs = params.items()
        else:
            pairs = tuple(params)
        try:
            pairs = tuple(sorted((str(k), v) for k, v in pairs))
            hash(pairs)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                "params must be a mapping (or (key, value) pairs) with "
                f"hashable values, got {self.params!r}"
            ) from exc
        object.__setattr__(self, "params", pairs)

    def canonical(self) -> tuple:
        """Stable identity tuple used in cache keys."""
        return (self.kind, float(self.percentile), self.params)


@dataclass(frozen=True)
class RoundSpec:
    """One round of the game: (filter, attack, contamination, seed).

    ``filter_percentile`` of ``None`` (or ``0``) disables filtering;
    ``attack`` of ``None`` is the clean baseline.  ``seed`` is the
    round seed from which attack randomness, dataset shuffling and
    victim training are all derived (see
    :func:`repro.experiments.runner.evaluate_configuration`).
    """

    filter_percentile: float | None = None
    attack: AttackSpec | None = None
    poison_fraction: float = 0.2
    seed: int = 0

    def __post_init__(self):
        if self.filter_percentile is not None:
            object.__setattr__(
                self, "filter_percentile",
                check_fraction(self.filter_percentile, name="filter_percentile"),
            )
        if self.attack is not None:
            check_fraction(self.poison_fraction, name="poison_fraction",
                           inclusive_high=False)
        if not isinstance(self.seed, int):
            object.__setattr__(self, "seed", int(self.seed))

    def canonical(self) -> tuple:
        """Normalised identity tuple used in cache keys.

        Normalisations mirror ``evaluate_configuration`` exactly:

        * a filter percentile of ``0`` behaves identically to no
          filter, so both map to ``None``;
        * with no attack the contamination rate is never consulted, so
          clean baselines share one key across ``poison_fraction``
          values (this is what lets e.g. two sweeps at different
          contamination rates reuse each other's clean curves).
        """
        p = self.filter_percentile
        filt = None if p is None or p <= 0.0 else float(p)
        if self.attack is None:
            return (filt, None, None, int(self.seed))
        return (filt, self.attack.canonical(), float(self.poison_fraction),
                int(self.seed))


# -- attack registry -------------------------------------------------------

_ATTACK_BUILDERS: dict[str, Callable] = {}
_ATTACK_PREWARMERS: dict[str, Callable] = {}


def register_attack_builder(kind: str, builder: Callable) -> None:
    """Register ``builder(ctx, spec) -> PoisoningAttack`` for a kind.

    Builders receive the :class:`ExperimentContext` so attacks can use
    context-matched surrogates; they must be deterministic functions of
    ``(ctx, spec)`` — any randomness belongs to the round seed.
    """
    if not callable(builder):
        raise TypeError(f"builder for {kind!r} must be callable")
    _ATTACK_BUILDERS[str(kind)] = builder


def register_attack_prewarmer(kind: str, prewarmer: Callable) -> None:
    """Register ``prewarmer(ctx)`` invoked once per batch for a kind.

    Prewarmers force shared per-context state (cached on the context)
    that every round of the family would otherwise compute for itself —
    e.g. the boundary attack's fitted surrogate direction.  Parallel
    backends call them in the *parent* before shipping the context, so
    the work happens exactly once per batch instead of once per worker.
    """
    if not callable(prewarmer):
        raise TypeError(f"prewarmer for {kind!r} must be callable")
    _ATTACK_PREWARMERS[str(kind)] = prewarmer


def prewarm_context(ctx, specs) -> None:
    """Run each distinct attack kind's prewarmer (if any) on ``ctx``."""
    kinds = {spec.attack.kind for spec in specs if spec.attack is not None}
    for kind in sorted(kinds):
        prewarmer = _ATTACK_PREWARMERS.get(kind)
        if prewarmer is not None:
            prewarmer(ctx)


def materialize_attack(ctx, spec: AttackSpec):
    """Build the live attack object a spec names, in context ``ctx``."""
    try:
        builder = _ATTACK_BUILDERS[spec.kind]
    except KeyError:
        raise ValueError(
            f"unknown attack kind {spec.kind!r}; registered kinds: "
            f"{sorted(_ATTACK_BUILDERS)}"
        ) from None
    return builder(ctx, spec)


def _build_boundary(ctx, spec: AttackSpec):
    return ctx.boundary_attack(float(spec.percentile))


def _prewarm_boundary(ctx):
    kernel = getattr(ctx, "kernel", None)
    if callable(kernel):
        kernel().direction  # forces the one surrogate fit per context


def _build_label_flip(ctx, spec: AttackSpec):
    # Imported lazily so the engine package stays light to import.
    from repro.attacks.label_flip import LabelFlipAttack

    params = dict(spec.params)
    return LabelFlipAttack(strategy=params.get("strategy", "random"))


register_attack_builder("boundary", _build_boundary)
register_attack_prewarmer("boundary", _prewarm_boundary)
register_attack_builder("label-flip", _build_label_flip)
