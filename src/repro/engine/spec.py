"""Declarative round specifications — the engine's unit of work.

A :class:`RoundSpec` names one attack/defend/train/score round of the
game *by content* rather than by code path: which defence (as a
declarative :class:`DefenseSpec`), which attack (an :class:`AttackSpec`),
which victim model (a :class:`VictimSpec`), what contamination rate,
which seed.  Two properties follow:

* **cacheability** — a spec plus a context fingerprint is a complete,
  stable identity for the round's result, so identical rounds are
  never recomputed (see :mod:`repro.engine.cache`);
* **portability** — specs are tiny frozen dataclasses that pickle
  cheaply, so any backend (in-process, process pool, and future
  sharded/async executors) can run them (see
  :mod:`repro.engine.backends`).

Each axis of the scenario space is a registry keyed by the spec's
``kind`` so new attack, defence and victim families plug in without
touching the engine:

* attacks — ``register_attack_builder`` / ``materialize_attack``;
* defences — ``register_defense_builder`` / ``materialize_defense``;
* victims — ``register_victim_builder`` / ``materialize_victim``.

``RoundSpec.filter_percentile`` survives as a constructor convenience:
it canonicalises to ``DefenseSpec("radius", p)``, so drivers written
against the original (filter, attack, fraction, seed) identity keep
working and keep their cache semantics.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable

from repro.utils.validation import check_canonical_params, check_fraction

__all__ = [
    "AttackSpec",
    "DefenseSpec",
    "VictimSpec",
    "RoundSpec",
    "parse_spec_string",
    "parse_attack_spec",
    "parse_defense_spec",
    "parse_victim_spec",
    "register_attack_builder",
    "register_attack_prewarmer",
    "registered_attack_kinds",
    "materialize_attack",
    "register_defense_builder",
    "register_defense_prewarmer",
    "registered_defense_kinds",
    "materialize_defense",
    "register_victim_builder",
    "register_victim_prewarmer",
    "registered_victim_kinds",
    "materialize_victim",
    "prewarm_context",
    "prewarm_all",
]


def _describe(kind: str, percentile: float | None, params: tuple) -> str:
    """Shared human-readable spec label: kind[@pct][param list]."""
    label = kind
    if percentile:
        label += f"@{percentile:.1%}"
    if params:
        label += "[" + ",".join(f"{k}={v}" for k, v in params) + "]"
    return label


@dataclass(frozen=True)
class AttackSpec:
    """Declarative attack identity.

    Parameters
    ----------
    kind:
        Registry key naming the attack family.  Built-in kinds are
        ``"boundary"`` (the paper's optimal radius-targeted attack with
        the context's matched surrogate), ``"label-flip"``,
        ``"random-noise"``, ``"furthest-point"``, ``"targeted"``,
        ``"mixed"`` (a :class:`~repro.attacks.mixed_attack.RadiusAllocation`
        executed as boundary sub-attacks) and ``"bilevel"`` (projected
        gradient-ascent refinement).
    percentile:
        The attack's placement percentile on the shared axis.
        Families without a radius notion (label-flip) ignore it; keep
        the default ``0.0`` so their rounds share cache entries.
    params:
        Extra family-specific parameters as a mapping or ``(key,
        value)`` pairs (e.g. ``{"strategy": "near_boundary"}`` for
        label-flip).  Canonicalised to a sorted tuple so equal
        parameter sets always produce equal cache keys.
    """

    kind: str = "boundary"
    percentile: float = 0.0
    params: tuple = ()

    def __post_init__(self):
        if not isinstance(self.kind, str) or not self.kind:
            raise ValueError(f"kind must be a non-empty string, got {self.kind!r}")
        object.__setattr__(
            self, "percentile",
            check_fraction(self.percentile, name="percentile"),
        )
        object.__setattr__(
            self, "params", check_canonical_params(self.params,
                                                   name="attack params"),
        )

    def canonical(self) -> tuple:
        """Stable identity tuple used in cache keys."""
        return (self.kind, float(self.percentile), self.params)

    def describe(self) -> str:
        """Short human-readable label (for game axes and reports)."""
        return _describe(self.kind, self.percentile, self.params)


@dataclass(frozen=True)
class DefenseSpec:
    """Declarative defence identity.

    Parameters
    ----------
    kind:
        Registry key naming the defence family.  Built-in kinds:

        * ``"radius"`` — the paper's filter: a sphere around the
          clean-data centroid with the radius looked up at
          ``percentile`` in the genuine map.  With no ``params`` this
          is the engine's kernel-served fast path; params
          ``centroid="contaminated"`` or ``per_class=True`` select the
          :class:`~repro.defenses.RadiusFilter` variants.
        * ``"percentile_filter"`` — the operational quantile filter
          computed on the (possibly contaminated) data itself.
        * ``"slab_filter"`` — displacement along the class-centroid
          axis; ``percentile`` is the removed fraction.
        * ``"loss_filter"`` — iterative highest-hinge-loss trimming;
          ``percentile`` is the removed fraction.
        * ``"pca_detector"`` — off-subspace residual trimming;
          ``percentile`` is the removed fraction.
        * ``"knn_sanitizer"`` — neighbourhood label agreement
          (strength via params ``k``/``agreement``; percentile unused).
        * ``"roni"`` — Reject On Negative Impact (params
          ``base_fraction``/``val_fraction``/``tolerance``/``batch_size``;
          its calibration split derives from the round seed).
        * ``"certified"`` — the certificate-backed radius defence
          (:class:`~repro.defenses.CertifiedRadiusDefense`).
        * ``"mixed_defense"`` — a randomised filter strength drawn per
          round from params ``percentiles``/``probabilities`` (the
          draw derives from the round seed).
    percentile:
        The defence's strength on the shared percentile axis (the
        fraction of points it aims to remove / the filter percentile).
        Families parameterised differently (knn, roni, mixed) ignore
        it; keep the default ``0.0`` so their rounds share cache
        entries.
    params:
        Extra family-specific parameters, canonicalised exactly like
        :attr:`AttackSpec.params`.
    """

    kind: str = "radius"
    percentile: float = 0.0
    params: tuple = ()

    def __post_init__(self):
        if not isinstance(self.kind, str) or not self.kind:
            raise ValueError(f"kind must be a non-empty string, got {self.kind!r}")
        object.__setattr__(
            self, "percentile",
            check_fraction(self.percentile, name="percentile"),
        )
        object.__setattr__(
            self, "params", check_canonical_params(self.params,
                                                   name="defense params"),
        )

    @property
    def is_fast_radius(self) -> bool:
        """Whether this is the kernel-served radius filter fast path."""
        return self.kind == "radius" and not self.params

    def canonical(self) -> tuple:
        """Stable identity tuple used in cache keys."""
        return (self.kind, float(self.percentile), self.params)

    def describe(self) -> str:
        """Short human-readable label (for game axes and reports)."""
        return _describe(self.kind, self.percentile, self.params)


@dataclass(frozen=True)
class VictimSpec:
    """Declarative victim-model identity.

    Parameters
    ----------
    kind:
        Registry key naming the victim family.  Built-in kinds:
        ``"svm"`` (the paper's hinge-loss :class:`~repro.ml.LinearSVM`),
        ``"logistic"``, ``"perceptron"``, ``"ridge"`` and
        ``"naive_bayes"``.
    params:
        Hyperparameters for the victim's constructor (e.g.
        ``{"reg": 1e-3, "epochs": 60}`` for the SVM), canonicalised
        exactly like :attr:`AttackSpec.params`.  Seeded trainers
        receive the round's derived model seed at fit time — never put
        a seed in ``params``.
    """

    kind: str = "svm"
    params: tuple = ()

    def __post_init__(self):
        if not isinstance(self.kind, str) or not self.kind:
            raise ValueError(f"kind must be a non-empty string, got {self.kind!r}")
        object.__setattr__(
            self, "params", check_canonical_params(self.params,
                                                   name="victim params"),
        )

    def canonical(self) -> tuple:
        """Stable identity tuple used in cache keys."""
        return (self.kind, self.params)

    def describe(self) -> str:
        """Short human-readable label (for game axes and reports)."""
        return _describe(self.kind, None, self.params)


@dataclass(frozen=True)
class RoundSpec:
    """One round of the game: (defence, attack, victim, contamination, seed).

    ``defense`` of ``None`` disables filtering; ``attack`` of ``None``
    is the clean baseline; ``victim`` of ``None`` trains the context's
    own victim factory.  ``seed`` is the round seed from which attack
    randomness, dataset shuffling, defence randomness and victim
    training are all derived (see
    :func:`repro.experiments.runner.evaluate_configuration`).

    ``filter_percentile`` is kept as a constructor convenience for the
    paper's radius filter: ``RoundSpec(filter_percentile=p, ...)``
    canonicalises to ``defense=DefenseSpec("radius", p)`` (and a plain
    radius defence mirrors itself back into ``filter_percentile``), so
    pre-existing drivers and cache semantics are unchanged.
    """

    filter_percentile: float | None = None
    attack: AttackSpec | None = None
    poison_fraction: float = 0.2
    seed: int = 0
    defense: DefenseSpec | None = None
    victim: VictimSpec | None = None

    def __post_init__(self):
        fp = self.filter_percentile
        if fp is not None:
            fp = check_fraction(fp, name="filter_percentile")
            object.__setattr__(self, "filter_percentile", fp)
        if self.defense is not None:
            if not isinstance(self.defense, DefenseSpec):
                raise TypeError(
                    f"defense must be a DefenseSpec or None, got {self.defense!r}"
                )
            if fp is not None and fp > 0.0:
                raise ValueError(
                    "pass either filter_percentile or defense, not both"
                )
        elif fp is not None and fp > 0.0:
            object.__setattr__(self, "defense", DefenseSpec("radius", fp))
        # A radius filter at percentile 0 removes nothing: normalise to
        # "no defence" so both spellings share one cache entry.
        d = self.defense
        if d is not None and d.is_fast_radius and d.percentile <= 0.0:
            object.__setattr__(self, "defense", None)
            d = None
        # Mirror plain radius defences back into filter_percentile so
        # code written against the original spec keeps reading it.
        if d is not None and d.is_fast_radius:
            object.__setattr__(self, "filter_percentile", float(d.percentile))
        elif d is not None:
            object.__setattr__(self, "filter_percentile", None)
        if self.victim is not None and not isinstance(self.victim, VictimSpec):
            raise TypeError(
                f"victim must be a VictimSpec or None, got {self.victim!r}"
            )
        if self.attack is not None:
            check_fraction(self.poison_fraction, name="poison_fraction",
                           inclusive_high=False)
        if not isinstance(self.seed, int):
            object.__setattr__(self, "seed", int(self.seed))

    def canonical(self) -> tuple:
        """Normalised identity tuple used in cache keys.

        Normalisations mirror ``execute_round`` exactly:

        * no defence (including a radius filter at percentile ``0``,
          already normalised in ``__post_init__``) maps to ``None``;
        * with no attack the contamination rate is never consulted, so
          clean baselines share one key across ``poison_fraction``
          values (this is what lets e.g. two sweeps at different
          contamination rates reuse each other's clean curves);
        * the context's own victim factory (``victim=None``) maps to
          ``None`` — it is covered by the context fingerprint.
        """
        defense = None if self.defense is None else self.defense.canonical()
        victim = None if self.victim is None else self.victim.canonical()
        if self.attack is None:
            return (defense, None, victim, None, int(self.seed))
        return (defense, self.attack.canonical(), victim,
                float(self.poison_fraction), int(self.seed))


# -- spec-string parsing -----------------------------------------------------
# The one shared grammar for naming specs as strings — the CLI's
# ``--defenses``/``--attacks``/``--victim`` arguments and the study
# JSON loader both read it, so a spec spelled on a command line and the
# same spec spelled in a study document can never drift apart.
#
#   defense/attack:  kind[:percentile][:k=v,...]     e.g. radius:0.1,
#                    knn_sanitizer::k=7, label-flip::strategy=near_boundary
#   victim:          kind[:k=v,...]                  e.g. svm:epochs=60
#
# Values parse as Python literals (quoting works: strategy='near boundary');
# bare words stay strings; lists/tuples are canonicalised to tuples at
# every nesting depth so parsed params are always hashable.


def _split_top_level(text: str) -> list[str]:
    """Split on commas not nested inside brackets/parentheses/quotes."""
    parts, depth, current = [], 0, []
    quote = None
    for ch in text:
        if quote is not None:
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        if ch == "," and depth == 0 and quote is None:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return parts


def _tuplify(value):
    """Recursively turn lists/tuples into tuples (hashable params)."""
    if isinstance(value, (list, tuple)):
        return tuple(_tuplify(v) for v in value)
    return value


def _parse_params(text: str) -> dict:
    params = {}
    for pair in _split_top_level(text):
        if not pair.strip():
            continue
        if "=" not in pair:
            raise ValueError(f"bad spec params {text!r}: expected key=value")
        key, value = pair.split("=", 1)
        try:
            parsed = ast.literal_eval(value)
        except (ValueError, SyntaxError):
            parsed = value.strip()  # bare strings (e.g. strategy=near_boundary)
        params[key.strip()] = _tuplify(parsed)
    return params


def parse_spec_string(text: str) -> tuple[str, float, dict]:
    """``kind[:percentile][:k=v,...]`` -> ``(kind, percentile, params)``.

    Raises :class:`ValueError` on an empty kind, a non-numeric
    percentile, or malformed params.  Registry membership is *not*
    checked here — :func:`parse_attack_spec` and friends do that.
    """
    head, _, rest = text.partition(":")
    percentile_part, _, params_part = rest.partition(":")
    kind = head.strip()
    if not kind:
        raise ValueError(f"bad spec {text!r}: empty kind")
    percentile = 0.0
    if percentile_part.strip():
        try:
            percentile = float(percentile_part)
        except ValueError:
            raise ValueError(
                f"bad spec {text!r}: percentile {percentile_part!r} "
                "is not a number") from None
    return kind, percentile, _parse_params(params_part)


def parse_defense_spec(text: str) -> "DefenseSpec | None":
    """A :class:`DefenseSpec` from its string form (``"none"`` -> ``None``).

    Raises :class:`ValueError` for unregistered kinds, bad percentiles
    and malformed params.
    """
    if text.strip() == "none":
        return None
    kind, percentile, params = parse_spec_string(text)
    if kind not in _DEFENSE_BUILDERS:
        raise ValueError(f"unknown defense kind {kind!r}; registered: "
                         f"{registered_defense_kinds()}")
    return DefenseSpec(kind, percentile, params)


def parse_attack_spec(text: str) -> "AttackSpec | None":
    """An :class:`AttackSpec` from its string form (``"clean"`` -> ``None``)."""
    if text.strip() == "clean":
        return None
    kind, percentile, params = parse_spec_string(text)
    if kind not in _ATTACK_BUILDERS:
        raise ValueError(f"unknown attack kind {kind!r}; registered: "
                         f"{registered_attack_kinds()}")
    return AttackSpec(kind, percentile, params)


def parse_victim_spec(text: "str | None") -> "VictimSpec | None":
    """A :class:`VictimSpec` from ``kind[:k=v,...]`` (``None`` passes through)."""
    if text is None:
        return None
    head, _, params_part = text.partition(":")
    kind = head.strip()
    if kind not in _VICTIM_BUILDERS:
        raise ValueError(f"unknown victim kind {kind!r}; registered: "
                         f"{registered_victim_kinds()}")
    return VictimSpec(kind, _parse_params(params_part))


# -- registries -------------------------------------------------------------

_ATTACK_BUILDERS: dict[str, Callable] = {}
_ATTACK_PREWARMERS: dict[str, Callable] = {}
_DEFENSE_BUILDERS: dict[str, Callable] = {}
_DEFENSE_PREWARMERS: dict[str, Callable] = {}
_VICTIM_BUILDERS: dict[str, Callable] = {}
_VICTIM_PREWARMERS: dict[str, Callable] = {}


def register_attack_builder(kind: str, builder: Callable) -> None:
    """Register ``builder(ctx, spec) -> PoisoningAttack`` for a kind.

    Builders receive the :class:`ExperimentContext` so attacks can use
    context-matched surrogates; they must be deterministic functions of
    ``(ctx, spec)`` — any randomness belongs to the round seed.
    """
    if not callable(builder):
        raise TypeError(f"builder for {kind!r} must be callable")
    _ATTACK_BUILDERS[str(kind)] = builder


def register_attack_prewarmer(kind: str, prewarmer: Callable) -> None:
    """Register ``prewarmer(ctx)`` invoked once per batch for a kind.

    Prewarmers force shared per-context state (cached on the context)
    that every round of the family would otherwise compute for itself —
    e.g. the boundary attack's fitted surrogate direction.  Parallel
    backends call them in the *parent* before shipping the context, so
    the work happens exactly once per batch instead of once per worker.
    """
    if not callable(prewarmer):
        raise TypeError(f"prewarmer for {kind!r} must be callable")
    _ATTACK_PREWARMERS[str(kind)] = prewarmer


def register_defense_builder(kind: str, builder: Callable) -> None:
    """Register ``builder(ctx, spec, seed) -> Defense`` for a kind.

    ``seed`` is the round-derived defence seed (``None`` when the
    caller supplies no round); builders of deterministic defences
    ignore it.  Builders must be deterministic functions of
    ``(ctx, spec, seed)``.
    """
    if not callable(builder):
        raise TypeError(f"builder for {kind!r} must be callable")
    _DEFENSE_BUILDERS[str(kind)] = builder


def register_defense_prewarmer(kind: str, prewarmer: Callable) -> None:
    """Register ``prewarmer(ctx)`` invoked once per batch for a kind."""
    if not callable(prewarmer):
        raise TypeError(f"prewarmer for {kind!r} must be callable")
    _DEFENSE_PREWARMERS[str(kind)] = prewarmer


def register_victim_builder(kind: str, builder: Callable) -> None:
    """Register ``builder(ctx, spec) -> factory`` for a victim kind.

    The returned ``factory(seed) -> BaseEstimator`` must be picklable
    (parallel backends ship specs, and workers materialise victims
    locally) and deterministic in ``(spec, seed)``.
    """
    if not callable(builder):
        raise TypeError(f"builder for {kind!r} must be callable")
    _VICTIM_BUILDERS[str(kind)] = builder


def register_victim_prewarmer(kind: str, prewarmer: Callable) -> None:
    """Register ``prewarmer(ctx)`` invoked once per batch for a kind."""
    if not callable(prewarmer):
        raise TypeError(f"prewarmer for {kind!r} must be callable")
    _VICTIM_PREWARMERS[str(kind)] = prewarmer


def registered_attack_kinds() -> list[str]:
    """Sorted names of all registered attack families."""
    return sorted(_ATTACK_BUILDERS)


def registered_defense_kinds() -> list[str]:
    """Sorted names of all registered defence families."""
    return sorted(_DEFENSE_BUILDERS)


def registered_victim_kinds() -> list[str]:
    """Sorted names of all registered victim families."""
    return sorted(_VICTIM_BUILDERS)


def prewarm_context(ctx, specs) -> None:
    """Run each distinct kind's prewarmer (if any) on ``ctx``.

    Covers all three spec axes: attack, defence and victim kinds that
    appear anywhere in ``specs``.
    """
    attacks = {spec.attack.kind for spec in specs if spec.attack is not None}
    defenses = {spec.defense.kind for spec in specs if spec.defense is not None}
    victims = {spec.victim.kind for spec in specs if spec.victim is not None}
    for kinds, registry in ((attacks, _ATTACK_PREWARMERS),
                            (defenses, _DEFENSE_PREWARMERS),
                            (victims, _VICTIM_PREWARMERS)):
        for kind in sorted(kinds):
            prewarmer = registry.get(kind)
            if prewarmer is not None:
                prewarmer(ctx)


def prewarm_all(ctx) -> None:
    """Run *every* registered prewarmer (all three registries) on ``ctx``.

    Used by long-lived executors that cannot see their future specs —
    a cluster shard server warms the context once at startup, before
    packing it into the per-host shared-memory segment, so no chunk
    ever pays for the surrogate fit or the clean geometry.
    """
    for registry in (_ATTACK_PREWARMERS, _DEFENSE_PREWARMERS,
                     _VICTIM_PREWARMERS):
        for kind in sorted(registry):
            registry[kind](ctx)


def materialize_attack(ctx, spec: AttackSpec):
    """Build the live attack object a spec names, in context ``ctx``."""
    try:
        builder = _ATTACK_BUILDERS[spec.kind]
    except KeyError:
        raise ValueError(
            f"unknown attack kind {spec.kind!r}; registered kinds: "
            f"{registered_attack_kinds()}"
        ) from None
    return builder(ctx, spec)


def materialize_defense(ctx, spec: DefenseSpec, *, seed: int | None = None):
    """Build the live defence object a spec names, in context ``ctx``.

    ``seed`` is the round-derived defence seed for families with
    internal randomness (roni's calibration split, mixed_defense's
    draw); deterministic families ignore it.
    """
    try:
        builder = _DEFENSE_BUILDERS[spec.kind]
    except KeyError:
        raise ValueError(
            f"unknown defense kind {spec.kind!r}; registered kinds: "
            f"{registered_defense_kinds()}"
        ) from None
    return builder(ctx, spec, seed)


def materialize_victim(ctx, spec: VictimSpec):
    """Build the picklable victim factory a spec names."""
    try:
        builder = _VICTIM_BUILDERS[spec.kind]
    except KeyError:
        raise ValueError(
            f"unknown victim kind {spec.kind!r}; registered kinds: "
            f"{registered_victim_kinds()}"
        ) from None
    return builder(ctx, spec)


# -- built-in attack families ----------------------------------------------
# All builders import lazily so the engine package stays light to import.


def _build_boundary(ctx, spec: AttackSpec):
    return ctx.boundary_attack(float(spec.percentile))


def _prewarm_boundary(ctx):
    kernel = getattr(ctx, "kernel", None)
    if callable(kernel):
        kernel().direction  # forces the one surrogate fit per context


def _build_label_flip(ctx, spec: AttackSpec):
    from repro.attacks.label_flip import LabelFlipAttack

    params = dict(spec.params)
    return LabelFlipAttack(strategy=params.get("strategy", "random"))


def _build_random_noise(ctx, spec: AttackSpec):
    from repro.attacks.random_noise import RandomNoiseAttack

    params = dict(spec.params)
    return RandomNoiseAttack(
        target_percentile=float(spec.percentile),
        fill=bool(params.get("fill", False)),
        centroid_method=params.get("centroid_method", ctx.centroid_method),
    )


def _build_furthest_point(ctx, spec: AttackSpec):
    from repro.attacks.furthest_point import FurthestPointAttack

    params = dict(spec.params)
    return FurthestPointAttack(
        max_percentile=float(spec.percentile),
        centroid_method=params.get("centroid_method", ctx.centroid_method),
    )


def _build_targeted(ctx, spec: AttackSpec):
    from repro.attacks.targeted import TargetedClassAttack

    params = dict(spec.params)
    kwargs = {}
    if "spread" in params:
        kwargs["spread"] = float(params["spread"])
    return TargetedClassAttack(
        victim_label=int(params.get("victim_label", 1)),
        target_percentile=float(spec.percentile),
        centroid_method=params.get("centroid_method", ctx.centroid_method),
        **kwargs,
    )


def _build_mixed(ctx, spec: AttackSpec):
    from repro.attacks.mixed_attack import MixedAllocationAttack, RadiusAllocation

    params = dict(spec.params)
    percentiles = params.get("percentiles")
    if percentiles is None:
        raise ValueError(
            'the "mixed" attack kind requires params={"percentiles": (...)} '
            "naming the allocation's radii"
        )
    counts = params.get("counts")
    if counts is not None:
        allocation = RadiusAllocation(percentiles=tuple(percentiles),
                                      counts=tuple(counts))
    else:
        # Placeholder budget: MixedAllocationAttack rescales the
        # allocation to the actual n_poison at generate() time.
        allocation = RadiusAllocation.spread(
            percentiles, 100, weights=params.get("weights"))
    return MixedAllocationAttack(
        allocation,
        surrogate=ctx.attack_surrogate(),
        centroid_method=params.get("centroid_method", ctx.centroid_method),
    )


def _build_bilevel(ctx, spec: AttackSpec):
    from repro.attacks.bilevel import BilevelGradientAttack

    params = dict(spec.params)
    kwargs = {}
    for name, cast in (("n_outer", int), ("step_size", float),
                       ("val_fraction", float)):
        if name in params:
            kwargs[name] = cast(params[name])
    return BilevelGradientAttack(
        target_percentile=float(spec.percentile),
        centroid_method=params.get("centroid_method", ctx.centroid_method),
        **kwargs,
    )


register_attack_builder("boundary", _build_boundary)
register_attack_prewarmer("boundary", _prewarm_boundary)
register_attack_builder("label-flip", _build_label_flip)
register_attack_builder("random-noise", _build_random_noise)
register_attack_builder("furthest-point", _build_furthest_point)
register_attack_builder("targeted", _build_targeted)
register_attack_builder("mixed", _build_mixed)
register_attack_prewarmer("mixed", _prewarm_boundary)
register_attack_builder("bilevel", _build_bilevel)


# -- built-in defence families ----------------------------------------------


def _build_radius(ctx, spec: DefenseSpec, seed):
    """The paper's filter as a live object (the variant path).

    Without params this constructs exactly what the engine's kernel
    fast path computes — radius from the genuine map, sphere centred on
    the clean-data centroid — so spec-path and object-path rounds are
    bit-identical.  Params select the standalone variants:
    ``centroid="contaminated"`` re-estimates the centre from the data
    the filter receives; ``per_class=True`` uses per-class spheres.
    """
    from repro.data.geometry import compute_centroid
    from repro.defenses.radius_filter import RadiusFilter

    params = dict(spec.params)
    method = params.get("centroid_method", ctx.centroid_method)
    radius = ctx.radius_map.radius(float(spec.percentile))
    per_class = bool(params.get("per_class", False))
    centroid = None
    if params.get("centroid", "clean") == "clean" and not per_class:
        centroid = compute_centroid(ctx.X_train, method=method)
    return RadiusFilter(radius, centroid_method=method, per_class=per_class,
                        centroid=centroid)


def _prewarm_radius(ctx):
    kernel = getattr(ctx, "kernel", None)
    if callable(kernel):
        kernel()  # forces the clean geometry once per context


def _build_percentile_filter(ctx, spec: DefenseSpec, seed):
    from repro.defenses.percentile_filter import PercentileFilter

    params = dict(spec.params)
    return PercentileFilter(
        float(spec.percentile),
        centroid_method=params.get("centroid_method", ctx.centroid_method),
    )


def _build_slab_filter(ctx, spec: DefenseSpec, seed):
    """The slab defence; ``axis="clean"`` pins it to the clean geometry.

    By default class centroids are re-estimated from the contaminated
    data each round (the operational defence).  With params
    ``axis="clean"`` the filter is pinned to the *clean* per-class
    centroids served by the context's round kernel — genuine rows'
    slab scores are then cached once per context and every round only
    scores its poison rows (bit-identical to scoring from scratch; the
    slab counterpart of the radius filter's kernel fast path).
    """
    from repro.defenses.slab_filter import SlabFilter

    params = dict(spec.params)
    axis = params.get("axis", "data")
    if axis not in ("data", "clean"):
        raise ValueError(
            f'slab_filter params axis={axis!r} is not "data" or "clean"')
    kwargs = {}
    if axis == "clean":
        # The clean axis *is* the kernel's geometry, which is computed
        # with the context's own centroid method — a different
        # centroid_method here would cache a result under a key that
        # misdescribes it.  Refuse rather than silently substitute.
        method = params.get("centroid_method")
        if method is not None and method != ctx.centroid_method:
            raise ValueError(
                f'slab_filter axis="clean" uses the context\'s clean '
                f"geometry (centroid_method={ctx.centroid_method!r}); "
                f"it cannot be combined with centroid_method={method!r}")
        kernel = getattr(ctx, "kernel", None)
        pair = kernel().class_centroids if callable(kernel) else None
        if pair is None:
            # Same refusal logic: degrading to per-round contaminated
            # centroids would change the defence's semantics under a
            # cache key that promised the clean axis.
            raise ValueError(
                'slab_filter axis="clean" needs the context\'s clean '
                "per-class geometry, which is degenerate here (one "
                "class, or coincident class centroids)")
        kwargs["centroids"] = pair
    return SlabFilter(
        remove_fraction=float(spec.percentile),
        centroid_method=params.get("centroid_method", ctx.centroid_method),
        **kwargs,
    )


def _prewarm_slab(ctx):
    kernel = getattr(ctx, "kernel", None)
    if callable(kernel):
        kernel().clean_slab_scores  # forces the clean slab geometry once


def _build_knn_sanitizer(ctx, spec: DefenseSpec, seed):
    from repro.defenses.knn_sanitizer import KNNSanitizer

    params = dict(spec.params)
    return KNNSanitizer(
        k=int(params.get("k", 10)),
        agreement=float(params.get("agreement", 0.5)),
        chunk_size=int(params.get("chunk_size", 512)),
    )


def _build_roni(ctx, spec: DefenseSpec, seed):
    from repro.defenses.roni import RONIDefense

    params = dict(spec.params)
    kwargs = {}
    for name, cast in (("base_fraction", float), ("val_fraction", float),
                       ("tolerance", float), ("batch_size", int)):
        if name in params:
            kwargs[name] = cast(params[name])
    return RONIDefense(seed=0 if seed is None else seed, **kwargs)


def _build_loss_filter(ctx, spec: DefenseSpec, seed):
    from repro.defenses.loss_filter import LossFilter

    params = dict(spec.params)
    kwargs = {}
    if "n_rounds" in params:
        kwargs["n_rounds"] = int(params["n_rounds"])
    return LossFilter(float(spec.percentile), **kwargs)


def _build_pca_detector(ctx, spec: DefenseSpec, seed):
    from repro.defenses.pca_detector import PCADetector

    params = dict(spec.params)
    return PCADetector(
        n_components=int(params.get("n_components", 5)),
        remove_fraction=float(spec.percentile),
        robust=bool(params.get("robust", True)),
    )


def _build_certified(ctx, spec: DefenseSpec, seed):
    from repro.defenses.certified import CertifiedRadiusDefense

    params = dict(spec.params)
    kwargs = {}
    for name, cast in (("eps", float), ("reg", float), ("n_iter", int),
                       ("step", float)):
        if name in params:
            kwargs[name] = cast(params[name])
    return CertifiedRadiusDefense(
        float(spec.percentile),
        centroid_method=params.get("centroid_method", ctx.centroid_method),
        **kwargs,
    )


def _build_mixed_defense(ctx, spec: DefenseSpec, seed):
    from repro.defenses.mixed_defense import MixedDefenseFilter

    params = dict(spec.params)
    percentiles = params.get("percentiles")
    probabilities = params.get("probabilities")
    if percentiles is None or probabilities is None:
        raise ValueError(
            'the "mixed_defense" kind requires params='
            '{"percentiles": (...), "probabilities": (...)}'
        )
    return MixedDefenseFilter(
        tuple(percentiles), tuple(probabilities), seed=seed,
        centroid_method=params.get("centroid_method", ctx.centroid_method),
    )


register_defense_builder("radius", _build_radius)
register_defense_prewarmer("radius", _prewarm_radius)
register_defense_builder("percentile_filter", _build_percentile_filter)
register_defense_builder("slab_filter", _build_slab_filter)
register_defense_prewarmer("slab_filter", _prewarm_slab)
register_defense_builder("knn_sanitizer", _build_knn_sanitizer)
register_defense_builder("roni", _build_roni)
register_defense_builder("loss_filter", _build_loss_filter)
register_defense_builder("pca_detector", _build_pca_detector)
register_defense_builder("certified", _build_certified)
register_defense_builder("mixed_defense", _build_mixed_defense)


# -- built-in victim families ----------------------------------------------


def _build_victim_factory(ctx, spec: VictimSpec):
    from repro.experiments.runner import VictimFactory

    return VictimFactory(spec.kind, spec.params)


for _kind in ("svm", "logistic", "perceptron", "ridge", "naive_bayes"):
    register_victim_builder(_kind, _build_victim_factory)
del _kind
