"""Experiment orchestration: the code behind every table and figure.

* :mod:`repro.experiments.runner` — seeded end-to-end pipeline
  (dataset → attack → filter → train → score).
* :mod:`repro.experiments.payoff_sweep` — the Figure-1 pure-strategy
  sweep and the Table-1 mixed-strategy evaluation.
* :mod:`repro.experiments.results` — serialisable result records.
* :mod:`repro.experiments.reporting` — ASCII tables/series matching the
  paper's presentation.
"""

from repro.experiments.runner import (
    ExperimentContext,
    SVMVictimFactory,
    VictimFactory,
    make_spambase_context,
    make_synthetic_context,
    evaluate_configuration,
    EvaluationOutcome,
)
from repro.experiments.payoff_sweep import (
    run_pure_strategy_sweep,
    evaluate_mixed_defense,
    run_table1_experiment,
)
from repro.experiments.empirical_game import (
    build_empirical_game,
    solve_empirical_game,
    EmpiricalGameResult,
    build_cross_family_game,
    solve_cross_family_game,
    CrossGameResult,
)
from repro.experiments.multi_seed import (
    run_multi_seed_sweep,
    aggregate_metric,
    AggregatedSweep,
)
from repro.experiments.results import (
    PureSweepResult,
    MixedStrategyResult,
    Table1Row,
    MixedEvalResult,
    GridResult,
    results_to_json,
    results_from_json,
    result_to_payload,
    result_from_payload,
)
from repro.experiments.reporting import (
    ascii_table,
    format_pure_sweep,
    format_table1,
    format_engine_stats,
    format_cross_game,
    format_empirical_game,
    format_mixed_eval,
    format_aggregated_sweep,
    format_grid_result,
)

__all__ = [
    "ExperimentContext",
    "SVMVictimFactory",
    "VictimFactory",
    "make_spambase_context",
    "make_synthetic_context",
    "evaluate_configuration",
    "EvaluationOutcome",
    "run_pure_strategy_sweep",
    "evaluate_mixed_defense",
    "run_table1_experiment",
    "build_empirical_game",
    "solve_empirical_game",
    "EmpiricalGameResult",
    "build_cross_family_game",
    "solve_cross_family_game",
    "CrossGameResult",
    "run_multi_seed_sweep",
    "aggregate_metric",
    "AggregatedSweep",
    "PureSweepResult",
    "MixedStrategyResult",
    "Table1Row",
    "MixedEvalResult",
    "GridResult",
    "results_to_json",
    "results_from_json",
    "result_to_payload",
    "result_from_payload",
    "ascii_table",
    "format_pure_sweep",
    "format_table1",
    "format_engine_stats",
    "format_cross_game",
    "format_empirical_game",
    "format_mixed_eval",
    "format_aggregated_sweep",
    "format_grid_result",
]
