"""Shared plumbing for the legacy driver deprecation shims."""

from __future__ import annotations

import warnings

__all__ = ["warn_driver_deprecated"]


def warn_driver_deprecated(old: str, builder: str) -> None:
    """One DeprecationWarning per legacy driver call, pointing at the
    study-builder replacement.  ``stacklevel=3`` names the *caller* of
    the shim (caller -> shim -> here)."""
    warnings.warn(
        f"{old}() is deprecated: build a StudySpec with "
        f"repro.study.studies.{builder}() and submit it to "
        f"repro.study.run_study() (results are bit-identical)",
        DeprecationWarning, stacklevel=3)
