"""Command-line entry point: run studies, regenerate the paper's artefacts.

Usage::

    python -m repro run <study.json | figure1 | table1 | empirical-game |
                         cross-game | multi-seed | mixed-eval | grid>
                        [--set key=value ...] [--out result.json]
                        [--archive-dir DIR] [--expect-cached]
    python -m repro describe <study.json | name> [--set key=value ...]
    python -m repro report <result.json>

    python -m repro figure1 [--n-samples N] [--seed S]
    python -m repro table1  [--n-radii 2 3] [--seed S]
    python -m repro empirical-game [--seed S]
    python -m repro cross-game [--defenses SPEC...] [--attacks SPEC...]
                               [--victim SPEC]
    python -m repro paper-table1
    python -m repro proposition1 [--seed S]
    python -m repro repro-cache {info,prune} --cache-dir DIR
    python -m repro repro-cluster serve [--port P] [--jobs N]
    python -m repro serve --archive-dir DIR [--port P] [--workers N]
    python -m repro repro-queue {list,show,cancel,nudge} [FP]
                               --archive-dir DIR
    python -m repro archive ls DIR

(``python -m repro.experiments.cli`` remains an alias of
``python -m repro``.)

The study surface is the primary one: ``run`` accepts either a study
JSON document (see :mod:`repro.study`) or a named builder with ``--set``
overrides — ``repro run figure1 --set fractions=0:0.2:9`` sweeps nine
contamination rates; ``describe`` prints the expanded grid, exact round
counts and predicted cache hits *without running anything*; ``report``
re-renders an archived :class:`~repro.study.StudyResult` exactly as the
live run printed it.  The named experiment commands (``figure1`` ...)
are stable conveniences that build the equivalent study internally.

``--set`` values parse as Python literals; ``a:b:n`` expands to ``n``
evenly spaced values from ``a`` to ``b``; comma-separated values form
tuples; semicolon-separated values form tuples of spec strings
(``--set "defenses=radius:0.1;slab_filter:0.1"``).

Execution is controlled by the engine flags shared across commands:
``--backend serial|process|cluster`` and ``--jobs N`` choose how
rounds run (``cluster`` shards them across ``--shards host:port,...``
servers, autospawning localhost shards when none are given),
``--cache-dir DIR`` persists results on disk (an equal-seed rerun is
then served from cache), ``--no-cache`` disables caching.  Results are
bit-identical whatever the backend.  Long sweeps stream per-round
progress to stderr through the engine's ``evaluate_stream`` machinery
(on by default on a terminal; ``--progress`` / ``--no-progress``
force it).

Spec strings (``cross-game``, study documents) read
``kind[:percentile][:k=v,...]``, e.g. ``radius:0.1``,
``slab_filter:0.15``, ``knn_sanitizer::k=7``,
``label-flip::strategy=near_boundary``; victims read ``kind[:k=v,...]``
such as ``logistic`` or ``svm:epochs=60``.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys

import numpy as np


def _parse_defense_arg(text: str):
    from repro.engine import parse_defense_spec

    try:
        return parse_defense_spec(text)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _parse_attack_arg(text: str):
    from repro.engine import parse_attack_spec

    try:
        return parse_attack_spec(text)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _parse_victim_arg(text: str | None):
    from repro.engine import parse_victim_spec

    try:
        return parse_victim_spec(text)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _make_engine(args):
    from repro.engine import EvaluationEngine

    if getattr(args, "telemetry_dir", None):
        from repro import telemetry

        # configure() also exports REPRO_TELEMETRY_DIR, so autospawned
        # localhost shards and pool workers inherit the sink.
        telemetry.configure(args.telemetry_dir)
    if getattr(args, "faults", None) is not None:
        from repro.resilience import faults

        try:
            faults.install(args.faults)
        except ValueError as exc:
            raise SystemExit(f"--faults: {exc}") from None
    backend = args.backend or "serial"
    if backend == "cluster" and getattr(args, "shards", None):
        # Build the backend directly so --shards needs no env detour.
        from repro.cluster.backend import ClusterBackend, parse_shard_addresses

        try:
            backend = ClusterBackend(
                jobs=args.jobs, shards=parse_shard_addresses(args.shards))
        except ValueError as exc:
            raise SystemExit(str(exc))
    try:
        return EvaluationEngine(
            backend,
            jobs=args.jobs,
            cache=not args.no_cache,
            cache_dir=args.cache_dir,
            cache_max_entries=args.cache_max_entries,
        )
    except ValueError as exc:  # unknown backend, --jobs 0, ...
        raise SystemExit(str(exc))


class _ProgressPrinter:
    """Streaming round counter for long sweeps (one ``\\r`` line).

    The callback face of ``EvaluationEngine.evaluate_batch(...,
    progress=)``: every resolved round (cache hits first, then backend
    completions as they land) redraws ``rounds done/total`` on stderr.
    """

    def __init__(self, label: str):
        self.label = label
        self._dirty = False

    def __call__(self, done: int, total: int) -> None:
        print(f"\r{self.label}: round {done}/{total}", end="",
              file=sys.stderr, flush=True)
        self._dirty = True
        if done >= total:
            self.finish()

    def finish(self) -> None:
        if self._dirty:
            print(file=sys.stderr, flush=True)
            self._dirty = False


def _progress_for(args, label: str):
    """A live progress callback, or ``None`` when not wanted.

    ``--progress`` forces it on, ``--no-progress`` off; the default
    streams only when stderr is a terminal (reports stay clean when
    piped).
    """
    if getattr(args, "no_progress", False):
        return None
    if getattr(args, "progress", False) or sys.stderr.isatty():
        return _ProgressPrinter(label)
    return None


def _print_engine_stats(engine) -> None:
    from repro.experiments.reporting import format_engine_stats

    print()
    print(format_engine_stats(engine))


def _context_spec(args):
    from repro.study import ContextSpec

    return ContextSpec(name="spambase", seed=args.seed,
                       n_samples=args.n_samples)


def _run_named_study(args, spec, label):
    """Run a CLI command's study and return its result."""
    from repro.study import run_study

    engine = _make_engine(args)
    result = run_study(spec, engine=engine,
                       progress=_progress_for(args, label))
    return result, engine


# -- the study surface -------------------------------------------------------


def _parse_set_value(text: str):
    """One ``--set`` value: literal, range ``a:b:n``, or a tuple.

    ``;`` separates spec strings (which may themselves contain commas
    and colons); otherwise top-level commas — split bracket- and
    quote-aware, with the same splitter the spec grammar itself uses,
    so ``defenses=knn_sanitizer::ks=[1,2]`` stays one spec — form
    tuples, and ``a:b:n`` expands to ``n`` evenly spaced floats.
    """
    from repro.engine.spec import _split_top_level

    t = text.strip()
    if t.lower() in ("none", "null"):
        return None
    if ";" in t:
        return tuple(part.strip() for part in t.split(";") if part.strip())
    parts = [part for part in _split_top_level(t) if part.strip()]
    if len(parts) > 1:
        return tuple(_parse_set_scalar(part) for part in parts)
    return _parse_set_scalar(t)


def _parse_set_scalar(text: str):
    t = text.strip()
    parts = t.split(":")
    if len(parts) == 3:
        try:
            lo, hi, n = float(parts[0]), float(parts[1]), int(parts[2])
        except ValueError:
            pass
        else:
            if n < 1:
                raise SystemExit(f"bad range {t!r}: count must be >= 1")
            return tuple(float(v) for v in np.linspace(lo, hi, n))
    try:
        return ast.literal_eval(t)
    except (ValueError, SyntaxError):
        return t


_CONTEXT_KEYS = ("context", "seed", "n_samples")


def _study_from_args(args):
    """The study named by ``args.study``: a JSON document or a builder."""
    from repro.study import ContextSpec, build, study_from_json

    target = args.study
    overrides = {}
    for item in args.set or ():
        if "=" not in item:
            raise SystemExit(f"bad --set {item!r}: expected key=value")
        key, value = item.split("=", 1)
        overrides[key.strip().replace("-", "_")] = _parse_set_value(value)

    # A study *document* is a real file or something that can only be a
    # path (.json suffix, path separator) — a stray directory named
    # like a builder (e.g. an output dir called "figure1") must not
    # shadow the named study.
    if os.path.isfile(target) or target.endswith(".json") \
            or os.sep in target:
        if overrides:
            raise SystemExit(
                "--set applies to named studies (e.g. 'repro run figure1 "
                "--set seed=3'); edit the JSON document instead")
        try:
            return study_from_json(target)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot load study {target!r}: {exc}")

    context_kwargs = {}
    name = overrides.pop("context", "spambase")
    for key in ("seed", "n_samples"):
        if key in overrides:
            context_kwargs[key] = overrides.pop(key)
    try:
        context = ContextSpec(name=str(name), **context_kwargs)
        return build(target, context=context, **overrides)
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"cannot build study {target!r}: {exc}")


def _engine_flags_untouched(args) -> bool:
    """Whether the caller left every engine flag unset.

    ``--backend`` parses with a ``None`` default precisely so an
    explicit ``--backend serial`` is distinguishable here — it must
    override a study document's EngineConfig like any other flag.
    """
    return (args.backend is None and args.jobs is None
            and getattr(args, "shards", None) is None
            and args.cache_dir is None and not args.no_cache
            and args.cache_max_entries is None)


def _study_engine(args, spec):
    """The engine a study command should use.

    Explicit CLI flags win; otherwise a study document's own
    :class:`~repro.study.EngineConfig` is honoured (so ``repro run
    study.json`` really runs with the placement/cache the document
    declares); otherwise the flag defaults build a plain serial engine.
    """
    if spec.engine is not None and _engine_flags_untouched(args):
        return spec.engine.build()
    return _make_engine(args)


def cmd_run(args) -> int:
    from repro.study import run_study

    spec = _study_from_args(args)
    engine = _study_engine(args, spec)
    batches_before = len(engine.batch_log)
    try:
        result = run_study(spec, engine=engine,
                           progress=_progress_for(args, f"run:{spec.kind}"),
                           archive_dir=args.archive_dir, force=args.force,
                           resume=args.resume,
                           checkpoint_every=args.checkpoint_every)
    except ValueError as exc:  # unknown context maker, invalid grid, ...
        raise SystemExit(f"cannot run study: {exc}") from None
    fresh = len(engine.batch_log) > batches_before
    print(result.render())
    if fresh:
        _print_engine_stats(engine)
    else:
        print("\n(served from the study archive; no rounds were submitted)")
    if args.out:
        result.to_json(args.out)
        print(f"\nresult written to {args.out}")
    # An archive-served result ran nothing here (its rounds_computed is
    # the original run's history); the gate judges this invocation only.
    if args.expect_cached and fresh and result.rounds_computed > 0:
        raise SystemExit(
            f"--expect-cached: {result.rounds_computed} rounds were "
            f"computed (expected every round to be served from cache)")
    return 0


def cmd_describe(args) -> int:
    from repro.study import describe_study, format_study_description

    spec = _study_from_args(args)
    engine = _study_engine(args, spec)
    try:
        description = describe_study(spec, engine=engine)
    except ValueError as exc:
        raise SystemExit(f"cannot describe study: {exc}") from None
    print(format_study_description(description))
    return 0


def cmd_report(args) -> int:
    from repro.study import study_result_from_json

    try:
        result = study_result_from_json(args.result)
    except (OSError, ValueError, KeyError) as exc:
        raise SystemExit(f"cannot load study result {args.result!r}: {exc}")
    print(result.render())
    if getattr(args, "telemetry", False):
        from repro.experiments.reporting import format_telemetry_summary

        summary = result.extras.get("telemetry")
        print()
        if summary is None:
            print("(no telemetry in this result — run the study with "
                  "--telemetry-dir or REPRO_TELEMETRY_DIR armed)")
        else:
            print(format_telemetry_summary(summary))
    return 0


def cmd_trace(args) -> int:
    from repro.telemetry.viewer import render_trace

    try:
        print(render_trace(args.trace_dir,
                           metrics=not args.no_metrics))
    except FileNotFoundError as exc:
        raise SystemExit(str(exc))
    return 0


# -- the named experiment commands ------------------------------------------


def cmd_figure1(args) -> int:
    from repro.experiments.reporting import format_pure_sweep
    from repro.experiments.results import results_to_json
    from repro.study import studies

    spec = studies.figure1(context=_context_spec(args),
                           poison_fraction=args.poison_fraction,
                           n_repeats=args.repeats,
                           victim=_parse_victim_arg(args.victim))
    result, engine = _run_named_study(args, spec, "figure1")
    sweep = result.payload_object()
    print(format_pure_sweep(sweep))
    _print_engine_stats(engine)
    if args.json:
        results_to_json(sweep, args.json)
        print(f"\nresult written to {args.json}")
    return 0


def cmd_table1(args) -> int:
    from repro.experiments.reporting import format_table1
    from repro.experiments.results import results_to_json
    from repro.study import studies

    spec = studies.table1(context=_context_spec(args),
                          n_radii=tuple(args.n_radii),
                          poison_fraction=args.poison_fraction,
                          n_repeats=args.repeats,
                          victim=_parse_victim_arg(args.victim))
    result, engine = _run_named_study(args, spec, "table1")
    rows = result.payload_object()["rows"]
    print(format_table1(rows))
    _print_engine_stats(engine)
    if args.json:
        results_to_json(rows[0], args.json)
        print(f"\nfirst row written to {args.json}")
    return 0


def cmd_empirical_game(args) -> int:
    from repro.experiments.reporting import format_empirical_game
    from repro.study import studies

    spec = studies.empirical_game(context=_context_spec(args),
                                  poison_fraction=args.poison_fraction,
                                  n_repeats=args.repeats,
                                  victim=_parse_victim_arg(args.victim))
    result, engine = _run_named_study(args, spec, "empirical-game")
    print(format_empirical_game(result.payload_object()))
    _print_engine_stats(engine)
    return 0


def cmd_cross_game(args) -> int:
    from repro.experiments.reporting import format_cross_game
    from repro.experiments.results import results_to_json
    from repro.study import studies

    defenses = [_parse_defense_arg(d) for d in args.defenses]
    attacks = [_parse_attack_arg(a) for a in args.attacks]
    spec = studies.cross_game(context=_context_spec(args),
                              defenses=defenses, attacks=attacks,
                              poison_fraction=args.poison_fraction,
                              n_repeats=args.repeats,
                              victim=_parse_victim_arg(args.victim))
    result, engine = _run_named_study(args, spec, "cross-game")
    cross = result.payload_object()
    print(format_cross_game(cross))
    _print_engine_stats(engine)
    if args.json:
        results_to_json(cross, args.json)
        print(f"\nresult written to {args.json}")
    return 0


def _shard_cache_info(args) -> int:
    """Probe running shards for their cache-tier stats (repro-cache
    info --shard).  Uses the pre-handshake ``cache-info`` message, so
    it needs no context — only the address (and the secret, if the
    fleet has one)."""
    import socket as socketlib

    from repro.cluster import protocol
    from repro.cluster.backend import parse_shard_addresses
    from repro.engine import cache_schema_version

    secret = args.secret or os.environ.get("REPRO_CLUSTER_SECRET") or None
    schema = cache_schema_version()
    failures = 0
    for host, port in parse_shard_addresses(args.shard):
        name = f"{host}:{port}"
        try:
            with socketlib.create_connection((host, port),
                                             timeout=10.0) as sock:
                protocol.send_message(
                    sock, protocol.cache_info(schema, secret=secret))
                reply = protocol.recv_message(sock)
        except (OSError, protocol.ProtocolError) as exc:
            print(f"{name}: unreachable ({exc})")
            failures += 1
            continue
        if reply.get("type") != "cache-report":
            print(f"{name}: refused "
                  f"({reply.get('reason', reply.get('type'))})")
            failures += 1
            continue
        stats = reply.get("stats", {})
        if not stats.get("enabled"):
            print(f"{name}: cache tier disabled "
                  f"(schema v{stats.get('schema_version')})")
            continue
        print(f"{name}: {stats.get('entry_count', 0)} entries, "
              f"{stats.get('total_bytes', 0)} bytes on disk, "
              f"schema v{stats.get('schema_version')}, "
              f"{stats.get('hits', 0)} hits / "
              f"{stats.get('stores', 0)} stores")
    return 1 if failures else 0


def cmd_repro_cache(args) -> int:
    from repro.engine import prune_cache_dir, write_manifest

    if getattr(args, "shard", None):
        if args.action != "info":
            raise SystemExit("--shard supports the info action only "
                             "(prune a shard's cache on its own host)")
        return _shard_cache_info(args)
    if not args.cache_dir:
        raise SystemExit("one of --cache-dir or --shard is required")
    if not os.path.isdir(args.cache_dir):
        raise SystemExit(f"no such cache directory: {args.cache_dir}")
    if args.action == "prune":
        summary = prune_cache_dir(args.cache_dir)
        print(f"pruned {summary['removed']} stale entries; "
              f"{summary['entry_count']} remain "
              f"({summary['total_bytes']} bytes, "
              f"schema v{summary['schema_version']})")
    else:  # info — refresh so external writes/deletes are reflected
        manifest = write_manifest(args.cache_dir)
        print(f"schema version: {manifest['schema_version']}")
        print(f"entries:        {manifest['entry_count']}")
        print(f"total bytes:    {manifest['total_bytes']}")
        for fp in manifest.get("studies", ()):
            print(f"study:          {fp}")
    return 0


def _shard_fleet_stats(args) -> int:
    """Probe running shards for live telemetry (repro-cluster stats).

    Uses the pre-handshake ``telemetry-info`` message — like
    ``repro-cache info --shard`` it needs only addresses (and the
    fleet's secret).  Old shards that predate the verb answer
    ``reject``; they are reported as not supporting telemetry rather
    than failing the sweep."""
    import socket as socketlib

    from repro.cluster import protocol
    from repro.cluster.backend import parse_shard_addresses
    from repro.engine import cache_schema_version

    addresses = args.shards or os.environ.get("REPRO_CLUSTER_SHARDS")
    if not addresses:
        raise SystemExit("stats needs --shards host:port[,host:port...] "
                         "(or REPRO_CLUSTER_SHARDS)")
    secret = args.secret or os.environ.get("REPRO_CLUSTER_SECRET") or None
    schema = cache_schema_version()
    failures = 0
    for host, port in parse_shard_addresses(addresses):
        name = f"{host}:{port}"
        try:
            with socketlib.create_connection((host, port),
                                             timeout=10.0) as sock:
                protocol.send_message(
                    sock, protocol.telemetry_info(schema, secret=secret))
                reply = protocol.recv_message(sock)
        except (OSError, protocol.ProtocolError) as exc:
            print(f"{name}: unreachable ({exc})")
            failures += 1
            continue
        if reply.get("type") != "telemetry-report":
            # An old shard rejects the unknown probe ("expected
            # hello..."); that is "no telemetry support", not an error.
            print(f"{name}: no telemetry support "
                  f"({reply.get('reason', reply.get('type'))})")
            continue
        stats = reply.get("metrics", {})
        counters = stats.get("counters", {}) or {}
        head = (f"{name}: pid {stats.get('pid', '?')}, "
                f"{stats.get('rounds_executed', 0)} rounds executed, "
                f"telemetry "
                f"{'enabled' if stats.get('enabled') else 'disabled'}")
        print(head)
        for counter in sorted(counters):
            if counters[counter]:
                print(f"  {counter} = {counters[counter]}")
    return 1 if failures else 0


def cmd_repro_cluster(args) -> int:
    # Same args shape as `python -m repro.cluster`, so the two entry
    # points share one context dispatcher.
    from repro.cluster.server import context_from_args, serve

    if args.action == "stats":
        return _shard_fleet_stats(args)
    if args.faults is not None:
        from repro.resilience import faults

        try:
            faults.install(args.faults)
        except ValueError as exc:
            raise SystemExit(f"--faults: {exc}") from None
    serve(context_from_args(args), host=args.host, port=args.port,
          jobs=args.jobs, chaos_exit_after=args.chaos_exit_after,
          secret=args.secret, cache_dir=args.cache_dir,
          cache_max_entries=args.cache_max_entries)
    return 0


def cmd_serve(args) -> int:
    """`repro serve`: the studies-as-a-service daemon (HTTP API +
    scheduler workers over one shared archive directory)."""
    from repro.service import ServiceConfig, serve

    try:
        config = ServiceConfig.from_env(
            args.archive_dir, host=args.host, port=args.port,
            poll_interval=args.poll_interval, lease_ttl=args.lease_ttl,
            retries=args.retries, backoff=args.backoff,
            checkpoint_every=args.checkpoint_every)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    if args.workers < 0:
        raise SystemExit(f"--workers {args.workers}: expected >= 0 "
                         f"(0 = API-only replica, no scheduler)")
    return serve(config, engine=_make_engine(args), workers=args.workers)


def _queue_fingerprint(queue, prefix: str) -> str:
    """Resolve an operator-typed fingerprint prefix to one entry."""
    matches = sorted({e.fingerprint for e in queue.entries()
                      if e.fingerprint.startswith(prefix)})
    if not matches:
        raise SystemExit(f"no queue entry matches {prefix!r}")
    if len(matches) > 1:
        raise SystemExit(f"{prefix!r} is ambiguous: matches "
                         + ", ".join(m[:16] + "…" for m in matches))
    return matches[0]


def cmd_repro_queue(args) -> int:
    """`repro-queue`: the operator surface over a service queue dir."""
    import json as jsonlib

    from repro.service import StudyQueue

    queue = StudyQueue(args.archive_dir)
    if args.action == "list":
        entries = queue.entries()
        if not entries:
            print("queue is empty")
            return 0
        for entry in entries:
            lease = queue.lease_info(entry.fingerprint)
            state = "running" if lease is not None else entry.state
            line = (f"{entry.fingerprint[:16]}…  {state:<9} "
                    f"prio={entry.priority} attempts={entry.attempts} "
                    f"kind={entry.study.get('kind', '?')}")
            if lease is not None:
                line += (f" progress={lease.get('done', 0)}/"
                         f"{lease.get('total', 0)} "
                         f"owner={lease.get('owner')}")
            if entry.last_error:
                line += f" error={entry.last_error!r}"
            print(line)
        counts = queue.counts()
        print("totals: " + ", ".join(f"{k}={v}"
                                     for k, v in sorted(counts.items())))
        return 0
    if not args.fingerprint:
        raise SystemExit(f"repro-queue {args.action} needs a study "
                         f"fingerprint (any unambiguous prefix)")
    fingerprint = _queue_fingerprint(queue, args.fingerprint)
    if args.action == "show":
        status = queue.study_state(fingerprint) or {}
        entry = queue.get(fingerprint)
        doc = {"status": status}
        if entry is not None:
            doc["entry"] = entry.to_obj()
        print(jsonlib.dumps(doc, indent=2, sort_keys=True))
        return 0
    if args.action == "cancel":
        try:
            entry = queue.cancel(fingerprint)
        except ValueError as exc:  # leased: stop the runner, not the queue
            raise SystemExit(str(exc)) from None
        if entry is None:
            raise SystemExit(f"study {fingerprint[:16]}… is not waiting "
                             f"in the queue; nothing to cancel")
        print(f"cancelled {fingerprint}")
        return 0
    # nudge: requeue a failed/cancelled/backed-off study for pickup now
    entry = queue.nudge(fingerprint, priority=args.priority)
    if entry is None:
        raise SystemExit(f"no queue entry for {fingerprint[:16]}…")
    print(f"requeued {fingerprint} (priority {entry.priority})")
    return 0


def cmd_archive(args) -> int:
    """`repro archive ls`: scan a study archive directory."""
    from repro.study import list_archive

    if not os.path.isdir(args.archive_dir):
        raise SystemExit(f"no such archive directory: {args.archive_dir}")
    summaries = list_archive(args.archive_dir)
    if not summaries:
        print(f"no archived studies under {args.archive_dir}")
        return 0
    for s in summaries:
        print(f"{s['fingerprint'][:16]}…  {s['kind']:<16} "
              f"{s['n_scenarios']:>5} scenarios  "
              f"{s['created_at'] or '?':<20}  "
              f"{s['wall_time_seconds']:.2f}s")
    print(f"{len(summaries)} archived stud"
          f"{'y' if len(summaries) == 1 else 'ies'}")
    return 0


def cmd_paper_table1(args) -> int:
    from repro.core.algorithm1 import compute_optimal_defense
    from repro.core.paper_curves import (PAPER_N_POISON, PAPER_TABLE1_N2,
                                         PAPER_TABLE1_N3, paper_figure1_curves)
    from repro.experiments.reporting import ascii_table

    curves = paper_figure1_curves()
    rows = []
    for n, published in ((2, PAPER_TABLE1_N2), (3, PAPER_TABLE1_N3)):
        res = compute_optimal_defense(curves, n, PAPER_N_POISON,
                                      epsilon=1e-12, max_iter=2000,
                                      initial_step=0.05)
        rows.append((f"n={n} (ours)",
                     "  ".join(f"{p:.1%}" for p in res.defense.percentiles),
                     "  ".join(f"{q:.1%}" for q in res.defense.probabilities)))
        rows.append((f"n={n} (paper)",
                     "  ".join(f"{p:.1%}" for p in published["percentiles"]),
                     "  ".join(f"{q:.1%}" for q in published["probabilities"])))
    print(ascii_table(["strategy", "radii", "probabilities"], rows,
                      title="Algorithm 1 on paper-calibrated curves vs published Table 1"))
    return 0


def cmd_proposition1(args) -> int:
    from repro.core.best_response import find_pure_equilibrium, \
        proposition1_certificate
    from repro.core.game import PoisoningGame
    from repro.core.payoff_estimation import estimate_payoff_curves
    from repro.study import studies

    spec = studies.figure1(context=_context_spec(args),
                           poison_fraction=args.poison_fraction,
                           n_repeats=args.repeats,
                           victim=_parse_victim_arg(args.victim))
    result, engine = _run_named_study(args, spec, "proposition1")
    sweep = result.payload_object()
    curves = estimate_payoff_curves(sweep.percentiles, sweep.acc_clean,
                                    sweep.acc_attacked, sweep.n_poison)
    game = PoisoningGame(curves=curves, n_poison=sweep.n_poison)
    search = find_pure_equilibrium(game, n_grid=201)
    cert = proposition1_certificate(game)
    print(f"pure NE exists: {search.exists}")
    print(f"best-response cycle length: {search.trace.cycle_length}")
    print(f"Ta = {cert['ta']:.3f}, Td(at Ta-attack) = {cert['td_at_ta_attack']:.3f}")
    _print_engine_stats(engine)
    return 0


_COMMANDS = {
    "run": cmd_run,
    "describe": cmd_describe,
    "report": cmd_report,
    "figure1": cmd_figure1,
    "table1": cmd_table1,
    "empirical-game": cmd_empirical_game,
    "cross-game": cmd_cross_game,
    "paper-table1": cmd_paper_table1,
    "proposition1": cmd_proposition1,
    "repro-cache": cmd_repro_cache,
    "repro-cluster": cmd_repro_cluster,
    "trace": cmd_trace,
    "serve": cmd_serve,
    "repro-queue": cmd_repro_queue,
    "archive": cmd_archive,
}


def _add_engine_args(p) -> None:
    p.add_argument("--backend", type=str, default=None,
                   help="evaluation backend: serial (default), "
                        "process, or cluster")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker count for parallel backends; for "
                        "cluster with no --shards, how many localhost "
                        "shards to autospawn (default 2)")
    p.add_argument("--shards", type=str, default=None,
                   help="cluster backend: comma-separated host:port "
                        "shard servers (default: autospawn localhost "
                        "shards; also via REPRO_CLUSTER_SHARDS)")
    p.add_argument("--cache-dir", type=str, default=None,
                   help="persist round results as JSON under this "
                        "directory (reruns become cache hits)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the engine's result cache")
    p.add_argument("--cache-max-entries", type=int, default=None,
                   help="LRU cap for the in-memory cache tier "
                        "(default: unbounded)")
    p.add_argument("--progress", action="store_true",
                   help="stream per-round progress to stderr even "
                        "when it is not a terminal")
    p.add_argument("--no-progress", action="store_true",
                   help="never stream per-round progress")
    p.add_argument("--faults", type=str, default=None,
                   help="arm a deterministic fault plan for resilience "
                        "drills, e.g. 'connect:fail_prob=0.3;seed=7' "
                        "(see repro.resilience; overrides REPRO_FAULTS)")
    p.add_argument("--telemetry-dir", type=str, default=None,
                   help="arm telemetry and write span/metrics JSONL "
                        "trace files (one per process) under this "
                        "directory; view with 'repro trace <dir>' "
                        "(also via REPRO_TELEMETRY_DIR)")


def _add_study_args(p) -> None:
    p.add_argument("study", type=str,
                   help="a study JSON document, or a named study: "
                        "figure1, table1, empirical-game, cross-game, "
                        "multi-seed, mixed-eval, grid")
    p.add_argument("--set", action="append", metavar="KEY=VALUE",
                   help="override a builder argument of a named study "
                        "(e.g. --set seed=3 --set fractions=0:0.2:9); "
                        "repeatable")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run studies; regenerate the paper's figures and tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in _COMMANDS:
        p = sub.add_parser(name)
        if name == "run":
            _add_study_args(p)
            p.add_argument("--out", type=str, default=None,
                           help="archive the StudyResult JSON to this path")
            p.add_argument("--archive-dir", type=str, default=None,
                           help="study archive: skip the run when this "
                                "study's fingerprint is already archived "
                                "here, else write the result here")
            p.add_argument("--force", action="store_true",
                           help="re-run and overwrite an archived study")
            p.add_argument("--resume", action="store_true",
                           help="warm the engine cache from this study's "
                                "checkpoint in --archive-dir, so rounds a "
                                "killed run completed are not recomputed")
            p.add_argument("--checkpoint-every", type=int, default=None,
                           help="flush completed rounds to an atomic "
                                "checkpoint beside the archive every N "
                                "rounds (default 16, or "
                                "REPRO_STUDY_CHECKPOINT_EVERY; 0 disables)")
            p.add_argument("--expect-cached", action="store_true",
                           help="fail unless every round was served from "
                                "cache (CI determinism gate)")
            _add_engine_args(p)
            continue
        if name == "describe":
            _add_study_args(p)
            _add_engine_args(p)
            continue
        if name == "report":
            p.add_argument("result", type=str,
                           help="a StudyResult JSON written by "
                                "'repro run --out' or --archive-dir")
            p.add_argument("--telemetry", action="store_true",
                           help="append the run's per-stage time "
                                "breakdown and counters (present when "
                                "the study ran with telemetry armed)")
            continue
        if name == "trace":
            p.add_argument("trace_dir", type=str,
                           help="a telemetry directory written by "
                                "--telemetry-dir / REPRO_TELEMETRY_DIR")
            p.add_argument("--no-metrics", action="store_true",
                           help="render the span trees only, without "
                                "each process's closing counters")
            continue
        if name == "serve":
            p.add_argument("--archive-dir", type=str, required=True,
                           help="the shared study archive + queue "
                                "directory; every replica of the "
                                "service points at the same one")
            p.add_argument("--host", type=str, default=None,
                           help="bind address (default 127.0.0.1, or "
                                "REPRO_SERVICE_HOST)")
            p.add_argument("--port", type=int, default=None,
                           help="bind port; 0 asks the OS for a free "
                                "port, announced on the READY line "
                                "(default 0, or REPRO_SERVICE_PORT)")
            p.add_argument("--workers", type=int, default=1,
                           help="scheduler workers in this process "
                                "(0 = API-only replica; default 1)")
            p.add_argument("--poll-interval", type=float, default=None,
                           help="scheduler/stream poll cadence in "
                                "seconds (REPRO_SERVICE_POLL_INTERVAL)")
            p.add_argument("--lease-ttl", type=float, default=None,
                           help="seconds without a heartbeat before a "
                                "lease is stale and another replica "
                                "adopts the study "
                                "(REPRO_SERVICE_LEASE_TTL)")
            p.add_argument("--retries", type=int, default=None,
                           help="requeue-on-failure budget per study "
                                "(REPRO_SERVICE_RETRIES)")
            p.add_argument("--backoff", type=float, default=None,
                           help="base retry backoff in seconds "
                                "(REPRO_SERVICE_BACKOFF)")
            p.add_argument("--checkpoint-every", type=int, default=None,
                           help="checkpoint cadence for leased studies "
                                "(default 1: every round, so a killed "
                                "daemon resumes with zero recompute; "
                                "REPRO_SERVICE_CHECKPOINT_EVERY)")
            _add_engine_args(p)
            continue
        if name == "repro-queue":
            p.add_argument("action",
                           choices=("list", "show", "cancel", "nudge"),
                           help="list: every entry; show: one entry's "
                                "full state; cancel: drop a waiting "
                                "study; nudge: requeue a failed or "
                                "backed-off study for immediate pickup")
            p.add_argument("fingerprint", type=str, nargs="?",
                           default=None,
                           help="study fingerprint (any unambiguous "
                                "prefix) — required for show, cancel "
                                "and nudge")
            p.add_argument("--archive-dir", type=str, required=True,
                           help="the service's archive + queue directory")
            p.add_argument("--priority", type=int, default=None,
                           help="nudge: also reset the entry's priority")
            continue
        if name == "archive":
            p.add_argument("action", choices=("ls",),
                           help="ls: list every archived study with its "
                                "fingerprint, kind, round count and "
                                "timings")
            p.add_argument("archive_dir", type=str,
                           help="a study archive directory (as written "
                                "by 'repro run --archive-dir' or the "
                                "service)")
            continue
        if name == "repro-cache":
            p.add_argument("action", choices=("info", "prune"),
                           help="info: print the manifest; prune: drop "
                                "entries from older cache schema versions")
            p.add_argument("--cache-dir", type=str, default=None,
                           help="the on-disk cache directory to operate on")
            p.add_argument("--shard", type=str, default=None,
                           help="info only: probe running shard servers "
                                "('host:port,host:port') for their "
                                "cache-tier stats over the cluster "
                                "protocol instead of reading a local "
                                "directory")
            p.add_argument("--secret", type=str, default=None,
                           help="cluster secret for the --shard probe "
                                "(defaults to REPRO_CLUSTER_SECRET)")
            continue
        if name == "repro-cluster":
            p.add_argument("action", choices=("serve", "stats"),
                           help="serve: run a shard server for one "
                                "context; stats: probe running shards "
                                "for their live telemetry metrics")
            p.add_argument("--shards", type=str, default=None,
                           help="stats: comma-separated host:port shard "
                                "servers to probe (also via "
                                "REPRO_CLUSTER_SHARDS)")
            p.add_argument("--context", type=str, default="spambase",
                           choices=("spambase", "synthetic"),
                           help="construct the served context by name")
            p.add_argument("--context-file", type=str, default=None,
                           help="serve a pickled context instead (see "
                                "repro.experiments.runner.save_context)")
            p.add_argument("--seed", type=int, default=0)
            p.add_argument("--n-samples", type=int, default=None)
            p.add_argument("--host", type=str, default="127.0.0.1")
            p.add_argument("--port", type=int, default=0,
                           help="0 binds a free port (announced on the "
                                "READY line)")
            p.add_argument("--jobs", type=int, default=None,
                           help="worker processes on this shard "
                                "(default 1: in-process)")
            p.add_argument("--chaos-exit-after", type=int, default=None,
                           help="failure injection: hard-exit mid-chunk "
                                "after N rounds (failover drills)")
            p.add_argument("--faults", type=str, default=None,
                           help="arm a fault plan on this shard, e.g. "
                                "'chunk_reply:drop_first=1' (overrides "
                                "REPRO_FAULTS)")
            p.add_argument("--secret", type=str, default=None,
                           help="shared handshake secret (defaults to "
                                "REPRO_CLUSTER_SECRET)")
            p.add_argument("--cache-dir", type=str, default=None,
                           help="shard-local result-cache disk tier "
                                "(defaults to REPRO_SHARD_CACHE_DIR; "
                                "unset = no cache)")
            p.add_argument("--cache-max-entries", type=int, default=None,
                           help="LRU cap for the shard cache's in-memory "
                                "tier (defaults to "
                                "REPRO_SHARD_CACHE_MAX_ENTRIES)")
            continue
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--n-samples", type=int, default=None,
                       help="subsample the dataset (default: full 4601)")
        p.add_argument("--poison-fraction", type=float, default=0.2)
        p.add_argument("--repeats", type=int, default=1)
        p.add_argument("--json", type=str, default=None,
                       help="archive the structured result to this path")
        _add_engine_args(p)
        if name != "paper-table1":  # runs no rounds: nothing to re-victim
            p.add_argument("--victim", type=str, default=None,
                           help="victim spec kind[:k=v,...], e.g. logistic "
                                "or svm:epochs=60 (default: the context's SVM)")
        if name == "table1":
            p.add_argument("--n-radii", type=int, nargs="+", default=[2, 3])
        if name == "cross-game":
            p.add_argument("--defenses", type=str, nargs="+",
                           default=["radius:0.1", "slab_filter:0.1",
                                    "loss_filter:0.1"],
                           help="defender strategy set: defense specs "
                                "kind[:percentile][:k=v,...] (use 'none' "
                                "for the undefended baseline)")
            p.add_argument("--attacks", type=str, nargs="+",
                           default=["boundary:0.05", "label-flip",
                                    "random-noise:0.05"],
                           help="attacker strategy set: attack specs "
                                "kind[:percentile][:k=v,...] (use 'clean' "
                                "for the no-attack baseline)")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
