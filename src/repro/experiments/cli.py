"""Command-line entry point: regenerate any of the paper's artefacts.

Usage::

    python -m repro.experiments.cli figure1 [--n-samples N] [--seed S]
    python -m repro.experiments.cli table1  [--n-radii 2 3] [--seed S]
    python -m repro.experiments.cli empirical-game [--seed S]
    python -m repro.experiments.cli cross-game [--defenses SPEC...]
                                               [--attacks SPEC...]
                                               [--victim SPEC]
    python -m repro.experiments.cli paper-table1
    python -m repro.experiments.cli proposition1 [--seed S]
    python -m repro.experiments.cli repro-cache {info,prune} --cache-dir DIR
    python -m repro.experiments.cli repro-cluster serve [--port P] [--jobs N]

Each command prints the same rows/series the paper reports and, with
``--json PATH``, archives the structured result.  Experiment commands
end with an engine-stats summary (cache hits/misses/evictions,
per-batch backend and wall time).

Execution is controlled by the engine flags shared across commands:
``--backend serial|process|cluster`` and ``--jobs N`` choose how
rounds run (``cluster`` shards them across ``--shards host:port,...``
servers, autospawning localhost shards when none are given),
``--cache-dir DIR`` persists results on disk (an equal-seed rerun is
then served from cache), ``--no-cache`` disables caching.  Results are
bit-identical whatever the backend.  Long sweeps stream per-round
progress to stderr through the engine's ``evaluate_stream`` machinery
(on by default on a terminal; ``--progress`` / ``--no-progress``
force it).

Spec strings (``cross-game``) read ``kind[:percentile][:k=v,...]``,
e.g. ``radius:0.1``, ``slab_filter:0.15``, ``knn_sanitizer::k=7``,
``label-flip::strategy=near_boundary``; victims read ``kind[:k=v,...]``
such as ``logistic`` or ``svm:epochs=60``.
"""

from __future__ import annotations

import argparse
import ast
import sys

import numpy as np


def _make_context(args):
    from repro.experiments.runner import make_spambase_context

    return make_spambase_context(seed=args.seed, n_samples=args.n_samples)


def _split_top_level(text: str) -> list[str]:
    """Split on commas not nested inside brackets/parentheses."""
    parts, depth, current = [], 0, []
    for ch in text:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return parts


def _parse_params(text: str) -> dict:
    params = {}
    for pair in _split_top_level(text):
        if not pair.strip():
            continue
        if "=" not in pair:
            raise SystemExit(f"bad spec params {text!r}: expected key=value")
        key, value = pair.split("=", 1)
        try:
            parsed = ast.literal_eval(value)
        except (ValueError, SyntaxError):
            parsed = value  # bare strings (e.g. strategy=near_boundary)
        if isinstance(parsed, list):
            parsed = tuple(parsed)
        params[key.strip()] = parsed
    return params


def _parse_spec_string(text: str) -> tuple[str, float, dict]:
    """``kind[:percentile][:k=v,...]`` -> (kind, percentile, params)."""
    head, _, rest = text.partition(":")
    percentile_part, _, params_part = rest.partition(":")
    kind = head.strip()
    if not kind:
        raise SystemExit(f"bad spec {text!r}: empty kind")
    percentile = 0.0
    if percentile_part.strip():
        try:
            percentile = float(percentile_part)
        except ValueError:
            raise SystemExit(
                f"bad spec {text!r}: percentile {percentile_part!r} "
                "is not a number") from None
    return kind, percentile, _parse_params(params_part)


def _parse_defense_arg(text: str):
    from repro.engine import DefenseSpec, registered_defense_kinds

    if text.strip() == "none":
        return None
    kind, percentile, params = _parse_spec_string(text)
    if kind not in registered_defense_kinds():
        raise SystemExit(f"unknown defense kind {kind!r}; registered: "
                         f"{registered_defense_kinds()}")
    return DefenseSpec(kind, percentile, params)


def _parse_attack_arg(text: str):
    from repro.engine import AttackSpec, registered_attack_kinds

    if text.strip() == "clean":
        return None
    kind, percentile, params = _parse_spec_string(text)
    if kind not in registered_attack_kinds():
        raise SystemExit(f"unknown attack kind {kind!r}; registered: "
                         f"{registered_attack_kinds()}")
    return AttackSpec(kind, percentile, params)


def _parse_victim_arg(text: str | None):
    from repro.engine import VictimSpec, registered_victim_kinds

    if text is None:
        return None
    head, _, params_part = text.partition(":")
    kind = head.strip()
    if kind not in registered_victim_kinds():
        raise SystemExit(f"unknown victim kind {kind!r}; registered: "
                         f"{registered_victim_kinds()}")
    return VictimSpec(kind, _parse_params(params_part))


def _make_engine(args):
    from repro.engine import EvaluationEngine

    backend = args.backend
    if backend == "cluster" and getattr(args, "shards", None):
        # Build the backend directly so --shards needs no env detour.
        from repro.cluster.backend import ClusterBackend, parse_shard_addresses

        try:
            backend = ClusterBackend(
                jobs=args.jobs, shards=parse_shard_addresses(args.shards))
        except ValueError as exc:
            raise SystemExit(str(exc))
    try:
        return EvaluationEngine(
            backend,
            jobs=args.jobs,
            cache=not args.no_cache,
            cache_dir=args.cache_dir,
            cache_max_entries=args.cache_max_entries,
        )
    except ValueError as exc:  # unknown backend, --jobs 0, ...
        raise SystemExit(str(exc))


class _ProgressPrinter:
    """Streaming round counter for long sweeps (one ``\\r`` line).

    The callback face of ``EvaluationEngine.evaluate_batch(...,
    progress=)``: every resolved round (cache hits first, then backend
    completions as they land) redraws ``rounds done/total`` on stderr.
    """

    def __init__(self, label: str):
        self.label = label
        self._dirty = False

    def __call__(self, done: int, total: int) -> None:
        print(f"\r{self.label}: round {done}/{total}", end="",
              file=sys.stderr, flush=True)
        self._dirty = True
        if done >= total:
            self.finish()

    def finish(self) -> None:
        if self._dirty:
            print(file=sys.stderr, flush=True)
            self._dirty = False


def _progress_for(args, label: str):
    """A live progress callback, or ``None`` when not wanted.

    ``--progress`` forces it on, ``--no-progress`` off; the default
    streams only when stderr is a terminal (reports stay clean when
    piped).
    """
    if getattr(args, "no_progress", False):
        return None
    if getattr(args, "progress", False) or sys.stderr.isatty():
        return _ProgressPrinter(label)
    return None


def _print_engine_stats(engine) -> None:
    from repro.experiments.reporting import format_engine_stats

    print()
    print(format_engine_stats(engine))


def cmd_figure1(args) -> int:
    from repro.experiments.payoff_sweep import run_pure_strategy_sweep
    from repro.experiments.reporting import format_pure_sweep
    from repro.experiments.results import results_to_json

    ctx = _make_context(args)
    engine = _make_engine(args)
    sweep = run_pure_strategy_sweep(ctx, poison_fraction=args.poison_fraction,
                                    n_repeats=args.repeats,
                                    victim=_parse_victim_arg(args.victim),
                                    engine=engine,
                                    progress=_progress_for(args, "figure1"))
    print(format_pure_sweep(sweep))
    _print_engine_stats(engine)
    if args.json:
        results_to_json(sweep, args.json)
        print(f"\nresult written to {args.json}")
    return 0


def cmd_table1(args) -> int:
    from repro.experiments.payoff_sweep import (run_pure_strategy_sweep,
                                                run_table1_experiment)
    from repro.experiments.reporting import format_table1
    from repro.experiments.results import results_to_json

    ctx = _make_context(args)
    engine = _make_engine(args)
    victim = _parse_victim_arg(args.victim)
    progress = _progress_for(args, "table1")
    sweep = run_pure_strategy_sweep(ctx, poison_fraction=args.poison_fraction,
                                    n_repeats=args.repeats, engine=engine,
                                    victim=victim, progress=progress)
    results = run_table1_experiment(ctx, sweep, n_radii_values=tuple(args.n_radii),
                                    poison_fraction=args.poison_fraction,
                                    engine=engine, victim=victim,
                                    progress=progress)
    print(format_table1(results))
    _print_engine_stats(engine)
    if args.json:
        results_to_json(results[0], args.json)
        print(f"\nfirst row written to {args.json}")
    return 0


def cmd_empirical_game(args) -> int:
    from repro.experiments.empirical_game import solve_empirical_game
    from repro.experiments.reporting import ascii_table

    ctx = _make_context(args)
    engine = _make_engine(args)
    result = solve_empirical_game(ctx, poison_fraction=args.poison_fraction,
                                  n_repeats=args.repeats,
                                  victim=_parse_victim_arg(args.victim),
                                  engine=engine,
                                  progress=_progress_for(args,
                                                         "empirical-game"))
    rows = [(f"{p:.1%}", f"{q:.1%}")
            for p, q in zip(result.percentiles, result.defender_mix)]
    print(ascii_table(["filter percentile", "probability"], rows,
                      title="Measured-game equilibrium defence"))
    print(f"game value (accuracy): {result.game_value_accuracy:.4f}")
    print(f"best pure defence:     {result.best_pure_percentile:.1%} -> "
          f"{result.best_pure_accuracy:.4f}")
    print(f"mixed advantage:       {result.mixed_advantage:+.4f}")
    print(f"saddle point exists:   {result.has_saddle_point}")
    _print_engine_stats(engine)
    return 0


def cmd_cross_game(args) -> int:
    import dataclasses
    import json

    from repro.experiments.empirical_game import solve_cross_family_game
    from repro.experiments.reporting import format_cross_game

    defenses = [_parse_defense_arg(d) for d in args.defenses]
    attacks = [_parse_attack_arg(a) for a in args.attacks]
    ctx = _make_context(args)
    engine = _make_engine(args)
    result = solve_cross_family_game(
        ctx, defenses, attacks, poison_fraction=args.poison_fraction,
        n_repeats=args.repeats, victim=_parse_victim_arg(args.victim),
        engine=engine, progress=_progress_for(args, "cross-game"),
    )
    print(format_cross_game(result))
    _print_engine_stats(engine)
    if args.json:
        payload = {"type": "CrossGameResult",
                   "data": dataclasses.asdict(result)}
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nresult written to {args.json}")
    return 0


def cmd_repro_cache(args) -> int:
    import os

    from repro.engine import prune_cache_dir, write_manifest

    if not os.path.isdir(args.cache_dir):
        raise SystemExit(f"no such cache directory: {args.cache_dir}")
    if args.action == "prune":
        summary = prune_cache_dir(args.cache_dir)
        print(f"pruned {summary['removed']} stale entries; "
              f"{summary['entry_count']} remain "
              f"({summary['total_bytes']} bytes, "
              f"schema v{summary['schema_version']})")
    else:  # info — refresh so external writes/deletes are reflected
        manifest = write_manifest(args.cache_dir)
        print(f"schema version: {manifest['schema_version']}")
        print(f"entries:        {manifest['entry_count']}")
        print(f"total bytes:    {manifest['total_bytes']}")
    return 0


def cmd_repro_cluster(args) -> int:
    # Same args shape as `python -m repro.cluster`, so the two entry
    # points share one context dispatcher.
    from repro.cluster.server import context_from_args, serve

    serve(context_from_args(args), host=args.host, port=args.port,
          jobs=args.jobs, chaos_exit_after=args.chaos_exit_after)
    return 0


def cmd_paper_table1(args) -> int:
    from repro.core.algorithm1 import compute_optimal_defense
    from repro.core.paper_curves import (PAPER_N_POISON, PAPER_TABLE1_N2,
                                         PAPER_TABLE1_N3, paper_figure1_curves)
    from repro.experiments.reporting import ascii_table

    curves = paper_figure1_curves()
    rows = []
    for n, published in ((2, PAPER_TABLE1_N2), (3, PAPER_TABLE1_N3)):
        res = compute_optimal_defense(curves, n, PAPER_N_POISON,
                                      epsilon=1e-12, max_iter=2000,
                                      initial_step=0.05)
        rows.append((f"n={n} (ours)",
                     "  ".join(f"{p:.1%}" for p in res.defense.percentiles),
                     "  ".join(f"{q:.1%}" for q in res.defense.probabilities)))
        rows.append((f"n={n} (paper)",
                     "  ".join(f"{p:.1%}" for p in published["percentiles"]),
                     "  ".join(f"{q:.1%}" for q in published["probabilities"])))
    print(ascii_table(["strategy", "radii", "probabilities"], rows,
                      title="Algorithm 1 on paper-calibrated curves vs published Table 1"))
    return 0


def cmd_proposition1(args) -> int:
    from repro.core.best_response import find_pure_equilibrium, \
        proposition1_certificate
    from repro.core.game import PoisoningGame
    from repro.core.payoff_estimation import estimate_payoff_curves
    from repro.experiments.payoff_sweep import run_pure_strategy_sweep

    ctx = _make_context(args)
    engine = _make_engine(args)
    sweep = run_pure_strategy_sweep(ctx, poison_fraction=args.poison_fraction,
                                    n_repeats=args.repeats, engine=engine,
                                    victim=_parse_victim_arg(args.victim),
                                    progress=_progress_for(args,
                                                           "proposition1"))
    curves = estimate_payoff_curves(sweep.percentiles, sweep.acc_clean,
                                    sweep.acc_attacked, sweep.n_poison)
    game = PoisoningGame(curves=curves, n_poison=sweep.n_poison)
    search = find_pure_equilibrium(game, n_grid=201)
    cert = proposition1_certificate(game)
    print(f"pure NE exists: {search.exists}")
    print(f"best-response cycle length: {search.trace.cycle_length}")
    print(f"Ta = {cert['ta']:.3f}, Td(at Ta-attack) = {cert['td_at_ta_attack']:.3f}")
    _print_engine_stats(engine)
    return 0


_COMMANDS = {
    "figure1": cmd_figure1,
    "table1": cmd_table1,
    "empirical-game": cmd_empirical_game,
    "cross-game": cmd_cross_game,
    "paper-table1": cmd_paper_table1,
    "proposition1": cmd_proposition1,
    "repro-cache": cmd_repro_cache,
    "repro-cluster": cmd_repro_cluster,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.cli",
        description="Regenerate the paper's figures and tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in _COMMANDS:
        p = sub.add_parser(name)
        if name == "repro-cache":
            p.add_argument("action", choices=("info", "prune"),
                           help="info: print the manifest; prune: drop "
                                "entries from older cache schema versions")
            p.add_argument("--cache-dir", type=str, required=True,
                           help="the on-disk cache directory to operate on")
            continue
        if name == "repro-cluster":
            p.add_argument("action", choices=("serve",),
                           help="serve: run a shard server for one context")
            p.add_argument("--context", type=str, default="spambase",
                           choices=("spambase", "synthetic"),
                           help="construct the served context by name")
            p.add_argument("--context-file", type=str, default=None,
                           help="serve a pickled context instead (see "
                                "repro.experiments.runner.save_context)")
            p.add_argument("--seed", type=int, default=0)
            p.add_argument("--n-samples", type=int, default=None)
            p.add_argument("--host", type=str, default="127.0.0.1")
            p.add_argument("--port", type=int, default=0,
                           help="0 binds a free port (announced on the "
                                "READY line)")
            p.add_argument("--jobs", type=int, default=None,
                           help="worker processes on this shard "
                                "(default 1: in-process)")
            p.add_argument("--chaos-exit-after", type=int, default=None,
                           help="failure injection: hard-exit mid-chunk "
                                "after N rounds (failover drills)")
            continue
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--n-samples", type=int, default=None,
                       help="subsample the dataset (default: full 4601)")
        p.add_argument("--poison-fraction", type=float, default=0.2)
        p.add_argument("--repeats", type=int, default=1)
        p.add_argument("--json", type=str, default=None,
                       help="archive the structured result to this path")
        p.add_argument("--backend", type=str, default="serial",
                       help="evaluation backend: serial (default), "
                            "process, or cluster")
        p.add_argument("--jobs", type=int, default=None,
                       help="worker count for parallel backends; for "
                            "cluster with no --shards, how many localhost "
                            "shards to autospawn (default 2)")
        p.add_argument("--shards", type=str, default=None,
                       help="cluster backend: comma-separated host:port "
                            "shard servers (default: autospawn localhost "
                            "shards; also via REPRO_CLUSTER_SHARDS)")
        p.add_argument("--cache-dir", type=str, default=None,
                       help="persist round results as JSON under this "
                            "directory (reruns become cache hits)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the engine's result cache")
        p.add_argument("--cache-max-entries", type=int, default=None,
                       help="LRU cap for the in-memory cache tier "
                            "(default: unbounded)")
        p.add_argument("--progress", action="store_true",
                       help="stream per-round progress to stderr even "
                            "when it is not a terminal")
        p.add_argument("--no-progress", action="store_true",
                       help="never stream per-round progress")
        if name != "paper-table1":  # runs no rounds: nothing to re-victim
            p.add_argument("--victim", type=str, default=None,
                           help="victim spec kind[:k=v,...], e.g. logistic "
                                "or svm:epochs=60 (default: the context's SVM)")
        if name == "table1":
            p.add_argument("--n-radii", type=int, nargs="+", default=[2, 3])
        if name == "cross-game":
            p.add_argument("--defenses", type=str, nargs="+",
                           default=["radius:0.1", "slab_filter:0.1",
                                    "loss_filter:0.1"],
                           help="defender strategy set: defense specs "
                                "kind[:percentile][:k=v,...] (use 'none' "
                                "for the undefended baseline)")
            p.add_argument("--attacks", type=str, nargs="+",
                           default=["boundary:0.05", "label-flip",
                                    "random-noise:0.05"],
                           help="attacker strategy set: attack specs "
                                "kind[:percentile][:k=v,...] (use 'clean' "
                                "for the no-attack baseline)")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
