"""Command-line entry point: regenerate any of the paper's artefacts.

Usage::

    python -m repro.experiments.cli figure1 [--n-samples N] [--seed S]
    python -m repro.experiments.cli table1  [--n-radii 2 3] [--seed S]
    python -m repro.experiments.cli empirical-game [--seed S]
    python -m repro.experiments.cli paper-table1
    python -m repro.experiments.cli proposition1 [--seed S]

Each command prints the same rows/series the paper reports and, with
``--json PATH``, archives the structured result.

Execution is controlled by the engine flags shared across commands:
``--backend serial|process`` and ``--jobs N`` choose how rounds run,
``--cache-dir DIR`` persists results on disk (an equal-seed rerun is
then served from cache), ``--no-cache`` disables caching.  Results are
bit-identical whatever the backend.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _make_context(args):
    from repro.experiments.runner import make_spambase_context

    return make_spambase_context(seed=args.seed, n_samples=args.n_samples)


def _make_engine(args):
    from repro.engine import EvaluationEngine

    try:
        return EvaluationEngine(
            args.backend,
            jobs=args.jobs,
            cache=not args.no_cache,
            cache_dir=args.cache_dir,
            cache_max_entries=args.cache_max_entries,
        )
    except ValueError as exc:  # unknown backend, --jobs 0, ...
        raise SystemExit(str(exc))


def cmd_figure1(args) -> int:
    from repro.experiments.payoff_sweep import run_pure_strategy_sweep
    from repro.experiments.reporting import format_pure_sweep
    from repro.experiments.results import results_to_json

    ctx = _make_context(args)
    sweep = run_pure_strategy_sweep(ctx, poison_fraction=args.poison_fraction,
                                    n_repeats=args.repeats,
                                    engine=_make_engine(args))
    print(format_pure_sweep(sweep))
    if args.json:
        results_to_json(sweep, args.json)
        print(f"\nresult written to {args.json}")
    return 0


def cmd_table1(args) -> int:
    from repro.experiments.payoff_sweep import (run_pure_strategy_sweep,
                                                run_table1_experiment)
    from repro.experiments.reporting import format_table1
    from repro.experiments.results import results_to_json

    ctx = _make_context(args)
    engine = _make_engine(args)
    sweep = run_pure_strategy_sweep(ctx, poison_fraction=args.poison_fraction,
                                    n_repeats=args.repeats, engine=engine)
    results = run_table1_experiment(ctx, sweep, n_radii_values=tuple(args.n_radii),
                                    poison_fraction=args.poison_fraction,
                                    engine=engine)
    print(format_table1(results))
    if args.json:
        results_to_json(results[0], args.json)
        print(f"\nfirst row written to {args.json}")
    return 0


def cmd_empirical_game(args) -> int:
    from repro.experiments.empirical_game import solve_empirical_game
    from repro.experiments.reporting import ascii_table

    ctx = _make_context(args)
    result = solve_empirical_game(ctx, poison_fraction=args.poison_fraction,
                                  n_repeats=args.repeats,
                                  engine=_make_engine(args))
    rows = [(f"{p:.1%}", f"{q:.1%}")
            for p, q in zip(result.percentiles, result.defender_mix)]
    print(ascii_table(["filter percentile", "probability"], rows,
                      title="Measured-game equilibrium defence"))
    print(f"game value (accuracy): {result.game_value_accuracy:.4f}")
    print(f"best pure defence:     {result.best_pure_percentile:.1%} -> "
          f"{result.best_pure_accuracy:.4f}")
    print(f"mixed advantage:       {result.mixed_advantage:+.4f}")
    print(f"saddle point exists:   {result.has_saddle_point}")
    return 0


def cmd_paper_table1(args) -> int:
    from repro.core.algorithm1 import compute_optimal_defense
    from repro.core.paper_curves import (PAPER_N_POISON, PAPER_TABLE1_N2,
                                         PAPER_TABLE1_N3, paper_figure1_curves)
    from repro.experiments.reporting import ascii_table

    curves = paper_figure1_curves()
    rows = []
    for n, published in ((2, PAPER_TABLE1_N2), (3, PAPER_TABLE1_N3)):
        res = compute_optimal_defense(curves, n, PAPER_N_POISON,
                                      epsilon=1e-12, max_iter=2000,
                                      initial_step=0.05)
        rows.append((f"n={n} (ours)",
                     "  ".join(f"{p:.1%}" for p in res.defense.percentiles),
                     "  ".join(f"{q:.1%}" for q in res.defense.probabilities)))
        rows.append((f"n={n} (paper)",
                     "  ".join(f"{p:.1%}" for p in published["percentiles"]),
                     "  ".join(f"{q:.1%}" for q in published["probabilities"])))
    print(ascii_table(["strategy", "radii", "probabilities"], rows,
                      title="Algorithm 1 on paper-calibrated curves vs published Table 1"))
    return 0


def cmd_proposition1(args) -> int:
    from repro.core.best_response import find_pure_equilibrium, \
        proposition1_certificate
    from repro.core.game import PoisoningGame
    from repro.core.payoff_estimation import estimate_payoff_curves
    from repro.experiments.payoff_sweep import run_pure_strategy_sweep

    ctx = _make_context(args)
    sweep = run_pure_strategy_sweep(ctx, poison_fraction=args.poison_fraction,
                                    n_repeats=args.repeats,
                                    engine=_make_engine(args))
    curves = estimate_payoff_curves(sweep.percentiles, sweep.acc_clean,
                                    sweep.acc_attacked, sweep.n_poison)
    game = PoisoningGame(curves=curves, n_poison=sweep.n_poison)
    search = find_pure_equilibrium(game, n_grid=201)
    cert = proposition1_certificate(game)
    print(f"pure NE exists: {search.exists}")
    print(f"best-response cycle length: {search.trace.cycle_length}")
    print(f"Ta = {cert['ta']:.3f}, Td(at Ta-attack) = {cert['td_at_ta_attack']:.3f}")
    return 0


_COMMANDS = {
    "figure1": cmd_figure1,
    "table1": cmd_table1,
    "empirical-game": cmd_empirical_game,
    "paper-table1": cmd_paper_table1,
    "proposition1": cmd_proposition1,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.cli",
        description="Regenerate the paper's figures and tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in _COMMANDS:
        p = sub.add_parser(name)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--n-samples", type=int, default=None,
                       help="subsample the dataset (default: full 4601)")
        p.add_argument("--poison-fraction", type=float, default=0.2)
        p.add_argument("--repeats", type=int, default=1)
        p.add_argument("--json", type=str, default=None,
                       help="archive the structured result to this path")
        p.add_argument("--backend", type=str, default="serial",
                       help="evaluation backend: serial (default) or process")
        p.add_argument("--jobs", type=int, default=None,
                       help="worker count for parallel backends "
                            "(default: all cores)")
        p.add_argument("--cache-dir", type=str, default=None,
                       help="persist round results as JSON under this "
                            "directory (reruns become cache hits)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the engine's result cache")
        p.add_argument("--cache-max-entries", type=int, default=None,
                       help="LRU cap for the in-memory cache tier "
                            "(default: unbounded)")
        if name == "table1":
            p.add_argument("--n-radii", type=int, nargs="+", default=[2, 3])
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
