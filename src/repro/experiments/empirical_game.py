"""The empirical poisoning game: measured payoffs, exact solution.

The paper's Algorithm 1 works through the *model* ``U = N·E + Γ``
fitted from sweep measurements.  This module closes the loop without
the model: it tabulates the **measured** test accuracy ``A[i, j]`` for
every (filter percentile ``p_i``, attack percentile ``p_j``) pair on a
grid and solves that finite zero-sum game exactly with the LP solver.

Two facts make this the decisive reproduction artefact for Table 1:

* the defender's pure strategies are rows of the matrix, so the mixed
  equilibrium value can never be *worse* than the best pure strategy's
  guaranteed accuracy — and it is **strictly better iff the measured
  game has no saddle point**, which is the empirical counterpart of
  Proposition 1 (no pure NE);
* the LP's defender mix is the measured-game optimal mixed defence,
  against which Algorithm 1's model-based strategy can be scored.

.. deprecated::
    ``solve_empirical_game`` and ``solve_cross_family_game`` are
    deprecation shims; the implementations live in
    :mod:`repro.study.drivers` and the supported surface is
    ``run_study(studies.empirical_game(...))`` /
    ``run_study(studies.cross_game(...))``.  The result dataclasses
    remain here and are registered with
    :func:`repro.experiments.results.results_from_json`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine import EvaluationEngine, VictimSpec
from repro.experiments._shims import warn_driver_deprecated
from repro.experiments.runner import ExperimentContext

__all__ = [
    "EmpiricalGameResult",
    "build_empirical_game",
    "solve_empirical_game",
    "CrossGameResult",
    "build_cross_family_game",
    "solve_cross_family_game",
]


@dataclass
class EmpiricalGameResult:
    """Solution of the measured poisoning game.

    Accuracy convention: entries of ``accuracy_matrix`` are test
    accuracies; the attacker minimises accuracy, the defender maximises
    it.  (Internally the LP solves the zero-sum game with the attacker
    as the maximising row player on ``1 - accuracy``.)

    Attributes
    ----------
    percentiles:
        The shared strategy grid.
    accuracy_matrix:
        ``A[i, j]`` — measured accuracy when the defender filters at
        ``percentiles[i]`` and the attacker places at ``percentiles[j]``.
    defender_mix, attacker_mix:
        Equilibrium strategies of the measured game.
    game_value_accuracy:
        Expected accuracy at the equilibrium.
    best_pure_accuracy, best_pure_percentile:
        The best *pure* defence's guaranteed accuracy
        ``max_i min_j A[i, j]`` and its percentile.
    mixed_advantage:
        ``game_value_accuracy - best_pure_accuracy`` (>= 0 always;
        > 0 iff no saddle point).
    has_saddle_point:
        Whether a pure equilibrium exists in the measured game.
    """

    percentiles: list
    accuracy_matrix: list
    defender_mix: list
    attacker_mix: list
    game_value_accuracy: float
    best_pure_accuracy: float
    best_pure_percentile: float
    mixed_advantage: float
    has_saddle_point: bool
    n_repeats: int = 1
    defender_support: list = field(default_factory=list)

    def support(self, threshold: float = 0.01) -> list:
        """(percentile, probability) pairs with probability above threshold."""
        return [
            (float(p), float(q))
            for p, q in zip(self.percentiles, self.defender_mix)
            if q > threshold
        ]


@dataclass
class CrossGameResult:
    """Solution of a measured game whose strategies span *families*.

    The defender's pure strategies are arbitrary
    :class:`~repro.engine.DefenseSpec`\\ s (mixing defence kinds, not
    just radius percentiles) and the attacker's are arbitrary
    :class:`~repro.engine.AttackSpec`\\ s — the full scenario space the
    paper's framework defines but a percentile grid cannot express.
    Conventions match :class:`EmpiricalGameResult`: entries of
    ``accuracy_matrix[i][j]`` are test accuracies for defence ``i``
    against attack ``j``; the attacker minimises, the defender
    maximises.
    """

    defense_labels: list
    attack_labels: list
    accuracy_matrix: list
    defender_mix: list
    attacker_mix: list
    game_value_accuracy: float
    best_pure_accuracy: float
    best_pure_defense: str
    mixed_advantage: float
    has_saddle_point: bool
    victim: str | None = None
    n_repeats: int = 1

    def support(self, threshold: float = 0.01) -> list:
        """(defence label, probability) pairs above ``threshold``."""
        return [
            (str(label), float(q))
            for label, q in zip(self.defense_labels, self.defender_mix)
            if q > threshold
        ]


def build_empirical_game(
    ctx: ExperimentContext,
    percentiles,
    *,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    engine: EvaluationEngine | None = None,
    victim: VictimSpec | None = None,
    defense_kind: str = "radius",
    defense_params=(),
    progress=None,
) -> np.ndarray:
    """Measure the accuracy matrix ``A[filter, attack]`` on a grid.

    A stable (non-deprecated) alias of
    :func:`repro.study.drivers.empirical_game_matrix`.
    """
    from repro.study.drivers import empirical_game_matrix

    return empirical_game_matrix(
        ctx, percentiles, poison_fraction=poison_fraction,
        n_repeats=n_repeats, engine=engine, victim=victim,
        defense_kind=defense_kind, defense_params=defense_params,
        progress=progress)


def solve_empirical_game(
    ctx: ExperimentContext,
    *,
    percentiles=None,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    accuracy_matrix: np.ndarray | None = None,
    engine: EvaluationEngine | None = None,
    victim: VictimSpec | None = None,
    progress=None,
) -> EmpiricalGameResult:
    """Measure (or accept) the accuracy matrix and solve it exactly.

    .. deprecated:: use ``run_study(studies.empirical_game(...))``.
    """
    warn_driver_deprecated("solve_empirical_game", "empirical_game")
    from repro.study.drivers import empirical_game_solve

    return empirical_game_solve(
        ctx, percentiles=percentiles, poison_fraction=poison_fraction,
        n_repeats=n_repeats, accuracy_matrix=accuracy_matrix, engine=engine,
        victim=victim, progress=progress)


def build_cross_family_game(
    ctx: ExperimentContext,
    defenses,
    attacks,
    *,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    victim: VictimSpec | None = None,
    engine: EvaluationEngine | None = None,
    progress=None,
) -> np.ndarray:
    """Measure ``A[defense i, attack j]`` over arbitrary spec lists.

    A stable (non-deprecated) alias of
    :func:`repro.study.drivers.cross_game_matrix`.
    """
    from repro.study.drivers import cross_game_matrix

    return cross_game_matrix(
        ctx, defenses, attacks, poison_fraction=poison_fraction,
        n_repeats=n_repeats, victim=victim, engine=engine, progress=progress)


def solve_cross_family_game(
    ctx: ExperimentContext,
    defenses,
    attacks,
    *,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    victim: VictimSpec | None = None,
    accuracy_matrix: np.ndarray | None = None,
    engine: EvaluationEngine | None = None,
    progress=None,
) -> CrossGameResult:
    """Measure (or accept) a cross-family accuracy matrix and solve it.

    .. deprecated:: use ``run_study(studies.cross_game(...))``.
    """
    warn_driver_deprecated("solve_cross_family_game", "cross_game")
    from repro.study.drivers import cross_game_solve

    return cross_game_solve(
        ctx, defenses, attacks, poison_fraction=poison_fraction,
        n_repeats=n_repeats, victim=victim, accuracy_matrix=accuracy_matrix,
        engine=engine, progress=progress)
