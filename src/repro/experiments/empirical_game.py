"""The empirical poisoning game: measured payoffs, exact solution.

The paper's Algorithm 1 works through the *model* ``U = N·E + Γ``
fitted from sweep measurements.  This module closes the loop without
the model: it tabulates the **measured** test accuracy ``A[i, j]`` for
every (filter percentile ``p_i``, attack percentile ``p_j``) pair on a
grid and solves that finite zero-sum game exactly with the LP solver.

Two facts make this the decisive reproduction artefact for Table 1:

* the defender's pure strategies are rows of the matrix, so the mixed
  equilibrium value can never be *worse* than the best pure strategy's
  guaranteed accuracy — and it is **strictly better iff the measured
  game has no saddle point**, which is the empirical counterpart of
  Proposition 1 (no pure NE);
* the LP's defender mix is the measured-game optimal mixed defence,
  against which Algorithm 1's model-based strategy can be scored.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine import (AttackSpec, DefenseSpec, EvaluationEngine, RoundSpec,
                          VictimSpec, resolve_engine)
from repro.experiments.payoff_sweep import support_accuracy_matrix
from repro.experiments.runner import ExperimentContext
from repro.gametheory.lp_solver import solve_zero_sum_lp
from repro.gametheory.matrix_game import MatrixGame
from repro.utils.rng import derive_seed
from repro.utils.validation import check_fraction, check_positive_int

__all__ = [
    "EmpiricalGameResult",
    "build_empirical_game",
    "solve_empirical_game",
    "CrossGameResult",
    "build_cross_family_game",
    "solve_cross_family_game",
]


@dataclass
class EmpiricalGameResult:
    """Solution of the measured poisoning game.

    Accuracy convention: entries of ``accuracy_matrix`` are test
    accuracies; the attacker minimises accuracy, the defender maximises
    it.  (Internally the LP solves the zero-sum game with the attacker
    as the maximising row player on ``1 - accuracy``.)

    Attributes
    ----------
    percentiles:
        The shared strategy grid.
    accuracy_matrix:
        ``A[i, j]`` — measured accuracy when the defender filters at
        ``percentiles[i]`` and the attacker places at ``percentiles[j]``.
    defender_mix, attacker_mix:
        Equilibrium strategies of the measured game.
    game_value_accuracy:
        Expected accuracy at the equilibrium.
    best_pure_accuracy, best_pure_percentile:
        The best *pure* defence's guaranteed accuracy
        ``max_i min_j A[i, j]`` and its percentile.
    mixed_advantage:
        ``game_value_accuracy - best_pure_accuracy`` (>= 0 always;
        > 0 iff no saddle point).
    has_saddle_point:
        Whether a pure equilibrium exists in the measured game.
    """

    percentiles: list
    accuracy_matrix: list
    defender_mix: list
    attacker_mix: list
    game_value_accuracy: float
    best_pure_accuracy: float
    best_pure_percentile: float
    mixed_advantage: float
    has_saddle_point: bool
    n_repeats: int = 1
    defender_support: list = field(default_factory=list)

    def support(self, threshold: float = 0.01) -> list:
        """(percentile, probability) pairs with probability above threshold."""
        return [
            (float(p), float(q))
            for p, q in zip(self.percentiles, self.defender_mix)
            if q > threshold
        ]


def build_empirical_game(
    ctx: ExperimentContext,
    percentiles,
    *,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    engine: EvaluationEngine | None = None,
    victim: VictimSpec | None = None,
    defense_kind: str = "radius",
    defense_params=(),
    progress=None,
) -> np.ndarray:
    """Measure the accuracy matrix ``A[filter, attack]`` on a grid.

    The attacker's pure strategy ``p_j`` is the optimal boundary attack
    placing the whole budget at that percentile; the defender's is the
    radius filter at ``p_i`` (or another registered family via
    ``defense_kind``/``defense_params``, its strength swept on the same
    grid).  Entries are averaged over ``n_repeats`` seeded rounds.  The
    full grid is one engine batch — ``k² · n_repeats`` independent
    rounds, cached and parallelised like every other experiment.  For
    defender strategy sets mixing defence *kinds*, see
    :func:`build_cross_family_game`.
    """
    check_fraction(poison_fraction, name="poison_fraction", inclusive_high=False)
    check_positive_int(n_repeats, name="n_repeats")
    return support_accuracy_matrix(
        ctx, percentiles, poison_fraction=poison_fraction, n_repeats=n_repeats,
        seed_label="empirical", engine=resolve_engine(engine), victim=victim,
        defense_kind=defense_kind, defense_params=defense_params,
        progress=progress,
    )


def solve_empirical_game(
    ctx: ExperimentContext,
    *,
    percentiles=None,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    accuracy_matrix: np.ndarray | None = None,
    engine: EvaluationEngine | None = None,
    victim: VictimSpec | None = None,
    progress=None,
) -> EmpiricalGameResult:
    """Measure (or accept) the accuracy matrix and solve it exactly.

    Pass ``accuracy_matrix`` to re-solve an existing measurement (the
    benchmarks do this to separate measurement cost from solve cost).
    """
    if percentiles is None:
        percentiles = np.array([0.0, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30])
    percentiles = np.asarray(percentiles, dtype=float)
    if accuracy_matrix is None:
        accuracy_matrix = build_empirical_game(
            ctx, percentiles, poison_fraction=poison_fraction,
            n_repeats=n_repeats, engine=engine, victim=victim,
            progress=progress,
        )
    accuracy_matrix = np.asarray(accuracy_matrix, dtype=float)
    if accuracy_matrix.shape != (percentiles.size, percentiles.size):
        raise ValueError(
            f"accuracy matrix shape {accuracy_matrix.shape} does not match "
            f"{percentiles.size} percentiles"
        )

    # Attacker = maximising row player on damage = 1 - accuracy, so the
    # defender (columns) minimises damage i.e. maximises accuracy.
    damage = 1.0 - accuracy_matrix.T  # rows: attacker, cols: defender
    game = MatrixGame(damage, row_labels=percentiles.tolist(),
                      col_labels=percentiles.tolist())
    solution = solve_zero_sum_lp(game)

    # Best pure defence: the filter with the highest worst-case accuracy.
    worst_case_acc = accuracy_matrix.min(axis=1)
    best_i = int(np.argmax(worst_case_acc))
    value_acc = 1.0 - solution.value

    return EmpiricalGameResult(
        percentiles=percentiles.tolist(),
        accuracy_matrix=accuracy_matrix.tolist(),
        defender_mix=solution.col_strategy.tolist(),
        attacker_mix=solution.row_strategy.tolist(),
        game_value_accuracy=float(value_acc),
        best_pure_accuracy=float(worst_case_acc[best_i]),
        best_pure_percentile=float(percentiles[best_i]),
        mixed_advantage=float(value_acc - worst_case_acc[best_i]),
        has_saddle_point=game.has_pure_equilibrium(),
        n_repeats=n_repeats,
        defender_support=[
            (float(p), float(q))
            for p, q in zip(percentiles, solution.col_strategy)
            if q > 0.01
        ],
    )


# -- cross-family game ------------------------------------------------------


@dataclass
class CrossGameResult:
    """Solution of a measured game whose strategies span *families*.

    The defender's pure strategies are arbitrary
    :class:`~repro.engine.DefenseSpec`\\ s (mixing defence kinds, not
    just radius percentiles) and the attacker's are arbitrary
    :class:`~repro.engine.AttackSpec`\\ s — the full scenario space the
    paper's framework defines but a percentile grid cannot express.
    Conventions match :class:`EmpiricalGameResult`: entries of
    ``accuracy_matrix[i][j]`` are test accuracies for defence ``i``
    against attack ``j``; the attacker minimises, the defender
    maximises.
    """

    defense_labels: list
    attack_labels: list
    accuracy_matrix: list
    defender_mix: list
    attacker_mix: list
    game_value_accuracy: float
    best_pure_accuracy: float
    best_pure_defense: str
    mixed_advantage: float
    has_saddle_point: bool
    victim: str | None = None
    n_repeats: int = 1

    def support(self, threshold: float = 0.01) -> list:
        """(defence label, probability) pairs above ``threshold``."""
        return [
            (str(label), float(q))
            for label, q in zip(self.defense_labels, self.defender_mix)
            if q > threshold
        ]


def build_cross_family_game(
    ctx: ExperimentContext,
    defenses,
    attacks,
    *,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    victim: VictimSpec | None = None,
    engine: EvaluationEngine | None = None,
    progress=None,
) -> np.ndarray:
    """Measure ``A[defense i, attack j]`` over arbitrary spec lists.

    ``defenses`` is a sequence of :class:`~repro.engine.DefenseSpec`
    (or ``None`` for the undefended baseline); ``attacks`` a sequence
    of :class:`~repro.engine.AttackSpec` (or ``None`` for the clean
    baseline).  Every cell is ``n_repeats`` seeded rounds
    (``derive_seed(ctx.seed, "cross-game", i, j, rep)``) submitted as
    one engine batch, so the whole game parallelises and caches like
    any other experiment.
    """
    check_fraction(poison_fraction, name="poison_fraction", inclusive_high=False)
    check_positive_int(n_repeats, name="n_repeats")
    defenses = list(defenses)
    attacks = list(attacks)
    if not defenses or not attacks:
        raise ValueError("defenses and attacks must be non-empty")
    for d in defenses:
        if d is not None and not isinstance(d, DefenseSpec):
            raise TypeError(f"expected DefenseSpec or None, got {d!r}")
    for a in attacks:
        if a is not None and not isinstance(a, AttackSpec):
            raise TypeError(f"expected AttackSpec or None, got {a!r}")
    engine = resolve_engine(engine)
    specs = [
        RoundSpec(
            defense=d, attack=a, poison_fraction=poison_fraction,
            seed=derive_seed(ctx.seed, "cross-game", i, j, rep),
            victim=victim,
        )
        for i, d in enumerate(defenses)
        for j, a in enumerate(attacks)
        for rep in range(n_repeats)
    ]
    outcomes = engine.evaluate_batch(ctx, specs, progress=progress)
    accuracies = np.array([o.accuracy for o in outcomes], dtype=float)
    return accuracies.reshape(len(defenses), len(attacks), n_repeats).mean(axis=2)


def solve_cross_family_game(
    ctx: ExperimentContext,
    defenses,
    attacks,
    *,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    victim: VictimSpec | None = None,
    accuracy_matrix: np.ndarray | None = None,
    engine: EvaluationEngine | None = None,
    progress=None,
) -> CrossGameResult:
    """Measure (or accept) a cross-family accuracy matrix and solve it.

    The defender's equilibrium mix may now randomise over defence
    *kinds* — e.g. sometimes the radius filter, sometimes the slab —
    which is a strictly richer strategy space than the paper's
    single-family mixed defence.
    """
    defenses = list(defenses)
    attacks = list(attacks)
    if accuracy_matrix is None:
        accuracy_matrix = build_cross_family_game(
            ctx, defenses, attacks, poison_fraction=poison_fraction,
            n_repeats=n_repeats, victim=victim, engine=engine,
            progress=progress,
        )
    accuracy_matrix = np.asarray(accuracy_matrix, dtype=float)
    if accuracy_matrix.shape != (len(defenses), len(attacks)):
        raise ValueError(
            f"accuracy matrix shape {accuracy_matrix.shape} does not match "
            f"{len(defenses)} defenses x {len(attacks)} attacks"
        )
    defense_labels = ["none" if d is None else d.describe() for d in defenses]
    attack_labels = ["clean" if a is None else a.describe() for a in attacks]

    # Attacker = maximising row player on damage = 1 - accuracy.
    damage = 1.0 - accuracy_matrix.T
    game = MatrixGame(damage, row_labels=attack_labels,
                      col_labels=defense_labels)
    solution = solve_zero_sum_lp(game)

    worst_case_acc = accuracy_matrix.min(axis=1)
    best_i = int(np.argmax(worst_case_acc))
    value_acc = 1.0 - solution.value

    return CrossGameResult(
        defense_labels=defense_labels,
        attack_labels=attack_labels,
        accuracy_matrix=accuracy_matrix.tolist(),
        defender_mix=solution.col_strategy.tolist(),
        attacker_mix=solution.row_strategy.tolist(),
        game_value_accuracy=float(value_acc),
        best_pure_accuracy=float(worst_case_acc[best_i]),
        best_pure_defense=defense_labels[best_i],
        mixed_advantage=float(value_acc - worst_case_acc[best_i]),
        has_saddle_point=game.has_pure_equilibrium(),
        victim=None if victim is None else victim.describe(),
        n_repeats=n_repeats,
    )
