"""The empirical poisoning game: measured payoffs, exact solution.

The paper's Algorithm 1 works through the *model* ``U = N·E + Γ``
fitted from sweep measurements.  This module closes the loop without
the model: it tabulates the **measured** test accuracy ``A[i, j]`` for
every (filter percentile ``p_i``, attack percentile ``p_j``) pair on a
grid and solves that finite zero-sum game exactly with the LP solver.

Two facts make this the decisive reproduction artefact for Table 1:

* the defender's pure strategies are rows of the matrix, so the mixed
  equilibrium value can never be *worse* than the best pure strategy's
  guaranteed accuracy — and it is **strictly better iff the measured
  game has no saddle point**, which is the empirical counterpart of
  Proposition 1 (no pure NE);
* the LP's defender mix is the measured-game optimal mixed defence,
  against which Algorithm 1's model-based strategy can be scored.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine import EvaluationEngine, resolve_engine
from repro.experiments.payoff_sweep import support_accuracy_matrix
from repro.experiments.runner import ExperimentContext
from repro.gametheory.lp_solver import solve_zero_sum_lp
from repro.gametheory.matrix_game import MatrixGame
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["EmpiricalGameResult", "build_empirical_game", "solve_empirical_game"]


@dataclass
class EmpiricalGameResult:
    """Solution of the measured poisoning game.

    Accuracy convention: entries of ``accuracy_matrix`` are test
    accuracies; the attacker minimises accuracy, the defender maximises
    it.  (Internally the LP solves the zero-sum game with the attacker
    as the maximising row player on ``1 - accuracy``.)

    Attributes
    ----------
    percentiles:
        The shared strategy grid.
    accuracy_matrix:
        ``A[i, j]`` — measured accuracy when the defender filters at
        ``percentiles[i]`` and the attacker places at ``percentiles[j]``.
    defender_mix, attacker_mix:
        Equilibrium strategies of the measured game.
    game_value_accuracy:
        Expected accuracy at the equilibrium.
    best_pure_accuracy, best_pure_percentile:
        The best *pure* defence's guaranteed accuracy
        ``max_i min_j A[i, j]`` and its percentile.
    mixed_advantage:
        ``game_value_accuracy - best_pure_accuracy`` (>= 0 always;
        > 0 iff no saddle point).
    has_saddle_point:
        Whether a pure equilibrium exists in the measured game.
    """

    percentiles: list
    accuracy_matrix: list
    defender_mix: list
    attacker_mix: list
    game_value_accuracy: float
    best_pure_accuracy: float
    best_pure_percentile: float
    mixed_advantage: float
    has_saddle_point: bool
    n_repeats: int = 1
    defender_support: list = field(default_factory=list)

    def support(self, threshold: float = 0.01) -> list:
        """(percentile, probability) pairs with probability above threshold."""
        return [
            (float(p), float(q))
            for p, q in zip(self.percentiles, self.defender_mix)
            if q > threshold
        ]


def build_empirical_game(
    ctx: ExperimentContext,
    percentiles,
    *,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    engine: EvaluationEngine | None = None,
) -> np.ndarray:
    """Measure the accuracy matrix ``A[filter, attack]`` on a grid.

    The attacker's pure strategy ``p_j`` is the optimal boundary attack
    placing the whole budget at that percentile; the defender's is the
    radius filter at ``p_i``.  Entries are averaged over ``n_repeats``
    seeded rounds.  The full grid is one engine batch — ``k² ·
    n_repeats`` independent rounds, cached and parallelised like every
    other experiment.
    """
    check_fraction(poison_fraction, name="poison_fraction", inclusive_high=False)
    check_positive_int(n_repeats, name="n_repeats")
    return support_accuracy_matrix(
        ctx, percentiles, poison_fraction=poison_fraction, n_repeats=n_repeats,
        seed_label="empirical", engine=resolve_engine(engine),
    )


def solve_empirical_game(
    ctx: ExperimentContext,
    *,
    percentiles=None,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    accuracy_matrix: np.ndarray | None = None,
    engine: EvaluationEngine | None = None,
) -> EmpiricalGameResult:
    """Measure (or accept) the accuracy matrix and solve it exactly.

    Pass ``accuracy_matrix`` to re-solve an existing measurement (the
    benchmarks do this to separate measurement cost from solve cost).
    """
    if percentiles is None:
        percentiles = np.array([0.0, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30])
    percentiles = np.asarray(percentiles, dtype=float)
    if accuracy_matrix is None:
        accuracy_matrix = build_empirical_game(
            ctx, percentiles, poison_fraction=poison_fraction,
            n_repeats=n_repeats, engine=engine,
        )
    accuracy_matrix = np.asarray(accuracy_matrix, dtype=float)
    if accuracy_matrix.shape != (percentiles.size, percentiles.size):
        raise ValueError(
            f"accuracy matrix shape {accuracy_matrix.shape} does not match "
            f"{percentiles.size} percentiles"
        )

    # Attacker = maximising row player on damage = 1 - accuracy, so the
    # defender (columns) minimises damage i.e. maximises accuracy.
    damage = 1.0 - accuracy_matrix.T  # rows: attacker, cols: defender
    game = MatrixGame(damage, row_labels=percentiles.tolist(),
                      col_labels=percentiles.tolist())
    solution = solve_zero_sum_lp(game)

    # Best pure defence: the filter with the highest worst-case accuracy.
    worst_case_acc = accuracy_matrix.min(axis=1)
    best_i = int(np.argmax(worst_case_acc))
    value_acc = 1.0 - solution.value

    return EmpiricalGameResult(
        percentiles=percentiles.tolist(),
        accuracy_matrix=accuracy_matrix.tolist(),
        defender_mix=solution.col_strategy.tolist(),
        attacker_mix=solution.row_strategy.tolist(),
        game_value_accuracy=float(value_acc),
        best_pure_accuracy=float(worst_case_acc[best_i]),
        best_pure_percentile=float(percentiles[best_i]),
        mixed_advantage=float(value_acc - worst_case_acc[best_i]),
        has_saddle_point=game.has_pure_equilibrium(),
        n_repeats=n_repeats,
        defender_support=[
            (float(p), float(q))
            for p, q in zip(percentiles, solution.col_strategy)
            if q > 0.01
        ],
    )
