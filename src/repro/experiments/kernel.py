"""Precomputed per-context geometry — the round kernel's constant part.

Profiling one uncached attack/filter/train/score round shows most of
its time recomputing quantities that never change within a context:

* the clean-data centroid and the distance of every clean training row
  to it (the attack recomputes both on the identical ``X_train`` every
  round, and the filter recomputes the genuine-row distances);
* percentile -> radius conversions (a quantile over the same distance
  vector, once per round for the attack and once for the filter);
* the attacker's surrogate direction (a full victim-model fit on the
  clean data whose result is a deterministic function of the context).

A :class:`ContextKernel` computes each of these once, lazily, and is
cached on the :class:`~repro.experiments.runner.ExperimentContext`
(``ctx.kernel()``).  ``evaluate_configuration`` threads it through the
attack (:class:`~repro.attacks.optimal_boundary.OptimalBoundaryAttack`
accepts it as ``precomputed=``) and the filter stage, where genuine
rows reuse the cached clean distances and only poison rows need fresh
distance computation.

Bit-identity contract
---------------------
Everything the kernel serves is **bit-identical** to computing it from
scratch: per-row distance computations are row-local (``np.linalg.norm``
reduces each row independently), quantiles are order statistics
(independent of input order), and the surrogate direction is a
deterministic function of the clean split and the context seed.  The
equivalence tests in ``tests/experiments/test_round_kernel.py`` enforce
this against a from-scratch reference path.

The kernel is deliberately *not* pickled with its context: it is
derivable, and the engine's process backend instead ships the one
expensive field (the fitted surrogate direction) in its tiny metadata
blob — see :mod:`repro.engine.backends`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.data.geometry import (
    Centroid,
    compute_centroid,
    distances_to_centroid,
    radius_for_percentile,
)
from repro.defenses.radius_filter import ensure_class_survival
from repro.utils.rng import derive_seed

__all__ = ["ContextKernel", "build_context_kernel"]

# Sentinel: "direction not computed yet" (None is a valid computed value,
# meaning the clean data is degenerate and the attack must fall back to
# its seeded random direction).
_UNSET = "unset"


@dataclass
class ContextKernel:
    """Cached clean-data geometry plus the fitted attack direction.

    Attributes
    ----------
    X_train:
        The clean training matrix this kernel describes (held by
        reference; used for an identity check, never copied).
    centroid:
        Clean-data centroid under the context's ``centroid_method``.
    clean_distances:
        Distance of every clean training row to ``centroid``, aligned
        with ``X_train`` rows.
    map_distances:
        The context's :class:`~repro.data.geometry.RadiusPercentileMap`
        distance vector (sorted), kept so filter radii are produced by
        exactly the same lookup as before the kernel existed.
    """

    X_train: np.ndarray
    y_train: np.ndarray
    centroid: Centroid
    clean_distances: np.ndarray
    map_distances: np.ndarray
    surrogate_factory: object = None
    centroid_method: str = "median"
    _direction: object = _UNSET
    _attack_radii: dict = field(default_factory=dict)
    _filter_radii: dict = field(default_factory=dict)
    _slab: object = _UNSET
    _mask_cache: dict = field(default_factory=dict)

    # -- percentile -> radius lookups --------------------------------------

    def attack_radius(self, percentile: float) -> float:
        """Placement radius at ``percentile`` over the clean distances.

        Identical to ``radius_for_percentile`` on a freshly computed
        distance vector (quantiles are order statistics), memoised.
        """
        key = float(percentile)
        r = self._attack_radii.get(key)
        if r is None:
            r = radius_for_percentile(self.clean_distances, key)
            self._attack_radii[key] = r
        return r

    def filter_radius(self, percentile: float) -> float:
        """Filter radius at ``percentile``; memoised
        ``ctx.radius_map.radius`` (same array, same quantile)."""
        key = float(percentile)
        r = self._filter_radii.get(key)
        if r is None:
            r = radius_for_percentile(self.map_distances, key)
            self._filter_radii[key] = r
        return r

    # -- attack direction ---------------------------------------------------

    @property
    def direction(self) -> np.ndarray | None:
        """Unit attack direction of the surrogate fitted on clean data.

        Computed on first access (one victim-model fit per context, the
        single most expensive per-round saving) and ``None`` when the
        clean data is degenerate — the attack then falls back to its
        seeded random direction exactly as the from-scratch path does.
        """
        if isinstance(self._direction, str):
            from repro.attacks.optimal_boundary import surrogate_direction

            self._direction = surrogate_direction(
                self.X_train, self.y_train, self.surrogate_factory()
            )
        return self._direction

    @property
    def direction_computed(self) -> bool:
        """Whether :attr:`direction` has been materialised yet."""
        return not isinstance(self._direction, str)

    def reuse_mask(self, key, compute) -> np.ndarray:
        """Memoise a clean-data keep mask under ``key``, probe-verified.

        A defence whose mask over the *clean* training matrix is a pure
        function of its parameters (e.g. the loss filter's iterative
        trim — no poison, no per-round seed in the computation) may
        serve it from the kernel instead of recomputing per round.
        Trust is earned, not assumed: the first call computes and
        stores, the **second** call recomputes and bit-compares — any
        mismatch permanently disables reuse for ``key`` (every later
        call recomputes sequentially), so a defence whose mask turns
        out not to be round-invariant degrades to exactly the
        from-scratch behaviour instead of serving a wrong mask.
        """
        cached = self._mask_cache.get(key)
        if cached is False:
            # Failed its replay probe once: permanent fallback.
            return np.asarray(compute(), dtype=bool)
        if cached is None:
            mask = np.asarray(compute(), dtype=bool)
            self._mask_cache[key] = ("unverified", mask)
            return mask.copy()
        state, mask = cached
        if state == "unverified":
            replay = np.asarray(compute(), dtype=bool)
            if not np.array_equal(replay, mask):
                self._mask_cache[key] = False
                return replay
            self._mask_cache[key] = ("verified", mask)
        return mask.copy()

    def describes(self, X: np.ndarray) -> bool:
        """``True`` when ``X`` *is* the clean training matrix.

        An identity (not equality) check: the attack only trusts the
        kernel for the exact array the kernel was built from, so a
        kernel-carrying attack applied to any other dataset silently
        falls back to the from-scratch path.
        """
        return X is self.X_train

    # -- per-class slab geometry -------------------------------------------

    def _slab_geometry(self):
        """Lazily computed clean slab geometry, or ``None`` if degenerate.

        Returns ``(class_centroids, axis, midpoint, clean_scores)``:
        the per-class clean centroids ``(mu_pos, mu_neg)``, the unit
        class-centroid axis, its midpoint, and every clean training
        row's absolute displacement along it — the quantities a
        :class:`~repro.defenses.slab_filter.SlabFilter` pinned to the
        clean axis recomputes identically every round.  ``None`` when
        the clean data has fewer than two classes or a zero axis (the
        filter then scores everything zero anyway).
        """
        if isinstance(self._slab, str):
            # Shared with SlabFilter's from-scratch path: the fast
            # path's bit-identity holds because both compute geometry
            # and scores through the same two helpers.
            from repro.defenses.slab_filter import (slab_axis_midpoint,
                                                    slab_displacement)
            from repro.ml.base import signed_labels

            self._slab = None
            y_signed = signed_labels(self.y_train)
            if len(np.unique(y_signed)) == 2:
                mu_pos = compute_centroid(self.X_train[y_signed == 1],
                                          method=self.centroid_method).location
                mu_neg = compute_centroid(self.X_train[y_signed == -1],
                                          method=self.centroid_method).location
                geometry = slab_axis_midpoint(mu_pos, mu_neg)
                if geometry is not None:
                    axis, midpoint = geometry
                    scores = slab_displacement(self.X_train, axis, midpoint)
                    self._slab = ((mu_pos, mu_neg), axis, midpoint, scores)
        return self._slab

    @property
    def class_centroids(self):
        """Clean per-class centroids ``(mu_pos, mu_neg)`` (memoised), or
        ``None`` on degenerate data.  Hand these to a ``SlabFilter`` as
        its ``centroids=`` to pin it to the clean axis — the engine's
        ``slab_filter`` family does exactly that for ``axis="clean"``
        specs, which is what routes its rounds through
        :meth:`slab_scores`."""
        slab = self._slab_geometry()
        return None if slab is None else slab[0]

    @property
    def clean_slab_scores(self) -> np.ndarray | None:
        """Each clean row's slab score along the clean axis (memoised)."""
        slab = self._slab_geometry()
        return None if slab is None else slab[3]

    def slab_scores(self, X_mix, is_poison, sources) -> np.ndarray | None:
        """Slab scores of a mixed matrix, genuine rows served from cache.

        Mirrors :meth:`keep_mask`'s trick for the radius filter: rows
        that came from the clean training set reuse
        :attr:`clean_slab_scores` (scores are row-local — one
        vector dot per row — so reuse is bit-identical); only poison
        rows are scored fresh.  ``None`` when the slab geometry is
        degenerate or ``X_mix`` is not traceable to this kernel's
        training matrix.
        """
        slab = self._slab_geometry()
        if slab is None:
            return None
        _, axis, midpoint, clean_scores = slab
        if sources is None:
            return clean_scores if self.describes(X_mix) else None
        from repro.defenses.slab_filter import slab_displacement

        d = np.empty(X_mix.shape[0], dtype=float)
        genuine = ~is_poison
        d[genuine] = clean_scores[sources[genuine]]
        if is_poison.any():
            d[is_poison] = slab_displacement(X_mix[is_poison], axis, midpoint)
        return d

    # -- filter fast path ---------------------------------------------------

    def keep_mask(
        self,
        X_mix: np.ndarray,
        y_mix: np.ndarray,
        is_poison: np.ndarray,
        sources: np.ndarray | None,
        radius: float,
    ) -> np.ndarray:
        """Radius-filter keep mask reusing the cached clean distances.

        ``sources`` maps each row of ``X_mix`` to its index in the
        pre-shuffle stacked ``[X_train; X_poison]`` array (see
        :func:`repro.attacks.base.poison_dataset`); ``None`` means
        ``X_mix`` is exactly ``X_train``.  Genuine rows reuse
        ``clean_distances``; only poison rows get a fresh distance
        computation — bit-identical to computing every row's distance
        from scratch because row norms are row-local.
        """
        if sources is None:
            keep = self.clean_distances <= radius
        else:
            d = np.empty(X_mix.shape[0], dtype=float)
            genuine = ~is_poison
            d[genuine] = self.clean_distances[sources[genuine]]
            if is_poison.any():
                d[is_poison] = distances_to_centroid(X_mix[is_poison], self.centroid)
            keep = d <= radius
        return ensure_class_survival(keep, y_mix)

    # -- process-backend transport -------------------------------------------

    def export_state(self) -> dict:
        """Small picklable state worth shipping to worker processes.

        Only the expensive-to-recompute field travels: the fitted
        surrogate direction (and only if it has been materialised).
        Geometry is cheap and rebuilt per worker from the shared
        arrays.
        """
        state = {}
        if self.direction_computed:
            state["direction"] = self._direction
        return state


def build_context_kernel(ctx, *, state: dict | None = None) -> ContextKernel:
    """Build the kernel for an experiment context.

    ``state`` optionally pre-fills fields shipped from another process
    (see :meth:`ContextKernel.export_state`).
    """
    centroid = compute_centroid(ctx.X_train, method=ctx.centroid_method)
    kernel = ContextKernel(
        X_train=ctx.X_train,
        y_train=ctx.y_train,
        centroid=centroid,
        clean_distances=distances_to_centroid(ctx.X_train, centroid),
        map_distances=ctx.radius_map.distances,
        centroid_method=ctx.centroid_method,
        # Same construction as ctx.attack_surrogate(), captured without
        # a bound method: the kernel must not hold a back-reference to
        # the context (the context caches the kernel, and a cycle would
        # keep worker shared-memory views alive past refcount death).
        surrogate_factory=partial(ctx.model_factory,
                                  derive_seed(ctx.seed, "attack-surrogate")),
    )
    if state and "direction" in state:
        kernel._direction = state["direction"]
    return kernel
