"""Multi-seed aggregation for the noisy experiment measurements.

The attacked-accuracy measurements are inherently noisy (SGD training,
attack randomness); single-seed Figure-1 curves can wiggle by a point
or two.  This module repeats any harness across seeds and aggregates
mean ± std, which EXPERIMENTS.md uses for its headline numbers and the
tests use to assert the *stability* of the qualitative shapes.

.. deprecated::
    ``run_multi_seed_sweep`` is a deprecation shim; the implementation
    lives in :func:`repro.study.drivers.multi_seed_sweep` and the
    supported surface is ``run_study(studies.multi_seed(...))``.  The
    :class:`AggregatedSweep` record remains here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.engine import EvaluationEngine
from repro.experiments._shims import warn_driver_deprecated
from repro.experiments.results import PureSweepResult
from repro.experiments.runner import ExperimentContext
from repro.utils.rng import derive_seed
from repro.utils.validation import check_positive_int

__all__ = ["AggregatedSweep", "run_multi_seed_sweep", "aggregate_metric"]


@dataclass
class AggregatedSweep:
    """Mean ± std of a pure-strategy sweep across seeds.

    ``acc_clean_mean[i]``/``acc_clean_std[i]`` aggregate the clean
    accuracy at ``percentiles[i]`` over the seeds; likewise for the
    attacked curve.  ``per_seed`` retains the individual results.
    """

    percentiles: np.ndarray
    acc_clean_mean: np.ndarray
    acc_clean_std: np.ndarray
    acc_attacked_mean: np.ndarray
    acc_attacked_std: np.ndarray
    n_seeds: int
    per_seed: list

    @property
    def best_pure(self) -> tuple[float, float]:
        """(percentile, mean accuracy) of the best average pure defence."""
        idx = int(np.argmax(self.acc_attacked_mean))
        return float(self.percentiles[idx]), float(self.acc_attacked_mean[idx])

    def as_sweep_result(self, dataset_name: str = "aggregated") -> PureSweepResult:
        """Collapse to a :class:`PureSweepResult` (means), e.g. for curve
        estimation on the aggregated measurement."""
        first = self.per_seed[0]
        return PureSweepResult(
            percentiles=np.asarray(self.percentiles).tolist(),
            acc_clean=np.asarray(self.acc_clean_mean).tolist(),
            acc_attacked=np.asarray(self.acc_attacked_mean).tolist(),
            n_poison=first.n_poison,
            poison_fraction=first.poison_fraction,
            dataset_name=dataset_name,
            n_repeats=self.n_seeds * first.n_repeats,
        )


def run_multi_seed_sweep(
    *,
    n_seeds: int = 5,
    base_seed: int = 0,
    context_factory: Callable[[int], ExperimentContext] | None = None,
    percentiles=None,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    engine: EvaluationEngine | None = None,
    progress=None,
) -> AggregatedSweep:
    """Run the Figure-1 sweep across ``n_seeds`` independent contexts.

    .. deprecated:: use ``run_study(studies.multi_seed(...))``; a
    custom ``context_factory`` (not expressible as a
    :class:`~repro.study.ContextSpec`) keeps working through this shim.
    """
    warn_driver_deprecated("run_multi_seed_sweep", "multi_seed")
    from repro.study.drivers import multi_seed_sweep

    return multi_seed_sweep(
        n_seeds=n_seeds, base_seed=base_seed, context_factory=context_factory,
        percentiles=percentiles, poison_fraction=poison_fraction,
        n_repeats=n_repeats, engine=engine, progress=progress)


def aggregate_metric(
    fn: Callable[[int], float],
    *,
    n_seeds: int = 5,
    base_seed: int = 0,
    label: str = "metric",
) -> dict:
    """Evaluate ``fn(seed)`` across seeds; return mean/std/min/max.

    A generic helper for aggregating any scalar experiment output
    (e.g. the empirical game's mixed advantage).
    """
    check_positive_int(n_seeds, name="n_seeds")
    values = np.array([
        float(fn(derive_seed(base_seed, label, k))) for k in range(n_seeds)
    ])
    return {
        "mean": float(values.mean()),
        "std": float(values.std()),
        "min": float(values.min()),
        "max": float(values.max()),
        "values": values.tolist(),
    }
