"""The paper's two experiments: the Figure-1 sweep and Table 1.

:func:`run_pure_strategy_sweep` reproduces Figure 1: for every filter
strength on a percentile grid, measure test accuracy (a) clean and
(b) under the optimal attack placed just inside the filter.  The two
curves are the empirical ``Γ`` and ``Γ + N·E`` the paper reads its
algorithm inputs from.

:func:`run_table1_experiment` reproduces Table 1: estimate the curves
from the sweep, run Algorithm 1 for each support size ``n``, and
evaluate the resulting mixed defence against the optimal mixed attack.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.algorithm1 import compute_optimal_defense
from repro.core.game import PayoffCurves
from repro.core.mixed_strategy import MixedDefense
from repro.core.payoff_estimation import estimate_payoff_curves
from repro.experiments.results import MixedStrategyResult, PureSweepResult
from repro.experiments.runner import ExperimentContext, evaluate_configuration
from repro.attacks.base import attack_budget
from repro.utils.rng import derive_seed
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["run_pure_strategy_sweep", "evaluate_mixed_defense", "run_table1_experiment"]


def run_pure_strategy_sweep(
    ctx: ExperimentContext,
    *,
    percentiles=None,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
) -> PureSweepResult:
    """Figure 1: accuracy vs filter strength, clean and under optimal attack.

    The optimal pure attack against a *known* filter at percentile
    ``p`` places every point just inside that radius
    (``OptimalBoundaryAttack(target_percentile=p)``), the paper's
    "place the poisoning points close to the boundary of the filter".
    """
    check_fraction(poison_fraction, name="poison_fraction", inclusive_high=False)
    check_positive_int(n_repeats, name="n_repeats")
    if percentiles is None:
        percentiles = np.array([0.0, 0.01, 0.02, 0.03, 0.05, 0.075, 0.10,
                                0.15, 0.20, 0.25, 0.30, 0.40, 0.50])
    percentiles = np.asarray(percentiles, dtype=float)

    acc_clean = np.zeros_like(percentiles)
    acc_attacked = np.zeros_like(percentiles)
    for i, p in enumerate(percentiles):
        clean_scores, attacked_scores = [], []
        for rep in range(n_repeats):
            seed = derive_seed(ctx.seed, "sweep", i, rep)
            clean_scores.append(
                evaluate_configuration(
                    ctx, filter_percentile=float(p), attack=None, seed=seed
                ).accuracy
            )
            attack = ctx.boundary_attack(float(p))
            attacked_scores.append(
                evaluate_configuration(
                    ctx, filter_percentile=float(p), attack=attack,
                    poison_fraction=poison_fraction, seed=seed,
                ).accuracy
            )
        acc_clean[i] = float(np.mean(clean_scores))
        acc_attacked[i] = float(np.mean(attacked_scores))

    return PureSweepResult(
        percentiles=percentiles.tolist(),
        acc_clean=acc_clean.tolist(),
        acc_attacked=acc_attacked.tolist(),
        n_poison=attack_budget(ctx.n_train, poison_fraction),
        poison_fraction=poison_fraction,
        dataset_name=ctx.dataset_name,
        n_repeats=n_repeats,
    )


def evaluate_mixed_defense(
    ctx: ExperimentContext,
    defense: MixedDefense,
    *,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
) -> tuple[float, float, np.ndarray]:
    """Expected accuracy of a mixed defence under the optimal mixed attack.

    At the equalized defence the attacker is indifferent over
    placements on the support, so the optimal attack is any mixture of
    them (Section 4.2).  We tabulate the full support x support
    accuracy matrix ``A[i, j]`` (defender draws ``p_i``, attacker
    places at ``p_j``), weight rows by the defender's probabilities,
    and take the **attacker's best column** — the worst case for the
    defender, which upper-bounds what any equilibrium attack mixture
    could do.

    Returns ``(expected_accuracy, dispersion, matrix)`` where the
    dispersion is the probability-weighted std of the defender's
    row-accuracies at the attacker's chosen column.
    """
    support = defense.percentiles
    probs = defense.probabilities
    matrix = np.zeros((len(support), len(support)))
    for j, p_attack in enumerate(support):
        attack = ctx.boundary_attack(float(p_attack))
        for i, p_filter in enumerate(support):
            scores = []
            for rep in range(n_repeats):
                seed = derive_seed(ctx.seed, "mixed", i, j, rep)
                scores.append(
                    evaluate_configuration(
                        ctx, filter_percentile=float(p_filter), attack=attack,
                        poison_fraction=poison_fraction, seed=seed,
                    ).accuracy
                )
            matrix[i, j] = float(np.mean(scores))

    expected_by_attack = probs @ matrix  # one value per attacker column
    worst_j = int(np.argmin(expected_by_attack))
    expected_accuracy = float(expected_by_attack[worst_j])
    deviations = matrix[:, worst_j] - expected_accuracy
    dispersion = float(np.sqrt(probs @ deviations**2))
    return expected_accuracy, dispersion, matrix


def run_table1_experiment(
    ctx: ExperimentContext,
    sweep: PureSweepResult,
    *,
    n_radii_values=(2, 3),
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    curves: PayoffCurves | None = None,
    algorithm_kwargs: dict | None = None,
) -> list[MixedStrategyResult]:
    """Table 1: Algorithm 1's mixed defence for each support size.

    ``curves`` may be supplied to reuse a fit; otherwise they are
    estimated from ``sweep`` exactly as the paper does.
    """
    if curves is None:
        curves = estimate_payoff_curves(
            sweep.percentiles, sweep.acc_clean, sweep.acc_attacked, sweep.n_poison
        )
    best_p, best_acc = sweep.best_pure
    results = []
    for n_radii in n_radii_values:
        start = time.perf_counter()
        opt = compute_optimal_defense(
            curves, n_radii, sweep.n_poison, **(algorithm_kwargs or {})
        )
        elapsed = time.perf_counter() - start
        accuracy, dispersion, matrix = evaluate_mixed_defense(
            ctx, opt.defense, poison_fraction=poison_fraction, n_repeats=n_repeats
        )
        results.append(
            MixedStrategyResult(
                n_radii=int(n_radii),
                percentiles=opt.defense.percentiles.tolist(),
                probabilities=opt.defense.probabilities.tolist(),
                accuracy=accuracy,
                accuracy_std=dispersion,
                expected_loss=opt.expected_loss,
                best_pure_accuracy=best_acc,
                best_pure_percentile=best_p,
                accuracy_matrix=matrix.tolist(),
                algorithm_iterations=opt.n_iterations,
                wall_time_seconds=elapsed,
            )
        )
    return results
