"""The paper's two experiments: the Figure-1 sweep and Table 1.

.. deprecated::
    The driver functions here are **deprecation shims**.  The
    implementations moved to :mod:`repro.study.drivers`, and the
    supported surface is the declarative study API: build a
    :class:`~repro.study.StudySpec` with
    :func:`repro.study.studies.figure1` /
    :func:`~repro.study.studies.mixed_eval` /
    :func:`~repro.study.studies.table1` and submit it to
    :func:`repro.study.run_study`.  The shims delegate to the same
    moved implementations, so their outputs — and the engine cache
    keys behind them — are bit-identical to every previous release;
    each call emits one :class:`DeprecationWarning`.
"""

from __future__ import annotations

import numpy as np

from repro.core.game import PayoffCurves
from repro.core.mixed_strategy import MixedDefense
from repro.engine import EvaluationEngine, VictimSpec
from repro.experiments._shims import warn_driver_deprecated
from repro.experiments.results import MixedStrategyResult, PureSweepResult
from repro.experiments.runner import ExperimentContext

__all__ = ["run_pure_strategy_sweep", "evaluate_mixed_defense",
           "run_table1_experiment", "support_accuracy_matrix"]


def support_accuracy_matrix(
    ctx: ExperimentContext,
    support,
    *,
    poison_fraction: float,
    n_repeats: int,
    seed_label: str,
    engine: EvaluationEngine,
    victim: VictimSpec | None = None,
    defense_kind: str = "radius",
    defense_params=(),
    progress=None,
) -> np.ndarray:
    """Measured accuracy matrix ``A[filter i, attack j]`` over a support.

    See :func:`repro.study.drivers.support_accuracy_matrix` (this name
    is kept as a stable alias; it is not deprecated).
    """
    from repro.study.drivers import support_accuracy_matrix as impl

    return impl(ctx, support, poison_fraction=poison_fraction,
                n_repeats=n_repeats, seed_label=seed_label, engine=engine,
                victim=victim, defense_kind=defense_kind,
                defense_params=defense_params, progress=progress)


def run_pure_strategy_sweep(
    ctx: ExperimentContext,
    *,
    percentiles=None,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    engine: EvaluationEngine | None = None,
    victim: VictimSpec | None = None,
    defense_kind: str = "radius",
    defense_params=(),
    progress=None,
) -> PureSweepResult:
    """Figure 1: accuracy vs filter strength, clean and under optimal attack.

    .. deprecated:: use ``run_study(studies.figure1(...))``.
    """
    warn_driver_deprecated("run_pure_strategy_sweep", "figure1")
    from repro.study.drivers import pure_strategy_sweep

    return pure_strategy_sweep(
        ctx, percentiles=percentiles, poison_fraction=poison_fraction,
        n_repeats=n_repeats, engine=engine, victim=victim,
        defense_kind=defense_kind, defense_params=defense_params,
        progress=progress)


def evaluate_mixed_defense(
    ctx: ExperimentContext,
    defense: MixedDefense,
    *,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    engine: EvaluationEngine | None = None,
    victim: VictimSpec | None = None,
    progress=None,
) -> tuple[float, float, np.ndarray]:
    """Expected accuracy of a mixed defence under the optimal mixed attack.

    .. deprecated:: use ``run_study(studies.mixed_eval(...))``.
    """
    warn_driver_deprecated("evaluate_mixed_defense", "mixed_eval")
    from repro.study.drivers import mixed_defense_evaluation

    return mixed_defense_evaluation(
        ctx, defense, poison_fraction=poison_fraction, n_repeats=n_repeats,
        engine=engine, victim=victim, progress=progress)


def run_table1_experiment(
    ctx: ExperimentContext,
    sweep: PureSweepResult,
    *,
    n_radii_values=(2, 3),
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    curves: PayoffCurves | None = None,
    algorithm_kwargs: dict | None = None,
    engine: EvaluationEngine | None = None,
    victim: VictimSpec | None = None,
    progress=None,
) -> list[MixedStrategyResult]:
    """Table 1: Algorithm 1's mixed defence for each support size.

    .. deprecated:: use ``run_study(studies.table1(...))`` (which runs
    the sweep and the mixed evaluations as one study).
    """
    warn_driver_deprecated("run_table1_experiment", "table1")
    from repro.study.drivers import table1_rows

    return table1_rows(
        ctx, sweep, n_radii_values=n_radii_values,
        poison_fraction=poison_fraction, n_repeats=n_repeats, curves=curves,
        algorithm_kwargs=algorithm_kwargs, engine=engine, victim=victim,
        progress=progress)
