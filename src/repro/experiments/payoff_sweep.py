"""The paper's two experiments: the Figure-1 sweep and Table 1.

:func:`run_pure_strategy_sweep` reproduces Figure 1: for every filter
strength on a percentile grid, measure test accuracy (a) clean and
(b) under the optimal attack placed just inside the filter.  The two
curves are the empirical ``Γ`` and ``Γ + N·E`` the paper reads its
algorithm inputs from.

:func:`run_table1_experiment` reproduces Table 1: estimate the curves
from the sweep, run Algorithm 1 for each support size ``n``, and
evaluate the resulting mixed defence against the optimal mixed attack.

All three drivers declare their rounds as
:class:`~repro.engine.RoundSpec` batches and hand them to an
:class:`~repro.engine.EvaluationEngine` (the process-wide default when
``engine`` is ``None``), which dedups them against its content-keyed
cache and fans the remainder out on the configured backend.  Per-round
seeds are pre-derived with :func:`~repro.utils.rng.derive_seed`, so
results are bit-identical across backends and cache states — and
identical to the historical nested-loop implementations.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.algorithm1 import compute_optimal_defense
from repro.core.game import PayoffCurves
from repro.core.mixed_strategy import MixedDefense
from repro.core.payoff_estimation import estimate_payoff_curves
from repro.engine import (AttackSpec, DefenseSpec, EvaluationEngine, RoundSpec,
                          VictimSpec, resolve_engine)
from repro.experiments.results import MixedStrategyResult, PureSweepResult
from repro.experiments.runner import ExperimentContext
from repro.attacks.base import attack_budget
from repro.utils.rng import derive_seed
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["run_pure_strategy_sweep", "evaluate_mixed_defense",
           "run_table1_experiment", "support_accuracy_matrix"]


def _grid_defense(kind: str, percentile: float, params) -> DefenseSpec | None:
    """The defence spec for one grid point of a driver's sweep axis.

    ``kind="radius"`` with no params reproduces the historical
    behaviour exactly (percentile 0 and None are the same (no) filter,
    so both share cache entries — RoundSpec normalises that); other
    kinds reinterpret the grid as that family's strength axis.
    """
    if kind == "radius" and not params and percentile <= 0.0:
        return None
    return DefenseSpec(kind, float(percentile), params)


def support_accuracy_matrix(
    ctx: ExperimentContext,
    support,
    *,
    poison_fraction: float,
    n_repeats: int,
    seed_label: str,
    engine: EvaluationEngine,
    victim: VictimSpec | None = None,
    defense_kind: str = "radius",
    defense_params=(),
    progress=None,
) -> np.ndarray:
    """Measured accuracy matrix ``A[filter i, attack j]`` over a support.

    The shared core of :func:`evaluate_mixed_defense` and the empirical
    game: for every (attack percentile ``p_j``, filter percentile
    ``p_i``, repeat) cell, one boundary-attack round seeded
    ``derive_seed(ctx.seed, seed_label, i, j, rep)``, run as a single
    engine batch and averaged over repeats.  ``victim`` overrides the
    trained model; ``defense_kind``/``defense_params`` reinterpret the
    defender's axis as another registered family's strength;
    ``progress`` is the engine's streaming ``callback(done, total)``.
    """
    support = np.asarray(support, dtype=float)
    k = support.size
    specs = [
        RoundSpec(
            defense=_grid_defense(defense_kind, float(p_filter), defense_params),
            attack=AttackSpec("boundary", float(p_attack)),
            poison_fraction=poison_fraction,
            seed=derive_seed(ctx.seed, seed_label, i, j, rep),
            victim=victim,
        )
        for j, p_attack in enumerate(support)
        for i, p_filter in enumerate(support)
        for rep in range(n_repeats)
    ]
    outcomes = engine.evaluate_batch(ctx, specs, progress=progress)
    accuracies = np.array([o.accuracy for o in outcomes], dtype=float)
    # Batch layout (attack j, filter i, repeat) -> matrix[i, j].
    return accuracies.reshape(k, k, n_repeats).mean(axis=2).T


def run_pure_strategy_sweep(
    ctx: ExperimentContext,
    *,
    percentiles=None,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    engine: EvaluationEngine | None = None,
    victim: VictimSpec | None = None,
    defense_kind: str = "radius",
    defense_params=(),
    progress=None,
) -> PureSweepResult:
    """Figure 1: accuracy vs filter strength, clean and under optimal attack.

    The optimal pure attack against a *known* filter at percentile
    ``p`` places every point just inside that radius
    (``OptimalBoundaryAttack(target_percentile=p)``), the paper's
    "place the poisoning points close to the boundary of the filter".

    One engine batch covers the whole grid: per percentile and repeat,
    a clean round and an attacked round sharing a seed.  Clean rounds
    never consult the contamination rate, so their cache entries are
    shared by sweeps at any ``poison_fraction``.

    ``victim`` swaps the trained model (any registered
    :class:`~repro.engine.VictimSpec` kind); ``defense_kind`` and
    ``defense_params`` sweep another registered defence family's
    strength axis instead of the radius filter's.  ``progress`` is an
    optional ``callback(done, total)``: when given, the batch rides
    the engine's streaming path and the callback fires per round as
    outcomes land (cache hits first) — results are bit-identical
    either way.
    """
    check_fraction(poison_fraction, name="poison_fraction", inclusive_high=False)
    check_positive_int(n_repeats, name="n_repeats")
    if percentiles is None:
        percentiles = np.array([0.0, 0.01, 0.02, 0.03, 0.05, 0.075, 0.10,
                                0.15, 0.20, 0.25, 0.30, 0.40, 0.50])
    percentiles = np.asarray(percentiles, dtype=float)
    engine = resolve_engine(engine)

    specs = []
    for i, p in enumerate(percentiles):
        for rep in range(n_repeats):
            seed = derive_seed(ctx.seed, "sweep", i, rep)
            defense = _grid_defense(defense_kind, float(p), defense_params)
            specs.append(RoundSpec(
                defense=defense, attack=None,
                poison_fraction=poison_fraction, seed=seed, victim=victim,
            ))
            specs.append(RoundSpec(
                defense=defense,
                attack=AttackSpec("boundary", float(p)),
                poison_fraction=poison_fraction, seed=seed, victim=victim,
            ))
    outcomes = engine.evaluate_batch(ctx, specs, progress=progress)

    # Batch layout: (percentile, repeat, [clean, attacked]).
    accuracies = np.array([o.accuracy for o in outcomes], dtype=float)
    accuracies = accuracies.reshape(percentiles.size, n_repeats, 2)
    acc_clean = accuracies[:, :, 0].mean(axis=1)
    acc_attacked = accuracies[:, :, 1].mean(axis=1)

    return PureSweepResult(
        percentiles=percentiles.tolist(),
        acc_clean=acc_clean.tolist(),
        acc_attacked=acc_attacked.tolist(),
        n_poison=attack_budget(ctx.n_train, poison_fraction),
        poison_fraction=poison_fraction,
        dataset_name=ctx.dataset_name,
        n_repeats=n_repeats,
    )


def evaluate_mixed_defense(
    ctx: ExperimentContext,
    defense: MixedDefense,
    *,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    engine: EvaluationEngine | None = None,
    victim: VictimSpec | None = None,
    progress=None,
) -> tuple[float, float, np.ndarray]:
    """Expected accuracy of a mixed defence under the optimal mixed attack.

    At the equalized defence the attacker is indifferent over
    placements on the support, so the optimal attack is any mixture of
    them (Section 4.2).  We tabulate the full support x support
    accuracy matrix ``A[i, j]`` (defender draws ``p_i``, attacker
    places at ``p_j``), weight rows by the defender's probabilities,
    and take the **attacker's best column** — the worst case for the
    defender, which upper-bounds what any equilibrium attack mixture
    could do.

    Returns ``(expected_accuracy, dispersion, matrix)`` where the
    dispersion is the probability-weighted std of the defender's
    row-accuracies at the attacker's chosen column.
    """
    support = defense.percentiles
    probs = defense.probabilities
    matrix = support_accuracy_matrix(
        ctx, support, poison_fraction=poison_fraction, n_repeats=n_repeats,
        seed_label="mixed", engine=resolve_engine(engine), victim=victim,
        progress=progress,
    )

    expected_by_attack = probs @ matrix  # one value per attacker column
    worst_j = int(np.argmin(expected_by_attack))
    expected_accuracy = float(expected_by_attack[worst_j])
    deviations = matrix[:, worst_j] - expected_accuracy
    dispersion = float(np.sqrt(probs @ deviations**2))
    return expected_accuracy, dispersion, matrix


def run_table1_experiment(
    ctx: ExperimentContext,
    sweep: PureSweepResult,
    *,
    n_radii_values=(2, 3),
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    curves: PayoffCurves | None = None,
    algorithm_kwargs: dict | None = None,
    engine: EvaluationEngine | None = None,
    victim: VictimSpec | None = None,
    progress=None,
) -> list[MixedStrategyResult]:
    """Table 1: Algorithm 1's mixed defence for each support size.

    ``curves`` may be supplied to reuse a fit; otherwise they are
    estimated from ``sweep`` exactly as the paper does.  ``engine``
    is threaded into every mixed-defence evaluation, so an equal-seed
    rerun of the whole experiment is served from the engine's cache.
    """
    engine = resolve_engine(engine)
    if curves is None:
        curves = estimate_payoff_curves(
            sweep.percentiles, sweep.acc_clean, sweep.acc_attacked, sweep.n_poison
        )
    best_p, best_acc = sweep.best_pure
    results = []
    for n_radii in n_radii_values:
        start = time.perf_counter()
        opt = compute_optimal_defense(
            curves, n_radii, sweep.n_poison, **(algorithm_kwargs or {})
        )
        elapsed = time.perf_counter() - start
        accuracy, dispersion, matrix = evaluate_mixed_defense(
            ctx, opt.defense, poison_fraction=poison_fraction,
            n_repeats=n_repeats, engine=engine, victim=victim,
            progress=progress,
        )
        results.append(
            MixedStrategyResult(
                n_radii=int(n_radii),
                percentiles=opt.defense.percentiles.tolist(),
                probabilities=opt.defense.probabilities.tolist(),
                accuracy=accuracy,
                accuracy_std=dispersion,
                expected_loss=opt.expected_loss,
                best_pure_accuracy=best_acc,
                best_pure_percentile=best_p,
                accuracy_matrix=matrix.tolist(),
                algorithm_iterations=opt.n_iterations,
                wall_time_seconds=elapsed,
            )
        )
    return results
