"""ASCII rendering of experiment results, mirroring the paper's layout."""

from __future__ import annotations

import numpy as np

from repro.experiments.results import MixedStrategyResult, PureSweepResult

__all__ = ["ascii_table", "format_pure_sweep", "format_table1", "ascii_series"]


def ascii_table(headers, rows, *, title: str | None = None) -> str:
    """Render a simple fixed-width table.

    ``rows`` is an iterable of sequences; every cell is str()-ed.
    """
    headers = [str(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append("| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |")
    lines.append(sep)
    for row in str_rows:
        lines.append("| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |")
    lines.append(sep)
    return "\n".join(lines)


def ascii_series(x, y, *, width: int = 60, height: int = 14,
                 x_label: str = "x", y_label: str = "y") -> str:
    """Tiny terminal scatter/line chart for a (x, y) series."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1 or x.size == 0:
        raise ValueError("x and y must be matching non-empty 1-d arrays")
    x_min, x_max = float(x.min()), float(x.max())
    y_min, y_max = float(y.min()), float(y.max())
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0
    grid = [[" "] * width for _ in range(height)]
    for xi, yi in zip(x, y):
        col = int((xi - x_min) / x_span * (width - 1))
        row = height - 1 - int((yi - y_min) / y_span * (height - 1))
        grid[row][col] = "*"
    lines = [f"{y_label}  [{y_min:.3f} .. {y_max:.3f}]"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}  [{x_min:.3f} .. {x_max:.3f}]")
    return "\n".join(lines)


def format_pure_sweep(result: PureSweepResult) -> str:
    """Figure-1 data as a table plus two terminal charts."""
    rows = [
        (f"{p:.1%}", f"{c:.4f}", f"{a:.4f}")
        for p, c, a in zip(result.percentiles, result.acc_clean, result.acc_attacked)
    ]
    table = ascii_table(
        ["filtered", "accuracy (no attack)", "accuracy (optimal attack)"],
        rows,
        title=(
            f"Figure 1 — pure strategy defence under optimal attack "
            f"({result.dataset_name}, {result.poison_fraction:.0%} poisoning, "
            f"N={result.n_poison})"
        ),
    )
    best_p, best_acc = result.best_pure
    chart = ascii_series(
        result.percentiles, result.acc_attacked,
        x_label="fraction removed by filter", y_label="accuracy under attack",
    )
    return (
        f"{table}\n\nbest pure defence: remove {best_p:.1%} "
        f"-> accuracy {best_acc:.4f}\n\n{chart}"
    )


def format_table1(results: list[MixedStrategyResult]) -> str:
    """Table 1 in the paper's layout (one column block per n)."""
    blocks = []
    for res in results:
        radii = "  ".join(f"{p:.1%}" for p in res.percentiles)
        probs = "  ".join(f"{q:.1%}" for q in res.probabilities)
        blocks.append(
            ascii_table(
                ["field", f"n = {res.n_radii}"],
                [
                    ("radii (percentile)", radii),
                    ("probability", probs),
                    ("accuracy", f"{res.accuracy:.1%}"),
                    ("best pure accuracy", f"{res.best_pure_accuracy:.1%}"),
                    ("expected loss (model units)", f"{res.expected_loss:.5f}"),
                    ("algorithm iterations", str(res.algorithm_iterations)),
                ],
                title=f"Table 1 — mixed strategy defence under optimal attack (n={res.n_radii})",
            )
        )
    return "\n\n".join(blocks)
