"""ASCII rendering of experiment results, mirroring the paper's layout."""

from __future__ import annotations

import numpy as np

from repro.experiments.results import MixedStrategyResult, PureSweepResult

__all__ = ["ascii_table", "format_pure_sweep", "format_table1", "ascii_series",
           "format_engine_stats", "format_telemetry_summary",
           "format_cross_game",
           "format_empirical_game", "format_mixed_eval",
           "format_aggregated_sweep", "format_grid_result"]


def ascii_table(headers, rows, *, title: str | None = None) -> str:
    """Render a simple fixed-width table.

    ``rows`` is an iterable of sequences; every cell is str()-ed.
    """
    headers = [str(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append("| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |")
    lines.append(sep)
    for row in str_rows:
        lines.append("| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |")
    lines.append(sep)
    return "\n".join(lines)


def ascii_series(x, y, *, width: int = 60, height: int = 14,
                 x_label: str = "x", y_label: str = "y") -> str:
    """Tiny terminal scatter/line chart for a (x, y) series."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1 or x.size == 0:
        raise ValueError("x and y must be matching non-empty 1-d arrays")
    x_min, x_max = float(x.min()), float(x.max())
    y_min, y_max = float(y.min()), float(y.max())
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0
    grid = [[" "] * width for _ in range(height)]
    for xi, yi in zip(x, y):
        col = int((xi - x_min) / x_span * (width - 1))
        row = height - 1 - int((yi - y_min) / y_span * (height - 1))
        grid[row][col] = "*"
    lines = [f"{y_label}  [{y_min:.3f} .. {y_max:.3f}]"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}  [{x_min:.3f} .. {x_max:.3f}]")
    return "\n".join(lines)


def format_pure_sweep(result: PureSweepResult) -> str:
    """Figure-1 data as a table plus two terminal charts."""
    rows = [
        (f"{p:.1%}", f"{c:.4f}", f"{a:.4f}")
        for p, c, a in zip(result.percentiles, result.acc_clean, result.acc_attacked)
    ]
    table = ascii_table(
        ["filtered", "accuracy (no attack)", "accuracy (optimal attack)"],
        rows,
        title=(
            f"Figure 1 — pure strategy defence under optimal attack "
            f"({result.dataset_name}, {result.poison_fraction:.0%} poisoning, "
            f"N={result.n_poison})"
        ),
    )
    best_p, best_acc = result.best_pure
    chart = ascii_series(
        result.percentiles, result.acc_attacked,
        x_label="fraction removed by filter", y_label="accuracy under attack",
    )
    return (
        f"{table}\n\nbest pure defence: remove {best_p:.1%} "
        f"-> accuracy {best_acc:.4f}\n\n{chart}"
    )


def format_engine_stats(engine) -> str:
    """Engine telemetry for an experiment summary.

    One summary block (backend, rounds computed, cache
    hits/misses/evictions) plus a per-batch table with each batch's
    backend and wall time, so a report always says how its numbers
    were produced.
    """
    stats = engine.stats
    rows = [
        ("backend", stats["backend"]),
        ("rounds computed", str(stats["rounds_computed"])),
        ("batches run", str(stats["batches_run"])),
        ("total batch wall time", f"{stats['batch_seconds']:.3f}s"),
    ]
    if "cache_hits" in stats:
        rows += [
            ("cache hits", str(stats["cache_hits"])),
            ("cache misses", str(stats["cache_misses"])),
            ("cache evictions", str(stats["cache_evictions"])),
            ("cache entries", str(stats["cache_entries"])),
            ("cache hit rate", f"{stats['cache_hit_rate']:.1%}"),
        ]
    else:
        rows.append(("cache", "off"))
    if "placement_hits" in stats:
        # Cluster telemetry: present only when at least one batch ran
        # on the cluster backend with placement/shard-cache reporting.
        rows += [
            ("cluster chunks", str(stats.get("chunks", 0))),
            ("cluster placed rounds", str(stats.get("placed_rounds", 0))),
            ("cluster placement hits", str(stats["placement_hits"])),
            ("cluster shard-cache hits", str(stats["shard_cache_hits"])),
            ("cluster placed-chunk steals", str(stats["placed_steals"])),
            ("cluster chunk requeues", str(stats.get("requeues", 0))),
            ("cluster shard rejoins", str(stats.get("rejoins", 0))),
        ]
    summary = ascii_table(["engine", "value"], rows, title="Engine stats")
    if not engine.batch_log:
        return summary
    batch_rows = [
        (str(b["batch"]), b["backend"], str(b["n_specs"]), str(b["n_unique"]),
         str(b["computed"]), str(b["cache_hits"]), f"{b['seconds'] * 1e3:.1f}")
        for b in engine.batch_log
    ]
    batches = ascii_table(
        ["batch", "backend", "specs", "unique", "computed", "cached", "ms"],
        batch_rows,
    )
    return f"{summary}\n{batches}"


def format_telemetry_summary(summary: dict) -> str:
    """A study's ``extras["telemetry"]`` block as readable tables.

    Renders the per-stage time breakdown (one row per traced span
    name, with total/mean wall time and share of the traced total)
    followed by the non-zero counters.  ``summary`` is what
    :func:`repro.telemetry.summary` produced at run time — this never
    touches the live registry, so it works on archived results.
    """
    schema = summary.get("schema")
    stages = summary.get("stages", {}) or {}
    counters = summary.get("counters", {}) or {}
    parts = []
    if stages:
        traced_total = sum(s.get("seconds", 0.0) for s in stages.values())
        stage_rows = []
        for name in sorted(stages, key=lambda n: -stages[n].get("seconds", 0)):
            stage = stages[name]
            count = int(stage.get("count", 0))
            seconds = float(stage.get("seconds", 0.0))
            mean_ms = seconds / count * 1e3 if count else 0.0
            share = seconds / traced_total if traced_total else 0.0
            stage_rows.append((name, str(count), f"{seconds:.3f}",
                               f"{mean_ms:.1f}", f"{share:.1%}"))
        parts.append(ascii_table(
            ["stage", "spans", "total s", "mean ms", "share"], stage_rows,
            title=f"Telemetry — per-stage breakdown (schema v{schema})"))
    else:
        parts.append(f"Telemetry (schema v{schema}): no stage timings "
                     f"recorded")
    nonzero = [(name, str(counters[name]))
               for name in sorted(counters) if counters[name]]
    if nonzero:
        parts.append(ascii_table(["counter", "value"], nonzero,
                                 title="Telemetry counters"))
    return "\n\n".join(parts)


def format_cross_game(result) -> str:
    """A :class:`~repro.experiments.empirical_game.CrossGameResult` as
    the accuracy matrix plus the equilibrium mixes."""
    matrix = np.asarray(result.accuracy_matrix, dtype=float)
    rows = [
        (label, *(f"{a:.4f}" for a in matrix[i]), f"{q:.1%}")
        for i, (label, q) in enumerate(zip(result.defense_labels,
                                           result.defender_mix))
    ]
    table = ascii_table(
        ["defense \\ attack", *result.attack_labels, "P(defense)"],
        rows,
        title="Cross-family empirical game — measured accuracy",
    )
    attacker = "  ".join(
        f"{label}:{q:.1%}"
        for label, q in zip(result.attack_labels, result.attacker_mix)
        if q > 0.01
    )
    lines = [
        table,
        f"attacker equilibrium mix:  {attacker or '(degenerate)'}",
        f"game value (accuracy):     {result.game_value_accuracy:.4f}",
        f"best pure defense:         {result.best_pure_defense} -> "
        f"{result.best_pure_accuracy:.4f}",
        f"mixed advantage:           {result.mixed_advantage:+.4f}",
        f"saddle point exists:       {result.has_saddle_point}",
    ]
    if result.victim:
        lines.insert(1, f"victim model:              {result.victim}")
    return "\n".join(lines)


def format_empirical_game(result) -> str:
    """An :class:`~repro.experiments.empirical_game.EmpiricalGameResult`
    as the equilibrium defence table plus the game summary lines."""
    rows = [(f"{p:.1%}", f"{q:.1%}")
            for p, q in zip(result.percentiles, result.defender_mix)]
    table = ascii_table(["filter percentile", "probability"], rows,
                        title="Measured-game equilibrium defence")
    return "\n".join([
        table,
        f"game value (accuracy): {result.game_value_accuracy:.4f}",
        f"best pure defence:     {result.best_pure_percentile:.1%} -> "
        f"{result.best_pure_accuracy:.4f}",
        f"mixed advantage:       {result.mixed_advantage:+.4f}",
        f"saddle point exists:   {result.has_saddle_point}",
    ])


def format_mixed_eval(result) -> str:
    """A :class:`~repro.experiments.results.MixedEvalResult` as the
    evaluated strategy plus its worst-case expected accuracy."""
    rows = [(f"{p:.1%}", f"{q:.1%}")
            for p, q in zip(result.percentiles, result.probabilities)]
    table = ascii_table(["filter percentile", "probability"], rows,
                        title="Mixed defence under the optimal mixed attack")
    return "\n".join([
        table,
        f"expected accuracy (worst attack column): "
        f"{result.expected_accuracy:.4f}",
        f"dispersion:                              {result.dispersion:.4f}",
        f"poison fraction:                         "
        f"{result.poison_fraction:.0%}",
    ])


def format_aggregated_sweep(agg) -> str:
    """An :class:`~repro.experiments.multi_seed.AggregatedSweep` as a
    mean ± std table over the percentile grid."""
    rows = [
        (f"{float(p):.1%}", f"{float(cm):.4f} ± {float(cs):.4f}",
         f"{float(am):.4f} ± {float(as_):.4f}")
        for p, cm, cs, am, as_ in zip(
            agg.percentiles, agg.acc_clean_mean, agg.acc_clean_std,
            agg.acc_attacked_mean, agg.acc_attacked_std)
    ]
    table = ascii_table(
        ["filtered", "accuracy (no attack)", "accuracy (optimal attack)"],
        rows,
        title=f"Multi-seed sweep — mean ± std over {agg.n_seeds} seeds",
    )
    best_p, best_acc = agg.best_pure
    return (f"{table}\n\nbest average pure defence: remove {best_p:.1%} "
            f"-> accuracy {best_acc:.4f}")


def format_grid_result(result) -> str:
    """A :class:`~repro.experiments.results.GridResult` as one accuracy
    table per (victim, fraction) slice."""
    tensor = np.asarray(result.accuracy, dtype=float)
    blocks = []
    for k, victim in enumerate(result.victim_labels):
        for l, fraction in enumerate(result.fractions):
            rows = [
                (label, *(f"{a:.4f}" for a in tensor[i, :, k, l]))
                for i, label in enumerate(result.defense_labels)
            ]
            blocks.append(ascii_table(
                ["defense \\ attack", *result.attack_labels],
                rows,
                title=(f"Scenario grid — measured accuracy "
                       f"(victim {victim}, {fraction:.0%} poisoning)"),
            ))
    return "\n\n".join(blocks)


def format_table1(results: list[MixedStrategyResult]) -> str:
    """Table 1 in the paper's layout (one column block per n)."""
    blocks = []
    for res in results:
        radii = "  ".join(f"{p:.1%}" for p in res.percentiles)
        probs = "  ".join(f"{q:.1%}" for q in res.probabilities)
        blocks.append(
            ascii_table(
                ["field", f"n = {res.n_radii}"],
                [
                    ("radii (percentile)", radii),
                    ("probability", probs),
                    ("accuracy", f"{res.accuracy:.1%}"),
                    ("best pure accuracy", f"{res.best_pure_accuracy:.1%}"),
                    ("expected loss (model units)", f"{res.expected_loss:.5f}"),
                    ("algorithm iterations", str(res.algorithm_iterations)),
                ],
                title=f"Table 1 — mixed strategy defence under optimal attack (n={res.n_radii})",
            )
        )
    return "\n\n".join(blocks)
