"""Serialisable experiment result records.

Every harness returns one of these dataclasses; they round-trip through
JSON so benchmark runs can archive their numbers next to the paper's
(EXPERIMENTS.md is generated from them).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np

__all__ = [
    "PureSweepResult",
    "MixedStrategyResult",
    "Table1Row",
    "results_to_json",
    "results_from_json",
]


def _listify(obj):
    """Recursively convert numpy containers to plain Python for JSON."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, dict):
        return {k: _listify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_listify(v) for v in obj]
    return obj


@dataclass
class PureSweepResult:
    """Figure-1 data: pure-strategy defence under optimal attack.

    Attributes
    ----------
    percentiles:
        Filter strengths swept (fraction of genuine data removed).
    acc_clean:
        Test accuracy with each filter, **no attack** — the collateral
    acc_attacked:
        Test accuracy with each filter under the optimal boundary
        attack that survives it.
    n_poison:
        Attack budget used.
    poison_fraction:
        Contamination rate of the training set.
    dataset_name:
        Data provenance.
    n_repeats:
        Averaging repetitions per grid point.
    """

    percentiles: list
    acc_clean: list
    acc_attacked: list
    n_poison: int
    poison_fraction: float
    dataset_name: str
    n_repeats: int = 1

    @property
    def best_pure(self) -> tuple[float, float]:
        """(percentile, accuracy) of the best pure defence under attack."""
        idx = int(np.argmax(self.acc_attacked))
        return float(self.percentiles[idx]), float(self.acc_attacked[idx])

    @property
    def clean_baseline(self) -> float:
        """Unfiltered, unattacked accuracy."""
        return float(self.acc_clean[0])


@dataclass
class MixedStrategyResult:
    """Table-1 data for one support size ``n``.

    ``accuracy`` is the expected test accuracy of the mixed defence
    under the optimal (indifferent) attack; ``accuracy_matrix[i][j]``
    is the accuracy when the defender draws support point ``i`` and the
    attacker places at support point ``j``.
    """

    n_radii: int
    percentiles: list
    probabilities: list
    accuracy: float
    accuracy_std: float
    expected_loss: float
    best_pure_accuracy: float
    best_pure_percentile: float
    accuracy_matrix: list = field(default_factory=list)
    algorithm_iterations: int = 0
    wall_time_seconds: float = 0.0


@dataclass
class Table1Row:
    """One column block of the paper's Table 1."""

    n_radii: int
    radii_percent: list
    probabilities_percent: list
    accuracy_percent: float


def results_to_json(result, path: str | None = None) -> str:
    """Serialise a result dataclass (with its type tag) to JSON."""
    payload = {"type": type(result).__name__, "data": _listify(asdict(result))}
    text = json.dumps(payload, indent=2)
    if path is not None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
    return text


_RESULT_TYPES = {cls.__name__: cls for cls in (PureSweepResult, MixedStrategyResult, Table1Row)}


def results_from_json(text_or_path: str):
    """Inverse of :func:`results_to_json` (accepts a path or raw JSON)."""
    if text_or_path.lstrip().startswith("{"):
        payload = json.loads(text_or_path)
    else:
        with open(text_or_path, encoding="utf-8") as f:
            payload = json.load(f)
    cls = _RESULT_TYPES.get(payload.get("type"))
    if cls is None:
        raise ValueError(f"unknown result type {payload.get('type')!r}")
    return cls(**payload["data"])
