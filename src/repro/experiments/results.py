"""Serialisable experiment result records.

Every harness returns one of these dataclasses; they round-trip through
JSON so benchmark runs can archive their numbers next to the paper's
(EXPERIMENTS.md is generated from them).

The registry behind :func:`results_from_json` covers *every* result
type the drivers produce — the three PR-0 records defined here plus
:class:`~repro.experiments.empirical_game.EmpiricalGameResult`,
:class:`~repro.experiments.empirical_game.CrossGameResult` and
:class:`~repro.experiments.multi_seed.AggregatedSweep` (whose ndarray
and nested fields use a custom codec).  The study layer's
:class:`~repro.study.result.StudyResult` embeds results through the
same codec (:func:`result_to_payload` / :func:`result_from_payload`),
so an archived study renders with exactly the reporting the live run
used.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np

__all__ = [
    "PureSweepResult",
    "MixedStrategyResult",
    "Table1Row",
    "MixedEvalResult",
    "GridResult",
    "results_to_json",
    "results_from_json",
    "result_to_payload",
    "result_from_payload",
]


def _listify(obj):
    """Recursively convert numpy containers to plain Python for JSON."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, dict):
        return {k: _listify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_listify(v) for v in obj]
    return obj


@dataclass
class PureSweepResult:
    """Figure-1 data: pure-strategy defence under optimal attack.

    Attributes
    ----------
    percentiles:
        Filter strengths swept (fraction of genuine data removed).
    acc_clean:
        Test accuracy with each filter, **no attack** — the collateral
    acc_attacked:
        Test accuracy with each filter under the optimal boundary
        attack that survives it.
    n_poison:
        Attack budget used.
    poison_fraction:
        Contamination rate of the training set.
    dataset_name:
        Data provenance.
    n_repeats:
        Averaging repetitions per grid point.
    """

    percentiles: list
    acc_clean: list
    acc_attacked: list
    n_poison: int
    poison_fraction: float
    dataset_name: str
    n_repeats: int = 1

    @property
    def best_pure(self) -> tuple[float, float]:
        """(percentile, accuracy) of the best pure defence under attack."""
        idx = int(np.argmax(self.acc_attacked))
        return float(self.percentiles[idx]), float(self.acc_attacked[idx])

    @property
    def clean_baseline(self) -> float:
        """Unfiltered, unattacked accuracy."""
        return float(self.acc_clean[0])


@dataclass
class MixedStrategyResult:
    """Table-1 data for one support size ``n``.

    ``accuracy`` is the expected test accuracy of the mixed defence
    under the optimal (indifferent) attack; ``accuracy_matrix[i][j]``
    is the accuracy when the defender draws support point ``i`` and the
    attacker places at support point ``j``.
    """

    n_radii: int
    percentiles: list
    probabilities: list
    accuracy: float
    accuracy_std: float
    expected_loss: float
    best_pure_accuracy: float
    best_pure_percentile: float
    accuracy_matrix: list = field(default_factory=list)
    algorithm_iterations: int = 0
    wall_time_seconds: float = 0.0


@dataclass
class Table1Row:
    """One column block of the paper's Table 1."""

    n_radii: int
    radii_percent: list
    probabilities_percent: list
    accuracy_percent: float


@dataclass
class MixedEvalResult:
    """One mixed defence evaluated under the optimal mixed attack.

    The record form of the historical ``evaluate_mixed_defense`` tuple
    ``(expected_accuracy, dispersion, matrix)``, plus the strategy it
    evaluated — what the ``mixed_eval`` study kind archives.
    """

    percentiles: list
    probabilities: list
    expected_accuracy: float
    dispersion: float
    accuracy_matrix: list
    poison_fraction: float = 0.2
    n_repeats: int = 1


@dataclass
class GridResult:
    """The measured accuracy tensor of a raw scenario-grid study.

    ``accuracy[i][j][k][l]`` is the mean test accuracy for defence
    ``defense_labels[i]`` against attack ``attack_labels[j]`` on victim
    ``victim_labels[k]`` at contamination rate ``fractions[l]``.
    """

    defense_labels: list
    attack_labels: list
    victim_labels: list
    fractions: list
    accuracy: list
    n_repeats: int = 1
    dataset_name: str = ""


def results_to_json(result, path: str | None = None) -> str:
    """Serialise a result dataclass (with its type tag) to JSON."""
    payload = result_to_payload(result)
    text = json.dumps(payload, indent=2)
    if path is not None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
    return text


def _aggregated_to_data(agg) -> dict:
    return {
        "percentiles": _listify(agg.percentiles),
        "acc_clean_mean": _listify(agg.acc_clean_mean),
        "acc_clean_std": _listify(agg.acc_clean_std),
        "acc_attacked_mean": _listify(agg.acc_attacked_mean),
        "acc_attacked_std": _listify(agg.acc_attacked_std),
        "n_seeds": int(agg.n_seeds),
        "per_seed": [_listify(asdict(s)) for s in agg.per_seed],
    }


def _aggregated_from_data(data: dict):
    from repro.experiments.multi_seed import AggregatedSweep

    return AggregatedSweep(
        percentiles=np.asarray(data["percentiles"], dtype=float),
        acc_clean_mean=np.asarray(data["acc_clean_mean"], dtype=float),
        acc_clean_std=np.asarray(data["acc_clean_std"], dtype=float),
        acc_attacked_mean=np.asarray(data["acc_attacked_mean"], dtype=float),
        acc_attacked_std=np.asarray(data["acc_attacked_std"], dtype=float),
        n_seeds=int(data["n_seeds"]),
        per_seed=[PureSweepResult(**s) for s in data["per_seed"]],
    )


def _result_codecs() -> dict:
    """Type name -> (encode, decode); imported lazily to avoid cycles."""
    from repro.experiments.empirical_game import (CrossGameResult,
                                                  EmpiricalGameResult)
    from repro.experiments.multi_seed import AggregatedSweep

    def plain(cls):
        return (lambda r: _listify(asdict(r)), lambda d: cls(**d))

    codecs = {
        cls.__name__: plain(cls)
        for cls in (PureSweepResult, MixedStrategyResult, Table1Row,
                    MixedEvalResult, GridResult, EmpiricalGameResult,
                    CrossGameResult)
    }
    codecs[AggregatedSweep.__name__] = (_aggregated_to_data,
                                        _aggregated_from_data)
    return codecs


def result_to_payload(result) -> dict:
    """``{"type": ..., "data": ...}`` form of any result dataclass.

    Registered types use their codec; any other dataclass falls back to
    a plain ``asdict`` dump (it will serialise, but only registered
    types load back through :func:`result_from_payload`).
    """
    name = type(result).__name__
    codecs = _result_codecs()
    if name not in codecs:
        return {"type": name, "data": _listify(asdict(result))}
    encode, _ = codecs[name]
    return {"type": name, "data": encode(result)}


def result_from_payload(payload: dict):
    """Inverse of :func:`result_to_payload`."""
    codecs = _result_codecs()
    name = payload.get("type")
    if name not in codecs:
        raise ValueError(f"unknown result type {name!r}; registered: "
                         f"{sorted(codecs)}")
    _, decode = codecs[name]
    return decode(payload["data"])


def results_from_json(text_or_path: str):
    """Inverse of :func:`results_to_json` (accepts a path or raw JSON)."""
    from repro.utils.serialization import read_json_document

    return result_from_payload(read_json_document(text_or_path))
