"""Seeded end-to-end experiment pipeline.

An :class:`ExperimentContext` freezes everything both players share:
the scaled train/test split, the genuine distance geometry (the
radius <-> percentile map) and the victim-model factory.
:func:`evaluate_configuration` then plays one round of the game —
attack, filter, train, score — deterministically for a given seed.

Idealisation note (documented in DESIGN.md): experiment filters are
parameterised by *genuine-data* percentile and realised as a
:class:`~repro.defenses.RadiusFilter` with the radius looked up in the
genuine map, matching the paper's identification of "percentage removed
by the filter" with "1 - percentile of poisoning data".  The
operational :class:`~repro.defenses.PercentileFilter` (quantile on the
contaminated set) is compared against this idealisation in the
ablation benchmarks.

As of the round-kernel change the experiment filter is centred on the
**clean-data** centroid — the paper's literal "hypersphere centered at
the centroid of the original dataset" — which both players share (the
optimal attack always measured placement from the clean centroid).
This also lets every round reuse the genuine rows' precomputed
distances; see :mod:`repro.experiments.kernel`.  The
contaminated-centroid estimate remains available through
:class:`~repro.defenses.RadiusFilter` used standalone.
"""

from __future__ import annotations

import hashlib
import uuid
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import telemetry
from repro.attacks.base import PoisoningAttack, poison_dataset
from repro.data.geometry import RadiusPercentileMap, compute_centroid, distances_to_centroid
from repro.data.spambase import load_spambase
from repro.data.synthetic import make_gaussian_blobs
from repro.defenses.base import DefenseReport, defense_report
from repro.defenses.radius_filter import RadiusFilter
from repro.ml.base import BaseEstimator
from repro.ml.linear_svm import LinearSVM
from repro.ml.model_selection import train_test_split
from repro.ml.preprocessing import RobustScaler, StandardScaler
from repro.utils.rng import as_generator, derive_seed
from repro.utils.validation import check_canonical_params, check_fraction

__all__ = [
    "ExperimentContext",
    "SVMVictimFactory",
    "VictimFactory",
    "make_spambase_context",
    "make_synthetic_context",
    "make_context",
    "save_context",
    "load_context",
    "evaluate_configuration",
    "prepare_configuration",
    "finish_configuration",
    "PreparedRound",
    "EvaluationOutcome",
]


@dataclass(frozen=True)
class SVMVictimFactory:
    """Picklable ``factory(seed) -> LinearSVM`` victim builder.

    A plain dataclass (rather than a closure) so experiment contexts
    can cross process boundaries for the engine's parallel backends,
    and so the factory has a stable repr to fold into the context's
    content fingerprint.
    """

    reg: float = 1e-4
    epochs: int = 120
    batch_size: int = 128

    def __call__(self, seed: int) -> BaseEstimator:
        return LinearSVM(reg=self.reg, epochs=self.epochs,
                         batch_size=self.batch_size, seed=seed)


@dataclass(frozen=True)
class VictimFactory:
    """Picklable ``factory(seed) -> BaseEstimator`` for any victim kind.

    The generic counterpart of :class:`SVMVictimFactory`, covering the
    full model zoo the engine's :class:`~repro.engine.VictimSpec` can
    name: ``"svm"``, ``"logistic"``, ``"perceptron"``, ``"ridge"`` and
    ``"naive_bayes"``.  ``params`` are constructor overrides
    (canonicalised to a sorted tuple of pairs, like spec params);
    seeded trainers receive the per-round model seed at call time,
    deterministic ones ignore it.  A plain frozen dataclass so the
    factory pickles for process backends and has the stable repr the
    context fingerprint requires.
    """

    kind: str = "svm"
    params: tuple = ()

    def __post_init__(self):
        object.__setattr__(
            self, "params",
            check_canonical_params(self.params, name="victim params"))
        if self.kind not in _VICTIM_KINDS:
            raise ValueError(
                f"unknown victim kind {self.kind!r}; choose from "
                f"{sorted(_VICTIM_KINDS)}"
            )

    def __call__(self, seed: int) -> BaseEstimator:
        return _VICTIM_KINDS[self.kind](dict(self.params), seed)


def _victim_svm(params: dict, seed: int) -> BaseEstimator:
    return LinearSVM(
        reg=float(params.get("reg", 1e-4)),
        epochs=int(params.get("epochs", 120)),
        batch_size=int(params.get("batch_size", 128)),
        seed=seed,
    )


def _victim_logistic(params: dict, seed: int) -> BaseEstimator:
    from repro.ml.logistic import LogisticRegression

    return LogisticRegression(**params)


def _victim_perceptron(params: dict, seed: int) -> BaseEstimator:
    from repro.ml.perceptron import Perceptron

    return Perceptron(
        epochs=int(params.get("epochs", 20)),
        seed=seed,
        average=bool(params.get("average", True)),
    )


def _victim_ridge(params: dict, seed: int) -> BaseEstimator:
    from repro.ml.ridge import RidgeClassifier

    return RidgeClassifier(**params)


def _victim_naive_bayes(params: dict, seed: int) -> BaseEstimator:
    from repro.ml.naive_bayes import GaussianNaiveBayes

    return GaussianNaiveBayes(**params)


_VICTIM_KINDS = {
    "svm": _victim_svm,
    "logistic": _victim_logistic,
    "perceptron": _victim_perceptron,
    "ridge": _victim_ridge,
    "naive_bayes": _victim_naive_bayes,
}


def _default_model_factory_for(n_train: int) -> Callable[[int], BaseEstimator]:
    """The paper's victim: a hinge-loss linear SVM.

    The epoch count is scaled so the total number of Pegasos steps is
    roughly constant (~500) regardless of the context's training-set
    size; the game's attack/defence trade-off depends on how converged
    the victim is, so holding optimisation effort fixed keeps
    subsampled contexts faithful to the full-size experiment.
    """
    batch_size = 128
    steps_per_epoch = max(1, n_train // batch_size)
    epochs = int(np.clip(round(500 / steps_per_epoch), 10, 120))
    return SVMVictimFactory(reg=1e-4, epochs=epochs, batch_size=batch_size)


def _factory_signature(factory) -> str | None:
    """A stable textual identity for a model factory, or ``None``.

    Dataclass factories (e.g. :class:`SVMVictimFactory`) expose their
    full configuration through ``repr``.  Closures and other objects
    whose repr embeds a memory address are *opaque*: their captured
    hyperparameters are invisible, so no stable signature exists —
    ``None`` tells the fingerprint to refuse any identity claim for
    them.
    """
    sig = getattr(factory, "signature", None)
    if callable(sig):
        return str(sig())
    r = repr(factory)
    return None if " at 0x" in r else r


@dataclass
class ExperimentContext:
    """Frozen experimental setting shared by every configuration.

    Attributes
    ----------
    X_train, y_train, X_test, y_test:
        Scaled, split data (scaler fitted on the training portion only).
    radius_map:
        Genuine-data radius <-> percentile correspondence, computed
        around the robust (median) centroid of the clean training set.
    model_factory:
        ``model_factory(seed) -> BaseEstimator`` producing fresh victim
        models.
    centroid_method:
        Centroid estimator used consistently by attacker and defender.
    seed:
        Base seed; per-configuration seeds are derived from it.
    dataset_name, is_real_data:
        Provenance for reports.
    """

    X_train: np.ndarray
    y_train: np.ndarray
    X_test: np.ndarray
    y_test: np.ndarray
    radius_map: RadiusPercentileMap
    model_factory: Callable[[int], BaseEstimator]
    centroid_method: str
    seed: int
    dataset_name: str
    is_real_data: bool

    @property
    def n_train(self) -> int:
        return int(self.X_train.shape[0])

    def fingerprint(self) -> str:
        """Content hash identifying this context for the engine's cache.

        Covers the exact split data, the preprocessing outcome (the
        arrays are hashed *after* scaling), the centroid convention and
        the victim factory's configuration — everything a round's
        result depends on besides the round spec itself.  The radius
        map needs no separate hash: it is a deterministic function of
        ``X_train`` and ``centroid_method``.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        h = hashlib.sha256()
        for arr in (self.X_train, self.y_train, self.X_test, self.y_test):
            a = np.ascontiguousarray(arr)
            h.update(str(a.dtype).encode("utf-8"))
            h.update(str(a.shape).encode("utf-8"))
            h.update(a.tobytes())
        factory_sig = _factory_signature(self.model_factory)
        if factory_sig is None:
            # Opaque factory (closure etc.): two contexts could differ
            # only in captured hyperparameters we cannot see, so they
            # must never share cache entries.  A per-instance salt keeps
            # caching correct (and still useful *within* this context)
            # at the deliberate cost of cross-process/disk reuse.
            factory_sig = f"opaque:{uuid.uuid4().hex}"
        meta = "|".join([self.dataset_name, self.centroid_method,
                         str(self.seed), str(self.is_real_data), factory_sig])
        h.update(meta.encode("utf-8"))
        fp = h.hexdigest()
        self.__dict__["_fingerprint"] = fp
        return fp

    def kernel(self):
        """The lazily-built, cached per-context round kernel.

        Holds everything constant across rounds — clean centroid,
        clean distance vector, percentile->radius lookups, fitted
        attack direction — so one uncached round only pays for what
        actually varies with its spec and seed.  See
        :mod:`repro.experiments.kernel`.
        """
        k = self.__dict__.get("_kernel")
        if k is None:
            from repro.experiments.kernel import build_context_kernel

            k = build_context_kernel(self)
            self.__dict__["_kernel"] = k
        return k

    def __getstate__(self):
        # The kernel is derivable; never ship it inside a pickled
        # context.  Parallel backends forward its one expensive field
        # separately — see ContextKernel.export_state.
        state = dict(self.__dict__)
        state.pop("_kernel", None)
        return state

    def attack_surrogate(self) -> BaseEstimator:
        """A fresh, unfitted copy of the victim model for the attacker.

        The threat model grants the attacker full knowledge of the
        learner, so the optimal attack aims at the *victim's own*
        discriminative direction.  (A mismatched surrogate — e.g. ridge
        against an SVM victim — measurably blunts the attack; the
        ablation benchmarks quantify this.)
        """
        return self.model_factory(derive_seed(self.seed, "attack-surrogate"))

    def boundary_attack(self, percentile: float):
        """The optimal attack at ``percentile`` with the matched surrogate.

        Carries the context's round kernel so repeated rounds skip the
        surrogate refit and clean-geometry recomputation (the kernel is
        only consulted for this context's own ``X_train``; on any other
        data the attack computes from scratch).
        """
        from repro.attacks.optimal_boundary import OptimalBoundaryAttack

        return OptimalBoundaryAttack(
            target_percentile=float(percentile),
            surrogate=self.attack_surrogate(),
            centroid_method=self.centroid_method,
            precomputed=self.kernel(),
        )


class _IdentityScaler:
    """No-op scaler (raw features, the paper's implicit choice)."""

    def fit(self, X):
        return self

    def transform(self, X):
        return np.asarray(X, dtype=float)


_SCALERS = {"robust": RobustScaler, "standard": StandardScaler,
            "none": _IdentityScaler}


def _build_context(X, y, *, seed, test_size, model_factory, centroid_method,
                   dataset_name, is_real, scaler="robust") -> ExperimentContext:
    X_train, X_test, y_train, y_test = train_test_split(
        X, y, test_size=test_size, stratify=True, seed=derive_seed(seed, "split")
    )
    if scaler not in _SCALERS:
        raise ValueError(f"unknown scaler {scaler!r}; choose from {sorted(_SCALERS)}")
    scaler = _SCALERS[scaler]().fit(X_train)
    X_train = scaler.transform(X_train)
    X_test = scaler.transform(X_test)
    centroid = compute_centroid(X_train, method=centroid_method)
    distances = distances_to_centroid(X_train, centroid)
    return ExperimentContext(
        X_train=X_train,
        y_train=y_train,
        X_test=X_test,
        y_test=y_test,
        radius_map=RadiusPercentileMap(distances),
        model_factory=model_factory or _default_model_factory_for(X_train.shape[0]),
        centroid_method=centroid_method,
        seed=seed,
        dataset_name=dataset_name,
        is_real_data=is_real,
    )


def make_spambase_context(
    *,
    seed: int = 0,
    test_size: float = 0.3,
    n_samples: int | None = None,
    model_factory: Callable[[int], BaseEstimator] | None = None,
    centroid_method: str = "median",
    path: str | None = None,
    scaler: str = "robust",
) -> ExperimentContext:
    """The paper's experimental setting: Spambase, 70/30 split, SVM.

    ``n_samples`` subsamples the dataset (stratified by shuffling) for
    faster CI/benchmark runs; ``None`` keeps all 4601 instances.
    ``scaler`` chooses the preprocessing (``"robust"`` median/IQR —
    the default, consistent with the robust centroid and preserving
    Spambase's heavy distance tail — or ``"standard"``).
    """
    X, y, is_real = load_spambase(path, seed=derive_seed(seed, "spambase"))
    if n_samples is not None and n_samples < X.shape[0]:
        rng = as_generator(derive_seed(seed, "subsample"))
        idx = rng.permutation(X.shape[0])[:n_samples]
        X, y = X[idx], y[idx]
    return _build_context(
        X, y, seed=seed, test_size=test_size, model_factory=model_factory,
        centroid_method=centroid_method,
        dataset_name="spambase" if is_real else "spambase-surrogate",
        is_real=is_real, scaler=scaler,
    )


def make_synthetic_context(
    *,
    seed: int = 0,
    n_samples: int = 600,
    n_features: int = 8,
    separation: float = 2.5,
    test_size: float = 0.3,
    model_factory: Callable[[int], BaseEstimator] | None = None,
    centroid_method: str = "median",
    scaler: str = "standard",
) -> ExperimentContext:
    """A small Gaussian-blobs setting for tests and quick examples."""
    X, y = make_gaussian_blobs(
        n_samples=n_samples, n_features=n_features, separation=separation,
        seed=derive_seed(seed, "blobs"),
    )
    return _build_context(
        X, y, seed=seed, test_size=test_size, model_factory=model_factory,
        centroid_method=centroid_method, dataset_name="gaussian-blobs",
        is_real=False, scaler=scaler,
    )


_CONTEXT_MAKERS = {
    "spambase": make_spambase_context,
    "synthetic": make_synthetic_context,
}


def make_context(name: str, **kwargs) -> ExperimentContext:
    """Build a context by name (``"spambase"`` or ``"synthetic"``).

    The dispatcher the CLI and the cluster shard server share, so
    "which experimental setting" is one string plus keyword overrides
    on both ends of a deployment.
    """
    try:
        maker = _CONTEXT_MAKERS[str(name)]
    except KeyError:
        raise ValueError(
            f"unknown context {name!r}; choose from "
            f"{sorted(_CONTEXT_MAKERS)}"
        ) from None
    return maker(**kwargs)


def save_context(ctx: ExperimentContext, path: str) -> str:
    """Pickle ``ctx`` (fingerprint pre-computed) to ``path``.

    Forces the fingerprint first so the saved copy answers
    ``fingerprint()`` with the original's value even for opaque
    (salted) factories — the cluster handshake depends on the two
    sides agreeing.  Unpicklable contexts (lambda factories) raise the
    same clear ``TypeError`` as the process backend.
    """
    import pickle

    ctx.fingerprint()
    try:
        blob = pickle.dumps(ctx, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise TypeError(
            "the experiment context cannot be pickled for a shard server "
            "(a lambda/closure model_factory is the usual culprit — use a "
            "picklable callable class such as SVMVictimFactory): "
            f"{exc}"
        ) from exc
    with open(path, "wb") as fh:
        fh.write(blob)
    return path


def load_context(path: str) -> ExperimentContext:
    """Inverse of :func:`save_context`."""
    import pickle

    with open(path, "rb") as fh:
        return pickle.load(fh)


@dataclass(frozen=True)
class EvaluationOutcome:
    """Result of one attack/filter/train/score round."""

    accuracy: float
    n_poison: int
    n_removed: int
    filter_percentile: float | None
    filter_radius: float | None
    report: DefenseReport | None


@dataclass
class PreparedRound:
    """A round paused between "materialise the training set" and "fit".

    :func:`prepare_configuration` runs the attack and the defence and
    builds the (unfitted) victim; :func:`finish_configuration` trains
    and scores it.  The split exists so the engine's batched executor
    can collect the prepared victims of many rounds and train eligible
    groups through :meth:`~repro.ml.linear_svm.LinearSVM.fit_many` —
    a caller that fits a prepared model itself sets ``fitted`` so the
    finish step doesn't train twice.
    """

    model: BaseEstimator
    X_tr: np.ndarray
    y_tr: np.ndarray
    n_poison: int
    n_removed: int
    filter_percentile: float | None
    filter_radius: float | None
    report: DefenseReport | None
    fitted: bool = False


def prepare_configuration(
    ctx: ExperimentContext,
    *,
    filter_percentile: float | None = None,
    attack: PoisoningAttack | None = None,
    defense=None,
    poison_fraction: float = 0.2,
    seed: int | None = None,
    use_kernel: bool = True,
    victim_factory: Callable[[int], BaseEstimator] | None = None,
) -> PreparedRound:
    """The attack/filter half of a round: everything except the fit.

    Same parameters as :func:`evaluate_configuration` (which is exactly
    this followed by :func:`finish_configuration`); returns the
    :class:`PreparedRound` holding the final training set and the
    fresh, seeded, *unfitted* victim model.

    Parameters
    ----------
    filter_percentile:
        Defender's action on the genuine-percentile axis (``None`` or
        ``0`` disables filtering).  The filter sphere is centred on the
        clean-data centroid (the paper's "centroid of the original
        dataset"), with the radius looked up in the genuine map.
    attack:
        Attacker's concrete attack (``None`` for the clean baseline).
    defense:
        Any live :class:`~repro.defenses.base.Defense` applied to the
        (possibly poisoned) training set in place of the radius
        filter — the uniform entry point the engine's non-radius
        :class:`~repro.engine.DefenseSpec` kinds materialise through.
        Mutually exclusive with ``filter_percentile``.
    poison_fraction:
        Contamination rate of the final training set (paper: 0.2).
    seed:
        Round seed (defaults to the context seed); controls attack
        randomness, dataset shuffling and victim training.
    use_kernel:
        With ``True`` (default) the round reuses the context's cached
        :class:`~repro.experiments.kernel.ContextKernel`; ``False``
        recomputes every per-round quantity from scratch.  The two
        paths are bit-identical — the flag exists for the equivalence
        tests and for benchmarking the kernel's effect.
    victim_factory:
        Optional ``factory(seed) -> BaseEstimator`` overriding the
        context's victim for this round (the engine materialises it
        from a :class:`~repro.engine.VictimSpec`).  The attacker's
        surrogate remains the context's own factory — the threat model
        grants knowledge of the deployed learner's family, which the
        context defines.
    """
    if defense is not None and filter_percentile is not None \
            and filter_percentile > 0.0:
        raise ValueError("pass either filter_percentile or defense, not both")
    round_seed = ctx.seed if seed is None else seed
    rng = as_generator(derive_seed(round_seed, "round"))
    X_tr, y_tr = ctx.X_train, ctx.y_train
    kernel = ctx.kernel() if use_kernel else None

    is_poison = np.zeros(X_tr.shape[0], dtype=bool)
    sources = None
    n_poison = 0
    if attack is not None:
        check_fraction(poison_fraction, name="poison_fraction", inclusive_high=False)
        with telemetry.trace_span("attack", seed=round_seed):
            X_tr, y_tr, is_poison, sources = poison_dataset(
                ctx.X_train, ctx.y_train, attack, fraction=poison_fraction,
                seed=rng, return_sources=True,
            )
        n_poison = int(is_poison.sum())

    report = None
    filter_radius = None
    n_removed = 0
    if filter_percentile is not None and filter_percentile > 0.0:
        with telemetry.trace_span("defense", seed=round_seed):
            if kernel is not None:
                filter_radius = kernel.filter_radius(filter_percentile)
                keep = kernel.keep_mask(X_tr, y_tr, is_poison, sources,
                                        filter_radius)
            else:
                filter_radius = ctx.radius_map.radius(filter_percentile)
                clean_centroid = compute_centroid(ctx.X_train,
                                                  method=ctx.centroid_method)
                radius_defense = RadiusFilter(filter_radius,
                                              centroid_method=ctx.centroid_method,
                                              centroid=clean_centroid)
                keep = radius_defense.mask(X_tr, y_tr)
        report = defense_report(keep, is_poison)
        n_removed = int((~keep).sum())
        X_tr, y_tr = X_tr[keep], y_tr[keep]
    elif defense is not None:
        keep = None
        with telemetry.trace_span("defense", seed=round_seed):
            if kernel is not None:
                # Per-family kernel fast path: a defence may serve its
                # keep mask from per-context cached geometry (e.g. the
                # slab filter's clean per-class scores).  ``None`` means
                # "not applicable for this round" — fall through to
                # mask().
                fast = getattr(defense, "kernel_mask", None)
                if fast is not None:
                    keep = fast(kernel, X_tr, y_tr, is_poison, sources)
            if keep is None:
                keep = np.asarray(defense.mask(X_tr, y_tr), dtype=bool)
        report = defense_report(keep, is_poison)
        n_removed = int((~keep).sum())
        X_tr, y_tr = X_tr[keep], y_tr[keep]
        # Defences that realise a geometric radius expose it (e.g.
        # PercentileFilter.theta_); report it when finite.
        realised = getattr(defense, "theta_", None)
        if realised is None:
            realised = getattr(defense, "theta", None)
        if realised is not None and np.isfinite(realised):
            filter_radius = float(realised)

    factory = ctx.model_factory if victim_factory is None else victim_factory
    model = factory(derive_seed(round_seed, "model"))
    return PreparedRound(
        model=model,
        X_tr=X_tr,
        y_tr=y_tr,
        n_poison=n_poison,
        n_removed=n_removed,
        filter_percentile=filter_percentile,
        filter_radius=filter_radius,
        report=report,
    )


def finish_configuration(ctx: ExperimentContext,
                         prepared: PreparedRound) -> EvaluationOutcome:
    """Train (unless already fitted) and score a :class:`PreparedRound`."""
    model = prepared.model
    if not prepared.fitted:
        with telemetry.trace_span("fit", rounds=1):
            model.fit(prepared.X_tr, prepared.y_tr)
    with telemetry.trace_span("payoff"):
        accuracy = model.score(ctx.X_test, ctx.y_test)
    return EvaluationOutcome(
        accuracy=float(accuracy),
        n_poison=prepared.n_poison,
        n_removed=prepared.n_removed,
        filter_percentile=prepared.filter_percentile,
        filter_radius=prepared.filter_radius,
        report=prepared.report,
    )


def evaluate_configuration(
    ctx: ExperimentContext,
    *,
    filter_percentile: float | None = None,
    attack: PoisoningAttack | None = None,
    defense=None,
    poison_fraction: float = 0.2,
    seed: int | None = None,
    use_kernel: bool = True,
    victim_factory: Callable[[int], BaseEstimator] | None = None,
) -> EvaluationOutcome:
    """Play one round of the game and return the test accuracy.

    Exactly :func:`prepare_configuration` (which documents the
    parameters) followed by :func:`finish_configuration` — the split
    lets the engine's batched executor train groups of prepared rounds
    together, without changing what any single round computes.
    """
    prepared = prepare_configuration(
        ctx,
        filter_percentile=filter_percentile,
        attack=attack,
        defense=defense,
        poison_fraction=poison_fraction,
        seed=seed,
        use_kernel=use_kernel,
        victim_factory=victim_factory,
    )
    return finish_configuration(ctx, prepared)
