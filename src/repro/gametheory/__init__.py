"""General two-player zero-sum game substrate.

Provides finite matrix games with several independent solvers — an
exact minimax LP, fictitious play, regret matching and support
enumeration — plus a discretisation bridge for continuous games.

The poisoning game in :mod:`repro.core` is an infinite (continuous)
game; this subpackage exists so the core results can be *cross-checked*
against exact solutions of fine discretisations, and so the library is
useful as a standalone game-theory toolkit.
"""

from repro.gametheory.matrix_game import MatrixGame
from repro.gametheory.lp_solver import solve_zero_sum_lp, LPSolution
from repro.gametheory.fictitious_play import fictitious_play, FictitiousPlayResult
from repro.gametheory.regret_matching import regret_matching, RegretMatchingResult
from repro.gametheory.support_enumeration import support_enumeration
from repro.gametheory.best_response_dynamics import (
    best_response_dynamics,
    BestResponseTrace,
    detect_cycle,
)
from repro.gametheory.continuous import DiscretizedZeroSumGame
from repro.gametheory.double_oracle import double_oracle, DoubleOracleResult

__all__ = [
    "MatrixGame",
    "solve_zero_sum_lp",
    "LPSolution",
    "fictitious_play",
    "FictitiousPlayResult",
    "regret_matching",
    "RegretMatchingResult",
    "support_enumeration",
    "best_response_dynamics",
    "BestResponseTrace",
    "detect_cycle",
    "DiscretizedZeroSumGame",
    "double_oracle",
    "DoubleOracleResult",
]
