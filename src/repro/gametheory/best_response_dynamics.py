"""Alternating best-response dynamics and cycle detection.

Proposition 1 of the paper shows the poisoning game has no pure NE by
arguing the players' best-response functions never intersect.  The
constructive counterpart — the tool this module provides — is to *play*
alternating best responses and watch them cycle instead of converging.
``detect_cycle`` certifies the cycle, which is the empirical signature
of pure-NE non-existence used in ``benchmarks/bench_pure_ne_cycle.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.gametheory.matrix_game import MatrixGame
from repro.utils.validation import check_positive_int

__all__ = ["BestResponseTrace", "best_response_dynamics", "detect_cycle"]


@dataclass
class BestResponseTrace:
    """History of an alternating best-response run.

    ``profiles`` is the sequence of joint pure-strategy profiles
    visited; ``converged`` is true iff a fixed point (pure NE) was
    reached, in which case ``equilibrium`` holds it; otherwise
    ``cycle`` holds the detected cycle as a list of profiles.
    """

    profiles: list = field(default_factory=list)
    converged: bool = False
    equilibrium: tuple | None = None
    cycle: list | None = None

    @property
    def cycle_length(self) -> int:
        return len(self.cycle) if self.cycle else 0


def detect_cycle(profiles: list) -> list | None:
    """Return the first repeating cycle in a sequence of hashable states.

    Finds the earliest index whose state reappears later and returns
    the states between the two occurrences.  ``None`` if no repetition.
    """
    seen: dict = {}
    for idx, state in enumerate(profiles):
        if state in seen:
            return profiles[seen[state]: idx]
        seen[state] = idx
    return None


def best_response_dynamics(
    game_or_brs: MatrixGame | tuple[Callable, Callable],
    *,
    initial: tuple = None,
    max_steps: int = 1000,
) -> BestResponseTrace:
    """Run alternating best responses until a fixed point or a cycle.

    Parameters
    ----------
    game_or_brs:
        Either a :class:`MatrixGame` (pure best responses are computed
        from the matrix, ties broken toward the lowest index) or a pair
        ``(br_row, br_col)`` of callables for non-matrix games:
        ``br_row(col_action) -> row_action`` and vice versa.  This
        callable form is how the continuous poisoning game plugs in.
    initial:
        Starting joint profile ``(row_action, col_action)``.  Defaults
        to ``(0, 0)`` for matrix games; required for callable games.
    max_steps:
        Safety bound on the number of alternating updates.

    Notes
    -----
    Actions must be hashable so visited profiles can be cycle-checked.
    """
    max_steps = check_positive_int(max_steps, name="max_steps")
    if isinstance(game_or_brs, MatrixGame):
        A = game_or_brs.payoffs

        def br_row(col_action):
            return int(np.argmax(A[:, col_action]))

        def br_col(row_action):
            return int(np.argmin(A[row_action, :]))

        state = initial if initial is not None else (0, 0)
    else:
        br_row, br_col = game_or_brs
        if initial is None:
            raise ValueError("initial profile is required for callable best responses")
        state = initial

    trace = BestResponseTrace(profiles=[state])
    for _ in range(max_steps):
        row_action, col_action = state
        new_row = br_row(col_action)
        new_col = br_col(new_row)
        new_state = (new_row, new_col)
        if new_state == state:
            trace.converged = True
            trace.equilibrium = new_state
            return trace
        trace.profiles.append(new_state)
        cycle = detect_cycle(trace.profiles)
        if cycle is not None and len(cycle) > 1:
            trace.cycle = cycle
            return trace
        state = new_state
    return trace
