"""Discretisation bridge from continuous zero-sum games to matrix games.

The poisoning game has continuous strategy spaces (filter radii and
poisoning radii on ``[0, B]``).  Glicksberg's theorem guarantees a
mixed NE; computationally we approximate it by sampling each player's
interval on a grid, solving the induced matrix game exactly with the
LP, and refining the grid.  :mod:`repro.core.equilibrium` uses this to
cross-check Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.gametheory.lp_solver import LPSolution, solve_zero_sum_lp
from repro.gametheory.matrix_game import MatrixGame
from repro.utils.validation import check_positive_int

__all__ = ["DiscretizedZeroSumGame"]


@dataclass
class DiscretizedZeroSumGame:
    """A continuous zero-sum game on a product of intervals.

    Parameters
    ----------
    payoff:
        ``payoff(x, y) -> float`` — the row (maximising) player's payoff
        at row action ``x`` and column action ``y``.
    row_interval, col_interval:
        Inclusive action intervals ``(low, high)`` for each player.
    """

    payoff: Callable[[float, float], float]
    row_interval: tuple[float, float]
    col_interval: tuple[float, float]

    def __post_init__(self):
        for name, (lo, hi) in [("row_interval", self.row_interval),
                               ("col_interval", self.col_interval)]:
            if not (np.isfinite(lo) and np.isfinite(hi) and lo < hi):
                raise ValueError(f"{name} must be a finite interval (lo < hi), got {(lo, hi)}")

    def grid(self, n: int, which: str) -> np.ndarray:
        """Uniform grid of ``n`` actions on one player's interval."""
        n = check_positive_int(n, name="n")
        lo, hi = self.row_interval if which == "row" else self.col_interval
        return np.linspace(lo, hi, n)

    def matrix_game(self, n_row: int = 51, n_col: int = 51) -> MatrixGame:
        """Tabulate the payoff on an ``n_row`` x ``n_col`` grid."""
        rows = self.grid(n_row, "row")
        cols = self.grid(n_col, "col")
        A = np.array([[float(self.payoff(x, y)) for y in cols] for x in rows])
        return MatrixGame(A, row_labels=rows.tolist(), col_labels=cols.tolist())

    def solve(self, n_row: int = 51, n_col: int = 51) -> tuple[LPSolution, MatrixGame]:
        """Solve the discretised game exactly; returns (solution, game)."""
        game = self.matrix_game(n_row, n_col)
        return solve_zero_sum_lp(game), game

    def solve_refined(
        self,
        *,
        initial: int = 21,
        refinements: int = 2,
        factor: int = 2,
    ) -> tuple[LPSolution, MatrixGame]:
        """Solve on progressively finer grids, returning the finest solution.

        The value sequence of the refinements is attached to the
        returned game as ``value_trace`` (a plain list) so callers can
        check discretisation convergence.
        """
        check_positive_int(initial, name="initial")
        values = []
        n = initial
        solution, game = self.solve(n, n)
        values.append(solution.value)
        for _ in range(refinements):
            n = (n - 1) * factor + 1  # keep previous grid nodes nested
            solution, game = self.solve(n, n)
            values.append(solution.value)
        game.value_trace = values
        return solution, game
