"""Double-oracle solver for zero-sum games with large/continuous action sets.

McMahan, Gordon & Blum (2003): maintain finite action subsets for both
players, solve the restricted matrix game exactly (LP), then ask each
player's *best-response oracle* for its best action against the
opponent's current mixed strategy; add the responses and repeat.  The
restricted game values sandwich the true value, and the loop stops when
neither oracle can improve by more than ``tol``.

This is the natural exact-ish solver for the poisoning game: both
players' strategy spaces are intervals of percentiles, and best
responses are cheap one-dimensional maximisations —
:func:`repro.core.equilibrium` wires those in.  Compared to a fixed
discretisation, the double oracle concentrates grid points exactly
where the equilibrium needs them (e.g. the ε-chase region).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.gametheory.lp_solver import solve_zero_sum_lp
from repro.gametheory.matrix_game import MatrixGame
from repro.utils.validation import check_positive_int

__all__ = ["DoubleOracleResult", "double_oracle"]


@dataclass
class DoubleOracleResult:
    """Solution of a double-oracle run.

    Attributes
    ----------
    row_actions, col_actions:
        The final restricted action sets (in discovery order).
    row_strategy, col_strategy:
        Equilibrium mixes over those actions.
    value:
        Restricted-game value at termination.
    gap_trace:
        Best-response improvement gap per iteration (should shrink to
        ``tol``); its last entry certifies the ε-equilibrium quality.
    iterations:
        Oracle rounds performed.
    converged:
        True iff the gap fell below ``tol`` before ``max_iter``.
    """

    row_actions: list
    col_actions: list
    row_strategy: np.ndarray
    col_strategy: np.ndarray
    value: float
    gap_trace: list = field(default_factory=list)
    iterations: int = 0
    converged: bool = False

    def support(self, player: str = "col", threshold: float = 1e-3) -> list:
        """(action, probability) pairs with probability above threshold."""
        actions, strategy = (
            (self.row_actions, self.row_strategy) if player == "row"
            else (self.col_actions, self.col_strategy)
        )
        return [(a, float(q)) for a, q in zip(actions, strategy) if q > threshold]


def double_oracle(
    payoff: Callable[[object, object], float],
    row_oracle: Callable[[Sequence, np.ndarray], object],
    col_oracle: Callable[[Sequence, np.ndarray], object],
    *,
    initial_row: Sequence,
    initial_col: Sequence,
    tol: float = 1e-6,
    max_iter: int = 100,
) -> DoubleOracleResult:
    """Solve a zero-sum game via the double-oracle loop.

    Parameters
    ----------
    payoff:
        ``payoff(row_action, col_action)`` — the maximising row player's
        payoff.
    row_oracle:
        ``row_oracle(col_actions, col_strategy) -> row_action`` — a best
        (or at least ε-best) response for the row player against the
        column player's current mix.
    col_oracle:
        Symmetric oracle for the minimising column player.
    initial_row, initial_col:
        Non-empty seed action sets.
    tol:
        Stop when neither oracle improves the restricted value by more
        than this.
    max_iter:
        Bound on oracle rounds.

    Notes
    -----
    Actions are compared with ``==`` for deduplication; they must be
    hashable (floats, tuples, ...).
    """
    check_positive_int(max_iter, name="max_iter")
    row_actions = list(dict.fromkeys(initial_row))
    col_actions = list(dict.fromkeys(initial_col))
    if not row_actions or not col_actions:
        raise ValueError("initial action sets must be non-empty")

    # Payoff cache: the matrix grows incrementally; recomputing every
    # entry each round would make the oracle loop quadratic in calls.
    cache: dict = {}

    def entry(r, c) -> float:
        key = (r, c)
        if key not in cache:
            cache[key] = float(payoff(r, c))
        return cache[key]

    def matrix() -> np.ndarray:
        return np.array([[entry(r, c) for c in col_actions] for r in row_actions])

    gap_trace: list = []
    solution = None
    converged = False
    iterations = 0
    # Snapshots of the action sets the returned strategies refer to
    # (appending after the final solve must not desynchronise them).
    solved_rows = list(row_actions)
    solved_cols = list(col_actions)
    for _ in range(max_iter):
        iterations += 1
        game = MatrixGame(matrix(), row_labels=row_actions, col_labels=col_actions)
        solution = solve_zero_sum_lp(game)
        solved_rows = list(row_actions)
        solved_cols = list(col_actions)

        new_row = row_oracle(col_actions, solution.col_strategy)
        new_col = col_oracle(row_actions, solution.row_strategy)

        # Improvement each oracle achieves over the restricted value.
        row_gain = (
            sum(q * entry(new_row, c) for c, q in zip(col_actions, solution.col_strategy))
            - solution.value
        )
        col_gain = solution.value - sum(
            q * entry(r, new_col) for r, q in zip(row_actions, solution.row_strategy)
        )
        gap = max(row_gain, 0.0) + max(col_gain, 0.0)
        gap_trace.append(gap)
        if gap <= tol:
            converged = True
            break
        if row_gain > tol and new_row not in row_actions:
            row_actions.append(new_row)
        if col_gain > tol and new_col not in col_actions:
            col_actions.append(new_col)

    return DoubleOracleResult(
        row_actions=solved_rows,
        col_actions=solved_cols,
        row_strategy=solution.row_strategy,
        col_strategy=solution.col_strategy,
        value=solution.value,
        gap_trace=gap_trace,
        iterations=iterations,
        converged=converged,
    )
