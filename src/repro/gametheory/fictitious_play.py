"""Fictitious play for zero-sum matrix games.

Robinson (1951) proved that in zero-sum games the empirical strategy
frequencies of fictitious play converge to an equilibrium.  It is
slower than the LP but makes a great independent cross-check, and its
trajectory is a useful pedagogical artefact in the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gametheory.matrix_game import MatrixGame
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["FictitiousPlayResult", "fictitious_play"]


@dataclass
class FictitiousPlayResult:
    """Outcome of a fictitious-play run.

    ``row_strategy``/``col_strategy`` are the empirical frequencies,
    ``value_bounds`` the (lower, upper) sandwich on the game value
    implied by the final best responses, and ``exploitability_trace``
    records convergence (sampled every ``trace_every`` iterations).
    """

    row_strategy: np.ndarray
    col_strategy: np.ndarray
    value_bounds: tuple[float, float]
    iterations: int
    exploitability_trace: list = field(default_factory=list)

    @property
    def value_estimate(self) -> float:
        """Midpoint of the value sandwich."""
        return 0.5 * (self.value_bounds[0] + self.value_bounds[1])


def fictitious_play(
    game: MatrixGame | np.ndarray,
    *,
    iterations: int = 10_000,
    seed: int | np.random.Generator | None = 0,
    trace_every: int = 100,
) -> FictitiousPlayResult:
    """Run simultaneous fictitious play for ``iterations`` rounds.

    Ties between best responses are broken uniformly at random (seeded)
    to avoid the lock-step cycling that deterministic tie-breaking can
    produce on symmetric games.
    """
    if not isinstance(game, MatrixGame):
        game = MatrixGame(game)
    iterations = check_positive_int(iterations, name="iterations")
    rng = as_generator(seed)
    A = game.payoffs
    m, n = A.shape

    row_counts = np.zeros(m)
    col_counts = np.zeros(n)
    # Seed with one uniform-random joint action.
    row_counts[rng.integers(m)] += 1
    col_counts[rng.integers(n)] += 1

    trace = []
    for t in range(1, iterations):
        q = col_counts / col_counts.sum()
        p = row_counts / row_counts.sum()
        row_values = A @ q
        col_values = p @ A
        best_rows = np.flatnonzero(np.isclose(row_values, row_values.max(), atol=1e-12))
        best_cols = np.flatnonzero(np.isclose(col_values, col_values.min(), atol=1e-12))
        row_counts[rng.choice(best_rows)] += 1
        col_counts[rng.choice(best_cols)] += 1
        if trace_every and t % trace_every == 0:
            trace.append(game.exploitability(row_counts / row_counts.sum(),
                                             col_counts / col_counts.sum()))

    p = row_counts / row_counts.sum()
    q = col_counts / col_counts.sum()
    lower = float((A @ q).max(initial=-np.inf))  # row best response to q
    upper = float((p @ A).min(initial=np.inf))   # col best response to p
    # lower bound on value is what the column player concedes (upper from
    # row's perspective); order the sandwich correctly:
    bounds = (min(lower, upper), max(lower, upper))
    return FictitiousPlayResult(
        row_strategy=p,
        col_strategy=q,
        value_bounds=bounds,
        iterations=iterations,
        exploitability_trace=trace,
    )
