"""Exact minimax solution of zero-sum matrix games via linear programming.

By the minimax theorem, the value ``v`` of a zero-sum game and the row
player's optimal mix ``p`` solve

    max v   s.t.   A' p >= v 1,   1' p = 1,   p >= 0

which is an LP; the column player's optimal mix falls out of the dual.
We solve both primal LPs with :func:`scipy.optimize.linprog` (HiGHS).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.gametheory.matrix_game import MatrixGame

__all__ = ["LPSolution", "solve_zero_sum_lp"]


@dataclass(frozen=True)
class LPSolution:
    """Optimal mixed strategies and value of a zero-sum game.

    Attributes
    ----------
    row_strategy, col_strategy:
        The equilibrium mixes for the maximising row player and the
        minimising column player.
    value:
        The game value (expected row payoff at equilibrium).
    exploitability:
        Residual best-response gain of the reported pair (should be ~0;
        kept as a numerical diagnostic).
    """

    row_strategy: np.ndarray
    col_strategy: np.ndarray
    value: float
    exploitability: float


def _solve_row_lp(A: np.ndarray) -> tuple[np.ndarray, float]:
    """Row player's LP: maximise v s.t. A' p >= v, sum p = 1, p >= 0."""
    m, n = A.shape
    # Variables: [p_1..p_m, v]; objective: maximise v == minimise -v.
    c = np.zeros(m + 1)
    c[-1] = -1.0
    # Constraints: v - A' p <= 0  for every column.
    A_ub = np.hstack([-A.T, np.ones((n, 1))])
    b_ub = np.zeros(n)
    A_eq = np.zeros((1, m + 1))
    A_eq[0, :m] = 1.0
    b_eq = np.array([1.0])
    bounds = [(0.0, None)] * m + [(None, None)]
    result = linprog(c, A_ub=A_ub, b_ub=b_ub, A_eq=A_eq, b_eq=b_eq,
                     bounds=bounds, method="highs")
    if not result.success:
        raise RuntimeError(f"zero-sum LP failed: {result.message}")
    p = np.clip(result.x[:m], 0.0, None)
    p = p / p.sum()
    return p, float(result.x[-1])


def solve_zero_sum_lp(game: MatrixGame | np.ndarray) -> LPSolution:
    """Solve a zero-sum matrix game exactly.

    Accepts a :class:`MatrixGame` or a raw payoff matrix (row player's
    payoffs).  Returns an :class:`LPSolution`.
    """
    if not isinstance(game, MatrixGame):
        game = MatrixGame(game)
    A = game.payoffs
    p, value_row = _solve_row_lp(A)
    # The column player minimises A, i.e. maximises -A as a row player
    # of the transposed negated game.
    q, value_col = _solve_row_lp(-A.T)
    value = float(p @ A @ q)
    # Consistency: the two independently solved LPs must agree on value.
    if abs(value_row + value_col) > 1e-6 * max(1.0, abs(value_row)):
        raise RuntimeError(
            f"primal/dual value mismatch: row {value_row} vs col {-value_col}"
        )
    return LPSolution(
        row_strategy=p,
        col_strategy=q,
        value=value,
        exploitability=game.exploitability(p, q),
    )
