"""Finite two-player zero-sum matrix games.

Convention: the payoff matrix ``A`` (shape ``m x n``) holds the **row
player's** payoff; the column player receives ``-A``.  The row player
maximises, the column player minimises.  In the poisoning game the
attacker is the row player (maximising damage) and the defender is the
column player.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_array, check_probability_vector

__all__ = ["MatrixGame"]


class MatrixGame:
    """A zero-sum game given by the row player's payoff matrix."""

    def __init__(self, payoffs, *, row_labels=None, col_labels=None):
        self.payoffs = check_array(payoffs, ndim=2, name="payoffs")
        m, n = self.payoffs.shape
        self.row_labels = list(row_labels) if row_labels is not None else list(range(m))
        self.col_labels = list(col_labels) if col_labels is not None else list(range(n))
        if len(self.row_labels) != m or len(self.col_labels) != n:
            raise ValueError(
                f"label lengths ({len(self.row_labels)}, {len(self.col_labels)}) do "
                f"not match payoff shape {self.payoffs.shape}"
            )

    @property
    def shape(self) -> tuple[int, int]:
        return self.payoffs.shape

    # -- pure strategy analysis ------------------------------------------

    def row_best_responses(self, col_strategy) -> np.ndarray:
        """Indices of the row player's pure best responses to a column mix."""
        q = check_probability_vector(col_strategy, name="col_strategy")
        if q.shape[0] != self.shape[1]:
            raise ValueError(f"col_strategy has length {q.shape[0]}, expected {self.shape[1]}")
        values = self.payoffs @ q
        return np.flatnonzero(np.isclose(values, values.max(), atol=1e-12))

    def col_best_responses(self, row_strategy) -> np.ndarray:
        """Indices of the column player's pure best responses to a row mix."""
        p = check_probability_vector(row_strategy, name="row_strategy")
        if p.shape[0] != self.shape[0]:
            raise ValueError(f"row_strategy has length {p.shape[0]}, expected {self.shape[0]}")
        values = p @ self.payoffs  # column player wants to minimise
        return np.flatnonzero(np.isclose(values, values.min(), atol=1e-12))

    def pure_equilibria(self) -> list[tuple[int, int]]:
        """All saddle points: entries maximal in their column, minimal in their row."""
        A = self.payoffs
        row_max_of_col = A.max(axis=0, keepdims=True)
        col_min_of_row = A.min(axis=1, keepdims=True)
        is_saddle = np.isclose(A, row_max_of_col) & np.isclose(A, col_min_of_row)
        return [tuple(idx) for idx in np.argwhere(is_saddle)]

    def has_pure_equilibrium(self) -> bool:
        """True iff maximin equals minimax over pure strategies."""
        return bool(self.pure_equilibria())

    def maximin_pure(self) -> tuple[int, float]:
        """Row player's security strategy over pure strategies."""
        worst = self.payoffs.min(axis=1)
        i = int(np.argmax(worst))
        return i, float(worst[i])

    def minimax_pure(self) -> tuple[int, float]:
        """Column player's security strategy over pure strategies."""
        worst = self.payoffs.max(axis=0)
        j = int(np.argmin(worst))
        return j, float(worst[j])

    # -- mixed strategy evaluation ---------------------------------------

    def value(self, row_strategy, col_strategy) -> float:
        """Expected row-player payoff ``p' A q``."""
        p = check_probability_vector(row_strategy, name="row_strategy")
        q = check_probability_vector(col_strategy, name="col_strategy")
        if p.shape[0] != self.shape[0] or q.shape[0] != self.shape[1]:
            raise ValueError(
                f"strategy lengths {p.shape[0]}/{q.shape[0]} do not match game "
                f"shape {self.shape}"
            )
        return float(p @ self.payoffs @ q)

    def exploitability(self, row_strategy, col_strategy) -> float:
        """Sum of both players' best-response gains; 0 iff (p, q) is an NE."""
        p = check_probability_vector(row_strategy, name="row_strategy")
        q = check_probability_vector(col_strategy, name="col_strategy")
        current = self.value(p, q)
        best_row = float((self.payoffs @ q).max())
        best_col = float((p @ self.payoffs).min())
        return (best_row - current) + (current - best_col)

    # -- reductions -------------------------------------------------------

    def drop_dominated_rows(self) -> "MatrixGame":
        """Remove strictly dominated rows (weakly iterated, single pass)."""
        A = self.payoffs
        keep = []
        for i in range(A.shape[0]):
            dominated = any(
                j != i and np.all(A[j] >= A[i]) and np.any(A[j] > A[i])
                for j in range(A.shape[0])
            )
            if not dominated:
                keep.append(i)
        return MatrixGame(
            A[keep],
            row_labels=[self.row_labels[i] for i in keep],
            col_labels=self.col_labels,
        )

    def __repr__(self) -> str:
        return f"MatrixGame(shape={self.shape})"
