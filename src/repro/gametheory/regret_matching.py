"""Regret matching (Hart & Mas-Colell, 2000) for zero-sum matrix games.

The time-averaged strategies of two regret-matching learners converge
to the set of coarse correlated equilibria, which in zero-sum games
coincides with the Nash equilibria in value.  Provides a third
independent solver for cross-checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gametheory.matrix_game import MatrixGame
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["RegretMatchingResult", "regret_matching"]


@dataclass
class RegretMatchingResult:
    """Average strategies and diagnostics from a regret-matching run."""

    row_strategy: np.ndarray
    col_strategy: np.ndarray
    iterations: int
    final_exploitability: float


def _strategy_from_regrets(regrets: np.ndarray) -> np.ndarray:
    positive = np.clip(regrets, 0.0, None)
    total = positive.sum()
    if total <= 0.0:
        return np.full(len(regrets), 1.0 / len(regrets))
    return positive / total


def regret_matching(
    game: MatrixGame | np.ndarray,
    *,
    iterations: int = 20_000,
    seed: int | np.random.Generator | None = 0,
) -> RegretMatchingResult:
    """Self-play regret matching with expected (full-information) updates.

    Using expected rather than sampled payoffs removes Monte-Carlo noise
    so the averaged strategies converge at the deterministic O(1/sqrt(T))
    rate; the RNG is only needed for the (irrelevant) action sampling of
    the realised play and is kept for API symmetry.
    """
    if not isinstance(game, MatrixGame):
        game = MatrixGame(game)
    iterations = check_positive_int(iterations, name="iterations")
    as_generator(seed)  # validate the seed argument even though unused
    A = game.payoffs
    m, n = A.shape

    row_regrets = np.zeros(m)
    col_regrets = np.zeros(n)
    row_avg = np.zeros(m)
    col_avg = np.zeros(n)

    for _ in range(iterations):
        p = _strategy_from_regrets(row_regrets)
        q = _strategy_from_regrets(col_regrets)
        row_avg += p
        col_avg += q
        # Row player's counterfactual payoffs against q.
        row_payoffs = A @ q
        row_expected = float(p @ row_payoffs)
        row_regrets += row_payoffs - row_expected
        # Column player's payoffs are -A; regret of each pure column.
        col_payoffs = -(p @ A)
        col_expected = float(col_payoffs @ q)
        col_regrets += col_payoffs - col_expected

    p_bar = row_avg / row_avg.sum()
    q_bar = col_avg / col_avg.sum()
    return RegretMatchingResult(
        row_strategy=p_bar,
        col_strategy=q_bar,
        iterations=iterations,
        final_exploitability=game.exploitability(p_bar, q_bar),
    )
