"""Support enumeration for small zero-sum matrix games.

Enumerates equal-size support pairs, solves the indifference equations
on each candidate support, and verifies the resulting strategies.  This
is exponential and meant for games up to roughly 8x8 — its role in this
library is validating the LP and learning-dynamics solvers on small
instances, and illustrating the *equalization* structure the paper's
mixed defence relies on (all supported actions earn the same payoff).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.gametheory.matrix_game import MatrixGame

__all__ = ["support_enumeration"]


def _solve_support(A: np.ndarray, rows: tuple[int, ...], cols: tuple[int, ...]):
    """Solve indifference equations restricted to a support pair.

    Returns ``(p, q, v)`` or ``None`` if the linear system is singular
    or yields negative probabilities.
    """
    k = len(rows)
    sub = A[np.ix_(rows, cols)]
    # Column player's mix q makes every supported row indifferent:
    #   sub @ q = v * 1,  sum q = 1.
    M = np.zeros((k + 1, k + 1))
    M[:k, :k] = sub
    M[:k, k] = -1.0
    M[k, :k] = 1.0
    rhs = np.zeros(k + 1)
    rhs[k] = 1.0
    try:
        sol = np.linalg.solve(M, rhs)
    except np.linalg.LinAlgError:
        return None
    q_sub, v = sol[:k], sol[k]
    # Row player's mix p makes every supported column indifferent:
    #   p' sub = v * 1, sum p = 1.
    M2 = np.zeros((k + 1, k + 1))
    M2[:k, :k] = sub.T
    M2[:k, k] = -1.0
    M2[k, :k] = 1.0
    try:
        sol2 = np.linalg.solve(M2, rhs)
    except np.linalg.LinAlgError:
        return None
    p_sub = sol2[:k]
    if np.any(p_sub < -1e-9) or np.any(q_sub < -1e-9):
        return None
    return np.clip(p_sub, 0, None), np.clip(q_sub, 0, None), float(v)


def support_enumeration(
    game: MatrixGame | np.ndarray,
    *,
    max_support: int | None = None,
    tol: float = 1e-8,
) -> list[tuple[np.ndarray, np.ndarray, float]]:
    """Enumerate mixed equilibria of a zero-sum game by support pairs.

    Returns a list of ``(row_strategy, col_strategy, value)`` triples,
    deduplicated.  Only equal-cardinality supports are searched, which
    by the zero-sum structure is sufficient to find at least one NE.
    """
    if not isinstance(game, MatrixGame):
        game = MatrixGame(game)
    A = game.payoffs
    m, n = A.shape
    cap = max_support if max_support is not None else min(m, n)
    cap = min(cap, m, n)
    found: list[tuple[np.ndarray, np.ndarray, float]] = []
    for k in range(1, cap + 1):
        for rows in itertools.combinations(range(m), k):
            for cols in itertools.combinations(range(n), k):
                if k == 1:
                    i, j = rows[0], cols[0]
                    p = np.zeros(m)
                    q = np.zeros(n)
                    p[i] = 1.0
                    q[j] = 1.0
                    candidate = (p, q, float(A[i, j]))
                else:
                    solved = _solve_support(A, rows, cols)
                    if solved is None:
                        continue
                    p_sub, q_sub, v = solved
                    p = np.zeros(m)
                    q = np.zeros(n)
                    p[list(rows)] = p_sub / max(p_sub.sum(), 1e-300)
                    q[list(cols)] = q_sub / max(q_sub.sum(), 1e-300)
                    candidate = (p, q, v)
                p, q, v = candidate
                if game.exploitability(p, q) < tol * max(1.0, np.abs(A).max()):
                    if not any(
                        np.allclose(p, fp, atol=1e-7) and np.allclose(q, fq, atol=1e-7)
                        for fp, fq, _ in found
                    ):
                        found.append((p, q, v))
    return found
