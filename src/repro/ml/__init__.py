"""From-scratch machine-learning substrate (numpy only).

The paper trains a hinge-loss Support Vector Machine on Spambase; this
subpackage provides that model plus the surrounding stack a real
experiment needs — optimisers, preprocessing, metrics and model
selection — with a familiar ``fit`` / ``predict`` estimator API.

Nothing here depends on scikit-learn; the library is fully self
contained so the reproduction runs offline.
"""

from repro.ml.base import BaseEstimator, LinearClassifierMixin, clone_estimator
from repro.ml.linear_svm import LinearSVM
from repro.ml.logistic import LogisticRegression
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.perceptron import Perceptron
from repro.ml.ridge import RidgeClassifier
from repro.ml.metrics import (
    accuracy_score,
    precision_score,
    recall_score,
    f1_score,
    confusion_matrix,
    roc_auc_score,
    zero_one_loss,
    hinge_loss,
)
from repro.ml.preprocessing import StandardScaler, MinMaxScaler, RobustScaler
from repro.ml.model_selection import (
    train_test_split,
    KFold,
    StratifiedKFold,
    cross_val_score,
    GridSearch,
)
from repro.ml.optim import SGD, MomentumSGD, Adagrad, ConstantLR, InverseScalingLR, StepDecayLR
from repro.ml.kernels import RandomFourierFeatures, RBFSampleSVM

__all__ = [
    "BaseEstimator",
    "LinearClassifierMixin",
    "clone_estimator",
    "LinearSVM",
    "LogisticRegression",
    "GaussianNaiveBayes",
    "Perceptron",
    "RidgeClassifier",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "confusion_matrix",
    "roc_auc_score",
    "zero_one_loss",
    "hinge_loss",
    "StandardScaler",
    "MinMaxScaler",
    "RobustScaler",
    "train_test_split",
    "KFold",
    "StratifiedKFold",
    "cross_val_score",
    "GridSearch",
    "SGD",
    "MomentumSGD",
    "Adagrad",
    "ConstantLR",
    "InverseScalingLR",
    "StepDecayLR",
    "RandomFourierFeatures",
    "RBFSampleSVM",
]
