"""Estimator base classes and the linear-classifier mixin.

The API intentionally mirrors the ubiquitous ``fit``/``predict``
convention so the attack, defence and game layers can treat any model
uniformly.  Binary labels are handled in signed form internally
(``{-1, +1}``) while accepting ``{0, 1}`` input, which is what the
Spambase dataset uses.
"""

from __future__ import annotations

import copy
import inspect
from abc import ABC, abstractmethod

import numpy as np

from repro.utils.validation import check_array, check_X_y

__all__ = ["BaseEstimator", "LinearClassifierMixin", "clone_estimator", "signed_labels"]


def signed_labels(y: np.ndarray) -> np.ndarray:
    """Map binary labels from ``{0, 1}`` (or already signed) to ``{-1, +1}``."""
    y = np.asarray(y)
    out = np.where(y <= 0, -1, 1)
    return out.astype(int)


class BaseEstimator(ABC):
    """Abstract base for every model in :mod:`repro.ml`.

    Subclasses implement :meth:`fit` and :meth:`decision_function`; the
    base provides prediction, scoring, and parameter introspection used
    by :func:`clone_estimator` and grid search.
    """

    @abstractmethod
    def fit(self, X, y) -> "BaseEstimator":
        """Train the estimator on ``(X, y)`` and return ``self``."""

    @abstractmethod
    def decision_function(self, X) -> np.ndarray:
        """Return real-valued scores; positive means the positive class."""

    def predict(self, X) -> np.ndarray:
        """Predict signed labels in ``{-1, +1}``."""
        scores = self.decision_function(X)
        return np.where(scores >= 0.0, 1, -1)

    def score(self, X, y) -> float:
        """Mean accuracy of :meth:`predict` on ``(X, y)``."""
        X, y = check_X_y(X, y)
        return float(np.mean(self.predict(X) == signed_labels(y)))

    # -- parameter plumbing (constructor kwargs are the public params) --

    def get_params(self) -> dict:
        """Return constructor parameters as a dict (for cloning / search)."""
        signature = inspect.signature(type(self).__init__)
        names = [
            name
            for name, p in signature.parameters.items()
            if name != "self" and p.kind not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
        ]
        return {name: getattr(self, name) for name in names}

    def set_params(self, **params) -> "BaseEstimator":
        """Set constructor parameters by name; unknown names raise."""
        valid = self.get_params()
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"Unknown parameter {name!r} for {type(self).__name__}; "
                    f"valid parameters: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({params})"


class LinearClassifierMixin:
    """Shared behaviour for linear models with ``coef_`` and ``intercept_``."""

    coef_: np.ndarray
    intercept_: float

    def decision_function(self, X) -> np.ndarray:
        """Signed distance-like score ``X @ coef_ + intercept_``."""
        self._check_is_fitted()
        X = check_array(X, ndim=2)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features but the model was trained with "
                f"{self.coef_.shape[0]}"
            )
        return X @ self.coef_ + self.intercept_

    def _check_is_fitted(self) -> None:
        if getattr(self, "coef_", None) is None:
            raise RuntimeError(
                f"{type(self).__name__} is not fitted yet; call fit(X, y) first"
            )


def clone_estimator(estimator: BaseEstimator) -> BaseEstimator:
    """Return an unfitted copy of ``estimator`` with identical parameters.

    Fitted state (attributes ending in ``_``) is not carried over; the
    clone is constructed fresh from ``get_params``.
    """
    params = {k: copy.deepcopy(v) for k, v in estimator.get_params().items()}
    return type(estimator)(**params)
