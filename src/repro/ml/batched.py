"""Lockstep trainers: B independent problems as one stacked tensor program.

The victim fit dominates an uncached round (~95% of its wall time, see
``BENCH_hotpath.json``), and PR 2 showed the single-problem loop is
dispatch-bound: each mini-batch step is a handful of tiny NumPy calls
whose interpreter overhead dwarfs their flops.  Running B same-shape
problems *simultaneously* — ``(B, batch, d)`` gathers, one stacked
matmul/einsum per step, ``(B, d)`` weight buffers — pays that overhead
once per step instead of B times.

Bit-identity contract
---------------------
Every batched kernel here must reproduce the sequential trainers'
results **bit for bit** — batching is an execution strategy, never an
approximation, because round outcomes feed a content-addressed cache.
Two mechanisms enforce it:

* *Kernel choice.*  Stacked ``np.matmul`` reproduces per-problem
  ``np.dot`` (both lower to the same BLAS GEMM/GEMV microkernels, and
  the batch axis is an outer loop), and a zero-masked stacked
  ``einsum("bi,bij->bj")`` accumulates each problem's subgradient sum
  in the same order as the sequential compressed
  ``einsum("i,ij->j")`` — inactive terms contribute exact ``±0.0``
  addends, which cannot perturb the accumulator.  Stacked ``einsum``
  contractions for the *score* products are **not** used: they do not
  match BLAS accumulation order.
* *Runtime probes.*  The equivalences above are properties of this
  NumPy/BLAS build, not of IEEE-754, so they are verified at runtime
  on deterministic data at the exact problem shape before the batched
  path engages (memoised per shape).  A failed probe — or any shape /
  dtype / hyperparameter combination outside the verified envelope —
  falls back to plain sequential fits rather than silently diverging.

The module is deliberately free of model-class imports at top level so
``repro.ml`` stays cycle-free; callers hand in plain arrays and
hyperparameters.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pegasos_kernels_verified",
    "ridge_kernels_verified",
    "pegasos_fit_many",
    "ridge_scores_many",
]

# Problems verified per probe call: enough to exercise the batch axis
# (first / middle / last slices behave differently only through
# strides, which three problems already cover).
_PROBE_B = 3
_PROBE_SEED = 0x5EED

_pegasos_probe_cache: dict[tuple, bool] = {}
_ridge_probe_cache: dict[tuple, bool] = {}


def _batch_plan(n: int, batch_size: int) -> list[tuple[int, int, int]]:
    """The sequential trainer's mini-batch slicing: (start, stop, length)."""
    plan = []
    for start in range(0, n, batch_size):
        length = min(batch_size, n - start)
        plan.append((start, start + length, length))
    return plan


def pegasos_kernels_verified(n: int, d: int, batch_size: int) -> bool:
    """True when the stacked Pegasos kernels reproduce the sequential
    trainer's bits at this problem shape (memoised per shape).

    Checks, with the exact array forms the hot loop uses (strided
    mini-batch views of a ``(B, n, d)`` gather, ``out=`` buffers):

    * stacked ``matmul(Xb, W[:, :, None])`` == per-problem
      ``dot(Xb[b], w)`` for every distinct mini-batch length;
    * zero-masked stacked ``einsum("bi,bij->bj")`` == per-problem
      compressed ``einsum("i,ij->j")`` (full and partial masks);
    * stacked ``matmul(W[:, None, :], W[:, :, None])`` == per-problem
      ``w.dot(w)`` (the projection's squared norm).
    """
    key = (int(n), int(d), int(batch_size))
    cached = _pegasos_probe_cache.get(key)
    if cached is not None:
        return cached
    ok = _probe_pegasos(*key)
    _pegasos_probe_cache[key] = ok
    return ok


def _probe_pegasos(n: int, d: int, batch_size: int) -> bool:
    rng = np.random.default_rng(_PROBE_SEED)
    B = _PROBE_B
    X = rng.standard_normal((B, n, d))
    y = rng.choice([-1.0, 1.0], size=(B, n))
    W = rng.standard_normal((B, d))

    seen_lengths: set[int] = set()
    for start, stop, length in _batch_plan(n, batch_size):
        if length in seen_lengths:
            continue
        seen_lengths.add(length)
        # The hot loop's per-step fancy gather always yields fresh
        # C-contiguous batches; probe with the same memory layout.
        Xb = np.ascontiguousarray(X[:, start:stop])
        yb = np.ascontiguousarray(y[:, start:stop])

        scores = np.empty((B, length, 1))
        np.matmul(Xb, W[:, :, None], out=scores)
        for b in range(B):
            if scores[b, :, 0].tobytes() != np.dot(Xb[b], W[b]).tobytes():
                return False

        active = rng.random((B, length)) < 0.5
        active[0] = True  # whole batch active (the compress-skip branch)
        ym = yb * active
        grad = np.einsum("bi,bij->bj", ym, Xb)
        for b in range(B):
            m = active[b]
            n_active = int(np.count_nonzero(m))
            if n_active == 0:
                continue  # handled by explicit zeroing, nothing to compare
            if n_active == length:
                ref = np.einsum("i,ij->j", yb[b], Xb[b])
            else:
                ref = np.einsum("i,ij->j", yb[b][m], Xb[b][m])
            if grad[b].tobytes() != ref.tobytes():
                return False

    normsq = np.matmul(W[:, None, :], W[:, :, None])
    for b in range(B):
        if np.float64(normsq[b, 0, 0]).tobytes() != \
                np.float64(W[b].dot(W[b])).tobytes():
            return False
    return True


def pegasos_fit_many(models, problems) -> None:
    """Run the Pegasos schedule on B same-shape problems in lockstep.

    ``problems`` is a list of validated ``(X, y_signed)`` float64 pairs,
    all of shape ``(n, d)``; ``models`` the matching ``LinearSVM``
    instances, whose hyperparameters (everything except ``seed``) must
    agree.  The caller (``LinearSVM.fit_many``) is responsible for the
    eligibility checks and the :func:`pegasos_kernels_verified` probe —
    this function assumes the batched kernels are exact and writes each
    model's ``coef_`` / ``intercept_`` / ``objective_trace_`` with the
    precise bits a sequential ``fit`` would have produced.

    Why lockstep works: every problem shares ``(epochs, batch_size)``,
    so all B trajectories take the same steps at the same ``t`` and the
    per-step scalars (``eta``, the projection radius) are shared.  Each
    problem keeps its *own* RNG stream, drawn one permutation per epoch
    in epoch order — exactly the sequential consumption order.  All
    cross-problem arithmetic is elementwise along the batch axis or a
    probed stacked kernel; problems whose mini-batch has no
    margin-active rows get their subgradient-sum row forced to ``+0.0``
    (subtracting ``+0.0`` is the IEEE identity for every float,
    including ``-0.0``) and their intercept left untouched, matching
    the sequential trainer's skipped branch.
    """
    from repro.utils.rng import as_generator

    B = len(models)
    m0 = models[0]
    reg = m0.reg
    epochs = m0.epochs
    batch_size = m0.batch_size
    fit_intercept = m0.fit_intercept
    average = m0.average
    n, d = problems[0][0].shape

    rngs = [as_generator(m.seed) for m in models]

    # The engine's grouped rounds share most of their training bytes:
    # multi-seed repeats of a clean round are *identical* problems (only
    # the model seed differs), and attacked repeats share the clean
    # prefix of ``vstack([clean, poison])``, differing only in the
    # poison tail.  Deduplicating the longest common ``(X, y)`` prefix
    # into one source block keeps the per-step gathers reading mostly
    # cache-resident rows instead of B spread-out copies — the gathered
    # values (and therefore the bits) are identical either way.
    X0, y0 = problems[0]
    prefix = n
    for X, y in problems[1:]:
        if X is not X0:
            mism = (X != X0).any(axis=1)
            hit = int(np.argmax(mism))
            if mism[hit]:
                prefix = min(prefix, hit)
        if y is not y0:
            mism = y != y0
            hit = int(np.argmax(mism))
            if mism[hit]:
                prefix = min(prefix, hit)
        if prefix == 0:
            break
    tail_n = n - prefix
    if tail_n == 0:
        X_src, y_src = X0, y0
    else:
        X_src = np.concatenate([X0[:prefix]] + [X[prefix:] for X, _ in problems])
        y_src = np.concatenate([y0[:prefix]] + [y[prefix:] for _, y in problems])
        # Row r >= prefix of problem b lives at r + b * tail_n in the
        # packed source; prefix rows keep their own index.
        tail_offsets = (np.arange(B) * tail_n)[:, None]
        in_tail = np.empty((B, n), dtype=bool)
    ys = np.empty((B, n))

    add = np.add
    multiply = np.multiply
    subtract = np.subtract
    divide = np.divide
    less = np.less
    matmul = np.matmul
    einsum = np.einsum

    W = np.zeros((B, d))
    b_vec = np.zeros(B)
    b_col = b_vec[:, None]          # broadcast view; b_vec mutated in place
    W_sum = np.zeros((B, d))
    b_sum = np.zeros(B)
    n_averaged = 0

    grad_w = np.empty((B, d))
    grad_sum = np.empty((B, d))
    deltas = np.empty(B)
    normsq = np.empty((B, 1, 1))
    norms = normsq.reshape(B)
    over = np.empty(B, dtype=bool)
    factors = np.empty(B)
    counts = np.empty(B, dtype=np.intp)

    # One contiguous (scores3, scores2, active, ym) buffer set per
    # distinct mini-batch length (there are at most two: the full batch
    # and the tail).
    buffers: dict[int, tuple] = {}
    plan = []
    for start, stop, length in _batch_plan(n, batch_size):
        bufs = buffers.get(length)
        if bufs is None:
            scores3 = np.empty((B, length, 1))
            bufs = (scores3, scores3.reshape(B, length),
                    np.empty((B, length), dtype=bool),
                    np.empty((B, length)))
            buffers[length] = bufs
        plan.append((start, stop, float(length)) + bufs)

    perms = np.empty((B, n), dtype=np.intp)
    flat_idx = np.empty((B, n), dtype=np.intp)

    t = 0
    averaging_starts = max(1, epochs // 2)
    radius = 1.0 / np.sqrt(reg)
    for epoch in range(epochs):
        # Per-problem shuffles, one permutation per epoch in epoch
        # order — each problem's RNG consumption order is exactly the
        # sequential trainer's.
        for b in range(B):
            perms[b] = rngs[b].permutation(n)
        if tail_n == 0:
            idx = perms
        else:
            np.greater_equal(perms, prefix, out=in_tail)
            multiply(in_tail, tail_offsets, out=flat_idx)
            add(flat_idx, perms, out=flat_idx)
            idx = flat_idx
        np.take(y_src, idx, out=ys)                   # whole epoch's labels
        averaging = average and epoch >= averaging_starts
        for start, stop, length, scores3, scores2, active, ym in plan:
            t += 1
            # Gather this step's rows for all B problems in one fancy
            # index — a fresh C-contiguous (B, length, d) batch.  No
            # (B, n, d) permuted copy is ever materialised.
            Xb = X_src[idx[:, start:stop]]
            yb = ys[:, start:stop]
            # margins = yb * (Xb @ w + b) for all B problems at once
            matmul(Xb, W[:, :, None], out=scores3)
            add(scores2, b_col, out=scores2)
            multiply(scores2, yb, out=scores2)
            less(scores2, 1.0, out=active)
            # Per-problem active counts, needed only to detect (and fix
            # up) problems whose mini-batch has no margin-active rows.
            np.sum(active, axis=1, out=counts)
            no_empty = bool(counts.all())
            eta = 1.0 / (reg * t)
            multiply(W, reg, out=grad_w)
            # Zero-masked subgradient sums: inactive rows contribute
            # exact +/-0.0 addends, preserving each accumulator's bits.
            multiply(yb, active, out=ym)
            einsum("bi,bij->bj", ym, Xb, out=grad_sum)
            if not no_empty:
                # Problems with an empty active set skip the whole
                # subgradient branch sequentially; forcing their row to
                # +0.0 makes the batched subtract the IEEE identity.
                grad_sum[counts == 0] = 0.0
            divide(grad_sum, length, out=grad_sum)
            subtract(grad_w, grad_sum, out=grad_w)
            if fit_intercept:
                np.sum(ym, axis=1, out=deltas)  # exact: sums of {-1, 0, +1}
                multiply(deltas, eta, out=deltas)
                divide(deltas, length, out=deltas)
                if no_empty:
                    add(b_vec, deltas, out=b_vec)
                else:
                    hit = counts != 0
                    b_vec[hit] += deltas[hit]
            multiply(grad_w, eta, out=grad_w)
            subtract(W, grad_w, out=W)
            # Pegasos projection onto the ball of radius 1/sqrt(reg):
            # scale only the problems outside it (x * 1.0 would be
            # exact too, but the sequential trainer skips them).
            matmul(W[:, None, :], W[:, :, None], out=normsq)
            np.sqrt(norms, out=norms)
            np.greater(norms, radius, out=over)
            if over.any():
                factors.fill(1.0)
                factors[over] = radius / norms[over]
                multiply(W, factors[:, None], out=W)
            if averaging:
                add(W_sum, W, out=W_sum)
                add(b_sum, b_vec, out=b_sum)
                n_averaged += 1

    if average and n_averaged > 0:
        coef = W_sum / n_averaged
        intercept = b_sum / n_averaged
    else:
        coef, intercept = W, b_vec
    for i, model in enumerate(models):
        model.objective_trace_ = []
        model.coef_ = coef[i].copy()
        model.intercept_ = float(intercept[i])


# -- batched closed-form ridge (RONI's candidate probes) -------------------


def ridge_kernels_verified(m: int, d: int, n_val: int) -> bool:
    """True when the stacked ridge-fit-and-score kernels reproduce the
    per-candidate bits at this problem shape (memoised per shape).

    Checks stacked row means, the gram/rhs matmuls, the batched
    ``np.linalg.solve`` and the validation-set scoring against their
    per-slice sequential forms.
    """
    key = (int(m), int(d), int(n_val))
    cached = _ridge_probe_cache.get(key)
    if cached is not None:
        return cached
    ok = _probe_ridge(*key)
    _ridge_probe_cache[key] = ok
    return ok


def _probe_ridge(m: int, d: int, n_val: int) -> bool:
    rng = np.random.default_rng(_PROBE_SEED)
    B = _PROBE_B
    X = rng.standard_normal((B, m, d))
    t = rng.choice([-1.0, 1.0], size=(B, m))
    X_val = rng.standard_normal((n_val, d))

    stacked = ridge_scores_many(X, t, X_val, reg=1e-2, fit_intercept=True)
    for b in range(B):
        x_mean = X[b].mean(axis=0)
        t_mean = t[b].mean()
        Xc = X[b] - x_mean
        tc = t[b] - t_mean
        gram = Xc.T @ Xc + 1e-2 * m * np.eye(d)
        w = np.linalg.solve(gram, Xc.T @ tc)
        ref = X_val @ w + float(t_mean - x_mean @ w)
        if stacked[b].tobytes() != ref.tobytes():
            return False

    plain = ridge_scores_many(X, t, X_val, reg=1e-2, fit_intercept=False)
    for b in range(B):
        gram = X[b].T @ X[b] + 1e-2 * m * np.eye(d)
        w = np.linalg.solve(gram, X[b].T @ t[b])
        if plain[b].tobytes() != (X_val @ w).tobytes():
            return False
    return True


def ridge_scores_many(X_stack, t_stack, X_val, *, reg, fit_intercept):
    """Closed-form ridge fit of every stacked problem plus decision
    scores on a shared validation matrix, all at once.

    ``X_stack`` is ``(C, m, d)``, ``t_stack`` the ``(C, m)`` *signed*
    float targets; returns the ``(C, n_val)`` decision scores.  Each
    stacked operation is the per-slice sequential operation verified by
    :func:`ridge_kernels_verified` — the result matches C independent
    ``RidgeClassifier(reg, fit_intercept).fit(...).decision_function(
    X_val)`` calls bit for bit.
    """
    C, m, d = X_stack.shape
    if fit_intercept:
        x_mean = X_stack.mean(axis=1)                      # (C, d)
        t_mean = t_stack.mean(axis=1)                      # (C,)
        Xc = X_stack - x_mean[:, None, :]
        tc = t_stack - t_mean[:, None]
    else:
        Xc, tc = X_stack, t_stack
    XcT = np.transpose(Xc, (0, 2, 1))
    gram = np.matmul(XcT, Xc) + reg * m * np.eye(d)
    w = np.linalg.solve(gram, np.matmul(XcT, tc[:, :, None]))  # (C, d, 1)
    scores = np.matmul(X_val[None, :, :], w)[:, :, 0]          # (C, n_val)
    if fit_intercept:
        # intercept = float(t_mean - x_mean @ w), slice by slice
        intercept = t_mean - np.matmul(x_mean[:, None, :], w)[:, 0, 0]
        scores = scores + intercept[:, None]
    return scores
