"""Kernel approximation: random Fourier features + an RBF-SVM wrapper.

The paper evaluates a linear SVM, but poisoning defences are often
deployed in front of kernel machines; this module lets every
experiment swap in an (approximate) RBF SVM while staying inside the
linear training machinery:

* :class:`RandomFourierFeatures` — Rahimi & Recht (2007): the map
  ``z(x) = sqrt(2/D) * cos(W x + b)`` with ``W ~ N(0, gamma·I)`` has
  ``E[z(x)·z(x')] = exp(-gamma/2 ||x - x'||²)``, so any linear learner
  on ``z(x)`` approximates its RBF-kernel counterpart.
* :class:`RBFSampleSVM` — the Pegasos SVM trained on those features,
  exposing the usual estimator API (and therefore usable as a game
  victim or attack surrogate).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator
from repro.ml.linear_svm import LinearSVM
from repro.utils.rng import as_generator
from repro.utils.validation import check_array, check_positive_int, check_X_y

__all__ = ["RandomFourierFeatures", "RBFSampleSVM"]


class RandomFourierFeatures:
    """Monte-Carlo feature map approximating the RBF kernel.

    Parameters
    ----------
    n_components:
        Number of random features ``D`` (approximation error decays as
        ``1/sqrt(D)``).
    gamma:
        RBF bandwidth: the approximated kernel is
        ``exp(-gamma/2 ||x - x'||²)``.
    seed:
        Seed for the random frequencies/phases.
    """

    def __init__(self, n_components: int = 200, *, gamma: float = 1.0,
                 seed: int | np.random.Generator | None = 0):
        self.n_components = check_positive_int(n_components, name="n_components")
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        self.gamma = float(gamma)
        self.seed = seed
        self.weights_ = None
        self.offsets_ = None

    def fit(self, X) -> "RandomFourierFeatures":
        X = check_array(X, ndim=2)
        rng = as_generator(self.seed)
        d = X.shape[1]
        self.weights_ = rng.normal(0.0, np.sqrt(self.gamma), size=(d, self.n_components))
        self.offsets_ = rng.uniform(0.0, 2.0 * np.pi, size=self.n_components)
        return self

    def transform(self, X) -> np.ndarray:
        if self.weights_ is None:
            raise RuntimeError("RandomFourierFeatures is not fitted; call fit(X)")
        X = check_array(X, ndim=2)
        if X.shape[1] != self.weights_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, map was fitted with "
                f"{self.weights_.shape[0]}"
            )
        projection = X @ self.weights_ + self.offsets_
        return np.sqrt(2.0 / self.n_components) * np.cos(projection)

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def approximate_kernel(self, X, Y=None) -> np.ndarray:
        """The Gram matrix the fitted map induces (``z(X) @ z(Y)'``)."""
        ZX = self.transform(X)
        ZY = ZX if Y is None else self.transform(Y)
        return ZX @ ZY.T


class RBFSampleSVM(BaseEstimator):
    """Approximate RBF-kernel SVM: random Fourier features + Pegasos.

    Parameters mirror :class:`~repro.ml.linear_svm.LinearSVM` plus the
    feature map's ``n_components`` and ``gamma``.
    """

    def __init__(self, n_components: int = 200, gamma: float = 1.0,
                 reg: float = 1e-4, epochs: int = 30, batch_size: int = 64,
                 seed: int | None = 0):
        self.n_components = check_positive_int(n_components, name="n_components")
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        self.gamma = float(gamma)
        self.reg = float(reg)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.seed = seed
        self._features: RandomFourierFeatures | None = None
        self._svm: LinearSVM | None = None

    def fit(self, X, y) -> "RBFSampleSVM":
        X, y = check_X_y(X, y)
        self._features = RandomFourierFeatures(
            self.n_components, gamma=self.gamma, seed=self.seed
        ).fit(X)
        self._svm = LinearSVM(reg=self.reg, epochs=self.epochs,
                              batch_size=self.batch_size, seed=self.seed)
        self._svm.fit(self._features.transform(X), y)
        return self

    def decision_function(self, X) -> np.ndarray:
        if self._svm is None:
            raise RuntimeError("RBFSampleSVM is not fitted; call fit(X, y) first")
        return self._svm.decision_function(self._features.transform(X))
