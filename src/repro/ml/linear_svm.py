"""Hinge-loss linear SVM trained by Pegasos-style subgradient descent.

This is the model the paper evaluates ("Support Vector Machine (SVM)
with hinge loss ... trained for 5000 epoch in every iteration").  The
primal objective is

    min_w  (lambda/2) ||w||^2 + (1/n) sum_i max(0, 1 - y_i (w.x_i + b))

solved with mini-batch subgradient steps on the classic ``1/(lambda t)``
Pegasos schedule (Shalev-Shwartz et al., 2011).
"""

from __future__ import annotations

import math

import numpy as np

from repro.ml.base import BaseEstimator, LinearClassifierMixin, signed_labels
from repro.ml.metrics import hinge_loss
from repro.utils.rng import as_generator
from repro.utils.validation import check_X_y

__all__ = ["LinearSVM"]

# Upper bound (in index entries, ~8 bytes each) on the pre-drawn shuffle
# buffer; fits above it draw per-epoch permutations instead, which is
# bit-identical because RNG consumption order is unchanged.
_PREDRAW_MAX_ENTRIES = 16_777_216  # ~128 MB


class LinearSVM(LinearClassifierMixin, BaseEstimator):
    """Primal linear SVM with hinge loss.

    Parameters
    ----------
    reg:
        L2 regularisation strength ``lambda`` (must be positive).
    epochs:
        Number of passes over the training data.  The paper uses 5000;
        the default here is smaller because the Pegasos schedule
        converges to useful accuracy far sooner on standardised data,
        and experiments override it where fidelity matters.
    batch_size:
        Mini-batch size for each subgradient step.
    fit_intercept:
        Learn an unregularised bias term.
    seed:
        RNG seed used to shuffle the data each epoch.
    average:
        If true, return the tail-averaged iterate (averaging the last
        half of the trajectory), which markedly stabilises accuracy
        measurements — important because the game experiments compare
        accuracies that differ by a point or two.
    tol:
        Optional early-stopping tolerance on the epoch-to-epoch change
        of the objective; ``None`` disables early stopping.  Setting it
        implies ``track_objective`` (the stopping rule needs the trace).
    track_objective:
        Record the full-data regularised objective after every epoch in
        ``objective_trace_``.  Off by default: the per-epoch objective
        costs as much as an entire epoch of mini-batch steps, and the
        hot experiment path never reads it.  ``None`` (default) means
        "only when ``tol`` requires it".

    Attributes
    ----------
    coef_, intercept_:
        Learned weights and bias.
    objective_trace_:
        Regularised objective value after each epoch when tracked
        (``track_objective=True`` or ``tol`` set), else empty.
    """

    def __init__(
        self,
        reg: float = 1e-4,
        epochs: int = 60,
        batch_size: int = 64,
        fit_intercept: bool = True,
        seed: int | None = 0,
        average: bool = True,
        tol: float | None = None,
        track_objective: bool | None = None,
    ):
        if reg <= 0:
            raise ValueError(f"reg must be positive, got {reg}")
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.reg = float(reg)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.fit_intercept = bool(fit_intercept)
        self.seed = seed
        self.average = bool(average)
        self.tol = tol
        self.track_objective = track_objective
        self.coef_ = None
        self.intercept_ = 0.0

    def fit(self, X, y) -> "LinearSVM":
        """Pegasos mini-batch subgradient descent, fast path.

        The loop is reworked for speed but stays **bit-identical** to
        the original trainer (same seed, same data -> exactly the same
        ``coef_``/``intercept_``; enforced by the equivalence tests).
        The step arithmetic is dispatch-bound, not flop-bound (each
        mini-batch is tiny), so every rework targets interpreter and
        allocation overhead while performing the exact same float
        operations in the exact same order:

        * all epoch shuffles are drawn before the hot loop, in the same
          order a per-epoch ``rng.permutation(n)`` would draw them;
        * each epoch gathers the shuffled data into one pair of reused
          buffers (no per-epoch allocation/page faulting), so every
          mini-batch is a prebuilt slice view instead of a fancy index;
        * all step temporaries live in preallocated buffers written
          with ``out=`` ufunc calls — same elementwise operations,
          zero allocations in the common path;
        * when the whole batch is margin-active (common early in
          training) the boolean compress is skipped: an all-``True``
          mask copy is value- and order-identical to the direct view;
        * ``np.linalg.norm(w)`` is ``sqrt(w.dot(w))`` for 1-d input —
          called directly;
        * the per-epoch full-data objective (a whole extra pass over
          the data per epoch) is only computed when tracked.
        """
        X, y = check_X_y(X, y)
        y_signed = signed_labels(y).astype(float)
        n, d = X.shape
        rng = as_generator(self.seed)
        track = (self.track_objective is True) or (self.tol is not None)

        # Locals for everything the hot loop touches: global/attribute
        # lookups cost real time at ~500 dispatch-bound steps per fit.
        reg = self.reg
        fit_intercept = self.fit_intercept
        sqrt = math.sqrt
        count_nonzero = np.count_nonzero
        einsum = np.einsum
        dot = np.dot
        add = np.add
        multiply = np.multiply
        subtract = np.subtract
        divide = np.divide
        less = np.less
        # The batch subgradient sum ``(yb[:,None] * Xb).sum(axis=0)`` is
        # an axis-0 reduction of a C-ordered array: NumPy accumulates it
        # row by row, sequentially — exactly the accumulation order of
        # einsum's sum-of-products loop, so einsum computes the same
        # bits without materialising the (batch, d) product.  (For
        # d == 1 the reduction degenerates to a contiguous sum, which
        # NumPy computes pairwise instead; keep the original expression
        # there.  The bit-identity property tests cover both branches.)
        fused_grad_sum = d > 1

        w = np.zeros(d)
        b = 0.0
        w_sum = np.zeros(d)
        b_sum = 0.0
        n_averaged = 0
        self.objective_trace_ = []

        # Pre-drawn shuffles: identical streams to one permutation call
        # per epoch, hoisted out of the hot loop.  Sequential RNG
        # consumption makes pre-drawing and per-epoch drawing produce
        # the same permutations, so the buffer is skipped (not chunked)
        # when epochs x n would make it large.
        predraw = self.epochs * n <= _PREDRAW_MAX_ENTRIES
        if predraw:
            perms = np.empty((self.epochs, n), dtype=np.intp)
            for epoch in range(self.epochs):
                perms[epoch] = rng.permutation(n)

        # Per-batch step buffers, built once (sizes never change across
        # epochs); the shuffled epoch arrays are fresh per epoch — a
        # plain fancy gather, measurably faster than ``np.take`` with
        # ``out=`` — so the data views are sliced inside the loop.
        batch_size = self.batch_size
        scores_buf = np.empty(min(batch_size, n))
        active_buf = np.empty(min(batch_size, n), dtype=bool)
        prod_buf = np.empty((min(batch_size, n), d))
        grad_w = np.empty(d)
        grad_sum = np.empty(d)
        batches = []
        for start in range(0, n, batch_size):
            length = min(batch_size, n - start)
            batches.append((
                start,
                start + length,
                scores_buf[:length],
                active_buf[:length],
                prod_buf[:length],
                float(length),
            ))

        t = 0
        prev_obj = np.inf
        averaging_starts = max(1, self.epochs // 2)
        radius = 1.0 / np.sqrt(reg)
        for epoch in range(self.epochs):
            order = perms[epoch] if predraw else rng.permutation(n)
            Xs = X[order]  # one contiguous gather; batches are views
            ys = y_signed[order]
            averaging = self.average and epoch >= averaging_starts
            for start, stop, scores, active, prod, length in batches:
                t += 1
                Xb = Xs[start:stop]
                yb = ys[start:stop]
                # margins = yb * (Xb @ w + b), in place
                dot(Xb, w, out=scores)
                add(scores, b, out=scores)
                multiply(scores, yb, out=scores)
                less(scores, 1.0, out=active)
                n_active = count_nonzero(active)
                eta = 1.0 / (reg * t)
                # Subgradient of the regularised objective on the batch.
                multiply(w, reg, out=grad_w)
                if n_active:
                    if n_active == length:
                        # Whole batch active: the all-True compress is
                        # identical to the direct view.
                        yb_active, Xb_active = yb, Xb
                    else:
                        yb_active, Xb_active = yb[active], Xb[active]
                    if fused_grad_sum:
                        einsum("i,ij->j", yb_active, Xb_active,
                               out=grad_sum)
                    else:
                        multiply(yb_active[:, None], Xb_active,
                                 out=prod[:int(n_active)])
                        prod[:int(n_active)].sum(axis=0, out=grad_sum)
                    divide(grad_sum, length, out=grad_sum)
                    subtract(grad_w, grad_sum, out=grad_w)
                    if fit_intercept:
                        # float64 scalar arithmetic is IEEE double either
                        # way; plain-float math skips NumPy scalar
                        # dispatch without changing a bit.
                        b = b + eta * float(yb_active.sum()) / length
                multiply(grad_w, eta, out=grad_w)
                subtract(w, grad_w, out=w)
                # Pegasos projection onto the ball of radius 1/sqrt(reg).
                norm = sqrt(w.dot(w))
                if norm > radius:
                    multiply(w, radius / norm, out=w)
                if averaging:
                    add(w_sum, w, out=w_sum)
                    b_sum = b_sum + b
                    n_averaged += 1

            if track:
                obj = self._objective(X, y_signed, w, b)
                self.objective_trace_.append(obj)
                if self.tol is not None and abs(prev_obj - obj) < self.tol:
                    break
                prev_obj = obj

        if self.average and n_averaged > 0:
            self.coef_ = w_sum / n_averaged
            self.intercept_ = float(b_sum / n_averaged)
        else:
            self.coef_ = w
            self.intercept_ = float(b)
        return self

    @classmethod
    def fit_many(cls, models, datasets) -> list:
        """Fit ``models[i]`` on ``datasets[i] = (X, y)``, batched when safe.

        The result is always bit-identical to ``[m.fit(X, y) for ...]``;
        when :meth:`can_fit_many` holds, the B problems run in lockstep
        through :func:`repro.ml.batched.pegasos_fit_many` (one stacked
        tensor program instead of B dispatch-bound loops), otherwise —
        ragged shapes, mixed hyperparameters, ``d == 1``, objective
        tracking, or a failed kernel probe — each model falls back to
        its own sequential :meth:`fit`.  Returns the models.
        """
        models = list(models)
        datasets = list(datasets)
        if len(models) != len(datasets):
            raise ValueError(
                f"got {len(models)} models but {len(datasets)} datasets")
        if not models:
            return models
        validated = [check_X_y(X, y) for X, y in datasets]
        if cls.can_fit_many(models, validated):
            from repro.ml.batched import pegasos_fit_many

            signed = [(X, signed_labels(y).astype(float))
                      for X, y in validated]
            pegasos_fit_many(models, signed)
        else:
            for model, (X, y) in zip(models, validated):
                model.fit(X, y)
        return models

    @classmethod
    def can_fit_many(cls, models, datasets) -> bool:
        """Whether ``fit_many`` may run these problems in lockstep.

        Requires: plain ``LinearSVM`` instances whose hyperparameters
        (everything except ``seed``) agree; same-shape 2-d float64
        problems with ``d > 1`` (the sequential ``d == 1`` branch uses
        a pairwise reduction no stacked kernel reproduces); no
        objective tracking or early stopping (the per-epoch trace
        would desynchronise the trajectories); and the runtime kernel
        probe (:func:`repro.ml.batched.pegasos_kernels_verified`)
        passing at the exact problem shape.
        """
        first = models[0]
        if type(first) is not cls:
            return False
        if first.tol is not None or first.track_objective is True:
            return False
        for model in models[1:]:
            if type(model) is not cls:
                return False
            if (model.reg, model.epochs, model.batch_size,
                    model.fit_intercept, model.average, model.tol,
                    model.track_objective is True) != \
                    (first.reg, first.epochs, first.batch_size,
                     first.fit_intercept, first.average, first.tol,
                     first.track_objective is True):
                return False
        shape = np.asarray(datasets[0][0]).shape
        if len(shape) != 2 or shape[1] < 2:
            return False
        for X, _ in datasets:
            X = np.asarray(X)
            if X.shape != shape or X.dtype != np.float64:
                return False
        from repro.ml.batched import pegasos_kernels_verified

        return pegasos_kernels_verified(shape[0], shape[1],
                                        min(first.batch_size, shape[0]))

    def _objective(self, X: np.ndarray, y_signed: np.ndarray, w: np.ndarray,
                   b: float) -> float:
        scores = X @ w + b
        return 0.5 * self.reg * float(w @ w) + hinge_loss(y_signed, scores)

    def objective(self, X, y) -> float:
        """Regularised hinge objective of the fitted model on ``(X, y)``."""
        self._check_is_fitted()
        X, y = check_X_y(X, y)
        return self._objective(X, signed_labels(y).astype(float), self.coef_,
                               self.intercept_)
