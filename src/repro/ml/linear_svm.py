"""Hinge-loss linear SVM trained by Pegasos-style subgradient descent.

This is the model the paper evaluates ("Support Vector Machine (SVM)
with hinge loss ... trained for 5000 epoch in every iteration").  The
primal objective is

    min_w  (lambda/2) ||w||^2 + (1/n) sum_i max(0, 1 - y_i (w.x_i + b))

solved with mini-batch subgradient steps on the classic ``1/(lambda t)``
Pegasos schedule (Shalev-Shwartz et al., 2011).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, LinearClassifierMixin, signed_labels
from repro.ml.metrics import hinge_loss
from repro.utils.rng import as_generator
from repro.utils.validation import check_X_y

__all__ = ["LinearSVM"]


class LinearSVM(LinearClassifierMixin, BaseEstimator):
    """Primal linear SVM with hinge loss.

    Parameters
    ----------
    reg:
        L2 regularisation strength ``lambda`` (must be positive).
    epochs:
        Number of passes over the training data.  The paper uses 5000;
        the default here is smaller because the Pegasos schedule
        converges to useful accuracy far sooner on standardised data,
        and experiments override it where fidelity matters.
    batch_size:
        Mini-batch size for each subgradient step.
    fit_intercept:
        Learn an unregularised bias term.
    seed:
        RNG seed used to shuffle the data each epoch.
    average:
        If true, return the tail-averaged iterate (averaging the last
        half of the trajectory), which markedly stabilises accuracy
        measurements — important because the game experiments compare
        accuracies that differ by a point or two.
    tol:
        Optional early-stopping tolerance on the epoch-to-epoch change
        of the objective; ``None`` disables early stopping.

    Attributes
    ----------
    coef_, intercept_:
        Learned weights and bias.
    objective_trace_:
        Regularised objective value after each epoch (useful for tests
        asserting that training actually descends).
    """

    def __init__(
        self,
        reg: float = 1e-4,
        epochs: int = 60,
        batch_size: int = 64,
        fit_intercept: bool = True,
        seed: int | None = 0,
        average: bool = True,
        tol: float | None = None,
    ):
        if reg <= 0:
            raise ValueError(f"reg must be positive, got {reg}")
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.reg = float(reg)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.fit_intercept = bool(fit_intercept)
        self.seed = seed
        self.average = bool(average)
        self.tol = tol
        self.coef_ = None
        self.intercept_ = 0.0

    def fit(self, X, y) -> "LinearSVM":
        X, y = check_X_y(X, y)
        y_signed = signed_labels(y).astype(float)
        n, d = X.shape
        rng = as_generator(self.seed)

        w = np.zeros(d)
        b = 0.0
        w_sum = np.zeros(d)
        b_sum = 0.0
        n_averaged = 0
        self.objective_trace_ = []

        t = 0
        prev_obj = np.inf
        averaging_starts = max(1, self.epochs // 2)
        for epoch in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                t += 1
                batch = order[start : start + self.batch_size]
                Xb, yb = X[batch], y_signed[batch]
                margins = yb * (Xb @ w + b)
                active = margins < 1.0
                eta = 1.0 / (self.reg * t)
                # Subgradient of the regularised objective on the batch.
                grad_w = self.reg * w
                if np.any(active):
                    grad_w = grad_w - (yb[active, None] * Xb[active]).sum(axis=0) / len(batch)
                w = w - eta * grad_w
                if self.fit_intercept and np.any(active):
                    b = b + eta * yb[active].sum() / len(batch)
                # Pegasos projection onto the ball of radius 1/sqrt(reg).
                norm = np.linalg.norm(w)
                radius = 1.0 / np.sqrt(self.reg)
                if norm > radius:
                    w = w * (radius / norm)
                if self.average and epoch >= averaging_starts:
                    w_sum += w
                    b_sum += b
                    n_averaged += 1

            obj = self._objective(X, y_signed, w, b)
            self.objective_trace_.append(obj)
            if self.tol is not None and abs(prev_obj - obj) < self.tol:
                break
            prev_obj = obj

        if self.average and n_averaged > 0:
            self.coef_ = w_sum / n_averaged
            self.intercept_ = float(b_sum / n_averaged)
        else:
            self.coef_ = w
            self.intercept_ = float(b)
        return self

    def _objective(self, X: np.ndarray, y_signed: np.ndarray, w: np.ndarray,
                   b: float) -> float:
        scores = X @ w + b
        return 0.5 * self.reg * float(w @ w) + hinge_loss(y_signed, scores)

    def objective(self, X, y) -> float:
        """Regularised hinge objective of the fitted model on ``(X, y)``."""
        self._check_is_fitted()
        X, y = check_X_y(X, y)
        return self._objective(X, signed_labels(y).astype(float), self.coef_,
                               self.intercept_)
