"""L2-regularised logistic regression via full-batch gradient descent.

Serves as the alternate victim model for ablations: the game analysis
in the paper is model-agnostic as long as the learner degrades smoothly
under poisoning, and logistic regression lets the benchmarks show the
same qualitative Figure-1 shape on a second learner.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, LinearClassifierMixin, signed_labels
from repro.utils.validation import check_X_y

__all__ = ["LogisticRegression"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class LogisticRegression(LinearClassifierMixin, BaseEstimator):
    """Binary logistic regression with L2 regularisation.

    Parameters
    ----------
    reg:
        L2 penalty strength on the weights (bias unregularised).
    lr:
        Gradient-descent step size.
    max_iter:
        Maximum number of full-batch iterations.
    tol:
        Stop when the gradient infinity-norm drops below this.
    fit_intercept:
        Learn a bias term.
    """

    def __init__(self, reg: float = 1e-4, lr: float = 0.5, max_iter: int = 500,
                 tol: float = 1e-6, fit_intercept: bool = True):
        if reg < 0:
            raise ValueError(f"reg must be non-negative, got {reg}")
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if max_iter <= 0:
            raise ValueError(f"max_iter must be positive, got {max_iter}")
        self.reg = float(reg)
        self.lr = float(lr)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.fit_intercept = bool(fit_intercept)
        self.coef_ = None
        self.intercept_ = 0.0

    def fit(self, X, y) -> "LogisticRegression":
        X, y = check_X_y(X, y)
        target = (signed_labels(y) + 1) / 2.0  # {0, 1}
        n, d = X.shape
        w = np.zeros(d)
        b = 0.0
        self.n_iter_ = 0
        for _ in range(self.max_iter):
            self.n_iter_ += 1
            p = _sigmoid(X @ w + b)
            err = p - target
            grad_w = X.T @ err / n + self.reg * w
            grad_b = float(err.mean()) if self.fit_intercept else 0.0
            if max(np.abs(grad_w).max(), abs(grad_b)) < self.tol:
                break
            w -= self.lr * grad_w
            b -= self.lr * grad_b
        self.coef_ = w
        self.intercept_ = float(b)
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Probability of the positive class for each row of ``X``."""
        return _sigmoid(self.decision_function(X))
