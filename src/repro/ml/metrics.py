"""Classification metrics.

All metrics accept labels in ``{0, 1}`` or ``{-1, +1}`` and normalise
internally, matching the rest of the library.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import signed_labels

__all__ = [
    "accuracy_score",
    "zero_one_loss",
    "confusion_matrix",
    "precision_score",
    "recall_score",
    "f1_score",
    "roc_auc_score",
    "hinge_loss",
]


def _pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = signed_labels(np.asarray(y_true))
    y_pred = signed_labels(np.asarray(y_pred))
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ValueError(
            f"y_true and y_pred must be 1-d and the same length, got "
            f"{y_true.shape} vs {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("metrics are undefined on empty inputs")
    return y_true, y_pred


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of correct predictions."""
    y_true, y_pred = _pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def zero_one_loss(y_true, y_pred) -> float:
    """Fraction of incorrect predictions (``1 - accuracy``)."""
    return 1.0 - accuracy_score(y_true, y_pred)


def confusion_matrix(y_true, y_pred) -> np.ndarray:
    """2x2 matrix ``[[TN, FP], [FN, TP]]`` with -1 as negative class."""
    y_true, y_pred = _pair(y_true, y_pred)
    tn = int(np.sum((y_true == -1) & (y_pred == -1)))
    fp = int(np.sum((y_true == -1) & (y_pred == 1)))
    fn = int(np.sum((y_true == 1) & (y_pred == -1)))
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    return np.array([[tn, fp], [fn, tp]])


def precision_score(y_true, y_pred) -> float:
    """TP / (TP + FP); 0.0 when nothing is predicted positive."""
    cm = confusion_matrix(y_true, y_pred)
    fp, tp = cm[0, 1], cm[1, 1]
    denom = tp + fp
    return float(tp / denom) if denom else 0.0


def recall_score(y_true, y_pred) -> float:
    """TP / (TP + FN); 0.0 when there are no positives."""
    cm = confusion_matrix(y_true, y_pred)
    fn, tp = cm[1]
    denom = tp + fn
    return float(tp / denom) if denom else 0.0


def f1_score(y_true, y_pred) -> float:
    """Harmonic mean of precision and recall (0.0 when both are 0)."""
    p = precision_score(y_true, y_pred)
    r = recall_score(y_true, y_pred)
    return 2 * p * r / (p + r) if (p + r) else 0.0


def roc_auc_score(y_true, scores) -> float:
    """Area under the ROC curve from real-valued scores.

    Computed via the rank statistic (Mann-Whitney U), with midrank tie
    handling.  Requires both classes present.
    """
    y_true = signed_labels(np.asarray(y_true))
    scores = np.asarray(scores, dtype=float)
    if y_true.shape != scores.shape:
        raise ValueError("y_true and scores must have the same shape")
    n_pos = int(np.sum(y_true == 1))
    n_neg = int(np.sum(y_true == -1))
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc_score requires at least one sample of each class")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores), dtype=float)
    sorted_scores = scores[order]
    i = 0
    while i < len(scores):
        j = i
        while j + 1 < len(scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0  # midrank, 1-based
        i = j + 1
    rank_sum_pos = float(np.sum(ranks[y_true == 1]))
    u = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return u / (n_pos * n_neg)


def hinge_loss(y_true, scores, *, reduce: bool = True):
    """Hinge loss ``max(0, 1 - y * score)`` (the SVM training objective)."""
    y_true = signed_labels(np.asarray(y_true)).astype(float)
    scores = np.asarray(scores, dtype=float)
    if y_true.shape != scores.shape:
        raise ValueError("y_true and scores must have the same shape")
    losses = np.maximum(0.0, 1.0 - y_true * scores)
    return float(losses.mean()) if reduce else losses
