"""Data splitting, cross-validation and grid search.

The paper's protocol — a stratification-friendly 70/30 split of the
4601 Spambase instances — is implemented by :func:`train_test_split`
with ``stratify=True``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.ml.base import BaseEstimator, clone_estimator
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_positive_int, check_X_y

__all__ = ["train_test_split", "KFold", "StratifiedKFold", "cross_val_score", "GridSearch"]


def train_test_split(
    X,
    y,
    *,
    test_size: float = 0.3,
    stratify: bool = True,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split ``(X, y)`` into train and test portions.

    Parameters
    ----------
    test_size:
        Fraction of samples assigned to the test set (paper: 0.3).
    stratify:
        Preserve the class ratio in both portions (rounding aside).
    seed:
        RNG seed/generator for the shuffle.

    Returns
    -------
    ``(X_train, X_test, y_train, y_test)``
    """
    X, y = check_X_y(X, y)
    test_size = check_fraction(test_size, name="test_size", inclusive_low=False,
                               inclusive_high=False)
    rng = as_generator(seed)
    n = X.shape[0]
    if stratify:
        test_idx_parts = []
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            members = rng.permutation(members)
            n_test = int(round(test_size * len(members)))
            n_test = min(max(n_test, 1), len(members) - 1)
            test_idx_parts.append(members[:n_test])
        test_idx = np.concatenate(test_idx_parts)
    else:
        perm = rng.permutation(n)
        n_test = int(round(test_size * n))
        n_test = min(max(n_test, 1), n - 1)
        test_idx = perm[:n_test]
    test_mask = np.zeros(n, dtype=bool)
    test_mask[test_idx] = True
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]


class KFold:
    """Standard k-fold cross-validation splitter."""

    def __init__(self, n_splits: int = 5, *, shuffle: bool = True,
                 seed: int | np.random.Generator | None = None):
        self.n_splits = check_positive_int(n_splits, name="n_splits")
        if self.n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.shuffle = bool(shuffle)
        self.seed = seed

    def split(self, X, y=None):
        """Yield ``(train_indices, test_indices)`` pairs."""
        n = np.asarray(X).shape[0]
        if n < self.n_splits:
            raise ValueError(f"cannot split {n} samples into {self.n_splits} folds")
        indices = np.arange(n)
        if self.shuffle:
            indices = as_generator(self.seed).permutation(indices)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test_idx = folds[i]
            train_idx = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train_idx, test_idx


class StratifiedKFold:
    """K-fold that preserves the class ratio within every fold."""

    def __init__(self, n_splits: int = 5, *, shuffle: bool = True,
                 seed: int | np.random.Generator | None = None):
        self.n_splits = check_positive_int(n_splits, name="n_splits")
        if self.n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.shuffle = bool(shuffle)
        self.seed = seed

    def split(self, X, y):
        """Yield ``(train_indices, test_indices)`` pairs, stratified on ``y``."""
        y = np.asarray(y)
        n = y.shape[0]
        rng = as_generator(self.seed)
        # Assign a fold id to every sample, round-robin within each class.
        fold_of = np.empty(n, dtype=int)
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            if self.shuffle:
                members = rng.permutation(members)
            if len(members) < self.n_splits:
                raise ValueError(
                    f"class {label} has only {len(members)} samples for "
                    f"{self.n_splits} folds"
                )
            fold_of[members] = np.arange(len(members)) % self.n_splits
        for i in range(self.n_splits):
            test_idx = np.flatnonzero(fold_of == i)
            train_idx = np.flatnonzero(fold_of != i)
            yield train_idx, test_idx


def cross_val_score(estimator: BaseEstimator, X, y, *, cv=None) -> np.ndarray:
    """Accuracy of a fresh clone of ``estimator`` on every CV fold."""
    X, y = check_X_y(X, y)
    splitter = cv if cv is not None else StratifiedKFold(5, seed=0)
    scores = []
    for train_idx, test_idx in splitter.split(X, y):
        model = clone_estimator(estimator)
        model.fit(X[train_idx], y[train_idx])
        scores.append(model.score(X[test_idx], y[test_idx]))
    return np.asarray(scores)


@dataclass
class GridSearch:
    """Exhaustive hyper-parameter search by cross-validated accuracy.

    Attributes (after :meth:`fit`)
    ------------------------------
    best_params_:
        Parameter dict achieving the highest mean CV accuracy.
    best_score_:
        That accuracy.
    results_:
        ``list[(params, mean_score)]`` over the full grid.
    """

    estimator: BaseEstimator
    param_grid: dict
    cv: object = None
    best_params_: dict | None = field(default=None, init=False)
    best_score_: float | None = field(default=None, init=False)
    results_: list = field(default_factory=list, init=False)

    def fit(self, X, y) -> "GridSearch":
        X, y = check_X_y(X, y)
        names = sorted(self.param_grid)
        self.results_ = []
        for values in itertools.product(*(self.param_grid[n] for n in names)):
            params = dict(zip(names, values))
            model = clone_estimator(self.estimator).set_params(**params)
            mean_score = float(np.mean(cross_val_score(model, X, y, cv=self.cv)))
            self.results_.append((params, mean_score))
        self.best_params_, self.best_score_ = max(self.results_, key=lambda r: r[1])
        self.best_estimator_ = (
            clone_estimator(self.estimator).set_params(**self.best_params_).fit(X, y)
        )
        return self
