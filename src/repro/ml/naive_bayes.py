"""Gaussian naive Bayes — the classic spam-filtering learner.

Included for two reasons: it is the historically canonical Spambase
model (the original RONI work poisoned naive-Bayes spam filters), and
it gives the ablations a victim whose decision function is *not*
linear-margin-based, probing whether the game's qualitative structure
survives a different learner family.

The decision function returned is the log-odds
``log P(y=+1 | x) - log P(y=-1 | x)``, so the estimator slots into the
same attack/defence machinery as the linear models.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, signed_labels
from repro.utils.validation import check_array, check_X_y

__all__ = ["GaussianNaiveBayes"]


class GaussianNaiveBayes(BaseEstimator):
    """Per-class independent Gaussians with shared smoothing.

    Parameters
    ----------
    var_smoothing:
        Fraction of the largest feature variance added to every
        class-conditional variance (numerical floor; also what keeps
        zero-variance features from producing infinite likelihoods).
    """

    def __init__(self, var_smoothing: float = 1e-9):
        if var_smoothing < 0:
            raise ValueError(f"var_smoothing must be non-negative, got {var_smoothing}")
        self.var_smoothing = float(var_smoothing)
        self.theta_ = None  # class means, shape (2, d)
        self.var_ = None    # class variances, shape (2, d)
        self.class_prior_ = None  # P(y=-1), P(y=+1)

    def fit(self, X, y) -> "GaussianNaiveBayes":
        X, y = check_X_y(X, y)
        y_signed = signed_labels(y)
        classes = (-1, 1)
        if len(np.unique(y_signed)) < 2:
            raise ValueError("GaussianNaiveBayes requires both classes present")
        means, variances, priors = [], [], []
        eps = self.var_smoothing * float(X.var(axis=0).max() or 1.0)
        for label in classes:
            members = X[y_signed == label]
            means.append(members.mean(axis=0))
            variances.append(members.var(axis=0) + eps + 1e-300)
            priors.append(members.shape[0] / X.shape[0])
        self.theta_ = np.vstack(means)
        self.var_ = np.vstack(variances)
        self.class_prior_ = np.asarray(priors)
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        """Shape (n, 2): log P(x | class) + log P(class) per class."""
        jll = np.empty((X.shape[0], 2))
        for k in range(2):
            diff = X - self.theta_[k]
            log_pdf = -0.5 * (np.log(2.0 * np.pi * self.var_[k])
                              + diff**2 / self.var_[k]).sum(axis=1)
            jll[:, k] = log_pdf + np.log(self.class_prior_[k])
        return jll

    def decision_function(self, X) -> np.ndarray:
        if self.theta_ is None:
            raise RuntimeError("GaussianNaiveBayes is not fitted; call fit(X, y) first")
        X = check_array(X, ndim=2)
        if X.shape[1] != self.theta_.shape[1]:
            raise ValueError(
                f"X has {X.shape[1]} features, model was trained with "
                f"{self.theta_.shape[1]}"
            )
        jll = self._joint_log_likelihood(X)
        return jll[:, 1] - jll[:, 0]

    def predict_proba(self, X) -> np.ndarray:
        """P(y = +1 | x) via the normalised joint likelihoods."""
        scores = self.decision_function(X)
        return 1.0 / (1.0 + np.exp(-np.clip(scores, -500, 500)))
