"""First-order optimisers and learning-rate schedules.

The SVM/logistic trainers delegate their parameter updates to these
small strategy objects so that optimisation behaviour can be swapped
and tested independently of the loss functions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "LearningRateSchedule",
    "ConstantLR",
    "InverseScalingLR",
    "StepDecayLR",
    "Optimizer",
    "SGD",
    "MomentumSGD",
    "Adagrad",
]


class LearningRateSchedule(ABC):
    """Maps a step counter ``t`` (starting at 1) to a learning rate."""

    @abstractmethod
    def rate(self, t: int) -> float:
        """Learning rate at step ``t >= 1``."""


class ConstantLR(LearningRateSchedule):
    """``rate(t) = eta0`` for all ``t``."""

    def __init__(self, eta0: float = 0.01):
        if eta0 <= 0:
            raise ValueError(f"eta0 must be positive, got {eta0}")
        self.eta0 = float(eta0)

    def rate(self, t: int) -> float:
        return self.eta0


class InverseScalingLR(LearningRateSchedule):
    """``rate(t) = eta0 / t**power`` — the classic Pegasos schedule at power=1."""

    def __init__(self, eta0: float = 1.0, power: float = 1.0):
        if eta0 <= 0:
            raise ValueError(f"eta0 must be positive, got {eta0}")
        if power <= 0:
            raise ValueError(f"power must be positive, got {power}")
        self.eta0 = float(eta0)
        self.power = float(power)

    def rate(self, t: int) -> float:
        return self.eta0 / (t ** self.power)


class StepDecayLR(LearningRateSchedule):
    """Multiply the rate by ``decay`` every ``step_size`` steps."""

    def __init__(self, eta0: float = 0.1, decay: float = 0.5, step_size: int = 1000):
        if eta0 <= 0:
            raise ValueError(f"eta0 must be positive, got {eta0}")
        if not 0 < decay <= 1:
            raise ValueError(f"decay must lie in (0, 1], got {decay}")
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.eta0 = float(eta0)
        self.decay = float(decay)
        self.step_size = int(step_size)

    def rate(self, t: int) -> float:
        return self.eta0 * (self.decay ** ((t - 1) // self.step_size))


class Optimizer(ABC):
    """Stateful first-order update rule for a flat parameter vector."""

    @abstractmethod
    def step(self, params: np.ndarray, grad: np.ndarray) -> np.ndarray:
        """Return updated parameters given the gradient at ``params``."""

    @abstractmethod
    def reset(self) -> None:
        """Clear internal state (momentum buffers, step counters, ...)."""


class SGD(Optimizer):
    """Plain stochastic gradient descent with a pluggable schedule."""

    def __init__(self, schedule: LearningRateSchedule | None = None):
        self.schedule = schedule if schedule is not None else ConstantLR(0.01)
        self._t = 0

    def step(self, params: np.ndarray, grad: np.ndarray) -> np.ndarray:
        self._t += 1
        return params - self.schedule.rate(self._t) * grad

    def reset(self) -> None:
        self._t = 0


class MomentumSGD(Optimizer):
    """SGD with classical (heavy-ball) momentum."""

    def __init__(self, schedule: LearningRateSchedule | None = None, momentum: float = 0.9):
        if not 0 <= momentum < 1:
            raise ValueError(f"momentum must lie in [0, 1), got {momentum}")
        self.schedule = schedule if schedule is not None else ConstantLR(0.01)
        self.momentum = float(momentum)
        self._velocity: np.ndarray | None = None
        self._t = 0

    def step(self, params: np.ndarray, grad: np.ndarray) -> np.ndarray:
        self._t += 1
        if self._velocity is None or self._velocity.shape != params.shape:
            self._velocity = np.zeros_like(params)
        self._velocity = self.momentum * self._velocity - self.schedule.rate(self._t) * grad
        return params + self._velocity

    def reset(self) -> None:
        self._velocity = None
        self._t = 0


class Adagrad(Optimizer):
    """Adagrad: per-coordinate rates adapted by accumulated squared gradients."""

    def __init__(self, eta0: float = 0.1, eps: float = 1e-8):
        if eta0 <= 0:
            raise ValueError(f"eta0 must be positive, got {eta0}")
        self.eta0 = float(eta0)
        self.eps = float(eps)
        self._accum: np.ndarray | None = None

    def step(self, params: np.ndarray, grad: np.ndarray) -> np.ndarray:
        if self._accum is None or self._accum.shape != params.shape:
            self._accum = np.zeros_like(params)
        self._accum += grad ** 2
        return params - self.eta0 * grad / (np.sqrt(self._accum) + self.eps)

    def reset(self) -> None:
        self._accum = None
