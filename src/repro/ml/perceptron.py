"""Averaged perceptron classifier.

Included as a cheap, assumption-light baseline learner for ablations
and tests — it trains an order of magnitude faster than the SVM, which
keeps the property-based test suite quick.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, LinearClassifierMixin, signed_labels
from repro.utils.rng import as_generator
from repro.utils.validation import check_X_y

__all__ = ["Perceptron"]


class Perceptron(LinearClassifierMixin, BaseEstimator):
    """Classic perceptron with weight averaging (Freund & Schapire).

    Parameters
    ----------
    epochs:
        Passes over the shuffled training set.
    seed:
        Shuffle RNG seed.
    average:
        Return the average of all intermediate weight vectors, which
        gives far better generalisation than the final iterate on
        non-separable data.
    """

    def __init__(self, epochs: int = 20, seed: int | None = 0, average: bool = True):
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        self.epochs = int(epochs)
        self.seed = seed
        self.average = bool(average)
        self.coef_ = None
        self.intercept_ = 0.0

    def fit(self, X, y) -> "Perceptron":
        X, y = check_X_y(X, y)
        y_signed = signed_labels(y).astype(float)
        n, d = X.shape
        rng = as_generator(self.seed)

        w = np.zeros(d)
        b = 0.0
        w_sum = np.zeros(d)
        b_sum = 0.0
        count = 0
        self.n_mistakes_ = 0
        for _ in range(self.epochs):
            for i in rng.permutation(n):
                if y_signed[i] * (X[i] @ w + b) <= 0.0:
                    w = w + y_signed[i] * X[i]
                    b = b + y_signed[i]
                    self.n_mistakes_ += 1
                w_sum += w
                b_sum += b
                count += 1
        if self.average:
            self.coef_ = w_sum / count
            self.intercept_ = float(b_sum / count)
        else:
            self.coef_ = w
            self.intercept_ = float(b)
        return self
