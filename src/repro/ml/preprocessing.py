"""Feature scaling transformers.

Distance-from-centroid filtering (the paper's defence) is meaningless
on unscaled Spambase features, whose ranges span five orders of
magnitude — so scaling is part of the reproduction pipeline, not an
optional nicety.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_array

__all__ = ["StandardScaler", "MinMaxScaler", "RobustScaler"]


class _BaseScaler:
    """Common fit/transform plumbing for the scalers below."""

    def fit(self, X) -> "_BaseScaler":
        X = check_array(X, ndim=2)
        self._fit(X)
        self.n_features_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X, ndim=2)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, scaler was fitted with {self.n_features_}"
            )
        return self._transform(X)

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X, ndim=2)
        return self._inverse_transform(X)

    def _check_fitted(self) -> None:
        if getattr(self, "n_features_", None) is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted; call fit(X) first")


class StandardScaler(_BaseScaler):
    """Zero-mean, unit-variance scaling (constant features left at zero)."""

    def _fit(self, X: np.ndarray) -> None:
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        # Constant columns would divide by zero; map them to scale 1 so
        # the transformed column is identically zero.
        self.scale_ = np.where(std > 0, std, 1.0)

    def _transform(self, X: np.ndarray) -> np.ndarray:
        return (X - self.mean_) / self.scale_

    def _inverse_transform(self, X: np.ndarray) -> np.ndarray:
        return X * self.scale_ + self.mean_


class MinMaxScaler(_BaseScaler):
    """Scale each feature to the ``[0, 1]`` range observed at fit time."""

    def _fit(self, X: np.ndarray) -> None:
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        self.span_ = np.where(span > 0, span, 1.0)

    def _transform(self, X: np.ndarray) -> np.ndarray:
        return (X - self.min_) / self.span_

    def _inverse_transform(self, X: np.ndarray) -> np.ndarray:
        return X * self.span_ + self.min_


class RobustScaler(_BaseScaler):
    """Median/IQR scaling — resistant to the outliers poisoning introduces.

    This is the scaler of choice when the training data may already be
    contaminated: a 20 % poisoning rate can shift means and inflate
    standard deviations substantially, but moves medians and IQRs far
    less (the same robustness argument the paper makes for centroid
    estimation).
    """

    def __init__(self, q_low: float = 25.0, q_high: float = 75.0):
        if not 0 <= q_low < q_high <= 100:
            raise ValueError(f"need 0 <= q_low < q_high <= 100, got {q_low}, {q_high}")
        self.q_low = float(q_low)
        self.q_high = float(q_high)

    def _fit(self, X: np.ndarray) -> None:
        self.center_ = np.median(X, axis=0)
        iqr = np.percentile(X, self.q_high, axis=0) - np.percentile(X, self.q_low, axis=0)
        self.scale_ = np.where(iqr > 0, iqr, 1.0)

    def _transform(self, X: np.ndarray) -> np.ndarray:
        return (X - self.center_) / self.scale_

    def _inverse_transform(self, X: np.ndarray) -> np.ndarray:
        return X * self.scale_ + self.center_
