"""Least-squares (ridge) classifier with a closed-form solve.

The fastest learner in the library: one linear solve, no iteration.
Used by RONI (which retrains the victim hundreds of times) and by
tests that need a deterministic model.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, LinearClassifierMixin, signed_labels
from repro.utils.validation import check_X_y

__all__ = ["RidgeClassifier"]


class RidgeClassifier(LinearClassifierMixin, BaseEstimator):
    """Classify by regressing signed labels with an L2 penalty.

    Solves ``(X'X + reg * n * I) w = X' y`` (bias handled by centring,
    left unregularised), then thresholds the regression output at zero.
    """

    def __init__(self, reg: float = 1e-3, fit_intercept: bool = True):
        if reg < 0:
            raise ValueError(f"reg must be non-negative, got {reg}")
        self.reg = float(reg)
        self.fit_intercept = bool(fit_intercept)
        self.coef_ = None
        self.intercept_ = 0.0

    def fit(self, X, y) -> "RidgeClassifier":
        X, y = check_X_y(X, y)
        t = signed_labels(y).astype(float)
        n, d = X.shape
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            t_mean = t.mean()
            Xc = X - x_mean
            tc = t - t_mean
        else:
            x_mean = np.zeros(d)
            t_mean = 0.0
            Xc, tc = X, t
        gram = Xc.T @ Xc + self.reg * n * np.eye(d)
        w = np.linalg.solve(gram, Xc.T @ tc)
        self.coef_ = w
        self.intercept_ = float(t_mean - x_mean @ w) if self.fit_intercept else 0.0
        return self
