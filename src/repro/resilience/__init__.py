"""``repro.resilience`` — deterministic fault injection and retry policy.

The failure model of the compute tier is *tested, not assumed*: every
transport interaction of the cluster service passes through a named
injection point (:mod:`repro.resilience.faults`) that an operator or a
test can arm with a seeded :class:`FaultPlan` — connect failures,
handshake failures, delayed or dropped replies, shard crashes after N
rounds — while the determinism contract of
:mod:`repro.engine.backends` guarantees that any surviving execution
is bit-identical to the fault-free run.

Three pieces:

* :mod:`repro.resilience.faults` — ``FaultPlan`` (parsed from
  ``REPRO_FAULTS`` / ``--faults``), the process-wide armed plan, and
  ``fire(point)``, the zero-overhead-when-off injection call.
* :mod:`repro.resilience.retry` — :class:`RetryPolicy`, the
  exponential-backoff-with-deterministic-jitter schedule shared by the
  cluster backend's connect path and the scheduler's shard rejoin.
* :mod:`repro.resilience.config` — validated environment knobs
  (parse-time errors naming the variable, documented clamps) used by
  every ``REPRO_CLUSTER_*`` / ``REPRO_STUDY_*`` setting.
"""

from repro.resilience.config import (env_bool, env_float, env_int,
                                     validate_float, validate_int)
from repro.resilience.faults import (
    FAULT_POINTS,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    crash_threshold,
    fire,
    install,
    parse_fault_plan,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "FAULT_POINTS",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "RetryPolicy",
    "active_plan",
    "crash_threshold",
    "env_bool",
    "env_float",
    "env_int",
    "fire",
    "install",
    "parse_fault_plan",
    "validate_float",
    "validate_int",
]
