"""Validated environment knobs: parse-time errors, documented clamps.

Every ``REPRO_*`` tuning variable used to be read with a bare
``float(raw)`` / ``int(raw)`` — a typo like ``REPRO_CLUSTER_TIMEOUT=2m``
surfaced as a naked ``ValueError: could not convert string to float``
deep inside the scheduler, and a nonsense value like a negative chunk
size travelled all the way to a worker before anything objected.

These helpers fail at *parse time* with an error naming the variable
and the expected shape, and clamp parseable-but-extreme values into a
sane documented range instead of letting them wedge the service (a
``min_chunk`` of 0 becomes 1; a timeout of a week becomes the cap).
Clamping is silent by design: the range limits are operational
guard-rails, not semantics.
"""

from __future__ import annotations

import os

__all__ = ["env_bool", "env_float", "env_int", "validate_float",
           "validate_int"]

_TRUE = ("1", "true", "yes", "on")
_FALSE = ("0", "false", "no", "off")


def _clamp(value, lo, hi):
    if lo is not None and value < lo:
        return lo
    if hi is not None and value > hi:
        return hi
    return value


def validate_float(value, *, name: str, lo: float | None = None,
                   hi: float | None = None) -> float:
    """``value`` as a finite float clamped into ``[lo, hi]``.

    Raises :class:`ValueError` naming ``name`` when the value is not a
    number (NaN included — it would poison every comparison downstream).
    """
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"bad {name}={value!r}: expected a number") from None
    if value != value:  # NaN
        raise ValueError(f"bad {name}={value!r}: expected a number")
    return _clamp(value, lo, hi)


def validate_int(value, *, name: str, lo: int | None = None,
                 hi: int | None = None) -> int:
    """``value`` as an int clamped into ``[lo, hi]``; errors name ``name``."""
    try:
        value = int(str(value), 10) if isinstance(value, str) else int(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"bad {name}={value!r}: expected an integer") from None
    return _clamp(value, lo, hi)


def env_float(name: str, default: float, *, lo: float | None = None,
              hi: float | None = None) -> float:
    """``float(os.environ[name])`` validated and clamped, else ``default``."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    return validate_float(raw.strip(), name=name, lo=lo, hi=hi)


def env_int(name: str, default: int, *, lo: int | None = None,
            hi: int | None = None) -> int:
    """``int(os.environ[name])`` validated and clamped, else ``default``."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    return validate_int(raw.strip(), name=name, lo=lo, hi=hi)


def env_bool(name: str, default: bool) -> bool:
    """A boolean env knob; accepts 1/0, true/false, yes/no, on/off."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    token = raw.strip().lower()
    if token in _TRUE:
        return True
    if token in _FALSE:
        return False
    raise ValueError(
        f"bad {name}={raw!r}: expected one of "
        f"{'/'.join(_TRUE)} or {'/'.join(_FALSE)}")
