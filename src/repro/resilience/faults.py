"""Seeded, deterministic fault injection for the cluster service.

A :class:`FaultPlan` arms named injection points threaded through the
cluster's transport layers.  The plan is parsed from a compact spec
string (``REPRO_FAULTS`` in the environment, ``--faults`` on the CLI)::

    connect:fail_prob=0.3;chunk_reply:delay_ms=500;shard:crash_after_rounds=40

Grammar: ``;``-separated rules, each ``point:knob=value[,knob=value]``;
a bare ``seed=N`` token sets the plan seed (default 0).  Injection
points and the knobs they honour:

=============== ================================ =========================
point           fires                            knobs
=============== ================================ =========================
``connect``     client, before a shard socket    ``fail_prob``,
                connect                          ``fail_first``,
                                                 ``delay_ms``
``handshake``   client, before sending hello     ``fail_prob``,
                                                 ``fail_first``,
                                                 ``delay_ms``
``chunk_send``  client, before pushing a chunk   ``fail_prob``,
                                                 ``fail_first``,
                                                 ``delay_ms``
``chunk_reply`` shard, before sending a result   ``delay_ms``,
                (a drop closes the connection    ``drop_prob``,
                without replying)                ``drop_first``
``shard``       shard, per executed round        ``crash_after_rounds``
                (``os._exit`` mid-chunk — the
                ``--chaos-exit-after`` profile)
=============== ================================ =========================

Every decision is **deterministic**: the n-th firing of a point fails
iff ``n < fail_first`` or a uniform value derived from SHA-256 of
``(plan seed, point, n)`` falls below ``fail_prob``.  Two runs with the
same plan observe the same fault sequence, which is what makes a chaos
test a regression test instead of a dice roll.

Injected failures raise :class:`InjectedFault`, a
:class:`ConnectionError` subclass — they travel the exact error paths
a real peer death travels, so the retry/rejoin/degradation machinery
under test is the production machinery, not a parallel code path.

Zero overhead when off: the process-wide plan defaults to ``None``
(``REPRO_FAULTS`` unset) and :func:`fire` is then a single global read
and ``None`` check.  No injection point sits inside the round kernel's
compute loops.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import dataclass, field

from repro.resilience.config import validate_float, validate_int

__all__ = [
    "FAULT_POINTS",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "active_plan",
    "crash_threshold",
    "fire",
    "install",
    "parse_fault_plan",
]

# point -> knobs it honours (parse-time validation: arming a knob the
# point never consults would silently test nothing).
FAULT_POINTS: dict[str, tuple[str, ...]] = {
    "connect": ("fail_prob", "fail_first", "delay_ms"),
    "handshake": ("fail_prob", "fail_first", "delay_ms"),
    "chunk_send": ("fail_prob", "fail_first", "delay_ms"),
    "chunk_reply": ("delay_ms", "drop_prob", "drop_first"),
    "shard": ("crash_after_rounds",),
}


class InjectedFault(ConnectionError):
    """A deterministic injected transport failure (see module docs)."""


@dataclass
class FaultRule:
    """The armed knobs of one injection point."""

    point: str
    fail_prob: float = 0.0
    fail_first: int = 0
    delay_ms: float = 0.0
    drop_prob: float = 0.0
    drop_first: int = 0
    crash_after_rounds: int | None = None

    def describe(self) -> str:
        knobs = []
        for name in FAULT_POINTS[self.point]:
            value = getattr(self, name)
            if value not in (0, 0.0, None):
                knobs.append(f"{name}={value:g}" if isinstance(value, float)
                             else f"{name}={value}")
        return f"{self.point}:{','.join(knobs)}"


def _unit(seed: int, point: str, tag: str, n: int) -> float:
    """Deterministic uniform in ``[0, 1)`` for the n-th decision."""
    digest = hashlib.sha256(
        f"{seed}:{point}:{tag}:{n}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class FaultPlan:
    """A set of armed :class:`FaultRule`\\ s plus per-point firing state.

    Thread-safe: injection points fire from shard worker threads and
    server connection threads concurrently; each point's firing counter
    advances under a lock so the deterministic decision sequence is
    well-defined per process (the *interleaving* across points is up to
    the scheduler, as in any real failure).
    """

    def __init__(self, rules: dict[str, FaultRule], *, seed: int = 0,
                 spec: str = ""):
        self.rules = dict(rules)
        self.seed = int(seed)
        self.spec = spec
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()

    def describe(self) -> str:
        parts = [rule.describe() for _, rule in sorted(self.rules.items())]
        if self.seed:
            parts.append(f"seed={self.seed}")
        return ";".join(parts)

    def _next(self, point: str) -> int:
        with self._lock:
            n = self._counts.get(point, 0)
            self._counts[point] = n + 1
            return n

    def fire(self, point: str, *, key: str = "") -> bool:
        """Apply the armed faults for ``point`` (see module table).

        Sleeps ``delay_ms``; raises :class:`InjectedFault` on an
        injected failure; returns ``True`` when the caller should
        *drop* its reply (close the connection without answering).
        ``key`` names the interaction (shard address, chunk id) in the
        fault's error message.
        """
        rule = self.rules.get(point)
        if rule is None:
            return False
        n = self._next(point)
        if rule.delay_ms > 0.0:
            time.sleep(rule.delay_ms / 1000.0)
        if n < rule.fail_first or (
                rule.fail_prob > 0.0 and
                _unit(self.seed, point, "fail", n) < rule.fail_prob):
            raise InjectedFault(
                f"injected fault at {point!r} (firing {n}"
                f"{', ' + key if key else ''})")
        if n < rule.drop_first or (
                rule.drop_prob > 0.0 and
                _unit(self.seed, point, "drop", n) < rule.drop_prob):
            return True
        return False

    def crash_threshold(self, point: str = "shard") -> int | None:
        """The armed ``crash_after_rounds`` for ``point``, if any."""
        rule = self.rules.get(point)
        return None if rule is None else rule.crash_after_rounds


def parse_fault_plan(spec: str | None) -> FaultPlan | None:
    """Parse a fault spec string; ``None``/empty means no faults.

    Raises :class:`ValueError` with the offending token for unknown
    points, knobs a point does not honour, and out-of-range values
    (probabilities outside ``[0, 1]``, negative delays/counts).
    """
    if spec is None or not spec.strip():
        return None
    rules: dict[str, FaultRule] = {}
    seed = 0
    for token in spec.split(";"):
        token = token.strip()
        if not token:
            continue
        if ":" not in token:
            name, sep, value = token.partition("=")
            if sep and name.strip() == "seed":
                seed = validate_int(value.strip(), name="fault plan seed")
                continue
            raise ValueError(
                f"bad fault rule {token!r}: expected "
                f"'point:knob=value[,knob=value]' or 'seed=N'")
        point, _, body = token.partition(":")
        point = point.strip()
        if point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {point!r}; known points: "
                f"{', '.join(sorted(FAULT_POINTS))}")
        rule = rules.setdefault(point, FaultRule(point=point))
        for item in body.split(","):
            item = item.strip()
            if not item:
                continue
            knob, sep, value = item.partition("=")
            knob = knob.strip()
            if not sep:
                raise ValueError(
                    f"bad fault knob {item!r} for point {point!r}: "
                    f"expected knob=value")
            if knob not in FAULT_POINTS[point]:
                raise ValueError(
                    f"fault point {point!r} does not honour knob "
                    f"{knob!r}; it honours: "
                    f"{', '.join(FAULT_POINTS[point])}")
            label = f"fault knob {point}:{knob}"
            value = value.strip()
            if knob in ("fail_prob", "drop_prob"):
                prob = validate_float(value, name=label)
                if not 0.0 <= prob <= 1.0:
                    raise ValueError(
                        f"bad {label}={value!r}: probability must be "
                        f"in [0, 1]")
                setattr(rule, knob, prob)
            elif knob == "delay_ms":
                delay = validate_float(value, name=label)
                if delay < 0.0:
                    raise ValueError(
                        f"bad {label}={value!r}: delay must be >= 0")
                rule.delay_ms = delay
            else:  # fail_first, drop_first, crash_after_rounds
                count = validate_int(value, name=label)
                if count < 0:
                    raise ValueError(
                        f"bad {label}={value!r}: count must be >= 0")
                setattr(rule, knob, count)
    if not rules:
        return None
    return FaultPlan(rules, seed=seed, spec=spec)


# -- the process-wide armed plan --------------------------------------------

# Parsed once at import: shard subprocesses inherit REPRO_FAULTS through
# their environment and arm themselves here.  A malformed value fails
# loudly at import, which is exactly "validated at parse time".
_PLAN: FaultPlan | None = parse_fault_plan(os.environ.get("REPRO_FAULTS"))


def active_plan() -> FaultPlan | None:
    """The currently armed plan (``None`` when no faults are armed)."""
    return _PLAN


def install(plan: FaultPlan | str | None) -> FaultPlan | None:
    """Arm ``plan`` process-wide (a plan, a spec string, or ``None``).

    Returns the armed plan.  ``install(None)`` disarms.  Used by the
    ``--faults`` CLI flags and by tests; ``REPRO_FAULTS`` arms the
    import-time default (which is how spawned shard subprocesses pick
    a plan up).
    """
    global _PLAN
    if isinstance(plan, str):
        plan = parse_fault_plan(plan)
    _PLAN = plan
    return _PLAN


def fire(point: str, *, key: str = "") -> bool:
    """Fire ``point`` on the armed plan; no-op when no plan is armed."""
    plan = _PLAN
    if plan is None:
        return False
    return plan.fire(point, key=key)


def crash_threshold(point: str = "shard") -> int | None:
    """Armed ``crash_after_rounds`` of the process-wide plan, if any."""
    plan = _PLAN
    if plan is None:
        return None
    return plan.crash_threshold(point)
