"""Retry schedules: exponential backoff with *deterministic* jitter.

Both consumers — the cluster backend's connect/handshake path and the
scheduler's shard rejoin — need the classic exponential-backoff-with-
jitter shape (spread reconnection storms, cap the wait), but this
codebase's reproducibility bar extends to its failure handling: a
retried run must wait the same amounts at the same attempts.  Jitter
is therefore derived from a SHA-256 hash of ``(key, attempt)`` rather
than drawn from a shared RNG, so a policy is a pure function of its
parameters and the retry key (typically the shard's ``host:port``
name).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


def _unit(key: str, attempt: int) -> float:
    """Deterministic uniform in ``[0, 1)`` from ``(key, attempt)``."""
    digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """A bounded retry budget with exponential, jittered delays.

    Parameters
    ----------
    retries:
        Attempts *beyond the first*; ``delays()`` yields exactly this
        many sleep durations.  ``0`` means fail fast.
    backoff:
        Base delay in seconds for the first retry.
    max_backoff:
        Cap on any single delay (the exponential curve flattens here).
    jitter:
        Fractional spread: each delay is scaled by a deterministic
        factor in ``[1 - jitter, 1 + jitter]``.
    """

    retries: int = 3
    backoff: float = 0.05
    max_backoff: float = 2.0
    jitter: float = 0.5

    def __post_init__(self):
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0 or self.max_backoff < 0:
            raise ValueError(
                f"backoff durations must be >= 0, got "
                f"{self.backoff}/{self.max_backoff}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(
                f"jitter must be in [0, 1), got {self.jitter}")

    def delay(self, key: str, attempt: int) -> float:
        """The sleep before retry ``attempt`` (0-based) keyed by ``key``."""
        base = min(self.backoff * (2.0 ** attempt), self.max_backoff)
        spread = 1.0 + self.jitter * (2.0 * _unit(key, attempt) - 1.0)
        return base * spread

    def delays(self, key: str = ""):
        """Yield the full schedule of sleep durations for ``key``.

        Each yielded delay counts one ``retry.attempts`` on the
        telemetry registry (a no-op when telemetry is disabled), so
        operators can see how often the fleet is actually retrying.
        """
        from repro import telemetry

        for attempt in range(self.retries):
            telemetry.counter("retry.attempts").inc()
            yield self.delay(key, attempt)
