"""repro.service — studies-as-a-service: HTTP API + persistent queue.

The service tier turns the study layer into a long-running daemon:
``repro serve`` exposes submit/status/stream/result/report routes over
a crash-safe on-disk priority queue, with scheduler workers that lease
queued studies and run them through the ordinary
:func:`~repro.study.run_study` (checkpoint/resume included).  See
:mod:`repro.service.app` for the route table and the multi-instance
deployment story.
"""

from repro.service.app import ReproService, serve
from repro.service.auth import AuthPolicy
from repro.service.config import ServiceConfig, service_token
from repro.service.http import HttpError, HttpServer, Request, Response
from repro.service.queue import QueueEntry, StudyQueue
from repro.service.scheduler import SchedulerWorker, StudyInterrupted

__all__ = [
    "AuthPolicy",
    "HttpError",
    "HttpServer",
    "QueueEntry",
    "ReproService",
    "Request",
    "Response",
    "SchedulerWorker",
    "ServiceConfig",
    "StudyInterrupted",
    "StudyQueue",
    "serve",
    "service_token",
]
