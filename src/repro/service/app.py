"""`repro serve` — studies-as-a-service over one shared archive dir.

:class:`ReproService` composes the tier: the asyncio HTTP front
(:mod:`repro.service.http`), the persistent queue
(:mod:`repro.service.queue`), and one or more scheduler workers
(:mod:`repro.service.scheduler`).  The route table:

====================================  =======================================
``POST /studies``                     submit a StudySpec JSON (optionally
                                      ``{"study": ..., "priority": N}``);
                                      returns the fingerprint; a study
                                      already archived, queued or running is
                                      **never** recomputed (dedupe by
                                      fingerprint)
``GET /studies/{fp}``                 status: queued / running / done /
                                      failed (+ progress counts and queue
                                      position)
``GET /studies/{fp}/stream``          chunked live progress events (JSON
                                      lines) until the study reaches a
                                      terminal state
``GET /studies/{fp}/result``          the archived StudyResult JSON
``GET /studies/{fp}/report``          the rendered report text
``GET /health``                       liveness + queue counts + workers
``GET /queue``                        full queue listing + service counters
====================================  =======================================

Every route sits behind bearer-token auth
(:class:`~repro.service.auth.AuthPolicy`; ``REPRO_SERVICE_TOKEN``).

**Multi-instance story**: the service keeps *no* authoritative state in
memory — the archive directory holds the results, the queue directory
holds the submissions, and lease files hold the run locks.  N
instances of ``repro serve`` pointed at one shared ``--archive-dir``
(plus a shard fleet for the compute tier) therefore behave as one
service: any replica answers status/stream/result for any study, and
the ``O_EXCL`` lease guarantees each fingerprint runs exactly once
fleet-wide.  Progress streams work cross-replica because the executing
worker heartbeats counts into the lease file the other replicas poll.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import threading

from repro import telemetry
from repro.service.auth import AuthPolicy
from repro.service.config import ServiceConfig
from repro.service.http import (HttpError, HttpServer, Request, Response,
                                json_response, text_response)
from repro.service.queue import StudyQueue
from repro.service.scheduler import SchedulerWorker
from repro.study.archive import archive_summary
from repro.study.runner import archive_path
from repro.study.spec import StudySpec

__all__ = ["ReproService", "serve"]

_TERMINAL_STATES = ("done", "failed", "cancelled")


class ReproService:
    """The whole service tier behind one object (start/stop for tests,
    :meth:`serve_forever` for the CLI).

    Parameters
    ----------
    config:
        Validated knobs (:class:`~repro.service.config.ServiceConfig`).
    engine:
        Shared :class:`~repro.engine.EvaluationEngine` for studies
        whose spec names no engine (the CLI builds it from the usual
        ``--backend/--jobs/--shards/--cache-dir`` flags).
    workers:
        Scheduler worker threads in *this* process (more daemons on
        other hosts can share the directory; the leases coordinate).
    """

    def __init__(self, config: ServiceConfig, *, engine=None,
                 workers: int = 1):
        self.config = config
        os.makedirs(config.archive_dir, exist_ok=True)
        self.queue = StudyQueue(config.archive_dir)
        self.auth = AuthPolicy(config.token)
        self.workers = [
            SchedulerWorker(self.queue, config, engine=engine,
                            name=f"scheduler-{i}-pid{os.getpid()}")
            for i in range(max(0, int(workers)))
        ]
        self._http = HttpServer(self._route, host=config.host,
                                port=config.port)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._start_error: BaseException | None = None
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def host(self) -> str:
        return self._http.host

    @property
    def port(self) -> int:
        return self._http.port

    def start(self) -> "ReproService":
        """Bind the HTTP listener and start the scheduler workers."""
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="repro-service-http", daemon=True)
        self._loop_thread.start()
        self._ready.wait()
        if self._start_error is not None:
            self._loop_thread.join(timeout=5.0)
            raise self._start_error
        for worker in self.workers:
            worker.start()
        return self

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, checkpoint, flush, exit.

        Ordering matters and mirrors the SIGTERM contract: (1) the
        listener closes and in-flight connections are cancelled, so no
        new work arrives; (2) workers stop — the running study's
        progress callback raises, ``run_study`` flushes its checkpoint,
        the lease is released and the entry stays queued; (3) the queue
        manifest is flushed so the on-disk roll-up matches reality.
        """
        if self._stopped:
            return
        self._stopped = True
        if self._loop is not None:
            future = asyncio.run_coroutine_threadsafe(self._http.stop(),
                                                      self._loop)
            try:
                future.result(timeout=10.0)
            except Exception:
                pass
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=10.0)
        for worker in self.workers:
            worker.stop()
        for worker in self.workers:
            if worker.is_alive():
                worker.join(timeout=30.0)
        self.queue.flush_manifest()

    def serve_forever(self) -> int:
        """Run until SIGTERM/SIGINT, then shut down gracefully (exit 0)."""
        stop_signal = threading.Event()

        def _on_signal(signum, frame):
            stop_signal.set()

        previous = {sig: signal.signal(sig, _on_signal)
                    for sig in (signal.SIGTERM, signal.SIGINT)}
        try:
            self.start()
            self.announce()
            while not stop_signal.is_set():
                stop_signal.wait(0.5)
        finally:
            self.stop()
            for sig, handler in previous.items():
                signal.signal(sig, handler)
        return 0

    def announce(self, stream=None) -> None:
        """Print the machine-parsable READY line (mirrors the shard
        server's; orchestrators parse it for the bound port)."""
        stream = stream if stream is not None else sys.stdout
        print(f"READY host={self.host} port={self.port} "
              f"archive={self.config.archive_dir} "
              f"auth={'on' if self.auth.enabled else 'off'} "
              f"pid={os.getpid()}", file=stream, flush=True)
        if not self.auth.enabled:
            print("WARNING: REPRO_SERVICE_TOKEN is unset — the service "
                  "is running OPEN (no auth); fine on a loopback dev "
                  "box, not in production", file=sys.stderr, flush=True)

    def _run_loop(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._http.start())
        except BaseException as exc:
            self._start_error = exc
            self._ready.set()
            self._loop.close()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    # -- routing -----------------------------------------------------------

    async def _route(self, request: Request) -> Response:
        telemetry.counter("service.http.requests").inc()
        refusal = self.auth.refusal(request.header("authorization"))
        if refusal is not None:
            telemetry.counter("service.http.unauthorized").inc()
            return json_response({"error": refusal}, status=401)
        with telemetry.trace_span("service.request", method=request.method,
                                  path=request.path):
            return self._dispatch(request)

    def _dispatch(self, request: Request) -> Response:
        parts = [p for p in request.path.split("/") if p]
        if parts == ["health"]:
            return self._require(request, "GET", self._health)
        if parts == ["queue"]:
            return self._require(request, "GET", self._queue_listing)
        if parts == ["studies"]:
            return self._require(request, "POST", self._submit)
        if len(parts) >= 2 and parts[0] == "studies":
            fingerprint = parts[1]
            tail = parts[2:]
            if not tail:
                return self._require(
                    request, "GET",
                    lambda req: self._status(fingerprint))
            if tail == ["stream"]:
                return self._require(
                    request, "GET",
                    lambda req: self._stream(fingerprint))
            if tail == ["result"]:
                return self._require(
                    request, "GET",
                    lambda req: self._result(fingerprint))
            if tail == ["report"]:
                return self._require(
                    request, "GET",
                    lambda req: self._report(fingerprint))
        raise HttpError(404, f"no route {request.method} {request.path}; "
                             f"see /health, /queue, /studies")

    @staticmethod
    def _require(request: Request, method: str, handler) -> Response:
        if request.method != method:
            raise HttpError(405, f"{request.path} supports {method} only")
        return handler(request)

    # -- routes ------------------------------------------------------------

    def _submit(self, request: Request) -> Response:
        doc = request.json()
        if not isinstance(doc, dict):
            raise HttpError(400, "the body must be a JSON object (a "
                                 "StudySpec document, or {'study': ..., "
                                 "'priority': N})")
        priority = 0
        if "study" in doc and doc.get("type") != "StudySpec":
            try:
                priority = int(doc.get("priority", 0))
            except (TypeError, ValueError):
                raise HttpError(400, f"bad priority "
                                     f"{doc.get('priority')!r}: expected "
                                     f"an integer")
            doc = doc["study"]
        try:
            spec = StudySpec.from_obj(doc)
        except (TypeError, ValueError, KeyError) as exc:
            raise HttpError(400, f"not a loadable StudySpec document: "
                                 f"{exc}")
        if spec.context is None:
            raise HttpError(400, "the service cannot run a StudySpec "
                                 "with context=None: name a ContextSpec "
                                 "in the document")
        fingerprint = spec.fingerprint()
        if os.path.exists(archive_path(self.config.archive_dir,
                                       fingerprint)):
            # Already computed, ever: the strongest dedupe tier.
            telemetry.counter("service.submits.deduped").inc()
            return json_response({"fingerprint": fingerprint,
                                  "state": "done", "deduped": True})
        entry, created = self.queue.submit(spec, priority=priority)
        status = self.queue.study_state(fingerprint) or {}
        if created:
            telemetry.counter("service.submits.accepted").inc()
        else:
            telemetry.counter("service.submits.deduped").inc()
        body = {"fingerprint": fingerprint,
                "state": status.get("state", "queued"),
                "deduped": not created}
        if "queue_position" in status:
            body["queue_position"] = status["queue_position"]
        return json_response(body, status=202 if created else 200)

    def _status(self, fingerprint: str) -> Response:
        status = self.queue.study_state(fingerprint)
        if status is None:
            raise HttpError(404, f"unknown study {fingerprint}: not "
                                 f"archived, queued or running here")
        if status["state"] == "done":
            # Reuse the archive-ls scanner for the result's summary.
            try:
                status["summary"] = archive_summary(status.pop("archive"))
            except (OSError, ValueError):
                status.pop("archive", None)
        return json_response(status)

    def _stream(self, fingerprint: str) -> Response:
        if self.queue.study_state(fingerprint) is None:
            raise HttpError(404, f"unknown study {fingerprint}: nothing "
                                 f"to stream")
        return Response(content_type="application/x-ndjson",
                        stream=self._events(fingerprint))

    async def _events(self, fingerprint: str):
        """JSON-line events whenever the study's status changes."""
        last = None
        while True:
            status = self.queue.study_state(fingerprint)
            if status is None:
                yield json.dumps({"fingerprint": fingerprint,
                                  "state": "unknown"},
                                 sort_keys=True) + "\n"
                return
            event = {"fingerprint": fingerprint,
                     "state": status["state"]}
            for key in ("progress", "queue_position", "last_error"):
                if key in status:
                    event[key] = status[key]
            if event != last:
                yield json.dumps(event, sort_keys=True) + "\n"
                last = event
            if status["state"] in _TERMINAL_STATES:
                return
            await asyncio.sleep(self.config.poll_interval)

    def _result(self, fingerprint: str) -> Response:
        path = archive_path(self.config.archive_dir, fingerprint)
        try:
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
        except OSError:
            self._raise_not_done(fingerprint, "result")
        return Response(body=text.encode("utf-8"),
                        content_type="application/json")

    def _report(self, fingerprint: str) -> Response:
        from repro.study.result import study_result_from_json

        path = archive_path(self.config.archive_dir, fingerprint)
        try:
            result = study_result_from_json(path)
        except (OSError, ValueError, KeyError):
            self._raise_not_done(fingerprint, "report")
        return text_response(result.render() + "\n")

    def _raise_not_done(self, fingerprint: str, what: str):
        status = self.queue.study_state(fingerprint)
        if status is None:
            raise HttpError(404, f"unknown study {fingerprint}: no "
                                 f"{what} to fetch")
        raise HttpError(404, f"study {fingerprint} is "
                             f"{status['state']}, not done: its {what} "
                             f"does not exist yet")

    def _health(self, request: Request) -> Response:
        return json_response({
            "status": "ok",
            "pid": os.getpid(),
            "auth": self.auth.enabled,
            "archive_dir": self.config.archive_dir,
            "queue": self.queue.counts(),
            "workers": [{"name": w.name, "alive": w.is_alive(),
                         "running": w.running_fingerprint,
                         "completed": w.studies_completed,
                         "failed": w.studies_failed}
                        for w in self.workers],
        })

    def _queue_listing(self, request: Request) -> Response:
        entries = []
        for entry in self.queue.entries():
            lease = self.queue.lease_info(entry.fingerprint)
            record = {"fingerprint": entry.fingerprint,
                      "state": "running" if lease is not None
                      else entry.state,
                      "kind": entry.study.get("kind", "?"),
                      "priority": entry.priority,
                      "attempts": entry.attempts,
                      "submitted_at": entry.submitted_at}
            if lease is not None:
                record["progress"] = {"done": int(lease.get("done", 0)),
                                      "total": int(lease.get("total", 0))}
                record["owner"] = lease.get("owner")
            elif entry.state == "queued":
                record["queue_position"] = \
                    self.queue.position(entry.fingerprint)
            if entry.last_error:
                record["last_error"] = entry.last_error
            entries.append(record)
        counters = telemetry.snapshot().get("counters", {})
        return json_response({
            "counts": self.queue.counts(),
            "entries": entries,
            "counters": {k: v for k, v in sorted(counters.items())
                         if k.startswith(("service.", "retry."))},
        })


def serve(config: ServiceConfig, *, engine=None, workers: int = 1) -> int:
    """Run a :class:`ReproService` until SIGTERM/SIGINT (the CLI face)."""
    return ReproService(config, engine=engine,
                        workers=workers).serve_forever()
