"""Bearer-token auth for the HTTP tier: named refusals, constant-time.

The shape follows the cluster handshake's auth (PR 7): a shared secret
(``REPRO_SERVICE_TOKEN``), comparisons through
:func:`hmac.compare_digest`, and every refusal *names* what was wrong
and which knob fixes it — a half-configured deployment fails loudly,
not mysteriously.  Like the shard handshake, the mismatch is symmetric:
a tokenless service refuses clients that *do* present a token, because
one of the two sides is misconfigured and silently ignoring credentials
hides that.
"""

from __future__ import annotations

import hmac

__all__ = ["AuthPolicy"]


class AuthPolicy:
    """Checks an ``Authorization`` header against the configured token."""

    def __init__(self, token: str | None):
        self.token = token or None

    @property
    def enabled(self) -> bool:
        return self.token is not None

    def refusal(self, header: str | None) -> str | None:
        """Why this request must be refused, or ``None`` to admit it.

        ``header`` is the raw ``Authorization`` header value (``None``
        when the request carried none).
        """
        if self.token is None:
            if header:
                return ("auth mismatch: the request presents an "
                        "Authorization header but this service holds no "
                        "REPRO_SERVICE_TOKEN")
            return None
        if not header:
            return ("auth required: send 'Authorization: Bearer <token>' "
                    "matching this service's REPRO_SERVICE_TOKEN")
        scheme, _, credential = header.partition(" ")
        if scheme.strip().lower() != "bearer" or not credential.strip():
            return ("auth malformed: the Authorization header must be "
                    "'Bearer <token>', got scheme "
                    f"{scheme.strip()!r}")
        if not hmac.compare_digest(credential.strip().encode("utf-8"),
                                   self.token.encode("utf-8")):
            return ("auth failed: the bearer token does not match this "
                    "service's REPRO_SERVICE_TOKEN")
        return None
