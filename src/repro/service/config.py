"""Service configuration: one frozen record, every knob validated.

Every ``REPRO_SERVICE_*`` environment variable is parsed through the
:mod:`repro.resilience.config` helpers, so a typo like
``REPRO_SERVICE_PORT=http`` fails at startup with an error naming the
variable, and extreme-but-parseable values clamp into documented
operational ranges instead of wedging the daemon.

Knobs
-----
``REPRO_SERVICE_TOKEN``
    Bearer token every HTTP route requires.  Unset runs the service
    *open* (no auth) — fine on a loopback dev box, announced loudly at
    startup so a production deployment cannot miss it.
``REPRO_SERVICE_HOST`` / ``REPRO_SERVICE_PORT``
    Bind address; port ``0`` asks the OS for a free port.
``REPRO_SERVICE_POLL_INTERVAL``
    Scheduler/stream poll cadence in seconds (clamped to [0.01, 60]).
``REPRO_SERVICE_LEASE_TTL``
    Seconds without a heartbeat before another replica may break a
    lease and adopt the study (clamped to [1, 86400]).
``REPRO_SERVICE_RETRIES`` / ``REPRO_SERVICE_BACKOFF``
    Requeue-on-failure budget: attempts beyond the first, and the base
    delay of the :class:`~repro.resilience.RetryPolicy` schedule.
``REPRO_SERVICE_CHECKPOINT_EVERY``
    ``checkpoint_every`` handed to :func:`~repro.study.run_study` for
    every leased study (default 1: flush each completed round, so a
    SIGKILLed daemon resumes with zero recompute; 0 disables).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.resilience import env_float, env_int, validate_float, validate_int

__all__ = ["ServiceConfig", "service_token"]


def service_token() -> str | None:
    """The configured bearer token, or ``None`` (open mode)."""
    raw = os.environ.get("REPRO_SERVICE_TOKEN")
    token = raw.strip() if raw else ""
    return token or None


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a :class:`~repro.service.app.ReproService` needs.

    ``archive_dir`` is the shared backend: the study archive, the
    queue directory and every lease file live under it — pointing N
    API replicas at one ``archive_dir`` *is* the multi-instance
    deployment.
    """

    archive_dir: str
    host: str = "127.0.0.1"
    port: int = 0
    token: str | None = None
    poll_interval: float = 0.2
    lease_ttl: float = 30.0
    retries: int = 3
    backoff: float = 0.5
    checkpoint_every: int = 1

    def __post_init__(self):
        if not self.archive_dir:
            raise ValueError("ServiceConfig needs an archive_dir (the "
                             "shared study archive + queue directory)")
        object.__setattr__(self, "port", validate_int(
            self.port, name="REPRO_SERVICE_PORT", lo=0, hi=65535))
        object.__setattr__(self, "poll_interval", validate_float(
            self.poll_interval, name="REPRO_SERVICE_POLL_INTERVAL",
            lo=0.01, hi=60.0))
        object.__setattr__(self, "lease_ttl", validate_float(
            self.lease_ttl, name="REPRO_SERVICE_LEASE_TTL",
            lo=1.0, hi=86400.0))
        object.__setattr__(self, "retries", validate_int(
            self.retries, name="REPRO_SERVICE_RETRIES", lo=0, hi=100))
        object.__setattr__(self, "backoff", validate_float(
            self.backoff, name="REPRO_SERVICE_BACKOFF", lo=0.0, hi=300.0))
        object.__setattr__(self, "checkpoint_every", validate_int(
            self.checkpoint_every, name="REPRO_SERVICE_CHECKPOINT_EVERY",
            lo=0, hi=100000))

    @classmethod
    def from_env(cls, archive_dir: str, **overrides) -> "ServiceConfig":
        """Build a config from the environment, ``overrides`` winning.

        An override passed as ``None`` defers to the environment (the
        CLI hands every unset flag through as ``None``).
        """
        values = {
            "host": os.environ.get("REPRO_SERVICE_HOST", "").strip()
            or "127.0.0.1",
            "port": env_int("REPRO_SERVICE_PORT", 0, lo=0, hi=65535),
            "token": service_token(),
            "poll_interval": env_float("REPRO_SERVICE_POLL_INTERVAL", 0.2,
                                       lo=0.01, hi=60.0),
            "lease_ttl": env_float("REPRO_SERVICE_LEASE_TTL", 30.0,
                                   lo=1.0, hi=86400.0),
            "retries": env_int("REPRO_SERVICE_RETRIES", 3, lo=0, hi=100),
            "backoff": env_float("REPRO_SERVICE_BACKOFF", 0.5,
                                 lo=0.0, hi=300.0),
            "checkpoint_every": env_int("REPRO_SERVICE_CHECKPOINT_EVERY", 1,
                                        lo=0, hi=100000),
        }
        values.update({k: v for k, v in overrides.items() if v is not None})
        return cls(archive_dir=archive_dir, **values)
