"""A minimal asyncio HTTP/1.1 server — stdlib only, by design.

The service tier adds **no dependencies**: this module implements just
enough of HTTP/1.1 for the API's needs — request-line + header parsing
with documented size caps, ``Content-Length`` bodies, JSON and plain
-text responses, and ``Transfer-Encoding: chunked`` streaming for the
live-progress route.  Every connection serves one request and closes
(``Connection: close``), which keeps the state machine trivial and is
exactly how ``curl``, ``http.client`` and load balancers with
health-check probes behave anyway.

The server is transport only: it parses a :class:`Request`, hands it
to an async ``router(request) -> Response`` callable, and writes the
result.  Routing, auth and the queue live in
:mod:`repro.service.app`.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qs, unquote, urlsplit

__all__ = ["HttpError", "Request", "Response", "HttpServer",
           "json_response", "text_response"]

# Operational caps: a request line or header block larger than this is
# not an API call, it is abuse or a confused client.
MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 65536
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            401: "Unauthorized", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict",
            413: "Payload Too Large", 500: "Internal Server Error",
            503: "Service Unavailable"}


class HttpError(Exception):
    """Raise inside a route to produce a JSON error response."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict
    headers: dict
    body: bytes

    def header(self, name: str, default: str | None = None) -> str | None:
        return self.headers.get(name.lower(), default)

    def json(self):
        """The body parsed as JSON (:class:`HttpError` 400 on failure)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")


@dataclass
class Response:
    """One response: fixed body, or a chunked stream.

    ``stream`` (an async iterator yielding ``str``/``bytes`` chunks)
    switches the writer to ``Transfer-Encoding: chunked``; ``body`` is
    ignored then.
    """

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict = field(default_factory=dict)
    stream: object | None = None


def json_response(obj, *, status: int = 200) -> Response:
    return Response(status=status,
                    body=(json.dumps(obj, sort_keys=True) + "\n")
                    .encode("utf-8"),
                    content_type="application/json")


def text_response(text: str, *, status: int = 200) -> Response:
    return Response(status=status, body=text.encode("utf-8"),
                    content_type="text/plain; charset=utf-8")


async def _read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request; ``None`` when the client closed before sending."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request line")
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request line too long")
    if len(line) > MAX_REQUEST_LINE:
        raise HttpError(400, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise HttpError(400, f"malformed request line {line!r}")
    method, target = parts[0].upper(), parts[1]

    headers: dict = {}
    total = 0
    while True:
        raw = await reader.readuntil(b"\r\n")
        total += len(raw)
        if total > MAX_HEADER_BYTES:
            raise HttpError(400, "header block too large")
        text = raw.decode("latin-1").strip()
        if not text:
            break
        name, sep, value = text.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {text!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {length!r}")
        if n < 0 or n > MAX_BODY_BYTES:
            raise HttpError(413, f"body of {n} bytes exceeds the "
                                 f"{MAX_BODY_BYTES}-byte cap")
        body = await reader.readexactly(n) if n else b""

    split = urlsplit(target)
    query = {k: v[-1] for k, v in parse_qs(split.query).items()}
    return Request(method=method, path=unquote(split.path), query=query,
                   headers=headers, body=body)


def _head(status: int, content_type: str, extra: dict, *,
          chunked: bool, length: int | None) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}",
             "Connection: close"]
    if chunked:
        lines.append("Transfer-Encoding: chunked")
    elif length is not None:
        lines.append(f"Content-Length: {length}")
    lines.extend(f"{k}: {v}" for k, v in extra.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


class HttpServer:
    """Serve ``router`` on an asyncio event loop.

    ``await start()`` binds (port 0 picks a free port — read
    :attr:`port` after), ``await stop()`` closes the listener and
    cancels in-flight connections (streams included).
    """

    def __init__(self, router, *, host: str = "127.0.0.1", port: int = 0):
        self.router = router
        self.host = host
        self.port = int(port)
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port)
        self.host, self.port = self._server.sockets[0].getsockname()[:2]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._serve_one(reader, writer)
        except (asyncio.CancelledError, ConnectionError, OSError):
            pass  # client gone or server stopping: nothing to answer
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_one(self, reader, writer) -> None:
        try:
            request = await _read_request(reader)
        except HttpError as exc:
            await self._write_fixed(writer, json_response(
                {"error": exc.message}, status=exc.status))
            return
        if request is None:
            return
        try:
            response = await self.router(request)
        except HttpError as exc:
            response = json_response({"error": exc.message},
                                     status=exc.status)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # a broken route never kills the server
            response = json_response(
                {"error": f"internal error: {type(exc).__name__}: {exc}"},
                status=500)
        if response.stream is not None:
            await self._write_stream(writer, response)
        else:
            await self._write_fixed(writer, response)

    async def _write_fixed(self, writer, response: Response) -> None:
        writer.write(_head(response.status, response.content_type,
                           response.headers, chunked=False,
                           length=len(response.body)))
        writer.write(response.body)
        await writer.drain()

    async def _write_stream(self, writer, response: Response) -> None:
        writer.write(_head(response.status, response.content_type,
                           response.headers, chunked=True, length=None))
        await writer.drain()
        try:
            async for chunk in response.stream:
                data = chunk.encode("utf-8") if isinstance(chunk, str) \
                    else bytes(chunk)
                if not data:
                    continue
                writer.write(b"%x\r\n" % len(data) + data + b"\r\n")
                await writer.drain()
        finally:
            try:
                writer.write(b"0\r\n\r\n")
                await writer.drain()
            except (ConnectionError, OSError):
                pass
