"""The persistent study queue: atomic JSON entries + lease-file locks.

The queue is a directory (``<archive_dir>/queue/``) of small,
schema-versioned JSON files — no database, no daemon-private state, so
**any number of API replicas and scheduler workers sharing the archive
directory see the same queue** and survive each other's crashes:

``entry-<fingerprint>.json``
    One submitted study: its full :class:`~repro.study.StudySpec`
    document, priority, submission sequence, retry state.  Created
    *exclusively* (temp file + ``os.link``), which is the
    concurrent-submit dedupe: two simultaneous submissions of the same
    spec race to link the same name; exactly one wins, the loser reads
    the winner's entry back — either way one entry, one computation.
    Updates go through :func:`~repro.utils.serialization.
    atomic_write_text`, so a reader never sees a torn entry.

``lease-<fingerprint>.json``
    The cross-replica run lock.  Created with ``O_CREAT | O_EXCL`` —
    the filesystem's atomic test-and-set — by the worker that will run
    the study; while it exists no other worker touches the entry.  The
    holder heartbeats progress counts into it (atomically), and a
    lease whose heartbeat is older than the TTL is *stale*: the holder
    is presumed dead, any worker may break the lease and adopt the
    study, resuming from its checkpoint.

``queue-manifest.json``
    A convenience roll-up (counts by state, flushed atomically on
    mutation and shutdown) for dashboards that want one read.

State model: an entry stays ``queued`` while it is leased and running
— so a daemon killed hard leaves exactly the files a recovering worker
needs (queued entry + stale lease), and recovery is the normal path,
not a special case.  Terminal success *removes* the entry (the archive
file is the durable record); ``failed`` (retry budget exhausted) and
``cancelled`` entries stay for the operator CLI to inspect, nudge or
delete.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import warnings
from dataclasses import dataclass, field

from repro import telemetry
from repro.study.runner import archive_path
from repro.study.spec import StudySpec
from repro.utils.serialization import atomic_write_text

__all__ = ["QUEUE_SCHEMA_VERSION", "QueueEntry", "StudyQueue",
           "queue_dir", "entry_path", "lease_path"]

QUEUE_SCHEMA_VERSION = 1


def queue_dir(archive_dir: str) -> str:
    """The queue directory beside the study archive."""
    return os.path.join(archive_dir, "queue")


def entry_path(archive_dir: str, fingerprint: str) -> str:
    return os.path.join(queue_dir(archive_dir),
                        f"entry-{fingerprint}.json")


def lease_path(archive_dir: str, fingerprint: str) -> str:
    return os.path.join(queue_dir(archive_dir),
                        f"lease-{fingerprint}.json")


@dataclass
class QueueEntry:
    """One queued study, exactly as its entry file records it."""

    fingerprint: str
    study: dict
    priority: int = 0
    seq: int = 0
    state: str = "queued"
    attempts: int = 0
    not_before: float = 0.0
    submitted_at: str = ""
    last_error: str | None = None
    extras: dict = field(default_factory=dict)

    def sort_key(self) -> tuple:
        """Dequeue order: highest priority first, then submission order."""
        return (-int(self.priority), int(self.seq), self.fingerprint)

    def to_obj(self) -> dict:
        return {
            "type": "StudyQueueEntry",
            "schema": QUEUE_SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "study": self.study,
            "priority": int(self.priority),
            "seq": int(self.seq),
            "state": self.state,
            "attempts": int(self.attempts),
            "not_before": float(self.not_before),
            "submitted_at": self.submitted_at,
            "last_error": self.last_error,
            "extras": self.extras,
        }

    @classmethod
    def from_obj(cls, obj: dict) -> "QueueEntry":
        if obj.get("type") != "StudyQueueEntry":
            raise ValueError(
                f"not a StudyQueueEntry document: type={obj.get('type')!r}")
        if int(obj.get("schema", 1)) > QUEUE_SCHEMA_VERSION:
            raise ValueError(
                f"queue entry schema v{obj['schema']} is newer than this "
                f"build's v{QUEUE_SCHEMA_VERSION}")
        return cls(
            fingerprint=str(obj["fingerprint"]),
            study=obj.get("study", {}),
            priority=int(obj.get("priority", 0)),
            seq=int(obj.get("seq", 0)),
            state=str(obj.get("state", "queued")),
            attempts=int(obj.get("attempts", 0)),
            not_before=float(obj.get("not_before", 0.0)),
            submitted_at=str(obj.get("submitted_at", "")),
            last_error=obj.get("last_error"),
            extras=obj.get("extras", {}) or {},
        )


class StudyQueue:
    """File-backed priority queue over one archive directory.

    Every method is safe to call from any process on any host sharing
    the directory; nothing is cached between calls (the files *are*
    the state).
    """

    def __init__(self, archive_dir: str):
        self.archive_dir = archive_dir
        self.directory = queue_dir(archive_dir)
        os.makedirs(self.directory, exist_ok=True)

    # -- submission --------------------------------------------------------

    def submit(self, spec: StudySpec, *,
               priority: int = 0) -> tuple[QueueEntry, bool]:
        """Enqueue ``spec``; returns ``(entry, created)``.

        ``created=False`` is the dedupe hit: an entry for this
        fingerprint already exists (queued, running, failed or
        cancelled) and is returned as-is — the submitter never causes
        a second computation.  Callers check the archive *before*
        submitting; a fingerprint that is already archived should
        never reach the queue.
        """
        if spec.context is None:
            raise ValueError(
                "cannot queue a StudySpec with context=None: the service "
                "has no live context to attach; name a ContextSpec in the "
                "document")
        fingerprint = spec.fingerprint()
        entry = QueueEntry(
            fingerprint=fingerprint,
            study=spec.to_obj(),
            priority=int(priority),
            seq=time.time_ns(),
            submitted_at=_utc_now(),
        )
        path = entry_path(self.archive_dir, fingerprint)
        fd, tmp = tempfile.mkstemp(dir=self.directory,
                                   prefix="entry.", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(entry.to_obj()))
                fh.flush()
                os.fsync(fh.fileno())
            try:
                # Atomic create-exclusive with full content: link the
                # complete temp file under the final name.  EEXIST is
                # the concurrent-submit race resolving to one winner.
                os.link(tmp, path)
            except FileExistsError:
                existing = self.get(fingerprint)
                if existing is not None:
                    return existing, False
                # The holder vanished between link and read (completed
                # that fast, or was removed); treat as a fresh submit.
                atomic_write_text(path, json.dumps(entry.to_obj()))
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        telemetry.counter("service.queue.submitted").inc()
        self.flush_manifest()
        return entry, True

    # -- reading -----------------------------------------------------------

    def get(self, fingerprint: str) -> QueueEntry | None:
        """The entry for ``fingerprint``, or ``None``."""
        return self._read_entry(entry_path(self.archive_dir, fingerprint))

    def entries(self) -> list[QueueEntry]:
        """Every readable entry, in dequeue order."""
        found = []
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return []
        for name in names:
            if not (name.startswith("entry-") and name.endswith(".json")):
                continue
            entry = self._read_entry(os.path.join(self.directory, name))
            if entry is not None:
                found.append(entry)
        found.sort(key=QueueEntry.sort_key)
        return found

    def pending(self, *, now: float | None = None) -> list[QueueEntry]:
        """Queued entries eligible to lease right now, in dequeue order."""
        now = time.time() if now is None else now
        return [e for e in self.entries()
                if e.state == "queued" and e.not_before <= now]

    def position(self, fingerprint: str) -> int | None:
        """1-based place of ``fingerprint`` among unleased queued
        entries (``None`` when it is not waiting)."""
        place = 0
        for entry in self.entries():
            if entry.state != "queued":
                continue
            if self.lease_info(entry.fingerprint) is not None:
                continue
            place += 1
            if entry.fingerprint == fingerprint:
                return place
        return None

    def counts(self) -> dict:
        """Entry counts by state, plus how many are actively leased."""
        tally = {"queued": 0, "running": 0, "failed": 0, "cancelled": 0}
        for entry in self.entries():
            if entry.state == "queued" and \
                    self.lease_info(entry.fingerprint) is not None:
                tally["running"] += 1
            elif entry.state in tally:
                tally[entry.state] += 1
            else:
                tally[entry.state] = tally.get(entry.state, 0) + 1
        return tally

    def _read_entry(self, path: str) -> QueueEntry | None:
        """Read one entry file; anything torn or foreign reads as absent.

        Tolerance is deliberate: entry files are written atomically, so
        an unreadable one is either mid-creation by a racing submitter
        (it will be complete on the next scan) or operator damage —
        neither should take the whole queue down.
        """
        try:
            with open(path, encoding="utf-8") as fh:
                return QueueEntry.from_obj(json.load(fh))
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError) as exc:
            warnings.warn(f"ignoring unreadable queue entry {path}: {exc}",
                          stacklevel=2)
            return None

    # -- mutation ----------------------------------------------------------

    def update(self, entry: QueueEntry) -> None:
        """Rewrite ``entry``'s file atomically."""
        atomic_write_text(entry_path(self.archive_dir, entry.fingerprint),
                          json.dumps(entry.to_obj()))
        self.flush_manifest()

    def remove(self, fingerprint: str) -> bool:
        """Delete the entry (terminal success, or operator cleanup)."""
        try:
            os.unlink(entry_path(self.archive_dir, fingerprint))
        except OSError:
            return False
        self.flush_manifest()
        return True

    def cancel(self, fingerprint: str) -> QueueEntry | None:
        """Mark a *waiting* entry cancelled; refuses a leased (running)
        study — the operator stops the runner, not the queue."""
        entry = self.get(fingerprint)
        if entry is None or entry.state != "queued":
            return None
        if self.lease_info(fingerprint) is not None:
            raise ValueError(
                f"study {fingerprint[:12]}… is leased (running); it "
                f"cannot be cancelled from the queue")
        entry.state = "cancelled"
        self.update(entry)
        telemetry.counter("service.queue.cancelled").inc()
        return entry

    def nudge(self, fingerprint: str, *,
              priority: int | None = None) -> QueueEntry | None:
        """Requeue a failed/cancelled/backed-off entry for immediate
        pickup, optionally re-prioritised (the operator's "run it now")."""
        entry = self.get(fingerprint)
        if entry is None:
            return None
        entry.state = "queued"
        entry.not_before = 0.0
        entry.last_error = None
        if priority is not None:
            entry.priority = int(priority)
        self.update(entry)
        telemetry.counter("service.queue.nudged").inc()
        return entry

    # -- leases ------------------------------------------------------------

    def acquire_lease(self, fingerprint: str, *, owner: str) -> bool:
        """Atomically claim the right to run ``fingerprint``.

        ``O_CREAT | O_EXCL``: of N workers racing, the filesystem picks
        exactly one winner — this is the cross-replica lock that makes
        "two API instances over one archive dir never run the same
        study twice" hold without any coordination service.
        """
        path = lease_path(self.archive_dir, fingerprint)
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return False
        doc = {"type": "StudyLease", "schema": QUEUE_SCHEMA_VERSION,
               "fingerprint": fingerprint, "owner": owner,
               "pid": os.getpid(), "acquired_at": time.time(),
               "heartbeat_at": time.time(), "done": 0, "total": 0}
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(doc))
            fh.flush()
            os.fsync(fh.fileno())
        telemetry.counter("service.queue.leased").inc()
        return True

    def heartbeat(self, fingerprint: str, *, done: int, total: int,
                  owner: str) -> None:
        """Refresh the lease's liveness stamp and progress counts."""
        path = lease_path(self.archive_dir, fingerprint)
        doc = self._read_lease(path) or {}
        doc.update(type="StudyLease", schema=QUEUE_SCHEMA_VERSION,
                   fingerprint=fingerprint, owner=owner, pid=os.getpid(),
                   heartbeat_at=time.time(), done=int(done),
                   total=int(total))
        doc.setdefault("acquired_at", time.time())
        atomic_write_text(path, json.dumps(doc))

    def release_lease(self, fingerprint: str) -> None:
        try:
            os.unlink(lease_path(self.archive_dir, fingerprint))
        except OSError:
            pass

    def lease_info(self, fingerprint: str) -> dict | None:
        """The live lease document, or ``None``."""
        return self._read_lease(lease_path(self.archive_dir, fingerprint))

    def _read_lease(self, path: str) -> dict | None:
        try:
            with open(path, encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    def reap_stale_leases(self, *, ttl: float,
                          now: float | None = None) -> list[str]:
        """Break leases whose heartbeat went quiet for longer than ``ttl``.

        Returns the reclaimed fingerprints.  The studies behind them
        stay ``queued``, so the next scheduler pass re-leases and
        resumes them from their checkpoints — recovery from a
        SIGKILLed daemon is just this plus the ordinary loop.
        """
        now = time.time() if now is None else now
        reclaimed = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return reclaimed
        for name in names:
            if not (name.startswith("lease-") and name.endswith(".json")):
                continue
            path = os.path.join(self.directory, name)
            doc = self._read_lease(path)
            beat = (doc or {}).get("heartbeat_at") or \
                (doc or {}).get("acquired_at") or 0.0
            if doc is not None and now - float(beat) <= ttl:
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            fingerprint = name[len("lease-"):-len(".json")]
            reclaimed.append(fingerprint)
            telemetry.counter("service.queue.leases_reaped").inc()
            warnings.warn(
                f"reaped stale lease for study {fingerprint[:12]}… "
                f"(no heartbeat for more than {ttl:g}s); it will be "
                f"re-leased and resumed from its checkpoint",
                stacklevel=2)
        return reclaimed

    # -- manifest ----------------------------------------------------------

    def flush_manifest(self) -> None:
        """Atomically roll up the queue's counts for one-read dashboards."""
        doc = {"type": "StudyQueueManifest",
               "schema": QUEUE_SCHEMA_VERSION,
               "counts": self.counts(),
               "updated_at": _utc_now()}
        atomic_write_text(os.path.join(self.directory,
                                       "queue-manifest.json"),
                          json.dumps(doc))

    # -- status resolution -------------------------------------------------

    def study_state(self, fingerprint: str) -> dict | None:
        """The service-level status of ``fingerprint``, or ``None``.

        Resolution order mirrors the lifecycle: the archive (done)
        outranks a live lease (running) outranks a bare entry
        (queued / failed / cancelled).  ``None`` means the service has
        never heard of the fingerprint.
        """
        archived = archive_path(self.archive_dir, fingerprint)
        if os.path.exists(archived):
            return {"fingerprint": fingerprint, "state": "done",
                    "archive": archived}
        entry = self.get(fingerprint)
        lease = self.lease_info(fingerprint)
        if lease is not None:
            return {"fingerprint": fingerprint, "state": "running",
                    "progress": {"done": int(lease.get("done", 0)),
                                 "total": int(lease.get("total", 0))},
                    "owner": lease.get("owner"),
                    "attempts": entry.attempts if entry else 0,
                    "priority": entry.priority if entry else 0}
        if entry is None:
            return None
        status = {"fingerprint": fingerprint, "state": entry.state,
                  "attempts": entry.attempts, "priority": entry.priority,
                  "submitted_at": entry.submitted_at}
        if entry.state == "queued":
            status["queue_position"] = self.position(fingerprint)
            if entry.not_before > time.time():
                status["retry_at"] = entry.not_before
        if entry.last_error:
            status["last_error"] = entry.last_error
        return status


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
