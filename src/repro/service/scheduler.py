"""The scheduler daemon: leases queued studies and runs them to archive.

A :class:`SchedulerWorker` is the long-lived job-processing loop the
queue implies (the cerebrum scheduled-jobs idiom: declarative job
specs on disk, a daemon that leases and executes them, requeue on
failure, an operator CLI to nudge).  Each pass it

1. reaps stale leases (a dead replica's studies return to the pool);
2. walks the eligible entries in priority order and tries to
   :meth:`~repro.service.queue.StudyQueue.acquire_lease` each — the
   ``O_EXCL`` lease file is the only coordination, so any number of
   workers (threads here, whole daemons across hosts) can share one
   queue and a study runs exactly once;
3. runs the leased study through the ordinary
   :func:`~repro.study.run_study` with ``resume=True`` and the
   service's ``checkpoint_every`` — a worker that dies mid-study
   leaves a checkpoint, and whichever worker adopts the study next
   recomputes **zero** completed rounds;
4. heartbeats progress into the lease file as rounds land (the status
   and stream routes read it — live progress works from *any* API
   replica, not just the one executing);
5. on success archives-and-dequeues; on failure requeues with the
   :class:`~repro.resilience.RetryPolicy` backoff schedule until the
   retry budget is spent, then parks the entry ``failed`` with the
   error named for the operator.

Shutdown is cooperative: :meth:`SchedulerWorker.stop` raises
:class:`StudyInterrupted` out of the running study's progress callback;
``run_study`` flushes the checkpoint on the way out (so nothing
completed is lost), the worker releases the lease, and the study stays
``queued`` for the next daemon.
"""

from __future__ import annotations

import threading
import time
import traceback

from repro import telemetry
from repro.resilience import RetryPolicy
from repro.service.config import ServiceConfig
from repro.service.queue import QueueEntry, StudyQueue
from repro.study.runner import run_study
from repro.study.spec import StudySpec

__all__ = ["SchedulerWorker", "StudyInterrupted"]


class StudyInterrupted(Exception):
    """Raised inside a study's progress callback to abort it cleanly."""


class SchedulerWorker(threading.Thread):
    """One scheduler loop over a shared :class:`StudyQueue`.

    Parameters
    ----------
    queue:
        The queue (and archive directory) to serve.
    config:
        Service knobs: poll cadence, lease TTL, retry budget,
        checkpoint cadence.
    engine:
        The shared :class:`~repro.engine.EvaluationEngine` studies run
        on when their spec names no engine of its own (a spec with an
        :class:`~repro.study.EngineConfig` gets a fresh engine built
        from it — the submitter's placement preference wins).
    name:
        Worker name, stamped into lease files (``owner``).
    """

    def __init__(self, queue: StudyQueue, config: ServiceConfig, *,
                 engine=None, name: str = "scheduler-0"):
        super().__init__(name=name, daemon=True)
        self.queue = queue
        self.config = config
        self.engine = engine
        self.policy = RetryPolicy(retries=config.retries,
                                  backoff=config.backoff,
                                  max_backoff=max(config.backoff, 30.0))
        self._stop_event = threading.Event()
        self._idle = threading.Event()
        self._running_fingerprint: str | None = None
        self.studies_completed = 0
        self.studies_failed = 0

    # -- lifecycle ---------------------------------------------------------

    def stop(self) -> None:
        """Ask the worker to finish up: the current study checkpoints
        and requeues, the loop exits."""
        self._stop_event.set()

    def stopping(self) -> bool:
        return self._stop_event.is_set()

    @property
    def running_fingerprint(self) -> str | None:
        """The study this worker is executing right now, if any."""
        return self._running_fingerprint

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until the worker has nothing leased (for tests)."""
        return self._idle.wait(timeout)

    # -- the loop ----------------------------------------------------------

    def run(self) -> None:
        while not self._stop_event.is_set():
            leased = False
            try:
                self.queue.reap_stale_leases(ttl=self.config.lease_ttl)
                leased = self._lease_and_run_one()
            except Exception:
                # The loop is the daemon's spine: log-and-continue
                # beats dying to a transient filesystem error.
                telemetry.counter("service.scheduler.loop_errors").inc()
                traceback.print_exc()
            if not leased:
                self._idle.set()
                self._stop_event.wait(self.config.poll_interval)
        self._idle.set()

    def _lease_and_run_one(self) -> bool:
        """Lease the highest-priority eligible study and run it."""
        for entry in self.queue.pending():
            if self._stop_event.is_set():
                return False
            if not self.queue.acquire_lease(entry.fingerprint,
                                            owner=self.name):
                continue
            self._idle.clear()
            self._running_fingerprint = entry.fingerprint
            try:
                self._run_entry(entry)
            finally:
                self._running_fingerprint = None
                self.queue.release_lease(entry.fingerprint)
            return True
        return False

    def _run_entry(self, entry: QueueEntry) -> None:
        fingerprint = entry.fingerprint
        try:
            spec = StudySpec.from_obj(entry.study)
        except (TypeError, ValueError, KeyError) as exc:
            # A malformed document can never succeed: park it failed
            # immediately, no retries.
            self._park_failed(entry, f"unloadable StudySpec: {exc}")
            return

        engine = self._engine_for(spec)
        last_beat = 0.0

        def progress(done: int, total: int) -> None:
            nonlocal last_beat
            if self._stop_event.is_set():
                raise StudyInterrupted(fingerprint)
            now = time.monotonic()
            # Throttled: a heartbeat is an fsync'd file replace, and
            # rounds can land thousands per second from a warm cache.
            if now - last_beat >= 0.1 or done >= total:
                self.queue.heartbeat(fingerprint, done=done, total=total,
                                     owner=self.name)
                last_beat = now

        try:
            with telemetry.trace_span("service.study", kind=spec.kind):
                run_study(
                    spec, engine=engine, progress=progress,
                    archive_dir=self.queue.archive_dir, resume=True,
                    checkpoint_every=self.config.checkpoint_every)
        except StudyInterrupted:
            # Graceful shutdown: run_study already flushed the
            # checkpoint; the entry stays queued for the next daemon.
            telemetry.counter("service.scheduler.interrupted").inc()
            return
        except Exception as exc:
            self._requeue_or_fail(entry, exc)
            return
        self.queue.remove(fingerprint)
        self.studies_completed += 1
        telemetry.counter("service.studies.completed").inc()

    def _engine_for(self, spec: StudySpec):
        if spec.engine is not None:
            return spec.engine.build()
        if self.engine is not None:
            return self.engine
        from repro.engine import resolve_engine

        return resolve_engine(None)

    def _requeue_or_fail(self, entry: QueueEntry, exc: Exception) -> None:
        """The requeue-on-failure path: backoff, then park failed."""
        entry = self.queue.get(entry.fingerprint) or entry
        attempt = entry.attempts  # 0-based index into the retry schedule
        entry.attempts += 1
        entry.last_error = f"{type(exc).__name__}: {exc}"
        if attempt < self.policy.retries:
            delay = self.policy.delay(entry.fingerprint, attempt)
            entry.state = "queued"
            entry.not_before = time.time() + delay
            telemetry.counter("service.studies.requeued").inc()
            telemetry.counter("retry.attempts").inc()
        else:
            entry.state = "failed"
            self.studies_failed += 1
            telemetry.counter("service.studies.failed").inc()
        self.queue.update(entry)

    def _park_failed(self, entry: QueueEntry, reason: str) -> None:
        entry = self.queue.get(entry.fingerprint) or entry
        entry.state = "failed"
        entry.last_error = reason
        self.studies_failed += 1
        telemetry.counter("service.studies.failed").inc()
        self.queue.update(entry)
