"""Declarative studies: whole experiments as serialisable specs.

The one public surface in front of every experiment the repository
knows.  Build a :class:`StudySpec` (directly, from JSON, or with the
named builders in :mod:`repro.study.studies <repro.study.builders>`),
then submit it:

>>> from repro.study import run_study, studies
>>> spec = studies.figure1(context="spambase", n_repeats=1)
>>> result = run_study(spec)                      # doctest: +SKIP
>>> print(result.render())                        # doctest: +SKIP

``run_study`` returns a :class:`StudyResult` — a uniform,
provenance-stamped artifact that round-trips through JSON, renders its
own report, warms an engine cache for zero-recompute resume, and is
addressable by its study fingerprint (``archive_dir=`` turns that into
skip-if-already-done).  ``describe_study`` dry-runs the spec: expanded
grid, exact round counts, predicted cache hits.

The historical driver functions (``run_pure_strategy_sweep`` and
friends) survive as deprecation shims over this package's
:mod:`~repro.study.drivers`; their outputs and engine cache keys are
bit-identical.
"""

from repro.study import builders as studies
from repro.study.archive import archive_summary, list_archive
from repro.study.builders import BUILDERS, build
from repro.study.checkpoint import (StudyCheckpointer, checkpoint_path,
                                    load_checkpoint)
from repro.study.result import StudyResult, study_result_from_json
from repro.study.runner import (PhaseDescription, StudyDescription,
                                archive_path, describe_study, run_study)
from repro.study.report import format_study_description, render_study_report
from repro.study.spec import (STUDY_KINDS, STUDY_SCHEMA_VERSION, ContextSpec,
                              EngineConfig, ScenarioGrid, StudySpec,
                              study_from_json, study_to_json)

__all__ = [
    "studies",
    "BUILDERS",
    "build",
    "archive_summary",
    "list_archive",
    "StudyResult",
    "study_result_from_json",
    "StudyCheckpointer",
    "checkpoint_path",
    "load_checkpoint",
    "PhaseDescription",
    "StudyDescription",
    "archive_path",
    "describe_study",
    "run_study",
    "format_study_description",
    "render_study_report",
    "STUDY_KINDS",
    "STUDY_SCHEMA_VERSION",
    "ContextSpec",
    "EngineConfig",
    "ScenarioGrid",
    "StudySpec",
    "study_from_json",
    "study_to_json",
]
