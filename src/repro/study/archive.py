"""Archive directory scanning: what studies does this directory hold?

One helper behind two consumers: the ``repro archive ls`` operator
command and the service tier's status/queue routes.  Both answer the
same question — "which study fingerprints are archived here, and what
are they?" — by scanning the ``study-<fingerprint>.json`` files
:func:`~repro.study.run_study` writes, reading only the cheap summary
fields (never materialising payload objects).
"""

from __future__ import annotations

import json
import os
import warnings

__all__ = ["archive_summary", "list_archive"]

_PREFIX, _SUFFIX = "study-", ".json"


def archive_summary(path: str) -> dict:
    """The one-line summary of one archived :class:`StudyResult` file.

    Raises ``OSError``/``ValueError`` on an unreadable or foreign file
    (:func:`list_archive` turns those into skips-with-warning).
    """
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("type") != "StudyResult":
        raise ValueError(f"not a StudyResult document: "
                         f"type={doc.get('type')!r}")
    data = doc.get("data", {})
    return {
        "fingerprint": data.get("study_fingerprint", ""),
        "kind": data.get("kind", "?"),
        "n_scenarios": len(data.get("scenarios", ())),
        "context_fingerprints": list(data.get("context_fingerprints", ())),
        "created_at": data.get("created_at", ""),
        "wall_time_seconds": data.get("wall_time_seconds", 0.0),
        "path": path,
    }


def list_archive(archive_dir: str) -> list[dict]:
    """Summaries of every archived study under ``archive_dir``.

    Sorted by creation stamp then fingerprint (stable across scans).
    Unreadable or mis-named files are skipped with a warning — an
    archive shared by live writers may legitimately contain files this
    scan races with, and one bad file must not hide the rest.
    """
    try:
        names = sorted(os.listdir(archive_dir))
    except OSError as exc:
        raise ValueError(f"cannot scan archive {archive_dir!r}: "
                         f"{exc}") from None
    summaries = []
    for name in names:
        if not (name.startswith(_PREFIX) and name.endswith(_SUFFIX)):
            continue
        path = os.path.join(archive_dir, name)
        try:
            summary = archive_summary(path)
        except (OSError, ValueError) as exc:
            warnings.warn(f"skipping unreadable archive file {path}: "
                          f"{exc}", stacklevel=2)
            continue
        named = name[len(_PREFIX):-len(_SUFFIX)]
        if summary["fingerprint"] != named:
            warnings.warn(
                f"skipping mis-filed archive {path}: the document says "
                f"study {summary['fingerprint'][:12]}… but the filename "
                f"says {named[:12]}…", stacklevel=2)
            continue
        summaries.append(summary)
    summaries.sort(key=lambda s: (s["created_at"], s["fingerprint"]))
    return summaries
