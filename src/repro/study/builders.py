"""StudySpec builders — one per experiment family.

Each builder is the declarative face of one historical driver:

==================  =========================================
builder             historical driver
==================  =========================================
:func:`figure1`     ``run_pure_strategy_sweep``
:func:`mixed_eval`  ``evaluate_mixed_defense``
:func:`table1`      ``run_pure_strategy_sweep`` + ``run_table1_experiment``
:func:`empirical_game`  ``solve_empirical_game``
:func:`cross_game`  ``solve_cross_family_game``
:func:`multi_seed`  ``run_multi_seed_sweep``
:func:`grid`        (new) the raw scenario-product study
==================  =========================================

Builders only *construct* specs — no context is loaded, no round runs.
Submit the result to :func:`repro.study.run_study`; parity tests
enforce that each builder's study reproduces its historical driver bit
for bit (same outputs, same engine cache keys).

``context`` accepts a :class:`~repro.study.spec.ContextSpec`, a maker
name string (``"spambase"``/``"synthetic"``) or ``None`` for specs that
will only ever run against a caller-supplied live context.
"""

from __future__ import annotations

from repro.study.spec import ContextSpec, EngineConfig, ScenarioGrid, StudySpec
from repro.utils.validation import check_canonical_params

__all__ = ["figure1", "mixed_eval", "table1", "empirical_game",
           "cross_game", "multi_seed", "grid", "BUILDERS", "build"]


def _context(context) -> ContextSpec | None:
    if context is None or isinstance(context, ContextSpec):
        return context
    return ContextSpec.from_obj(context)


def _engine(engine) -> EngineConfig | None:
    if engine is None or isinstance(engine, EngineConfig):
        return engine
    return EngineConfig.from_obj(engine)


def _axis(value) -> tuple:
    """An axis argument as a tuple: scalars and spec strings wrap.

    ``--set defenses=radius:0.1`` reaches a builder as one string and
    ``--set fractions=0.3`` as one float; a single-element axis must
    mean a one-point axis, never character-/error-producing
    ``tuple(scalar)``.
    """
    if value is None:
        return ()
    if isinstance(value, (list, tuple)):
        return tuple(value)
    return (value,)


def figure1(
    *,
    context="spambase",
    percentiles=None,
    poison_fraction: float = 0.2,
    fractions=None,
    n_repeats: int = 1,
    victim=None,
    defense_kind: str = "radius",
    defense_params=(),
    engine=None,
) -> StudySpec:
    """The Figure-1 sweep: accuracy vs filter strength, clean and attacked.

    ``fractions`` may name several contamination rates — the study then
    runs one sweep per rate (their clean rounds share cache entries);
    with the default single rate the payload is exactly the historical
    :class:`~repro.experiments.results.PureSweepResult`.
    """
    from repro.study.drivers import DEFAULT_SWEEP_PERCENTILES

    if percentiles is None:
        percentiles = DEFAULT_SWEEP_PERCENTILES
    if fractions is None:
        fractions = (poison_fraction,)
    grid_ = ScenarioGrid(
        percentiles=_axis(percentiles), victims=(victim,),
        fractions=_axis(fractions), n_repeats=n_repeats,
        defense_kind=defense_kind, defense_params=defense_params)
    return StudySpec(kind="figure1", context=_context(context), grid=grid_,
                     engine=_engine(engine))


def mixed_eval(
    *,
    context="spambase",
    percentiles,
    probabilities,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    victim=None,
    engine=None,
) -> StudySpec:
    """Evaluate one mixed defence (support + probabilities) under the
    optimal mixed attack — the declarative ``evaluate_mixed_defense``."""
    percentiles = tuple(float(p) for p in _axis(percentiles))
    probabilities = tuple(float(q) for q in _axis(probabilities))
    if len(percentiles) != len(probabilities):
        raise ValueError(
            f"{len(percentiles)} percentiles but "
            f"{len(probabilities)} probabilities")
    grid_ = ScenarioGrid(
        percentiles=percentiles, victims=(victim,),
        fractions=(poison_fraction,), n_repeats=n_repeats)
    return StudySpec(kind="mixed_eval", context=_context(context), grid=grid_,
                     solver=(("probabilities", probabilities),),
                     engine=_engine(engine))


def table1(
    *,
    context="spambase",
    percentiles=None,
    n_radii=(2, 3),
    algorithm_params=(),
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    victim=None,
    engine=None,
) -> StudySpec:
    """Table 1 as one study: the Figure-1 sweep, Algorithm 1 per support
    size in ``n_radii``, and each mixed defence's empirical evaluation."""
    from repro.study.drivers import DEFAULT_SWEEP_PERCENTILES

    if percentiles is None:
        percentiles = DEFAULT_SWEEP_PERCENTILES
    grid_ = ScenarioGrid(
        percentiles=_axis(percentiles), victims=(victim,),
        fractions=(poison_fraction,), n_repeats=n_repeats)
    solver = (
        ("algorithm", check_canonical_params(algorithm_params,
                                             name="algorithm params")),
        ("n_radii", tuple(int(n) for n in _axis(n_radii))),
    )
    return StudySpec(kind="table1", context=_context(context), grid=grid_,
                     solver=solver, engine=_engine(engine))


def empirical_game(
    *,
    context="spambase",
    percentiles=None,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    victim=None,
    defense_kind: str = "radius",
    defense_params=(),
    engine=None,
) -> StudySpec:
    """The measured game on a shared percentile grid, solved exactly."""
    from repro.study.drivers import DEFAULT_GAME_PERCENTILES

    if percentiles is None:
        percentiles = DEFAULT_GAME_PERCENTILES
    grid_ = ScenarioGrid(
        percentiles=_axis(percentiles), victims=(victim,),
        fractions=(poison_fraction,), n_repeats=n_repeats,
        defense_kind=defense_kind, defense_params=defense_params)
    return StudySpec(kind="empirical_game", context=_context(context),
                     grid=grid_, engine=_engine(engine))


def cross_game(
    *,
    context="spambase",
    defenses,
    attacks,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    victim=None,
    engine=None,
) -> StudySpec:
    """The measured game over arbitrary defence/attack spec lists.

    ``defenses``/``attacks`` entries are spec objects, spec strings
    (``"radius:0.1"``, ``"label-flip"``) or ``None``/``"none"``/
    ``"clean"`` for the baselines.
    """
    defenses = _axis(defenses)
    attacks = _axis(attacks)
    if not defenses or not attacks:
        raise ValueError("defenses and attacks must be non-empty")
    grid_ = ScenarioGrid(
        defenses=defenses, attacks=attacks, victims=(victim,),
        fractions=(poison_fraction,), n_repeats=n_repeats)
    return StudySpec(kind="cross_game", context=_context(context), grid=grid_,
                     engine=_engine(engine))


def multi_seed(
    *,
    context="spambase",
    n_seeds: int = 5,
    base_seed: int = 0,
    percentiles=None,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    engine=None,
) -> StudySpec:
    """The Figure-1 sweep across independent seeded contexts, aggregated.

    The study's :class:`~repro.study.spec.ContextSpec` is a template:
    per seed ``k`` its base seed is replaced by
    ``derive_seed(base_seed, "multi-seed", k)`` and a fresh context is
    built, exactly as the historical driver did.
    """
    from repro.study.drivers import DEFAULT_SWEEP_PERCENTILES

    context = _context(context)
    if context is None:
        raise ValueError(
            "multi_seed studies build their own contexts and need a "
            "ContextSpec (context=None is not supported)")
    if percentiles is None:
        percentiles = DEFAULT_SWEEP_PERCENTILES
    grid_ = ScenarioGrid(
        percentiles=_axis(percentiles), fractions=(poison_fraction,),
        n_repeats=n_repeats)
    solver = (("base_seed", int(base_seed)), ("n_seeds", int(n_seeds)))
    return StudySpec(kind="multi_seed", context=context, grid=grid_,
                     solver=solver, engine=_engine(engine))


def grid(
    *,
    context="spambase",
    defenses,
    attacks,
    victims=(None,),
    fractions=(0.2,),
    n_repeats: int = 1,
    engine=None,
) -> StudySpec:
    """The raw scenario product ``defenses x attacks x victims x
    fractions`` — every cell measured, nothing solved."""
    defenses = _axis(defenses)
    attacks = _axis(attacks)
    if not defenses or not attacks:
        raise ValueError("defenses and attacks must be non-empty")
    grid_ = ScenarioGrid(
        defenses=defenses, attacks=attacks,
        victims=_axis(victims) or (None,),
        fractions=_axis(fractions), n_repeats=n_repeats)
    return StudySpec(kind="grid", context=_context(context), grid=grid_,
                     engine=_engine(engine))


BUILDERS = {
    "figure1": figure1,
    "mixed_eval": mixed_eval,
    "table1": table1,
    "empirical_game": empirical_game,
    "cross_game": cross_game,
    "multi_seed": multi_seed,
    "grid": grid,
}


def build(name: str, **kwargs) -> StudySpec:
    """Build a named study (``"figure1"``, ``"cross-game"``, ...).

    Dashes normalise to underscores so CLI spellings work unchanged.
    """
    key = str(name).replace("-", "_")
    try:
        builder = BUILDERS[key]
    except KeyError:
        raise ValueError(
            f"unknown study {name!r}; known studies: "
            f"{sorted(BUILDERS)}") from None
    return builder(**kwargs)
