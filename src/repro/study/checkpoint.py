"""Study checkpoints: crash-surviving progress beside the archive.

A long study that dies at round 4 990 of 5 000 used to restart from
whatever the engine's disk cache happened to hold — nothing, for the
default in-memory cache.  :class:`StudyCheckpointer` gives
:func:`~repro.study.run_study` a durable middle ground: as scenario
outcomes land, completed rows (the exact records the final archive's
``scenarios`` section would hold) are flushed to an atomic
``checkpoint-<study fingerprint>.json`` next to the archive.  On
``run_study(..., resume=True)`` the rows are injected back into the
engine's cache under their original keys — the same ``warm_cache``
machinery study archives use — so every already-completed round is a
cache hit and zero rounds are recomputed.  The checkpoint is deleted
once the real archive lands (the archive subsumes it).

Checkpoints are an *optimisation*, never an authority: a missing,
corrupt or schema-mismatched checkpoint degrades to recomputing (with
a warning), because the determinism contract makes recomputation
bit-identical — only slower.
"""

from __future__ import annotations

import json
import os
import warnings

from repro.utils.serialization import atomic_write_text

__all__ = ["StudyCheckpointer", "checkpoint_path", "load_checkpoint"]

CHECKPOINT_SCHEMA_VERSION = 1


def checkpoint_path(archive_dir: str, fingerprint: str) -> str:
    """The checkpoint filename for a study fingerprint."""
    return os.path.join(archive_dir, f"checkpoint-{fingerprint}.json")


class StudyCheckpointer:
    """Accumulates scenario rows and flushes them atomically.

    ``every`` is the flush cadence in *new rows* (1 = flush on every
    completed scenario; larger values amortise the write).  ``note``
    deduplicates by cache key, so re-noting a resumed round (which the
    recorder sees again, as a cache hit) costs nothing.  Seed a resumed
    checkpointer with the loaded rows (``seed``) so a second crash
    never regresses the checkpoint below the first one's progress.
    """

    def __init__(self, archive_dir: str, fingerprint: str, *,
                 every: int = 16):
        self.path = checkpoint_path(archive_dir, fingerprint)
        self.fingerprint = fingerprint
        self.every = max(1, int(every))
        self.rows: list[dict] = []
        self._keys: set[str] = set()
        self._unflushed = 0

    def seed(self, rows) -> None:
        """Adopt already-checkpointed rows without re-flushing them."""
        for row in rows:
            if row["key"] not in self._keys:
                self._keys.add(row["key"])
                self.rows.append(row)

    def note(self, row: dict) -> None:
        """Record one completed scenario row; flush on cadence."""
        if row["key"] in self._keys:
            return
        self._keys.add(row["key"])
        self.rows.append(row)
        self._unflushed += 1
        if self._unflushed >= self.every:
            self.flush()

    @property
    def unflushed(self) -> int:
        """Rows noted since the last flush (0 = the file is current)."""
        return self._unflushed

    def flush(self) -> None:
        """Write the checkpoint now (atomic; safe against any crash)."""
        from repro.engine.cache import cache_schema_version

        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        doc = {
            "type": "StudyCheckpoint",
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "study_fingerprint": self.fingerprint,
            "cache_schema_version": cache_schema_version(),
            "scenarios": self.rows,
        }
        atomic_write_text(self.path, json.dumps(doc))
        self._unflushed = 0

    def discard(self) -> None:
        """Delete the checkpoint (the final archive subsumes it)."""
        try:
            os.unlink(self.path)
        except OSError:
            pass


def load_checkpoint(archive_dir: str, fingerprint: str) -> list[dict]:
    """The checkpointed scenario rows for a study, or ``[]``.

    Tolerant by design (see module docs): anything unusable — absent
    file, undecodable JSON, wrong study, a cache schema that no longer
    names the same rounds — yields ``[]``, with a warning for every
    case except plain absence.
    """
    path = checkpoint_path(archive_dir, fingerprint)
    if not os.path.exists(path):
        return []
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        warnings.warn(f"ignoring unreadable study checkpoint {path}: "
                      f"{exc}", stacklevel=2)
        return []
    from repro.engine.cache import cache_schema_version

    if doc.get("type") != "StudyCheckpoint" or \
            doc.get("study_fingerprint") != fingerprint:
        warnings.warn(f"ignoring study checkpoint {path}: it does not "
                      f"belong to study {fingerprint[:12]}…", stacklevel=2)
        return []
    if doc.get("cache_schema_version") != cache_schema_version():
        warnings.warn(
            f"ignoring study checkpoint {path}: its scenario keys use "
            f"cache schema v{doc.get('cache_schema_version')}, this "
            f"build uses v{cache_schema_version()}", stacklevel=2)
        return []
    rows = doc.get("scenarios", [])
    return rows if isinstance(rows, list) else []
