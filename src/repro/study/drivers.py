"""Execution layer behind :func:`repro.study.run_study`.

The implementations of the repository's experiments live here: the
Figure-1 sweep, the mixed-defence evaluation, Table 1, the empirical
and cross-family games, multi-seed aggregation and the raw scenario
grid.  They are the former driver bodies of
:mod:`repro.experiments.payoff_sweep`, :mod:`~repro.experiments.
empirical_game` and :mod:`~repro.experiments.multi_seed`, moved intact
— the legacy functions remain as deprecation shims delegating here, so
results (and the engine cache keys behind them) are bit-identical to
every release since PR 0.

Each experiment's round construction is factored into a ``*_rounds``
helper that returns the exact :class:`~repro.engine.RoundSpec` batch
the implementation submits.  ``repro.study.runner.describe_study``
expands the same helpers, which is what makes its dry-run round and
cache-hit counts *exact* rather than estimates.
"""

from __future__ import annotations

import time

import numpy as np

from repro.attacks.base import attack_budget
from repro.core.algorithm1 import compute_optimal_defense
from repro.core.game import PayoffCurves
from repro.core.mixed_strategy import MixedDefense
from repro.core.payoff_estimation import estimate_payoff_curves
from repro.engine import (AttackSpec, DefenseSpec, EvaluationEngine,
                          RoundSpec, VictimSpec, resolve_engine)
from repro.gametheory.lp_solver import solve_zero_sum_lp
from repro.gametheory.matrix_game import MatrixGame
from repro.utils.rng import derive_seed
from repro.utils.validation import check_fraction, check_positive_int

__all__ = [
    "DEFAULT_SWEEP_PERCENTILES",
    "DEFAULT_GAME_PERCENTILES",
    "grid_defense",
    "sweep_rounds",
    "support_rounds",
    "cross_rounds",
    "grid_rounds",
    "pure_strategy_sweep",
    "support_accuracy_matrix",
    "mixed_defense_evaluation",
    "table1_rows",
    "empirical_game_matrix",
    "empirical_game_solve",
    "cross_game_matrix",
    "cross_game_solve",
    "multi_seed_sweep",
    "grid_study",
]

# The historical default grids (PR 0): the Figure-1 percentile axis and
# the empirical game's support.
DEFAULT_SWEEP_PERCENTILES = (0.0, 0.01, 0.02, 0.03, 0.05, 0.075, 0.10,
                             0.15, 0.20, 0.25, 0.30, 0.40, 0.50)
DEFAULT_GAME_PERCENTILES = (0.0, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30)


def grid_defense(kind: str, percentile: float, params) -> DefenseSpec | None:
    """The defence spec for one grid point of a sweep axis.

    ``kind="radius"`` with no params reproduces the historical
    behaviour exactly (percentile 0 and None are the same (no) filter,
    so both share cache entries — RoundSpec normalises that); other
    kinds reinterpret the grid as that family's strength axis.
    """
    if kind == "radius" and not params and percentile <= 0.0:
        return None
    return DefenseSpec(kind, float(percentile), params)


# -- round expansion ---------------------------------------------------------
# These functions define, exactly, which rounds each experiment runs.
# The implementations below submit them; describe_study enumerates them.


def sweep_rounds(base_seed: int, percentiles, poison_fraction: float,
                 n_repeats: int, victim: VictimSpec | None,
                 defense_kind: str = "radius",
                 defense_params=()) -> list[RoundSpec]:
    """The Figure-1 batch: per percentile and repeat, a clean round and
    an attacked round sharing a seed (layout ``(percentile, repeat,
    [clean, attacked])``)."""
    specs = []
    for i, p in enumerate(percentiles):
        for rep in range(n_repeats):
            seed = derive_seed(base_seed, "sweep", i, rep)
            defense = grid_defense(defense_kind, float(p), defense_params)
            specs.append(RoundSpec(
                defense=defense, attack=None,
                poison_fraction=poison_fraction, seed=seed, victim=victim,
            ))
            specs.append(RoundSpec(
                defense=defense,
                attack=AttackSpec("boundary", float(p)),
                poison_fraction=poison_fraction, seed=seed, victim=victim,
            ))
    return specs


def support_rounds(base_seed: int, support, poison_fraction: float,
                   n_repeats: int, seed_label: str,
                   victim: VictimSpec | None,
                   defense_kind: str = "radius",
                   defense_params=()) -> list[RoundSpec]:
    """The support x support batch behind the mixed evaluation and the
    empirical game (layout ``(attack j, filter i, repeat)``)."""
    support = np.asarray(support, dtype=float)
    return [
        RoundSpec(
            defense=grid_defense(defense_kind, float(p_filter), defense_params),
            attack=AttackSpec("boundary", float(p_attack)),
            poison_fraction=poison_fraction,
            seed=derive_seed(base_seed, seed_label, i, j, rep),
            victim=victim,
        )
        for j, p_attack in enumerate(support)
        for i, p_filter in enumerate(support)
        for rep in range(n_repeats)
    ]


def cross_rounds(base_seed: int, defenses, attacks, poison_fraction: float,
                 n_repeats: int,
                 victim: VictimSpec | None) -> list[RoundSpec]:
    """The cross-family game batch (layout ``(defense i, attack j, rep)``)."""
    return [
        RoundSpec(
            defense=d, attack=a, poison_fraction=poison_fraction,
            seed=derive_seed(base_seed, "cross-game", i, j, rep),
            victim=victim,
        )
        for i, d in enumerate(defenses)
        for j, a in enumerate(attacks)
        for rep in range(n_repeats)
    ]


def grid_rounds(base_seed: int, defenses, attacks, victims, fractions,
                n_repeats: int) -> list[RoundSpec]:
    """The raw scenario-grid batch: the full product ``defenses x
    attacks x victims x fractions x repeats``.

    Seeds derive from the cell's (defence, attack, victim, repeat)
    coordinates but *not* the fraction index, mirroring the sweeps: the
    same placement seed is reused across contamination rates, so clean
    baselines (whose rounds never consult the rate) collapse to one
    cache entry per seed.
    """
    return [
        RoundSpec(
            defense=d, attack=a, victim=v, poison_fraction=float(f),
            seed=derive_seed(base_seed, "grid", i, j, k, rep),
        )
        for i, d in enumerate(defenses)
        for j, a in enumerate(attacks)
        for k, v in enumerate(victims)
        for f in fractions
        for rep in range(n_repeats)
    ]


# -- the Figure-1 sweep and Table 1 -----------------------------------------


def pure_strategy_sweep(
    ctx,
    *,
    percentiles=None,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    engine: EvaluationEngine | None = None,
    victim: VictimSpec | None = None,
    defense_kind: str = "radius",
    defense_params=(),
    progress=None,
):
    """Figure 1: accuracy vs filter strength, clean and under optimal attack.

    The optimal pure attack against a *known* filter at percentile
    ``p`` places every point just inside that radius
    (``OptimalBoundaryAttack(target_percentile=p)``), the paper's
    "place the poisoning points close to the boundary of the filter".

    One engine batch covers the whole grid: per percentile and repeat,
    a clean round and an attacked round sharing a seed.  Clean rounds
    never consult the contamination rate, so their cache entries are
    shared by sweeps at any ``poison_fraction``.
    """
    from repro.experiments.results import PureSweepResult

    check_fraction(poison_fraction, name="poison_fraction", inclusive_high=False)
    check_positive_int(n_repeats, name="n_repeats")
    if percentiles is None:
        percentiles = np.array(DEFAULT_SWEEP_PERCENTILES)
    percentiles = np.asarray(percentiles, dtype=float)
    engine = resolve_engine(engine)

    specs = sweep_rounds(ctx.seed, percentiles, poison_fraction, n_repeats,
                         victim, defense_kind, defense_params)
    outcomes = engine.evaluate_batch(ctx, specs, progress=progress)

    # Batch layout: (percentile, repeat, [clean, attacked]).
    accuracies = np.array([o.accuracy for o in outcomes], dtype=float)
    accuracies = accuracies.reshape(percentiles.size, n_repeats, 2)
    acc_clean = accuracies[:, :, 0].mean(axis=1)
    acc_attacked = accuracies[:, :, 1].mean(axis=1)

    return PureSweepResult(
        percentiles=percentiles.tolist(),
        acc_clean=acc_clean.tolist(),
        acc_attacked=acc_attacked.tolist(),
        n_poison=attack_budget(ctx.n_train, poison_fraction),
        poison_fraction=poison_fraction,
        dataset_name=ctx.dataset_name,
        n_repeats=n_repeats,
    )


def support_accuracy_matrix(
    ctx,
    support,
    *,
    poison_fraction: float,
    n_repeats: int,
    seed_label: str,
    engine: EvaluationEngine,
    victim: VictimSpec | None = None,
    defense_kind: str = "radius",
    defense_params=(),
    progress=None,
) -> np.ndarray:
    """Measured accuracy matrix ``A[filter i, attack j]`` over a support.

    The shared core of :func:`mixed_defense_evaluation` and the
    empirical game: for every (attack percentile ``p_j``, filter
    percentile ``p_i``, repeat) cell, one boundary-attack round seeded
    ``derive_seed(ctx.seed, seed_label, i, j, rep)``, run as a single
    engine batch and averaged over repeats.
    """
    support = np.asarray(support, dtype=float)
    k = support.size
    specs = support_rounds(ctx.seed, support, poison_fraction, n_repeats,
                           seed_label, victim, defense_kind, defense_params)
    outcomes = engine.evaluate_batch(ctx, specs, progress=progress)
    accuracies = np.array([o.accuracy for o in outcomes], dtype=float)
    # Batch layout (attack j, filter i, repeat) -> matrix[i, j].
    return accuracies.reshape(k, k, n_repeats).mean(axis=2).T


def mixed_defense_evaluation(
    ctx,
    defense: MixedDefense,
    *,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    engine: EvaluationEngine | None = None,
    victim: VictimSpec | None = None,
    progress=None,
) -> tuple[float, float, np.ndarray]:
    """Expected accuracy of a mixed defence under the optimal mixed attack.

    At the equalized defence the attacker is indifferent over
    placements on the support, so the optimal attack is any mixture of
    them (Section 4.2).  We tabulate the full support x support
    accuracy matrix ``A[i, j]`` (defender draws ``p_i``, attacker
    places at ``p_j``), weight rows by the defender's probabilities,
    and take the **attacker's best column** — the worst case for the
    defender, which upper-bounds what any equilibrium attack mixture
    could do.

    Returns ``(expected_accuracy, dispersion, matrix)`` where the
    dispersion is the probability-weighted std of the defender's
    row-accuracies at the attacker's chosen column.
    """
    support = defense.percentiles
    probs = defense.probabilities
    matrix = support_accuracy_matrix(
        ctx, support, poison_fraction=poison_fraction, n_repeats=n_repeats,
        seed_label="mixed", engine=resolve_engine(engine), victim=victim,
        progress=progress,
    )

    expected_by_attack = probs @ matrix  # one value per attacker column
    worst_j = int(np.argmin(expected_by_attack))
    expected_accuracy = float(expected_by_attack[worst_j])
    deviations = matrix[:, worst_j] - expected_accuracy
    dispersion = float(np.sqrt(probs @ deviations**2))
    return expected_accuracy, dispersion, matrix


def table1_rows(
    ctx,
    sweep,
    *,
    n_radii_values=(2, 3),
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    curves: PayoffCurves | None = None,
    algorithm_kwargs: dict | None = None,
    engine: EvaluationEngine | None = None,
    victim: VictimSpec | None = None,
    progress=None,
) -> list:
    """Table 1: Algorithm 1's mixed defence for each support size.

    ``curves`` may be supplied to reuse a fit; otherwise they are
    estimated from ``sweep`` exactly as the paper does.  ``engine``
    is threaded into every mixed-defence evaluation, so an equal-seed
    rerun of the whole experiment is served from the engine's cache.
    """
    from repro.experiments.results import MixedStrategyResult

    engine = resolve_engine(engine)
    if curves is None:
        curves = estimate_payoff_curves(
            sweep.percentiles, sweep.acc_clean, sweep.acc_attacked, sweep.n_poison
        )
    best_p, best_acc = sweep.best_pure
    results = []
    for n_radii in n_radii_values:
        start = time.perf_counter()
        opt = compute_optimal_defense(
            curves, n_radii, sweep.n_poison, **(algorithm_kwargs or {})
        )
        elapsed = time.perf_counter() - start
        accuracy, dispersion, matrix = mixed_defense_evaluation(
            ctx, opt.defense, poison_fraction=poison_fraction,
            n_repeats=n_repeats, engine=engine, victim=victim,
            progress=progress,
        )
        results.append(
            MixedStrategyResult(
                n_radii=int(n_radii),
                percentiles=opt.defense.percentiles.tolist(),
                probabilities=opt.defense.probabilities.tolist(),
                accuracy=accuracy,
                accuracy_std=dispersion,
                expected_loss=opt.expected_loss,
                best_pure_accuracy=best_acc,
                best_pure_percentile=best_p,
                accuracy_matrix=matrix.tolist(),
                algorithm_iterations=opt.n_iterations,
                wall_time_seconds=elapsed,
            )
        )
    return results


# -- the empirical and cross-family games -----------------------------------


def empirical_game_matrix(
    ctx,
    percentiles,
    *,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    engine: EvaluationEngine | None = None,
    victim: VictimSpec | None = None,
    defense_kind: str = "radius",
    defense_params=(),
    progress=None,
) -> np.ndarray:
    """Measure the accuracy matrix ``A[filter, attack]`` on a grid."""
    check_fraction(poison_fraction, name="poison_fraction", inclusive_high=False)
    check_positive_int(n_repeats, name="n_repeats")
    return support_accuracy_matrix(
        ctx, percentiles, poison_fraction=poison_fraction, n_repeats=n_repeats,
        seed_label="empirical", engine=resolve_engine(engine), victim=victim,
        defense_kind=defense_kind, defense_params=defense_params,
        progress=progress,
    )


def empirical_game_solve(
    ctx,
    *,
    percentiles=None,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    accuracy_matrix: np.ndarray | None = None,
    engine: EvaluationEngine | None = None,
    victim: VictimSpec | None = None,
    defense_kind: str = "radius",
    defense_params=(),
    progress=None,
):
    """Measure (or accept) the accuracy matrix and solve it exactly."""
    from repro.experiments.empirical_game import EmpiricalGameResult

    if percentiles is None:
        percentiles = np.array(DEFAULT_GAME_PERCENTILES)
    percentiles = np.asarray(percentiles, dtype=float)
    if accuracy_matrix is None:
        accuracy_matrix = empirical_game_matrix(
            ctx, percentiles, poison_fraction=poison_fraction,
            n_repeats=n_repeats, engine=engine, victim=victim,
            defense_kind=defense_kind, defense_params=defense_params,
            progress=progress,
        )
    accuracy_matrix = np.asarray(accuracy_matrix, dtype=float)
    if accuracy_matrix.shape != (percentiles.size, percentiles.size):
        raise ValueError(
            f"accuracy matrix shape {accuracy_matrix.shape} does not match "
            f"{percentiles.size} percentiles"
        )

    # Attacker = maximising row player on damage = 1 - accuracy, so the
    # defender (columns) minimises damage i.e. maximises accuracy.
    damage = 1.0 - accuracy_matrix.T  # rows: attacker, cols: defender
    game = MatrixGame(damage, row_labels=percentiles.tolist(),
                      col_labels=percentiles.tolist())
    solution = solve_zero_sum_lp(game)

    # Best pure defence: the filter with the highest worst-case accuracy.
    worst_case_acc = accuracy_matrix.min(axis=1)
    best_i = int(np.argmax(worst_case_acc))
    value_acc = 1.0 - solution.value

    return EmpiricalGameResult(
        percentiles=percentiles.tolist(),
        accuracy_matrix=accuracy_matrix.tolist(),
        defender_mix=solution.col_strategy.tolist(),
        attacker_mix=solution.row_strategy.tolist(),
        game_value_accuracy=float(value_acc),
        best_pure_accuracy=float(worst_case_acc[best_i]),
        best_pure_percentile=float(percentiles[best_i]),
        mixed_advantage=float(value_acc - worst_case_acc[best_i]),
        has_saddle_point=game.has_pure_equilibrium(),
        n_repeats=n_repeats,
        defender_support=[
            (float(p), float(q))
            for p, q in zip(percentiles, solution.col_strategy)
            if q > 0.01
        ],
    )


def cross_game_matrix(
    ctx,
    defenses,
    attacks,
    *,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    victim: VictimSpec | None = None,
    engine: EvaluationEngine | None = None,
    progress=None,
) -> np.ndarray:
    """Measure ``A[defense i, attack j]`` over arbitrary spec lists."""
    check_fraction(poison_fraction, name="poison_fraction", inclusive_high=False)
    check_positive_int(n_repeats, name="n_repeats")
    defenses = list(defenses)
    attacks = list(attacks)
    if not defenses or not attacks:
        raise ValueError("defenses and attacks must be non-empty")
    for d in defenses:
        if d is not None and not isinstance(d, DefenseSpec):
            raise TypeError(f"expected DefenseSpec or None, got {d!r}")
    for a in attacks:
        if a is not None and not isinstance(a, AttackSpec):
            raise TypeError(f"expected AttackSpec or None, got {a!r}")
    engine = resolve_engine(engine)
    specs = cross_rounds(ctx.seed, defenses, attacks, poison_fraction,
                         n_repeats, victim)
    outcomes = engine.evaluate_batch(ctx, specs, progress=progress)
    accuracies = np.array([o.accuracy for o in outcomes], dtype=float)
    return accuracies.reshape(len(defenses), len(attacks), n_repeats).mean(axis=2)


def cross_game_solve(
    ctx,
    defenses,
    attacks,
    *,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    victim: VictimSpec | None = None,
    accuracy_matrix: np.ndarray | None = None,
    engine: EvaluationEngine | None = None,
    progress=None,
):
    """Measure (or accept) a cross-family accuracy matrix and solve it."""
    from repro.experiments.empirical_game import CrossGameResult

    defenses = list(defenses)
    attacks = list(attacks)
    if accuracy_matrix is None:
        accuracy_matrix = cross_game_matrix(
            ctx, defenses, attacks, poison_fraction=poison_fraction,
            n_repeats=n_repeats, victim=victim, engine=engine,
            progress=progress,
        )
    accuracy_matrix = np.asarray(accuracy_matrix, dtype=float)
    if accuracy_matrix.shape != (len(defenses), len(attacks)):
        raise ValueError(
            f"accuracy matrix shape {accuracy_matrix.shape} does not match "
            f"{len(defenses)} defenses x {len(attacks)} attacks"
        )
    defense_labels = ["none" if d is None else d.describe() for d in defenses]
    attack_labels = ["clean" if a is None else a.describe() for a in attacks]

    # Attacker = maximising row player on damage = 1 - accuracy.
    damage = 1.0 - accuracy_matrix.T
    game = MatrixGame(damage, row_labels=attack_labels,
                      col_labels=defense_labels)
    solution = solve_zero_sum_lp(game)

    worst_case_acc = accuracy_matrix.min(axis=1)
    best_i = int(np.argmax(worst_case_acc))
    value_acc = 1.0 - solution.value

    return CrossGameResult(
        defense_labels=defense_labels,
        attack_labels=attack_labels,
        accuracy_matrix=accuracy_matrix.tolist(),
        defender_mix=solution.col_strategy.tolist(),
        attacker_mix=solution.row_strategy.tolist(),
        game_value_accuracy=float(value_acc),
        best_pure_accuracy=float(worst_case_acc[best_i]),
        best_pure_defense=defense_labels[best_i],
        mixed_advantage=float(value_acc - worst_case_acc[best_i]),
        has_saddle_point=game.has_pure_equilibrium(),
        victim=None if victim is None else victim.describe(),
        n_repeats=n_repeats,
    )


# -- multi-seed aggregation --------------------------------------------------


def multi_seed_sweep(
    *,
    n_seeds: int = 5,
    base_seed: int = 0,
    context_factory=None,
    percentiles=None,
    poison_fraction: float = 0.2,
    n_repeats: int = 1,
    engine: EvaluationEngine | None = None,
    progress=None,
):
    """Run the Figure-1 sweep across ``n_seeds`` independent contexts.

    Each seed gets a fresh context (fresh surrogate draw, fresh split)
    so the aggregation covers *all* sources of variation, not just SGD
    noise.  All per-seed sweeps share ``engine`` — distinct contexts
    never collide in its cache (keys carry the context fingerprint),
    but each sweep still gains the backend's parallelism and a full
    rerun of the aggregation is served from cache.
    """
    from repro.experiments.multi_seed import AggregatedSweep
    from repro.experiments.runner import make_spambase_context

    check_positive_int(n_seeds, name="n_seeds")
    engine = resolve_engine(engine)
    if context_factory is None:
        context_factory = lambda seed: make_spambase_context(seed=seed)

    sweeps = []
    for k in range(n_seeds):
        ctx = context_factory(derive_seed(base_seed, "multi-seed", k))
        sweeps.append(pure_strategy_sweep(
            ctx, percentiles=percentiles, poison_fraction=poison_fraction,
            n_repeats=n_repeats, engine=engine, progress=progress,
        ))

    ref = np.asarray(sweeps[0].percentiles, dtype=float)
    for s in sweeps[1:]:
        if not np.allclose(np.asarray(s.percentiles), ref):
            raise RuntimeError("sweeps disagree on the percentile grid")
    clean = np.vstack([s.acc_clean for s in sweeps])
    attacked = np.vstack([s.acc_attacked for s in sweeps])
    return AggregatedSweep(
        percentiles=ref,
        acc_clean_mean=clean.mean(axis=0),
        acc_clean_std=clean.std(axis=0),
        acc_attacked_mean=attacked.mean(axis=0),
        acc_attacked_std=attacked.std(axis=0),
        n_seeds=n_seeds,
        per_seed=sweeps,
    )


# -- the raw scenario grid ---------------------------------------------------


def grid_study(
    ctx,
    defenses,
    attacks,
    victims=(None,),
    fractions=(0.2,),
    *,
    n_repeats: int = 1,
    engine: EvaluationEngine | None = None,
    progress=None,
):
    """Measure the full ``defenses x attacks x victims x fractions`` grid.

    The product generalisation of the games: no solving, just the
    measured accuracy tensor over arbitrary spec axes — the shape any
    downstream analysis (games, regressions, dashboards) can consume.
    """
    from repro.experiments.results import GridResult

    defenses = list(defenses)
    attacks = list(attacks)
    victims = list(victims) or [None]
    fractions = [check_fraction(float(f), name="poison fraction",
                                inclusive_high=False) for f in fractions]
    if not defenses or not attacks or not fractions:
        raise ValueError("defenses, attacks and fractions must be non-empty")
    check_positive_int(n_repeats, name="n_repeats")
    engine = resolve_engine(engine)
    specs = grid_rounds(ctx.seed, defenses, attacks, victims, fractions,
                        n_repeats)
    outcomes = engine.evaluate_batch(ctx, specs, progress=progress)
    accuracies = np.array([o.accuracy for o in outcomes], dtype=float)
    tensor = accuracies.reshape(len(defenses), len(attacks), len(victims),
                                len(fractions), n_repeats).mean(axis=4)
    return GridResult(
        defense_labels=["none" if d is None else d.describe()
                        for d in defenses],
        attack_labels=["clean" if a is None else a.describe()
                       for a in attacks],
        victim_labels=["context" if v is None else v.describe()
                       for v in victims],
        fractions=[float(f) for f in fractions],
        accuracy=tensor.tolist(),
        n_repeats=int(n_repeats),
        dataset_name=ctx.dataset_name,
    )
