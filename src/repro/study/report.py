"""Rendering for study artifacts: results and dry-run descriptions.

``render_study_report`` dispatches on the study kind to the same ASCII
formatters the CLI's live commands print, so ``repro report
result.json`` on an archived artifact reproduces the original run's
report exactly — plus a provenance footer (fingerprint, backend,
round/cache counts, wall time).
"""

from __future__ import annotations

__all__ = ["render_study_report", "format_study_description"]


def _render_payload(result) -> str:
    from repro.experiments.reporting import (ascii_table,
                                             format_aggregated_sweep,
                                             format_cross_game,
                                             format_empirical_game,
                                             format_grid_result,
                                             format_mixed_eval,
                                             format_pure_sweep,
                                             format_table1)

    obj = result.payload_object()
    if result.kind == "figure1":
        sweeps = obj if isinstance(obj, list) else [obj]
        return "\n\n".join(format_pure_sweep(s) for s in sweeps)
    if result.kind == "mixed_eval":
        return format_mixed_eval(obj)
    if result.kind == "table1":
        return format_table1(obj["rows"])
    if result.kind == "empirical_game":
        return format_empirical_game(obj)
    if result.kind == "cross_game":
        return format_cross_game(obj)
    if result.kind == "multi_seed":
        return format_aggregated_sweep(obj)
    if result.kind == "grid":
        return format_grid_result(obj)
    # Unknown kind (newer build's artifact with a compatible schema):
    # still show something useful.
    return ascii_table(["field", "value"],
                       [("kind", result.kind),
                        ("payload type", result.payload.get("type", "?"))],
                       title="Study result")


def _footer(result) -> str:
    from repro.experiments.reporting import ascii_table

    batches = result.engine_stats.get("batches", [])
    rows = [
        ("study", result.kind),
        ("fingerprint", result.study_fingerprint[:16] + "…"),
        ("backend", result.engine_stats.get("backend", "?")),
        ("rounds (specs)", str(result.n_rounds)),
        ("unique rounds", str(result.n_unique)),
        ("cache hits", str(result.cache_hits)),
        ("rounds computed", str(result.rounds_computed)),
        ("batches", str(len(batches))),
        ("wall time", f"{result.wall_time_seconds:.3f}s"),
        ("cache schema", f"v{result.cache_schema_version}"),
        ("created", result.created_at or "?"),
    ]
    return ascii_table(["study run", "value"], rows, title="Provenance")


def render_study_report(result) -> str:
    """The full ASCII report of a :class:`~repro.study.result.StudyResult`."""
    return f"{_render_payload(result)}\n\n{_footer(result)}"


def format_study_description(desc) -> str:
    """A :class:`~repro.study.runner.StudyDescription` as the expanded
    grid, the per-phase round table and the dry-run totals."""
    from repro.experiments.reporting import ascii_table

    def opt(value):
        return "?" if value is None else str(value)

    lines = [f"study: {desc.kind}"]
    if desc.fingerprint:
        lines.append(f"fingerprint: {desc.fingerprint}")
    lines.extend(desc.grid_lines)
    phase_rows = [
        (p.label, str(p.n_rounds), opt(p.n_unique),
         opt(p.predicted_cache_hits))
        for p in desc.phases
    ]
    lines.append("")
    lines.append(ascii_table(
        ["phase", "rounds", "unique", "predicted hits"], phase_rows,
        title="Dry run — nothing was executed"))
    totals = (f"total rounds: {desc.n_rounds}   "
              f"unique: {opt(desc.n_unique)}   "
              f"predicted cache hits: {opt(desc.predicted_cache_hits)}")
    lines.append(totals)
    if not desc.exact:
        lines.append("(phases marked ? are chosen by the solver at run "
                     "time; their round counts are exact, their keys are "
                     "not enumerable up front)")
    return "\n".join(lines)
