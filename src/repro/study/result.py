"""The :class:`StudyResult` — one uniform, archivable experiment artifact.

Whatever the study kind, :func:`repro.study.run_study` returns the same
record: the spec document it ran, provenance stamps (study fingerprint,
context fingerprint(s), engine cache schema version, backend and batch
telemetry), every scenario's outcome under its engine cache key, and
the solved payload (the historical result dataclass, embedded through
:func:`repro.experiments.results.result_to_payload`).

Three properties the stamps buy:

* **reporting from the archive** — ``repro report result.json``
  renders exactly what the live run printed, years later, with no
  context load;
* **resume** — :meth:`StudyResult.warm_cache` re-injects every
  scenario outcome into an engine cache under its original key, so
  re-running the same study executes zero rounds even on a machine
  that never saw the original disk cache;
* **addressability** — the artifact's filename under
  ``run_study(..., archive_dir=...)`` is its study fingerprint, which
  is what makes "skip if already done" a file-existence check.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field

__all__ = ["StudyResult", "study_result_from_json"]

RESULT_SCHEMA_VERSION = 1


@dataclass
class StudyResult:
    """Outcome of one :func:`~repro.study.run_study` call.

    Attributes
    ----------
    kind:
        The study kind that produced this result.
    study:
        The canonical spec document (``StudySpec.to_obj()`` form).
    study_fingerprint:
        Content hash addressing the study (archive filename).
    context_fingerprints:
        Content hash of every context the study's rounds ran in
        (one for single-context kinds; ``n_seeds`` for multi-seed).
    cache_schema_version:
        The engine round-identity schema the scenario keys were
        computed under; a future build whose schema differs must not
        warm its cache from these records.
    engine_stats:
        Backend name plus the engine's per-batch telemetry for this
        run only (specs/unique/computed/cache-hits/wall time).
    scenarios:
        One record per distinct round: its cache key, context
        fingerprint, declarative coordinates (defense/attack/victim/
        fraction/seed) and full outcome dict.
    payload:
        The solved result in ``{"type": ..., "data": ...}`` form
        (kind-specific; see :meth:`payload_object`).
    """

    kind: str
    study: dict
    study_fingerprint: str
    context_fingerprints: list
    cache_schema_version: int
    engine_stats: dict
    scenarios: list
    payload: dict
    n_rounds: int = 0
    n_unique: int = 0
    cache_hits: int = 0
    rounds_computed: int = 0
    wall_time_seconds: float = 0.0
    created_at: str = ""
    schema_version: int = RESULT_SCHEMA_VERSION
    extras: dict = field(default_factory=dict)

    # -- payload ----------------------------------------------------------

    def payload_object(self):
        """The payload as live result objects.

        * ``figure1`` — a :class:`PureSweepResult` (or a list of them,
          one per contamination rate, when the study swept several);
        * ``table1`` — ``{"sweep": PureSweepResult, "rows":
          [MixedStrategyResult, ...]}``;
        * every other kind — its single result dataclass.
        """
        from repro.experiments.results import result_from_payload

        if self.payload.get("type") == "Figure1Study":
            sweeps = [result_from_payload(p)
                      for p in self.payload["sweeps"]]
            return sweeps if len(sweeps) != 1 else sweeps[0]
        if self.payload.get("type") == "Table1Study":
            return {
                "sweep": result_from_payload(self.payload["sweep"]),
                "rows": [result_from_payload(p)
                         for p in self.payload["rows"]],
            }
        return result_from_payload(self.payload)

    # -- resume -----------------------------------------------------------

    def warm_cache(self, cache) -> int:
        """Re-inject every scenario outcome into ``cache`` by key.

        ``cache`` is a :class:`~repro.engine.ResultCache` or an
        :class:`~repro.engine.EvaluationEngine` (its cache is used).
        Returns the number of entries injected.  Refuses to warm a
        cache whose round-identity schema differs from the one the keys
        were computed under — the keys would name different rounds.
        """
        from repro.engine.cache import cache_schema_version, outcome_from_dict

        if self.cache_schema_version != cache_schema_version():
            raise ValueError(
                f"this result's scenario keys use cache schema "
                f"v{self.cache_schema_version}, but this build uses "
                f"v{cache_schema_version()}; they do not name the same "
                f"rounds")
        if hasattr(cache, "cache"):
            cache = cache.cache
        if cache is None:
            raise ValueError("cannot warm a disabled cache")
        for record in self.scenarios:
            cache.put(record["key"], outcome_from_dict(record["outcome"]))
        return len(self.scenarios)

    # -- rendering --------------------------------------------------------

    def render(self) -> str:
        """The study's full ASCII report (see :mod:`repro.study.report`)."""
        from repro.study.report import render_study_report

        return render_study_report(self)

    # -- serialisation ----------------------------------------------------

    def to_json(self, path: str | None = None) -> str:
        """Serialise to the archival JSON document.

        Writing is atomic (temp + fsync + rename): an archive is a
        study's provenance record, and a crash mid-write must leave
        either the previous archive or none — never a truncated one
        that a later ``run_study`` would trust as complete.
        """
        doc = {"type": "StudyResult", "schema": RESULT_SCHEMA_VERSION,
               "data": asdict(self)}
        text = json.dumps(doc, indent=2)
        if path is not None:
            from repro.utils.serialization import atomic_write_text

            atomic_write_text(path, text)
        return text

    @classmethod
    def from_obj(cls, doc: dict) -> "StudyResult":
        if doc.get("type") != "StudyResult":
            raise ValueError(
                f"not a StudyResult document: type={doc.get('type')!r}")
        if int(doc.get("schema", 1)) > RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"StudyResult schema v{doc['schema']} is newer than this "
                f"build's v{RESULT_SCHEMA_VERSION}")
        return cls(**doc["data"])


def study_result_from_json(text_or_path: str) -> StudyResult:
    """Load a :class:`StudyResult` from a JSON document or file path."""
    from repro.utils.serialization import read_json_document

    return StudyResult.from_obj(read_json_document(text_or_path))


def utc_timestamp() -> str:
    """Second-resolution UTC timestamp for provenance stamps."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
