"""``run_study`` and ``describe_study`` — the single experiment entry point.

:func:`run_study` takes a :class:`~repro.study.spec.StudySpec` and an
optional engine, executes the study's rounds through the ordinary
evaluation machinery (streaming included — pass ``progress=`` and the
study rides :meth:`~repro.engine.EvaluationEngine.evaluate_stream`
with per-round callbacks, on any backend including the cluster), and
returns a provenance-stamped :class:`~repro.study.result.StudyResult`.

:func:`describe_study` is the dry run: it expands the study's scenario
grid through the *same* round constructors the execution layer uses
(:mod:`repro.study.drivers`'s ``*_rounds`` helpers) and reports exact
round counts, exact unique-round counts and — given an engine to probe
— exact predicted cache hits, without executing anything.  ``table1``
is the one partially-dynamic kind: its mixed-evaluation supports come
out of Algorithm 1 at run time, so their *counts* are exact but their
keys (hence hit predictions) are not enumerable up front.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.engine.cache import cache_schema_version, round_key
from repro.resilience import env_int
from repro.study import drivers
from repro.study.checkpoint import StudyCheckpointer, load_checkpoint
from repro.study.result import StudyResult, utc_timestamp
from repro.study.spec import (StudySpec, attack_to_obj, defense_to_obj,
                              victim_to_obj)
from repro.utils.rng import derive_seed

__all__ = [
    "run_study",
    "describe_study",
    "StudyDescription",
    "PhaseDescription",
    "archive_path",
]


# -- engine recording proxy --------------------------------------------------


class _RecordingEngine:
    """An engine proxy that records every distinct round it resolves.

    Behaves exactly like the wrapped engine (attribute access
    delegates), but notes ``(cache key, context fingerprint, spec,
    outcome)`` for each first-seen round — the raw material of the
    result's ``scenarios`` section.  Recording happens on both the
    batch and the streaming path, so progress callbacks keep working.

    ``on_record`` (optional) fires once per first-seen round with the
    raw note — the hook study checkpointing hangs off.
    """

    def __init__(self, engine, on_record=None):
        self._engine = engine
        self._seen: set[str] = set()
        self._on_record = on_record
        self.records: list[dict] = []
        # Study-cumulative progress accounting: batches within one
        # study continue the count instead of restarting at zero, and
        # resumed (checkpointed) rounds land first as cache hits — so
        # a --resume restart picks up where the killed run stopped.
        self._progress_done = 0
        self._progress_total = 0

    def _note(self, fingerprint: str, spec, outcome) -> None:
        key = round_key(fingerprint, spec)
        if key in self._seen:
            return
        self._seen.add(key)
        record = {"key": key, "fingerprint": fingerprint,
                  "spec": spec, "outcome": outcome}
        self.records.append(record)
        if self._on_record is not None:
            self._on_record(record)

    def evaluate(self, ctx, spec):
        return self.evaluate_batch(ctx, [spec])[0]

    def evaluate_batch(self, ctx, specs, *, progress=None):
        specs = list(specs)
        fingerprint = ctx.fingerprint()
        if progress is not None:
            # The streaming path the engine itself takes under
            # progress=, with the note moved *inside* the loop: a round
            # is recorded (and checkpointed) the moment it lands, so a
            # run killed mid-batch keeps every completed round.
            base = self._progress_done
            self._progress_total += len(specs)
            results = [None] * len(specs)
            for index, outcome in self._engine._stream_indexed(ctx, specs):
                results[index] = outcome
                self._note(fingerprint, specs[index], outcome)
                self._progress_done += 1
                progress(self._progress_done, self._progress_total)
            self._progress_done = base + len(specs)
            return results
        outcomes = self._engine.evaluate_batch(ctx, specs)
        for spec, outcome in zip(specs, outcomes):
            self._note(fingerprint, spec, outcome)
        return outcomes

    def evaluate_stream(self, ctx, specs):
        fingerprint = ctx.fingerprint()
        for spec, outcome in self._engine.evaluate_stream(ctx, specs):
            self._note(fingerprint, spec, outcome)
            yield spec, outcome

    def __getattr__(self, name):
        return getattr(self._engine, name)


def _scenario_row(rec: dict) -> dict:
    """Serialise one recorder note into an archival scenario row."""
    from repro.engine.cache import outcome_to_dict

    spec = rec["spec"]
    return {
        "key": rec["key"],
        "context": rec["fingerprint"],
        "defense": defense_to_obj(spec.defense),
        "attack": attack_to_obj(spec.attack),
        "victim": victim_to_obj(spec.victim),
        "fraction": (float(spec.poison_fraction)
                     if spec.attack is not None else None),
        "seed": int(spec.seed),
        "outcome": outcome_to_dict(rec["outcome"]),
    }


def _scenario_records(records) -> list[dict]:
    """Serialise the recorder's raw notes into archival scenario rows."""
    return [_scenario_row(rec) for rec in records]


# -- kind dispatch -----------------------------------------------------------


def _single_victim(spec: StudySpec):
    if len(spec.grid.victims) != 1:
        raise ValueError(
            f"study kind {spec.kind!r} takes exactly one victim, got "
            f"{len(spec.grid.victims)}")
    return spec.grid.victim


def _single_fraction(spec: StudySpec) -> float:
    if len(spec.grid.fractions) != 1:
        raise ValueError(
            f"study kind {spec.kind!r} takes exactly one poison fraction, "
            f"got {len(spec.grid.fractions)}")
    return spec.grid.fraction


def _run_figure1(spec, ctx, engine, progress):
    from repro.experiments.results import result_to_payload

    g = spec.grid
    victim = _single_victim(spec)
    sweeps = [
        drivers.pure_strategy_sweep(
            ctx, percentiles=np.asarray(g.percentiles, dtype=float),
            poison_fraction=fraction, n_repeats=g.n_repeats, engine=engine,
            victim=victim, defense_kind=g.defense_kind,
            defense_params=g.defense_params, progress=progress)
        for fraction in g.fractions
    ]
    if len(sweeps) == 1:
        return result_to_payload(sweeps[0])
    return {"type": "Figure1Study",
            "sweeps": [result_to_payload(s) for s in sweeps]}


def _run_mixed_eval(spec, ctx, engine, progress):
    from repro.core.mixed_strategy import MixedDefense
    from repro.experiments.results import MixedEvalResult, result_to_payload

    g = spec.grid
    probabilities = spec.solver_param("probabilities")
    if probabilities is None:
        raise ValueError('mixed_eval studies need solver "probabilities"')
    defense = MixedDefense(np.asarray(g.percentiles, dtype=float),
                           np.asarray(probabilities, dtype=float))
    accuracy, dispersion, matrix = drivers.mixed_defense_evaluation(
        ctx, defense, poison_fraction=_single_fraction(spec),
        n_repeats=g.n_repeats, engine=engine, victim=_single_victim(spec),
        progress=progress)
    return result_to_payload(MixedEvalResult(
        percentiles=list(g.percentiles),
        probabilities=[float(q) for q in probabilities],
        expected_accuracy=accuracy,
        dispersion=dispersion,
        accuracy_matrix=matrix.tolist(),
        poison_fraction=_single_fraction(spec),
        n_repeats=g.n_repeats,
    ))


def _run_table1(spec, ctx, engine, progress):
    from repro.experiments.results import result_to_payload

    g = spec.grid
    victim = _single_victim(spec)
    fraction = _single_fraction(spec)
    sweep = drivers.pure_strategy_sweep(
        ctx, percentiles=np.asarray(g.percentiles, dtype=float),
        poison_fraction=fraction, n_repeats=g.n_repeats, engine=engine,
        victim=victim, progress=progress)
    rows = drivers.table1_rows(
        ctx, sweep, n_radii_values=spec.solver_param("n_radii", (2, 3)),
        poison_fraction=fraction, n_repeats=g.n_repeats,
        algorithm_kwargs=dict(spec.solver_param("algorithm", ())) or None,
        engine=engine, victim=victim, progress=progress)
    return {"type": "Table1Study",
            "sweep": result_to_payload(sweep),
            "rows": [result_to_payload(r) for r in rows]}


def _run_empirical_game(spec, ctx, engine, progress):
    from repro.experiments.results import result_to_payload

    g = spec.grid
    result = drivers.empirical_game_solve(
        ctx, percentiles=np.asarray(g.percentiles, dtype=float),
        poison_fraction=_single_fraction(spec), n_repeats=g.n_repeats,
        engine=engine, victim=_single_victim(spec),
        defense_kind=g.defense_kind, defense_params=g.defense_params,
        progress=progress)
    return result_to_payload(result)


def _run_cross_game(spec, ctx, engine, progress):
    from repro.experiments.results import result_to_payload

    g = spec.grid
    result = drivers.cross_game_solve(
        ctx, list(g.defenses), list(g.attacks),
        poison_fraction=_single_fraction(spec), n_repeats=g.n_repeats,
        victim=_single_victim(spec), engine=engine, progress=progress)
    return result_to_payload(result)


def _run_multi_seed(spec, ctx, engine, progress):
    from repro.experiments.results import result_to_payload

    g = spec.grid
    cspec = spec.context
    result = drivers.multi_seed_sweep(
        n_seeds=int(spec.solver_param("n_seeds", 5)),
        base_seed=int(spec.solver_param("base_seed", 0)),
        context_factory=lambda seed: cspec.materialize(seed=seed),
        percentiles=np.asarray(g.percentiles, dtype=float),
        poison_fraction=_single_fraction(spec), n_repeats=g.n_repeats,
        engine=engine, progress=progress)
    return result_to_payload(result)


def _run_grid(spec, ctx, engine, progress):
    from repro.experiments.results import result_to_payload

    g = spec.grid
    if not g.defenses or not g.attacks:
        raise ValueError("grid studies need non-empty defenses and attacks")
    result = drivers.grid_study(
        ctx, list(g.defenses), list(g.attacks), victims=list(g.victims),
        fractions=list(g.fractions), n_repeats=g.n_repeats, engine=engine,
        progress=progress)
    return result_to_payload(result)


_DISPATCH = {
    "figure1": _run_figure1,
    "mixed_eval": _run_mixed_eval,
    "table1": _run_table1,
    "empirical_game": _run_empirical_game,
    "cross_game": _run_cross_game,
    "multi_seed": _run_multi_seed,
    "grid": _run_grid,
}


# -- run ---------------------------------------------------------------------


def archive_path(archive_dir: str, fingerprint: str) -> str:
    """The canonical archive filename for a study fingerprint."""
    return os.path.join(archive_dir, f"study-{fingerprint}.json")


def _resolve_engine(engine, spec: StudySpec):
    from repro.engine import resolve_engine

    if engine is not None:
        return engine
    if spec.engine is not None:
        return spec.engine.build()
    return resolve_engine(None)


def run_study(
    spec: StudySpec,
    *,
    engine=None,
    progress=None,
    context=None,
    archive_dir: str | None = None,
    force: bool = False,
    resume: bool = False,
    checkpoint_every: int | None = None,
) -> StudyResult:
    """Execute a study and return its provenance-stamped result.

    Parameters
    ----------
    spec:
        The study to run (a :class:`~repro.study.spec.StudySpec`, e.g.
        from :mod:`repro.study.builders` or ``study_from_json``).
    engine:
        An :class:`~repro.engine.EvaluationEngine`; falls back to the
        spec's :class:`~repro.study.spec.EngineConfig`, then to the
        process-wide default.  Results are bit-identical whatever runs
        them — serial, process pool or the cluster backend.
    progress:
        Optional ``callback(done, total)``; rounds then stream through
        ``evaluate_stream`` and the callback fires per scenario as
        outcomes land (cache hits first).  Counts are cumulative
        across the study's engine batches, and a resumed run's
        checkpointed rounds land first as cache hits — so after a
        ``resume=True`` restart ``done`` immediately reflects the
        checkpointed progress instead of restarting from zero.
    context:
        A live :class:`~repro.experiments.runner.ExperimentContext`
        for specs built with ``context=None`` — required then, and
        only accepted then (a spec that names its own ContextSpec
        refuses an override).  The study fingerprint covers the live
        context's content hash.
    archive_dir:
        Directory of study archives.  When the study's fingerprint is
        already archived there the stored result is returned without
        running anything (``force=True`` re-runs and overwrites);
        otherwise the fresh result is written there on completion.
    resume:
        Load this study's checkpoint (if any) from ``archive_dir`` and
        warm the engine cache with its completed rounds before running,
        so a killed run recomputes nothing it already finished.
        Requires ``archive_dir``.
    checkpoint_every:
        Flush completed scenario rows to an atomic
        ``checkpoint-<fingerprint>.json`` beside the archive every N
        new rows (``None`` reads ``REPRO_STUDY_CHECKPOINT_EVERY``,
        default 16; ``0`` disables checkpointing).  Only active with
        ``archive_dir`` — the checkpoint lives where the archive will.
        The checkpoint is deleted once the archive is written.

    When telemetry is enabled (:func:`repro.telemetry.configure` or
    ``REPRO_TELEMETRY_DIR``) the result's ``extras["telemetry"]``
    carries a schema-versioned summary of the run's counters and
    per-stage timings.  The key is absent when telemetry is off, and
    the study fingerprint never covers it — archived results stay
    bit-identical either way.
    """
    started = time.perf_counter()
    tel_since = telemetry.snapshot() if telemetry.enabled() else None
    if spec.kind not in _DISPATCH:
        raise ValueError(f"unknown study kind {spec.kind!r}")

    if spec.kind == "multi_seed":
        if context is not None:
            raise ValueError(
                "multi_seed studies build their own contexts; a context "
                "override is not supported")
        ctx = None
        fingerprint = spec.fingerprint()
    else:
        if context is not None:
            if spec.context is not None:
                # A live override on a spec that names its own context
                # would run one setting but archive under the other's
                # fingerprint — refuse rather than mis-file results.
                raise ValueError(
                    "this StudySpec names its own ContextSpec; a live "
                    "context override is only accepted for specs built "
                    "with context=None")
            ctx = context
            fingerprint = spec.fingerprint(
                context_fingerprint=ctx.fingerprint())
        elif spec.context is not None:
            ctx = spec.context.materialize()
            fingerprint = spec.fingerprint()
        else:
            raise ValueError(
                "this StudySpec has no ContextSpec; pass context= (a live "
                "ExperimentContext)")

    if archive_dir is not None and not force:
        path = archive_path(archive_dir, fingerprint)
        if os.path.exists(path):
            from repro.study.result import study_result_from_json

            return study_result_from_json(path)

    if resume and archive_dir is None:
        raise ValueError("resume=True needs archive_dir= — checkpoints "
                         "live beside the archive")
    engine = _resolve_engine(engine, spec)

    checkpointer = None
    resumed_rows: list[dict] = []
    if archive_dir is not None:
        every = checkpoint_every if checkpoint_every is not None else \
            env_int("REPRO_STUDY_CHECKPOINT_EVERY", 16, lo=0, hi=100000)
        if resume:
            resumed_rows = load_checkpoint(archive_dir, fingerprint)
        if resumed_rows:
            cache = getattr(engine, "cache", None)
            if cache is None:
                warnings.warn(
                    f"resume: checkpoint holds {len(resumed_rows)} "
                    f"completed rounds but the engine has no cache to "
                    f"warm; they will be recomputed", stacklevel=2)
                resumed_rows = []
            else:
                from repro.engine.cache import outcome_from_dict

                for row in resumed_rows:
                    cache.put(row["key"],
                              outcome_from_dict(row["outcome"]))
        if every:
            checkpointer = StudyCheckpointer(archive_dir, fingerprint,
                                             every=every)
            # Seeding with the resumed rows means a second crash can
            # never regress the checkpoint below this one's progress.
            checkpointer.seed(resumed_rows)

    on_record = (lambda rec: checkpointer.note(_scenario_row(rec))) \
        if checkpointer is not None else None
    recorder = _RecordingEngine(engine, on_record=on_record)
    batches_before = len(engine.batch_log)

    try:
        with telemetry.trace_span("study", kind=spec.kind):
            payload = _DISPATCH[spec.kind](spec, ctx, recorder, progress)
    except BaseException:
        # An aborted study (cancellation raised from the progress
        # callback, SIGTERM unwinding, a crash) keeps every completed
        # round: flush the rows noted since the last cadence write, so
        # a resume recomputes nothing that already finished.
        if checkpointer is not None and checkpointer.unflushed:
            checkpointer.flush()
        raise

    batches = [dict(b) for b in engine.batch_log[batches_before:]]
    scenarios = _scenario_records(recorder.records)
    context_fingerprints = []
    for row in scenarios:
        if row["context"] not in context_fingerprints:
            context_fingerprints.append(row["context"])

    result = StudyResult(
        kind=spec.kind,
        study=spec.to_obj(),
        study_fingerprint=fingerprint,
        context_fingerprints=context_fingerprints,
        cache_schema_version=cache_schema_version(),
        engine_stats={"backend": engine.backend.name, "batches": batches},
        scenarios=scenarios,
        payload=payload,
        n_rounds=sum(b["n_specs"] for b in batches),
        n_unique=len(scenarios),
        cache_hits=sum(b["cache_hits"] for b in batches),
        rounds_computed=sum(b["computed"] for b in batches),
        wall_time_seconds=time.perf_counter() - started,
        created_at=utc_timestamp(),
    )
    if resumed_rows:
        result.extras["resumed_scenarios"] = len(resumed_rows)
    if tel_since is not None:
        result.extras["telemetry"] = telemetry.summary(since=tel_since)

    if getattr(engine, "cache", None) is not None:
        engine.cache.annotate_study(fingerprint)
    if archive_dir is not None:
        os.makedirs(archive_dir, exist_ok=True)
        result.to_json(archive_path(archive_dir, fingerprint))
        if checkpointer is not None:
            checkpointer.discard()
    return result


# -- describe ----------------------------------------------------------------


@dataclass
class PhaseDescription:
    """One engine batch of a study, as the dry run predicts it.

    ``rounds`` holds the exact :class:`~repro.engine.RoundSpec` batch
    for statically-enumerable phases and ``None`` for dynamic ones
    (table1's mixed evaluations, whose supports Algorithm 1 chooses at
    run time); ``n_rounds`` is exact either way.
    """

    label: str
    n_rounds: int
    rounds: list | None = None
    context_seed: int | None = None
    n_unique: int | None = None
    predicted_cache_hits: int | None = None


@dataclass
class StudyDescription:
    """What a study *would* run — counts first, keys when probeable.

    ``n_rounds`` (total specs) and per-phase counts are always exact.
    ``n_unique``/``predicted_cache_hits`` are exact whenever every
    phase is statically enumerable (``exact=True``); prediction
    additionally needs an engine whose cache to probe, and modelling
    of batch sequencing (a later phase's repeat of an earlier phase's
    round predicts as a hit even on a cold cache).
    """

    kind: str
    fingerprint: str | None
    phases: list = field(default_factory=list)
    n_rounds: int = 0
    n_unique: int | None = None
    predicted_cache_hits: int | None = None
    exact: bool = True
    grid_lines: list = field(default_factory=list)


def _expand_phases(spec: StudySpec,
                   base_seed: int) -> list[PhaseDescription]:
    g = spec.grid
    phases: list[PhaseDescription] = []

    def static(label, rounds, *, seed=base_seed):
        phases.append(PhaseDescription(
            label=label, n_rounds=len(rounds), rounds=rounds,
            context_seed=seed))

    # The same axis validation run_study applies: a dry run must refuse
    # exactly the specs the real run would refuse, not plan around them.
    if spec.kind in ("figure1", "mixed_eval", "table1", "empirical_game",
                     "cross_game"):
        _single_victim(spec)
    if spec.kind in ("mixed_eval", "table1", "empirical_game",
                     "cross_game", "multi_seed"):
        _single_fraction(spec)
    if spec.kind in ("cross_game", "grid") and \
            (not g.defenses or not g.attacks):
        raise ValueError(
            f"{spec.kind} studies need non-empty defenses and attacks")
    if spec.kind == "mixed_eval" and \
            spec.solver_param("probabilities") is None:
        raise ValueError('mixed_eval studies need solver "probabilities"')

    if spec.kind == "figure1":
        for fraction in g.fractions:
            label = f"sweep(fraction={fraction:g})" \
                if len(g.fractions) > 1 else "sweep"
            static(label, drivers.sweep_rounds(
                base_seed, g.percentiles, fraction, g.n_repeats, g.victim,
                g.defense_kind, g.defense_params))
    elif spec.kind == "mixed_eval":
        static("mixed evaluation", drivers.support_rounds(
            base_seed, g.percentiles, g.fraction, g.n_repeats, "mixed",
            g.victim))
    elif spec.kind == "table1":
        static("sweep", drivers.sweep_rounds(
            base_seed, g.percentiles, g.fraction, g.n_repeats, g.victim))
        for n in spec.solver_param("n_radii", (2, 3)):
            phases.append(PhaseDescription(
                label=f"mixed evaluation (n={n})",
                n_rounds=int(n) * int(n) * g.n_repeats))
    elif spec.kind == "empirical_game":
        static("game matrix", drivers.support_rounds(
            base_seed, g.percentiles, g.fraction, g.n_repeats, "empirical",
            g.victim, g.defense_kind, g.defense_params))
    elif spec.kind == "cross_game":
        static("game matrix", drivers.cross_rounds(
            base_seed, list(g.defenses), list(g.attacks), g.fraction,
            g.n_repeats, g.victim))
    elif spec.kind == "multi_seed":
        n_seeds = int(spec.solver_param("n_seeds", 5))
        study_base = int(spec.solver_param("base_seed", 0))
        for k in range(n_seeds):
            seed = derive_seed(study_base, "multi-seed", k)
            static(f"sweep(seed {k})", drivers.sweep_rounds(
                seed, g.percentiles, g.fraction, g.n_repeats, None),
                seed=seed)
    elif spec.kind == "grid":
        static("grid", drivers.grid_rounds(
            base_seed, list(g.defenses), list(g.attacks), list(g.victims),
            list(g.fractions), g.n_repeats))
    else:
        raise ValueError(f"unknown study kind {spec.kind!r}")
    return phases


def _grid_lines(spec: StudySpec) -> list[str]:
    g = spec.grid
    lines = []
    if spec.context is not None:
        c = spec.context
        size = "full" if c.n_samples is None else str(c.n_samples)
        lines.append(f"context:    {c.name} (seed {c.seed}, n_samples {size})")
    else:
        lines.append("context:    (caller-supplied)")
    if g.percentiles:
        lines.append("percentiles: " +
                     ", ".join(f"{p:g}" for p in g.percentiles))
    if g.defenses:
        lines.append("defenses:   " + ", ".join(
            "none" if d is None else d.describe() for d in g.defenses))
    if g.defense_kind != "radius" or g.defense_params:
        lines.append(f"defense axis: {g.defense_kind} "
                     f"{dict(g.defense_params) or ''}".rstrip())
    if g.attacks:
        lines.append("attacks:    " + ", ".join(
            "clean" if a is None else a.describe() for a in g.attacks))
    lines.append("victims:    " + ", ".join(
        "context" if v is None else v.describe() for v in g.victims))
    lines.append("fractions:  " + ", ".join(f"{f:g}" for f in g.fractions))
    lines.append(f"repeats:    {g.n_repeats}")
    if spec.solver:
        lines.append(f"solver:     {dict(spec.solver)}")
    return lines


def describe_study(
    spec: StudySpec,
    *,
    engine=None,
    context=None,
) -> StudyDescription:
    """Expand a study without running it: grid, round counts, cache hits.

    With ``engine`` (whose cache is probed through the side-effect-free
    :meth:`~repro.engine.ResultCache.contains`), the prediction is
    exact for statically-enumerable studies: a subsequent
    :func:`run_study` on the same engine will report exactly the
    predicted specs/unique/cache-hit counts in its batch telemetry.
    ``context`` supplies the live context for specs built with
    ``context=None`` — like :func:`run_study`, it is consulted only
    then; a spec that names its own ContextSpec is materialised from
    the spec (one dataset load; ``n_seeds`` loads for ``multi_seed``),
    which still runs no rounds.
    """
    if spec.context is not None:
        base_seed = spec.context.seed
    elif context is not None:
        base_seed = context.seed
    else:
        raise ValueError(
            "this StudySpec has no ContextSpec; pass context= (round seeds "
            "derive from the context's base seed)")
    phases = _expand_phases(spec, base_seed)
    exact = all(p.rounds is not None for p in phases)
    fingerprint = None
    try:
        fingerprint = spec.fingerprint(
            context_fingerprint=(context.fingerprint()
                                 if context is not None else None))
    except ValueError:
        pass

    cache = getattr(engine, "cache", None) if engine is not None else None
    need_keys = cache is not None
    contexts: dict[int, object] = {}

    def context_for(phase):
        # The live override stands in only for specs without their own
        # ContextSpec — mirroring run_study, which refuses the
        # ambiguous combination outright.
        if spec.context is None:
            return context
        if phase.context_seed not in contexts:
            contexts[phase.context_seed] = spec.context.materialize(
                seed=(phase.context_seed
                      if spec.kind == "multi_seed" else None))
        return contexts[phase.context_seed]

    n_unique_total: int | None = 0
    predicted_total: int | None = 0
    will_have: set[str] = set()
    seen_rounds: set[tuple] = set()  # (context seed, canonical) study-wide
    for phase in phases:
        if phase.rounds is None:
            n_unique_total = None
            predicted_total = None
            continue
        # Unique rounds: canonical-spec dedupe within the phase (one
        # engine batch — this matches the batch's n_unique telemetry);
        # the study-wide total additionally dedupes across phases, so a
        # multi-fraction sweep's shared clean rounds count once, like
        # the run artifact's unique-scenario count.  Exact without any
        # context materialisation.
        canon = []
        seen = set()
        for r in phase.rounds:
            c = r.canonical()
            if c not in seen:
                seen.add(c)
                canon.append(r)
            if n_unique_total is not None and \
                    (phase.context_seed, c) not in seen_rounds:
                seen_rounds.add((phase.context_seed, c))
                n_unique_total += 1
        phase.n_unique = len(canon)
        if not need_keys:
            continue
        ctx = context_for(phase)
        if ctx is None:
            predicted_total = None
            continue
        fp = ctx.fingerprint()
        hits = 0
        for r in canon:
            key = round_key(fp, r)
            if key in will_have or cache.contains(key):
                hits += 1
            will_have.add(key)
        phase.predicted_cache_hits = hits
        if predicted_total is not None:
            predicted_total += hits

    return StudyDescription(
        kind=spec.kind,
        fingerprint=fingerprint,
        phases=phases,
        n_rounds=sum(p.n_rounds for p in phases),
        n_unique=n_unique_total,
        predicted_cache_hits=predicted_total if need_keys else None,
        exact=exact,
        grid_lines=_grid_lines(spec),
    )
